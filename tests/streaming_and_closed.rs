//! Integration + property tests for the out-of-core path and closed
//! patterns: stream-format round trips, disk mining equivalence, and the
//! closed-set compression laws.

#[cfg(feature = "property-tests")]
use proptest::prelude::*;

#[cfg(feature = "property-tests")]
use partial_periodic::closed::closed_of;
use partial_periodic::closed::mine_closed;
#[cfg(feature = "property-tests")]
use partial_periodic::streaming::mine_apriori_streaming;
use partial_periodic::streaming::mine_hitset_streaming;
use partial_periodic::timeseries::storage::stream::{FileSource, StreamWriter};
#[cfg(feature = "property-tests")]
use partial_periodic::timeseries::SeriesSource;
use partial_periodic::{hitset, MineConfig, SyntheticSpec};
#[cfg(feature = "property-tests")]
use partial_periodic::{FeatureCatalog, FeatureId, SeriesBuilder};

#[cfg(feature = "property-tests")]
fn fid(i: u32) -> FeatureId {
    FeatureId::from_raw(i)
}

fn temp(tag: &str) -> std::path::PathBuf {
    static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "ppm-int-stream-{}-{tag}-{}.ppmstream",
        std::process::id(),
        N.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ))
}

#[cfg(feature = "property-tests")]
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any series survives a .ppmstream round trip bit-for-bit.
    #[test]
    fn stream_format_round_trips(
        instants in prop::collection::vec(prop::collection::vec(0u32..300, 0..6), 0..120),
    ) {
        let mut b = SeriesBuilder::new();
        for inst in &instants {
            b.push_instant(inst.iter().map(|&f| fid(f)));
        }
        let series = b.finish();
        let path = temp("prop");
        let catalog = FeatureCatalog::with_synthetic_features(300);
        StreamWriter::create(&path, &catalog)
            .and_then(|w| w.write_series(&series))
            .unwrap();
        let src = FileSource::open(&path).unwrap();
        prop_assert_eq!(src.instant_count(), series.len());
        prop_assert_eq!(src.materialize().unwrap(), series);
        std::fs::remove_file(path).ok();
    }

    /// Disk mining equals in-memory mining; scan counts are physical.
    #[test]
    fn disk_mining_equals_memory(
        instants in prop::collection::vec(prop::collection::vec(0u32..5, 0..4), 20..80),
        period in 2usize..6,
    ) {
        prop_assume!(instants.len() >= period);
        let mut b = SeriesBuilder::new();
        for inst in &instants {
            b.push_instant(inst.iter().map(|&f| fid(f)));
        }
        let series = b.finish();
        let config = MineConfig::new(0.4).unwrap();
        let expect = hitset::mine(&series, period, &config).unwrap();

        let path = temp("mine");
        StreamWriter::create(&path, &FeatureCatalog::new())
            .and_then(|w| w.write_series(&series))
            .unwrap();

        let mut src = FileSource::open(&path).unwrap();
        let got = mine_hitset_streaming(&mut src, period, &config).unwrap();
        prop_assert_eq!(&got.frequent, &expect.frequent);
        prop_assert_eq!(src.scans_performed(), 2);

        let mut src = FileSource::open(&path).unwrap();
        let ap = mine_apriori_streaming(&mut src, period, &config).unwrap();
        prop_assert_eq!(&ap.frequent, &expect.frequent);
        prop_assert_eq!(src.scans_performed(), ap.stats.series_scans);
        std::fs::remove_file(path).ok();
    }

    /// Closed mining is a lossless compression: every frequent pattern's
    /// count equals the count of its smallest closed superpattern.
    #[test]
    fn closed_set_recovers_all_counts(
        instants in prop::collection::vec(prop::collection::vec(0u32..5, 0..4), 20..70),
        period in 2usize..6,
    ) {
        prop_assume!(instants.len() >= period);
        let mut b = SeriesBuilder::new();
        for inst in &instants {
            b.push_instant(inst.iter().map(|&f| fid(f)));
        }
        let series = b.finish();
        let config = MineConfig::new(0.35).unwrap();
        let full = hitset::mine(&series, period, &config).unwrap();
        let closed = mine_closed(&series, period, &config).unwrap();

        // Direct mining equals filter-based reference.
        prop_assert_eq!(&closed.closed, &closed_of(&full));

        // Lossless recovery: count(P) = max count over closed ⊇ P.
        for fp in &full.frequent {
            let recovered = closed
                .closed
                .iter()
                .filter(|cp| fp.letters.is_subset(&cp.letters))
                .map(|cp| cp.count)
                .max();
            prop_assert_eq!(recovered, Some(fp.count), "pattern {:?}", fp.letters);
        }

        // Sandwich: maximal ⊆ closed ⊆ frequent.
        prop_assert!(closed.closed.len() <= full.len());
        prop_assert!(full.maximal().len() <= closed.closed.len());
    }
}

/// The synthetic backbone compresses to a tiny closed set even as the
/// frequent set explodes.
#[test]
fn closed_compression_on_synthetic_data() {
    let spec = SyntheticSpec::figure2(30_000, 10);
    let data = spec.generate();
    let config = MineConfig::new(spec.recommended_min_conf()).unwrap();
    let full = hitset::mine(&data.series, 50, &config).unwrap();
    let closed = mine_closed(&data.series, 50, &config).unwrap();
    assert!(
        full.len() >= 1000,
        "frequent set should explode: {}",
        full.len()
    );
    assert!(
        closed.closed.len() < 40,
        "closed set should stay small: {}",
        closed.closed.len()
    );
    assert_eq!(closed.stats.series_scans, 2);
}

/// Disk mining at scale: stream a synthetic file and match memory results.
#[test]
fn disk_mining_at_scale() {
    let spec = SyntheticSpec::table1(20_000, 25, 4, 8);
    let data = spec.generate();
    let config = MineConfig::new(spec.recommended_min_conf()).unwrap();
    let path = temp("scale");
    StreamWriter::create(&path, &data.catalog)
        .and_then(|w| w.write_series(&data.series))
        .unwrap();
    let mut src = FileSource::open(&path).unwrap();
    let disk = mine_hitset_streaming(&mut src, 25, &config).unwrap();
    let mem = hitset::mine(&data.series, 25, &config).unwrap();
    assert_eq!(disk.frequent, mem.frequent);
    assert_eq!(disk.stats.series_scans, 2);
    std::fs::remove_file(path).ok();
}
