//! End-to-end verification: the invariant auditor, the differential
//! oracle, input quarantine, and claim verification over real mining runs.
//!
//! The auditor must be *sound* (a clean verdict on every honest run of
//! every engine) and *sensitive* (any single tampered count, dropped
//! pattern, or forged threshold is flagged). Both directions are exercised
//! here on seeded pseudo-random series.

use partial_periodic::audit::{audit, cross_check, verify_claims, AuditMode, Violation};
use partial_periodic::core::export::{parse_patterns_tsv, patterns_tsv};
use partial_periodic::parallel::{mine_parallel, mine_parallel_vertical};
use partial_periodic::streaming::mine_hitset_streaming;
use partial_periodic::timeseries::{
    EncodedSeries, Fault, FaultInjectingSource, FaultPlan, MemorySource, QuarantineMode,
    QuarantiningSource, SeriesSource,
};
use partial_periodic::vertical::{mine_vertical, mine_vertical_encoded};
use partial_periodic::{
    apriori, hitset, FeatureCatalog, FeatureId, FeatureSeries, MineConfig, MiningResult,
    SeriesBuilder,
};

/// A seeded pseudo-random series with planted periodic structure (period
/// `p`: feature 0 at offset 0 always, feature 1 at offset 2 most segments)
/// plus coin-flip noise, so results are non-trivial but reproducible.
fn random_series(seed: u64, instants: usize, p: usize) -> (FeatureSeries, FeatureCatalog) {
    let mut catalog = FeatureCatalog::new();
    let feats: Vec<FeatureId> = (0..5).map(|i| catalog.intern(&format!("f{i}"))).collect();
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
    let mut coin = move |den: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33).is_multiple_of(den)
    };
    let mut b = SeriesBuilder::new();
    for t in 0..instants {
        let mut fs = Vec::new();
        if t % p == 0 {
            fs.push(feats[0]);
        }
        if t % p == 2 && !coin(4) {
            fs.push(feats[1]);
        }
        if coin(3) {
            fs.push(feats[2]);
        }
        if coin(5) {
            fs.push(feats[3]);
        }
        if coin(7) {
            fs.push(feats[4]);
        }
        b.push_instant(fs);
    }
    (b.finish(), catalog)
}

fn assert_clean(result: &MiningResult, series: &FeatureSeries, catalog: &FeatureCatalog) {
    let report = audit(series, result, catalog, AuditMode::Full).unwrap();
    assert!(report.is_clean(), "violations: {:?}", report.violations);
    assert!(report.checks > 0);
    assert_eq!(report.recounted, result.len());
    assert!(!report.sampled);
}

#[test]
fn honest_runs_audit_clean_for_every_engine() {
    for seed in [1u64, 7, 42] {
        for p in [4usize, 6] {
            let (series, catalog) = random_series(seed, 600, p);
            let config = MineConfig::new(0.5).unwrap();
            assert_clean(
                &hitset::mine(&series, p, &config).unwrap(),
                &series,
                &catalog,
            );
            assert_clean(
                &apriori::mine(&series, p, &config).unwrap(),
                &series,
                &catalog,
            );
            assert_clean(
                &mine_parallel(&series, p, &config, 3).unwrap(),
                &series,
                &catalog,
            );
            let mut src = MemorySource::new(&series);
            assert_clean(
                &mine_hitset_streaming(&mut src, p, &config).unwrap(),
                &series,
                &catalog,
            );
            assert_clean(
                &mine_vertical(&series, p, &config).unwrap(),
                &series,
                &catalog,
            );
        }
    }
}

#[test]
fn sampled_audit_is_clean_and_deterministic() {
    let (series, catalog) = random_series(3, 480, 6);
    let result = hitset::mine(&series, 6, &MineConfig::new(0.4).unwrap()).unwrap();
    let a = audit(&series, &result, &catalog, AuditMode::Sample(4)).unwrap();
    let b = audit(&series, &result, &catalog, AuditMode::Sample(4)).unwrap();
    assert!(a.is_clean(), "{:?}", a.violations);
    assert!(a.sampled);
    assert_eq!(a.recounted, b.recounted);
    assert!(a.recounted <= 4.min(result.len()));
}

#[test]
fn every_single_count_perturbation_is_flagged() {
    let (series, catalog) = random_series(11, 360, 6);
    let clean = hitset::mine(&series, 6, &MineConfig::new(0.5).unwrap()).unwrap();
    assert!(clean.len() >= 2, "need a non-trivial result");
    for idx in 0..clean.len() {
        for delta in [1i64, -1] {
            let mut tampered = clean.clone();
            let c = &mut tampered.frequent[idx].count;
            let Some(next) = c.checked_add_signed(delta) else {
                continue;
            };
            *c = next;
            let report = audit(&series, &tampered, &catalog, AuditMode::Full).unwrap();
            assert!(
                report
                    .violations
                    .iter()
                    .any(|v| matches!(v, Violation::CountMismatch { .. })),
                "pattern #{idx} delta {delta} escaped: {:?}",
                report.violations
            );
        }
    }
}

#[test]
fn dropped_patterns_and_forged_thresholds_are_flagged() {
    let (series, catalog) = random_series(5, 420, 6);
    let clean = hitset::mine(&series, 6, &MineConfig::new(0.5).unwrap()).unwrap();

    // Dropping a 1-letter pattern breaks downward closure (its supersets
    // remain) and the full oracle's frequent-letter sweep.
    let idx = clean
        .frequent
        .iter()
        .position(|fp| fp.letters.len() == 1)
        .expect("a frequent singleton");
    let mut dropped = clean.clone();
    dropped.frequent.remove(idx);
    let report = audit(&series, &dropped, &catalog, AuditMode::Full).unwrap();
    assert!(
        report.violations.iter().any(|v| matches!(
            v,
            Violation::MissingSubpattern { .. } | Violation::MissingFrequentLetter { .. }
        )),
        "{:?}",
        report.violations
    );

    // A forged threshold cannot masquerade as the configured one.
    let mut forged = clean.clone();
    forged.min_count += 1;
    let report = audit(&series, &forged, &catalog, AuditMode::Full).unwrap();
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::ThresholdMismatch { .. })),
        "{:?}",
        report.violations
    );
}

#[test]
fn engines_cross_check_clean_on_random_series() {
    for seed in [2u64, 9] {
        let (series, catalog) = random_series(seed, 540, 6);
        let check = cross_check(&series, 6, &MineConfig::new(0.45).unwrap(), &catalog).unwrap();
        assert!(check.agreed(), "seed {seed}: {:?}", check.report.violations);
        assert_eq!(check.algorithms.len(), 4);
    }
}

/// The vertical engine's differential suite: on every workload shape the
/// bitmap counts must be **bit-for-bit identical** to the tree walk and to
/// Apriori — same patterns, same counts, same thresholds.
#[test]
fn vertical_engine_is_bit_identical_across_workloads() {
    let config = MineConfig::new(0.4).unwrap();
    for seed in [3u64, 19, 31] {
        for (instants, p) in [(240usize, 4usize), (540, 6), (90, 9)] {
            let (series, _catalog) = random_series(seed, instants, p);
            let baseline = hitset::mine(&series, p, &config).unwrap();
            let apriori = apriori::mine(&series, p, &config).unwrap();
            let vertical = mine_vertical(&series, p, &config).unwrap();
            let encoded = EncodedSeries::encode(&series);
            let cached = mine_vertical_encoded(&series, &encoded, p, &config).unwrap();
            let threaded = mine_parallel_vertical(&series, p, &config, 3).unwrap();
            for (name, result) in [
                ("vertical", &vertical),
                ("vertical+cache", &cached),
                ("vertical+threads", &threaded),
            ] {
                assert_eq!(
                    result.frequent, baseline.frequent,
                    "seed {seed} p {p}: {name} vs hitset"
                );
                assert_eq!(
                    result.frequent, apriori.frequent,
                    "seed {seed} p {p}: {name} vs apriori"
                );
                assert_eq!(result.min_count, baseline.min_count);
                assert_eq!(result.segment_count, baseline.segment_count);
            }
        }
    }
}

/// Noise-only input (no planted structure, high threshold): typically an
/// empty or tiny frequent set — the engines must agree on that too.
#[test]
fn vertical_engine_agrees_on_noise_and_empty_alphabets() {
    let strict = MineConfig::new(0.99).unwrap();
    let (noise, _) = random_series(77, 300, 5);
    let baseline = hitset::mine(&noise, 5, &strict).unwrap();
    let vertical = mine_vertical(&noise, 5, &strict).unwrap();
    assert_eq!(vertical.frequent, baseline.frequent);

    // An all-empty series has no frequent letters at all: the alphabet is
    // empty and the derivation must short-circuit identically.
    let mut b = SeriesBuilder::new();
    for _ in 0..40 {
        b.push_instant([]);
    }
    let empty = b.finish();
    let baseline = hitset::mine(&empty, 5, &MineConfig::new(0.5).unwrap()).unwrap();
    let vertical = mine_vertical(&empty, 5, &MineConfig::new(0.5).unwrap()).unwrap();
    assert_eq!(vertical.frequent, baseline.frequent);
    assert!(vertical.frequent.is_empty());
    assert_eq!(vertical.alphabet.len(), 0);
}

/// The segment-count boundary: a period equal to the series length gives
/// exactly one segment (`m = 1`, a one-word bitmap), and one past it is
/// the same typed rejection from both engines — the vertical path must not
/// mis-size bitmaps or accept what the tree walk rejects.
#[test]
fn vertical_engine_handles_the_segment_count_boundary() {
    let (series, _) = random_series(41, 8, 4);
    let config = MineConfig::new(0.5).unwrap();
    let baseline = hitset::mine(&series, 8, &config).unwrap();
    let vertical = mine_vertical(&series, 8, &config).unwrap();
    assert_eq!(vertical.frequent, baseline.frequent);
    assert_eq!(vertical.segment_count, 1);

    let b = hitset::mine(&series, 9, &config).unwrap_err();
    let v = mine_vertical(&series, 9, &config).unwrap_err();
    assert_eq!(b.to_string(), v.to_string());
}

/// Decodes a result's letter sets to `(offset, feature)` pairs so patterns
/// from runs with *different alphabets* can be compared.
fn symbolic(result: &MiningResult) -> Vec<(Vec<(usize, FeatureId)>, u64)> {
    result
        .frequent
        .iter()
        .map(|fp| {
            let mut letters: Vec<(usize, FeatureId)> = fp
                .letters
                .iter()
                .map(|i| result.alphabet.letter(i))
                .collect();
            letters.sort();
            (letters, fp.count)
        })
        .collect()
}

#[test]
fn quarantined_mining_yields_sound_lower_bounds() {
    let (series, catalog) = random_series(13, 600, 6);
    let config = MineConfig::new(0.5).unwrap();
    let clean = hitset::mine(&series, 6, &config).unwrap();

    // Garbage on an instant the planted pattern occupies, on both scans.
    let plan = FaultPlan::new()
        .fail_scan(0, Fault::Garbage { instant: 0 })
        .fail_scan(1, Fault::Garbage { instant: 0 });
    let faulty = FaultInjectingSource::new(MemorySource::new(&series), plan);
    let mut q = QuarantiningSource::new(faulty, QuarantineMode::Quarantine);
    let mined = mine_hitset_streaming(&mut q, 6, &config).unwrap();
    let (_, report) = q.into_parts();
    assert_eq!(report.len(), 1);
    assert_eq!(report.entries().next().unwrap().instant, 0);

    // Every pattern the quarantined run reports must exist in the clean
    // run with at least that count: quarantining only removes matches.
    let clean_counts = symbolic(&clean);
    for (letters, count) in symbolic(&mined) {
        let clean_count = clean_counts
            .iter()
            .find(|(l, _)| *l == letters)
            .map(|&(_, c)| c)
            .unwrap_or_else(|| panic!("{letters:?} frequent only under quarantine"));
        assert!(
            count <= clean_count,
            "{letters:?}: quarantined count {count} > clean {clean_count}"
        );
    }

    // And the quarantined result itself audits clean against the series
    // the miner actually saw (the cleaned one).
    let plan = FaultPlan::new().fail_scan(0, Fault::Garbage { instant: 0 });
    let faulty = FaultInjectingSource::new(MemorySource::new(&series), plan);
    let mut q = QuarantiningSource::new(faulty, QuarantineMode::Quarantine);
    let mut b = SeriesBuilder::new();
    q.scan(&mut |_, feats| b.push_instant(feats.iter().copied()))
        .unwrap();
    let cleaned = b.finish();
    assert_clean(&mined, &cleaned, &catalog);
}

#[test]
fn reject_mode_fails_the_mine_with_a_typed_error() {
    let (series, _) = random_series(17, 240, 6);
    let plan = FaultPlan::new().fail_scan(0, Fault::Garbage { instant: 3 });
    let faulty = FaultInjectingSource::new(MemorySource::new(&series), plan);
    let mut q = QuarantiningSource::new(faulty, QuarantineMode::Reject);
    let err = mine_hitset_streaming(&mut q, 6, &MineConfig::new(0.5).unwrap()).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("instant 3"), "{msg}");
}

#[test]
fn exported_claims_verify_and_tampering_is_caught() {
    let (series, catalog) = random_series(23, 480, 6);
    let result = hitset::mine(&series, 6, &MineConfig::new(0.5).unwrap()).unwrap();
    let tsv = patterns_tsv(&result, &catalog);

    let mut cat = catalog.clone();
    let claims = parse_patterns_tsv(&tsv, &mut cat).unwrap();
    let report = verify_claims(&series, 6, 0.5, &claims, &cat, AuditMode::Full).unwrap();
    assert!(report.is_clean(), "{:?}", report.violations);

    // Tamper one claim's count (confidence left stale too).
    let mut tampered = claims.clone();
    tampered[0].count += 2;
    let report = verify_claims(&series, 6, 0.5, &tampered, &cat, AuditMode::Full).unwrap();
    assert!(
        report.violations.iter().any(|v| matches!(
            v,
            Violation::CountMismatch { .. } | Violation::ConfidenceMismatch { .. }
        )),
        "{:?}",
        report.violations
    );

    // Verifying against the wrong period is flagged per claim.
    let report = verify_claims(&series, 4, 0.5, &claims, &cat, AuditMode::Full).unwrap();
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::ClaimPeriodMismatch { .. })),
        "{:?}",
        report.violations
    );
}

/// One view-backed mine, dispatched by engine name.
fn mine_on_view(
    view: partial_periodic::timeseries::EncodedSeriesView<'_>,
    period: usize,
    engine: &str,
    config: &MineConfig,
) -> MiningResult {
    match engine {
        "apriori" => apriori::mine_view(view, period, config),
        "vertical" => partial_periodic::vertical::mine_vertical_view(view, period, config),
        _ => hitset::mine_view(view, period, config),
    }
    .unwrap()
}

/// The daemon's central sharing assumption, checked at the library level:
/// one encoded series, many simultaneous borrowed views, each mined with a
/// different (period, engine) pair — every concurrent result must be
/// bit-identical to the same job run sequentially.
#[test]
fn shared_view_concurrent_readers_are_bit_identical_to_sequential() {
    let (series, _catalog) = random_series(77, 3_000, 6);
    let encoded = EncodedSeries::encode(&series);
    let config = MineConfig::new(0.35).unwrap();
    let jobs: Vec<(usize, &str)> = (2..=7)
        .flat_map(|p| [(p, "hitset"), (p, "apriori"), (p, "vertical")])
        .collect();

    let sequential: Vec<MiningResult> = jobs
        .iter()
        .map(|&(p, engine)| mine_on_view(encoded.view(), p, engine, &config))
        .collect();

    // 18 reader threads share the one load with zero copying; nothing
    // synchronizes them but the borrow checker.
    let concurrent: Vec<MiningResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .iter()
            .map(|&(p, engine)| {
                let view = encoded.view();
                let config = &config;
                scope.spawn(move || mine_on_view(view, p, engine, config))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for ((seq, conc), &(p, engine)) in sequential.iter().zip(&concurrent).zip(&jobs) {
        // Only the planted period is guaranteed to produce patterns at this
        // confidence; off-period jobs still exercise the shared view and
        // must match (possibly-empty) result for result.
        if p == 6 {
            assert!(
                !seq.frequent.is_empty(),
                "{engine} period {p}: trivial workload proves nothing"
            );
        }
        assert_eq!(
            seq.frequent, conc.frequent,
            "{engine} period {p}: concurrent result must be bit-identical"
        );
        assert_eq!(symbolic(seq), symbolic(conc), "{engine} period {p}");
    }
}
