//! Integration tests across the newer modules: event-log ETL, constrained
//! mining, windowed evolution mining, and the parallel miner — composed
//! into full pipelines.

#[cfg(feature = "property-tests")]
use proptest::prelude::*;

#[cfg(feature = "property-tests")]
use partial_periodic::constraints::{mine_constrained, Constraints};
use partial_periodic::evolution::{mine_windows, Drift, WindowSpec};
use partial_periodic::parallel::mine_parallel;
use partial_periodic::timeseries::events::EventLog;
use partial_periodic::{
    hitset, FeatureCatalog, FeatureId, MineConfig, SeriesBuilder, SyntheticSpec,
};

fn fid(i: u32) -> FeatureId {
    FeatureId::from_raw(i)
}

/// Event log → ETL → mining: a basket recorded every Monday 08:00 becomes
/// a weekly pattern.
#[test]
fn event_log_to_weekly_pattern() {
    let mut log = EventLog::new();
    let week_hours = 7 * 24;
    for week in 0..30u64 {
        let ts = week * week_hours as u64 + 8; // Monday 08:00
        log.record(ts, fid(0));
        log.record(ts, fid(1));
        if week % 3 == 0 {
            log.record(ts + 24, fid(2)); // Tuesday, 1 week in 3
        }
    }
    let (series, report) = log.to_series(0, 1, 30 * week_hours).unwrap();
    assert_eq!(report.binned as u64, 30 * 2 + 10);
    let result = hitset::mine(&series, week_hours, &MineConfig::new(0.9).unwrap()).unwrap();
    // The Monday basket (both features + their pair) is frequent; the
    // 1-in-3 Tuesday event is not.
    assert_eq!(result.alphabet.len(), 2);
    assert_eq!(result.len(), 3);
    assert!(result.frequent.iter().all(|fp| fp.count == 30));
}

#[cfg(feature = "property-tests")]
proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Constrained mining equals post-filtering an unconstrained run, for
    /// arbitrary series and random constraint combinations.
    #[test]
    fn constrained_equals_filtered(
        instants in prop::collection::vec(prop::collection::vec(0u8..5, 0..4), 20..70),
        period in 2usize..6,
        offset_mask in 1u8..=15,
        cap in 1usize..5,
    ) {
        prop_assume!(instants.len() >= period);
        let mut b = SeriesBuilder::new();
        for inst in &instants {
            b.push_instant(inst.iter().map(|&f| fid(f as u32)));
        }
        let series = b.finish();
        let config = MineConfig::new(0.4).unwrap();

        let offsets: Vec<usize> =
            (0..period).filter(|&o| offset_mask & (1 << (o % 4)) != 0).collect();
        prop_assume!(!offsets.is_empty());
        let constraints = Constraints::none()
            .at_offsets(offsets.iter().copied())
            .max_letters(cap);

        let constrained = mine_constrained(&series, period, &config, &constraints).unwrap();
        let plain = hitset::mine(&series, period, &config).unwrap();

        // Expected: plain patterns whose letters all sit at admitted
        // offsets and whose size is within the cap.
        let mut expect: Vec<(Vec<(usize, FeatureId)>, u64)> = plain
            .frequent
            .iter()
            .filter(|fp| {
                fp.letters.len() <= cap
                    && fp.letters.iter().all(|i| {
                        let (o, _) = plain.alphabet.letter(i);
                        offsets.contains(&o)
                    })
            })
            .map(|fp| {
                let mut key: Vec<(usize, FeatureId)> =
                    fp.letters.iter().map(|i| plain.alphabet.letter(i)).collect();
                key.sort_unstable();
                (key, fp.count)
            })
            .collect();
        expect.sort();
        let mut got: Vec<(Vec<(usize, FeatureId)>, u64)> = constrained
            .frequent
            .iter()
            .map(|fp| {
                let mut key: Vec<(usize, FeatureId)> =
                    fp.letters.iter().map(|i| constrained.alphabet.letter(i)).collect();
                key.sort_unstable();
                (key, fp.count)
            })
            .collect();
        got.sort();
        prop_assert_eq!(got, expect);
    }

    /// Required-letter queries equal post-filtering too.
    #[test]
    fn required_equals_filtered(
        instants in prop::collection::vec(prop::collection::vec(0u8..4, 0..3), 24..60),
        period in 2usize..5,
    ) {
        prop_assume!(instants.len() >= period);
        let mut b = SeriesBuilder::new();
        for inst in &instants {
            b.push_instant(inst.iter().map(|&f| fid(f as u32)));
        }
        let series = b.finish();
        let config = MineConfig::new(0.35).unwrap();
        let plain = hitset::mine(&series, period, &config).unwrap();
        prop_assume!(!plain.is_empty());
        // Require the first frequent letter.
        let (o, f) = plain.alphabet.letter(0);
        let constrained = mine_constrained(
            &series,
            period,
            &config,
            &Constraints::none().require(o, f),
        )
        .unwrap();
        let expect = plain
            .frequent
            .iter()
            .filter(|fp| fp.letters.contains(0))
            .count();
        prop_assert_eq!(constrained.len(), expect);
    }

    /// Parallel mining is identical to sequential for any thread count.
    #[test]
    fn parallel_equals_sequential_any_threads(
        instants in prop::collection::vec(prop::collection::vec(0u8..5, 0..4), 30..100),
        period in 2usize..7,
        threads in 1usize..9,
    ) {
        prop_assume!(instants.len() >= period);
        let mut b = SeriesBuilder::new();
        for inst in &instants {
            b.push_instant(inst.iter().map(|&f| fid(f as u32)));
        }
        let series = b.finish();
        let config = MineConfig::new(0.4).unwrap();
        let seq = hitset::mine(&series, period, &config).unwrap();
        let par = mine_parallel(&series, period, &config, threads).unwrap();
        prop_assert_eq!(seq.frequent, par.frequent);
    }
}

/// Evolution mining on the synthetic generator: the backbone is stable
/// across windows; a feature injected only into the second half emerges.
#[test]
fn evolution_on_synthetic_data() {
    let spec = SyntheticSpec::table1(12_000, 20, 3, 6);
    let data = spec.generate();
    // Inject a new letter into the second half only.
    let marker = fid(70_000);
    let mut b = SeriesBuilder::new();
    let half = data.series.len() / 2;
    for (t, inst) in data.series.iter().enumerate() {
        if t >= half && t % 20 == 7 {
            b.push_instant(inst.iter().copied().chain([marker]));
        } else {
            b.push_instant(inst.iter().copied());
        }
    }
    let series = b.finish();
    let config = MineConfig::new(0.6).unwrap();
    let out = mine_windows(&series, 20, &config, WindowSpec::new(100, 100).unwrap()).unwrap();
    let n = out.window_count();
    assert!(n >= 4);

    // Backbone letters: stable.
    for &(o, f) in &data.backbone {
        let track = out.track_of(&[(o, f)]).expect("backbone tracked");
        assert_eq!(
            track.classify(n),
            Drift::Stable,
            "backbone letter ({o}, {f:?})"
        );
    }
    // The injected marker: emerging.
    let track = out.track_of(&[(7, marker)]).expect("marker tracked");
    assert_eq!(track.classify(n), Drift::Emerging);
    assert_eq!(track.first_seen(), Some(n / 2));
}

/// The whole stack composes: events → series → constrained parallel-mined
/// weekly patterns with rules.
#[test]
fn full_pipeline_composes() {
    use partial_periodic::datagen::workloads::retail::{generate_events, store_script};
    use partial_periodic::rules::generate_rules;

    let mut catalog = FeatureCatalog::new();
    let log = generate_events(140, &store_script(), 10, 0.2, 5, &mut catalog);
    let (series, _) = log.to_series(0, 1, 140 * 24).unwrap();
    let week = 7 * 24;
    let config = MineConfig::new(0.7).unwrap();

    let par = mine_parallel(&series, week, &config, 4).unwrap();
    let seq = hitset::mine(&series, week, &config).unwrap();
    assert_eq!(par.frequent, seq.frequent);
    assert!(!par.is_empty());

    // Coffee implies doughnut within the Monday 8am basket.
    let coffee = catalog.get("coffee").unwrap();
    let doughnut = catalog.get("doughnut").unwrap();
    let rules = generate_rules(&par, 0.95);
    let co = par.alphabet.index_of(8, coffee).unwrap();
    let dn = par.alphabet.index_of(8, doughnut).unwrap();
    assert!(
        rules
            .iter()
            .any(|r| r.consequent == dn && r.antecedent.contains(co)),
        "expected coffee => doughnut rule"
    );
}
