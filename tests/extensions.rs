//! Integration tests for the paper's §4/§6 extensions: maximal patterns,
//! periodic rules, perturbation tolerance, multi-level mining, and the
//! perfect-periodicity baseline.

#[cfg(feature = "property-tests")]
use proptest::prelude::*;

use partial_periodic::core::perfect::mine_perfect;
#[cfg(feature = "property-tests")]
use partial_periodic::maximal::{maximal_of, mine_maximal};
use partial_periodic::multi::PeriodRange;
use partial_periodic::multilevel::mine_multilevel;
use partial_periodic::timeseries::Taxonomy;
use partial_periodic::{
    hitset, perturb, rules, Algorithm, FeatureCatalog, FeatureId, MineConfig, SeriesBuilder,
};

#[cfg(feature = "property-tests")]
fn build_series(instants: &[Vec<u8>]) -> partial_periodic::FeatureSeries {
    let mut b = SeriesBuilder::new();
    for inst in instants {
        b.push_instant(inst.iter().map(|&f| FeatureId::from_raw(f as u32)));
    }
    b.finish()
}

#[cfg(feature = "property-tests")]
fn series_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(0u8..5, 0..4), 16..80)
}

#[cfg(feature = "property-tests")]
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// MaxMiner-over-hit-set equals filtering the full result.
    #[test]
    fn maxminer_equals_reference(
        instants in series_strategy(),
        period in 2usize..7,
        conf_pct in prop::sample::select(vec![30u32, 50, 75, 100]),
    ) {
        prop_assume!(instants.len() >= period);
        let series = build_series(&instants);
        let config = MineConfig::new(conf_pct as f64 / 100.0).unwrap();
        let full = hitset::mine(&series, period, &config).unwrap();
        let mut expect = maximal_of(&full);
        expect.sort_by(|a, b| {
            a.letters.len().cmp(&b.letters.len()).then_with(|| {
                a.letters.iter().collect::<Vec<_>>().cmp(&b.letters.iter().collect())
            })
        });
        let got = mine_maximal(&series, period, &config).unwrap();
        prop_assert_eq!(got.maximal, expect);
    }

    /// Rule confidences are exactly count(P)/count(P \ {l}).
    #[test]
    fn rule_confidences_are_exact(
        instants in series_strategy(),
        period in 2usize..6,
    ) {
        prop_assume!(instants.len() >= period);
        let series = build_series(&instants);
        let config = MineConfig::new(0.3).unwrap();
        let result = hitset::mine(&series, period, &config).unwrap();
        let segments = series.segments(period).unwrap();
        for rule in rules::generate_rules(&result, 0.0) {
            let mut whole = rule.antecedent.clone();
            whole.insert(rule.consequent);
            let count = |set: &partial_periodic::core::LetterSet| {
                let p = partial_periodic::Pattern::from_letter_set(&result.alphabet, set);
                segments.iter().filter(|s| p.matches_segment(s)).count() as f64
            };
            let expect = count(&whole) / count(&rule.antecedent);
            prop_assert!((rule.confidence - expect).abs() < 1e-12);
            prop_assert_eq!(rule.support_count, count(&whole) as u64);
        }
    }

    /// Perfect mining equals hit-set F1 at confidence 1.0 for every period.
    #[test]
    fn perfect_equals_hitset_at_one(
        instants in series_strategy(),
        period in 2usize..7,
    ) {
        prop_assume!(instants.len() >= period);
        let series = build_series(&instants);
        let perfect =
            mine_perfect(&series, PeriodRange::single(period).unwrap()).unwrap();
        let full = hitset::mine(&series, period, &MineConfig::new(1.0).unwrap()).unwrap();
        prop_assert_eq!(&perfect[0].alphabet, &full.alphabet);
    }
}

/// Slot enlargement recovers jittered patterns that exact mining misses.
#[test]
fn perturbation_recovery() {
    let mut b = SeriesBuilder::new();
    for j in 0..60 {
        for o in 0..6 {
            // Event near offset 2, drifting ±1 deterministically.
            let fire = o as i64 == 2 + [(-1i64), 0, 1][j % 3];
            if fire {
                b.push_instant([FeatureId::from_raw(0)]);
            } else {
                b.push_instant([]);
            }
        }
    }
    let series = b.finish();
    let config = MineConfig::new(0.9).unwrap();
    let exact = hitset::mine(&series, 6, &config).unwrap();
    assert!(exact.is_empty());
    let tolerant =
        perturb::mine_with_slot_enlargement(&series, 6, 1, &config, Algorithm::HitSet).unwrap();
    assert!(!tolerant.is_empty());
    assert!(tolerant
        .alphabet
        .index_of(2, FeatureId::from_raw(0))
        .is_some());
}

/// Multi-level drill-down: coarse patterns persist or refine; features
/// whose generalization was infrequent never reappear at finer levels.
#[test]
fn multilevel_drill_down_consistency() {
    let mut cat = FeatureCatalog::new();
    let tax = Taxonomy::from_name_pairs(
        &[
            ("espresso", "coffee"),
            ("latte", "coffee"),
            ("coffee", "drink"),
            ("cola", "drink"),
            ("bagel", "food"),
        ],
        &mut cat,
    )
    .unwrap();
    let espresso = cat.get("espresso").unwrap();
    let latte = cat.get("latte").unwrap();
    let cola = cat.get("cola").unwrap();
    let bagel = cat.get("bagel").unwrap();

    let mut b = SeriesBuilder::new();
    for j in 0..40 {
        // Offset 0: always some coffee; espresso 3 of 4 days.
        b.push_instant([if j % 4 == 0 { latte } else { espresso }]);
        // Offset 1: cola rarely, bagel usually.
        let mut snack = vec![bagel];
        if j % 5 == 0 {
            snack.push(cola);
        }
        b.push_instant(snack);
    }
    let series = b.finish();

    let config = MineConfig::new(0.7).unwrap();
    let levels = mine_multilevel(&series, &tax, 2, 2, &config, Algorithm::HitSet).unwrap();
    assert_eq!(levels.len(), 3);

    // Depth 0: drink@0 and food@1 both perfect.
    let l0 = &levels[0].result;
    assert_eq!(l0.alphabet.len(), 2);
    // Depth 1: coffee@0 (conf 1.0) and bagel@1 (conf 1.0) survive; cola's
    // parent (drink) was frequent, so cola is *considered* but at 0.2 it is
    // not frequent.
    let l1 = &levels[1].result;
    let coffee = cat.get("coffee").unwrap();
    assert!(l1.alphabet.index_of(0, coffee).is_some());
    assert!(l1.alphabet.index_of(1, bagel).is_some());
    assert!(l1.alphabet.index_of(1, cola).is_none());
    // Depth 2: espresso at 0.75 survives; latte at 0.25 does not; cola was
    // filtered by the drill-down (its depth-1 form was infrequent).
    let l2 = &levels[2].result;
    assert!(l2.alphabet.index_of(0, espresso).is_some());
    assert!(l2.alphabet.index_of(0, latte).is_none());
    assert!(l2.alphabet.index_of(1, cola).is_none());
}

/// Cycle elimination's early exit on aperiodic data.
#[test]
fn perfect_cycle_elimination_saves_work() {
    let mut b = SeriesBuilder::new();
    for t in 0..10_000u32 {
        b.push_instant([FeatureId::from_raw(t % 997)]);
    }
    let series = b.finish();
    let out = mine_perfect(&series, PeriodRange::new(5, 25).unwrap()).unwrap();
    for p in &out {
        assert!(!p.has_pattern());
        assert!(
            p.segments_examined * 10 <= p.segment_count.max(10),
            "period {}: examined {} of {}",
            p.period,
            p.segments_examined,
            p.segment_count
        );
    }
}

/// Rules generated from multi-letter patterns respect the threshold filter.
#[test]
fn rule_threshold_is_respected() {
    let mut b = SeriesBuilder::new();
    for j in 0..20 {
        b.push_instant([FeatureId::from_raw(0)]);
        b.push_instant(if j % 2 == 0 {
            vec![FeatureId::from_raw(1)]
        } else {
            vec![]
        });
    }
    let series = b.finish();
    let result = hitset::mine(&series, 2, &MineConfig::new(0.4).unwrap()).unwrap();
    let all = rules::generate_rules(&result, 0.0);
    let strict = rules::generate_rules(&result, 0.9);
    assert!(strict.len() < all.len());
    assert!(strict.iter().all(|r| r.confidence >= 0.9));
}
