//! Property-based tests on the core data structures: `LetterSet` against a
//! `BTreeSet` model, the max-subpattern tree against a naive multiset, the
//! threshold arithmetic, and the substrate's discretizers.
//!
//! Requires the external `proptest` crate; enable with
//! `--features property-tests` (see the root `Cargo.toml`). The default
//! (offline) test run skips this file entirely.
#![cfg(feature = "property-tests")]

use std::collections::BTreeSet;

use proptest::prelude::*;

use partial_periodic::core::hitset::MaxSubpatternTree;
use partial_periodic::core::{LetterSet, MineConfig};
use partial_periodic::timeseries::discretize::Discretizer;

// ---------------------------------------------------------------- LetterSet

#[derive(Debug, Clone)]
enum SetOp {
    Insert(usize),
    Remove(usize),
    Clear,
}

fn ops_strategy(universe: usize) -> impl Strategy<Value = Vec<SetOp>> {
    prop::collection::vec(
        prop_oneof![
            (0..universe).prop_map(SetOp::Insert),
            (0..universe).prop_map(SetOp::Remove),
            Just(SetOp::Clear),
        ],
        0..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn letterset_matches_btreeset_model(
        universe in 1usize..200,
        ops in ops_strategy(199),
    ) {
        let mut set = LetterSet::new(universe);
        let mut model: BTreeSet<usize> = BTreeSet::new();
        for op in ops {
            match op {
                SetOp::Insert(i) if i < universe => {
                    set.insert(i);
                    model.insert(i);
                }
                SetOp::Insert(_) => {}
                SetOp::Remove(i) => {
                    set.remove(i);
                    model.remove(&i);
                }
                SetOp::Clear => {
                    set.clear();
                    model.clear();
                }
            }
            prop_assert_eq!(set.len(), model.len());
            prop_assert_eq!(set.iter().collect::<Vec<_>>(),
                            model.iter().copied().collect::<Vec<_>>());
            prop_assert_eq!(set.is_empty(), model.is_empty());
            prop_assert_eq!(set.first(), model.first().copied());
        }
    }

    #[test]
    fn letterset_algebra_matches_model(
        universe in 1usize..150,
        a_items in prop::collection::btree_set(0usize..149, 0..30),
        b_items in prop::collection::btree_set(0usize..149, 0..30),
    ) {
        let a_items: BTreeSet<usize> =
            a_items.into_iter().filter(|&i| i < universe).collect();
        let b_items: BTreeSet<usize> =
            b_items.into_iter().filter(|&i| i < universe).collect();
        let a = LetterSet::from_indices(universe, a_items.iter().copied());
        let b = LetterSet::from_indices(universe, b_items.iter().copied());

        prop_assert_eq!(a.is_subset(&b), a_items.is_subset(&b_items));
        prop_assert_eq!(a.is_superset(&b), a_items.is_superset(&b_items));
        prop_assert_eq!(a.is_disjoint(&b), a_items.is_disjoint(&b_items));

        let mut union = a.clone();
        union.union_with(&b);
        prop_assert_eq!(
            union.iter().collect::<Vec<_>>(),
            a_items.union(&b_items).copied().collect::<Vec<_>>()
        );
        let mut inter = a.clone();
        inter.intersect_with(&b);
        prop_assert_eq!(
            inter.iter().collect::<Vec<_>>(),
            a_items.intersection(&b_items).copied().collect::<Vec<_>>()
        );
        let diff = a.difference(&b);
        prop_assert_eq!(
            diff.iter().collect::<Vec<_>>(),
            a_items.difference(&b_items).copied().collect::<Vec<_>>()
        );
    }

    // ------------------------------------------------- max-subpattern tree

    #[test]
    fn tree_counting_matches_naive_multiset(
        universe in 2usize..10,
        hits in prop::collection::vec(prop::collection::btree_set(0usize..9, 2..6), 1..40),
        candidate in prop::collection::btree_set(0usize..9, 0..5),
    ) {
        let hits: Vec<BTreeSet<usize>> = hits
            .into_iter()
            .map(|h| h.into_iter().filter(|&i| i < universe).collect::<BTreeSet<_>>())
            .filter(|h: &BTreeSet<usize>| h.len() >= 2)
            .collect();
        prop_assume!(!hits.is_empty());
        let candidate: BTreeSet<usize> =
            candidate.into_iter().filter(|&i| i < universe).collect();

        let mut tree = MaxSubpatternTree::new(LetterSet::full(universe));
        for h in &hits {
            tree.insert(&LetterSet::from_indices(universe, h.iter().copied()));
        }
        let cand = LetterSet::from_indices(universe, candidate.iter().copied());
        let naive = hits.iter().filter(|h| candidate.is_subset(h)).count() as u64;
        prop_assert_eq!(tree.count_superpatterns_walk(&cand), naive);
        prop_assert_eq!(tree.count_superpatterns_linear(&cand), naive);
        // Structural invariants.
        prop_assert_eq!(tree.total_hits(), hits.len() as u64);
        prop_assert!(tree.distinct_hits() <= hits.len());
        prop_assert!(tree.distinct_hits() <= tree.node_count());
    }

    // -------------------------------------------------- threshold arithmetic

    #[test]
    fn min_count_is_least_count_meeting_confidence(
        m in 1usize..500,
        conf_thousandths in 1u32..=1000,
    ) {
        let conf = conf_thousandths as f64 / 1000.0;
        let config = MineConfig::new(conf).unwrap();
        let c = config.min_count(m);
        // c meets the threshold…
        prop_assert!(c as f64 / m as f64 >= conf - 1e-9);
        // …and c−1 does not (when c > 1; counts below 1 are meaningless).
        if c > 1 {
            let below = ((c - 1) as f64) / m as f64;
            prop_assert!(below < conf - 1e-12);
        }
        prop_assert!(c <= m as u64);
    }

    // ------------------------------------------------------- discretization

    #[test]
    fn discretizers_are_total_and_order_preserving(
        values in prop::collection::vec(-1000.0f64..1000.0, 2..60),
        bins in 1usize..12,
    ) {
        for d in [
            Discretizer::equal_width("x", &values, bins).unwrap(),
            Discretizer::equal_depth("x", &values, bins).unwrap(),
        ] {
            let mut pairs: Vec<(f64, usize)> =
                values.iter().map(|&v| (v, d.bin_of(v))).collect();
            for &(v, b) in &pairs {
                prop_assert!(b < bins, "{v} -> bin {b}");
            }
            // Bin assignment is monotone in the value.
            pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for w in pairs.windows(2) {
                prop_assert!(w[0].1 <= w[1].1, "bins not monotone: {w:?}");
            }
        }
    }

    // ------------------------------------------------------- storage codecs

    #[test]
    fn block_format_round_trips_arbitrary_series(
        instants in prop::collection::vec(prop::collection::vec(0u32..500, 0..5), 0..80),
        names in prop::collection::vec("[a-z]{1,12}", 0..20),
    ) {
        use partial_periodic::timeseries::storage::binary;
        use partial_periodic::{FeatureCatalog, FeatureId, SeriesBuilder};

        let mut catalog = FeatureCatalog::new();
        for n in &names {
            catalog.intern(n);
        }
        let mut builder = SeriesBuilder::new();
        for inst in &instants {
            builder.push_instant(inst.iter().map(|&f| FeatureId::from_raw(f)));
        }
        let series = builder.finish();
        let bytes = binary::encode_series(&series, &catalog);
        let (series2, catalog2) = binary::decode_series(&bytes).unwrap();
        prop_assert_eq!(series, series2);
        prop_assert_eq!(catalog.len(), catalog2.len());
        // Any single-byte corruption is detected (checksum or structure).
        if !bytes.is_empty() {
            let mut bad = bytes.to_vec();
            let idx = bad.len() / 2;
            bad[idx] ^= 0x5a;
            prop_assert!(binary::decode_series(&bad).is_err());
        }
    }

    #[test]
    fn equal_width_bins_have_equal_span(
        lo in -100.0f64..100.0,
        span in 1.0f64..200.0,
        bins in 2usize..10,
    ) {
        let values = vec![lo, lo + span];
        let d = Discretizer::equal_width("x", &values, bins).unwrap();
        let edges = d.edges();
        let width = (edges[1] - edges[0]).abs();
        for w in edges.windows(2) {
            prop_assert!(((w[1] - w[0]) - width).abs() < 1e-6 * span);
        }
    }

    // ------------------------------------------------------- self-verification

    #[test]
    fn auditor_is_clean_on_honest_mines_of_arbitrary_series(
        instants in prop::collection::vec(prop::collection::vec(0u32..6, 0..4), 12..120),
        period in 2usize..8,
        conf_thousandths in 200u32..=1000,
    ) {
        use partial_periodic::audit::{audit, cross_check, AuditMode};
        use partial_periodic::{hitset, FeatureCatalog, FeatureId, SeriesBuilder};

        prop_assume!(period <= instants.len());
        let mut catalog = FeatureCatalog::new();
        for i in 0..6 {
            catalog.intern(&format!("f{i}"));
        }
        let mut builder = SeriesBuilder::new();
        for inst in &instants {
            builder.push_instant(inst.iter().map(|&f| FeatureId::from_raw(f)));
        }
        let series = builder.finish();
        let config = MineConfig::new(conf_thousandths as f64 / 1000.0).unwrap();

        let result = hitset::mine(&series, period, &config).unwrap();
        let report = audit(&series, &result, &catalog, AuditMode::Full).unwrap();
        prop_assert!(report.is_clean(), "violations: {:?}", report.violations);

        let check = cross_check(&series, period, &config, &catalog).unwrap();
        prop_assert!(check.agreed(), "engines disagree: {:?}", check.report.violations);
    }

    #[test]
    fn auditor_flags_any_tampered_count(
        instants in prop::collection::vec(prop::collection::vec(0u32..4, 0..3), 24..100),
        period in 2usize..6,
        victim in 0usize..64,
        bump in 1u64..5,
    ) {
        use partial_periodic::audit::{audit, AuditMode, Violation};
        use partial_periodic::{hitset, FeatureCatalog, FeatureId, SeriesBuilder};

        prop_assume!(period <= instants.len());
        let mut catalog = FeatureCatalog::new();
        for i in 0..4 {
            catalog.intern(&format!("f{i}"));
        }
        let mut builder = SeriesBuilder::new();
        for inst in &instants {
            builder.push_instant(inst.iter().map(|&f| FeatureId::from_raw(f)));
        }
        let series = builder.finish();
        let config = MineConfig::new(0.4).unwrap();

        let mut result = hitset::mine(&series, period, &config).unwrap();
        prop_assume!(!result.frequent.is_empty());
        let victim = victim % result.frequent.len();
        result.frequent[victim].count += bump;

        let report = audit(&series, &result, &catalog, AuditMode::Full).unwrap();
        prop_assert!(
            report.violations.iter().any(|v| matches!(
                v,
                Violation::CountMismatch { .. } | Violation::CountExceedsSegments { .. }
            )),
            "bump {bump} on pattern #{victim} escaped: {:?}",
            report.violations
        );
    }
}
