//! End-to-end resilience: fault injection, retries, and recovery.
//!
//! The headline scenario: a streaming hit-set mine (Alg 3.2, two physical
//! passes) over a disk source whose second scan fails transiently must,
//! when wrapped in a retrier, produce a `MiningResult` bit-identical to
//! the fault-free run — same patterns, same counts, same statistics.

use partial_periodic::core::Error;
use partial_periodic::streaming::mine_hitset_streaming;
use partial_periodic::timeseries::retry::with_retries;
use partial_periodic::timeseries::storage::stream::{FileSource, StreamWriter};
use partial_periodic::timeseries::{
    Fault, FaultInjectingSource, FaultPlan, MemorySource, SeriesSource,
};
use partial_periodic::{
    hitset, FeatureCatalog, FeatureId, FeatureSeries, MineConfig, MiningResult, SeriesBuilder,
};

fn fid(i: u32) -> FeatureId {
    FeatureId::from_raw(i)
}

fn temp(tag: &str) -> std::path::PathBuf {
    static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "ppm-int-resilience-{}-{tag}-{}.ppmstream",
        std::process::id(),
        N.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ))
}

/// A deterministic "busy" series: a planted period-6 pattern plus
/// coin-flip noise features, so the max-subpattern tree actually grows.
fn busy_series(instants: usize) -> FeatureSeries {
    let mut b = SeriesBuilder::new();
    let mut x = 42u64;
    let mut coin = move || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        (x >> 33).is_multiple_of(2)
    };
    for t in 0..instants {
        let mut feats = Vec::new();
        if t % 6 == 0 {
            feats.push(fid(0));
        }
        if t % 6 == 2 && (t / 6) % 3 != 0 {
            feats.push(fid(1));
        }
        if coin() {
            feats.push(fid(2));
        }
        if coin() {
            feats.push(fid(3));
        }
        b.push_instant(feats);
    }
    b.finish()
}

fn assert_bit_identical(a: &MiningResult, b: &MiningResult) {
    assert_eq!(a.period, b.period);
    assert_eq!(a.segment_count, b.segment_count);
    assert_eq!(a.min_count, b.min_count);
    assert_eq!(a.alphabet, b.alphabet);
    assert_eq!(a.frequent, b.frequent);
    assert_eq!(a.stats, b.stats, "statistics must match a fault-free run");
}

/// The acceptance scenario: scan 2 of a disk mine fails transiently
/// (a short read mid-pass); the retrier re-scans and the result —
/// including `series_scans` — is bit-identical to the fault-free run.
#[test]
fn transient_scan2_failure_recovers_bit_identically() {
    let series = busy_series(600);
    let config = MineConfig::new(0.5).unwrap();
    let path = temp("recover");
    StreamWriter::create(&path, &FeatureCatalog::new())
        .and_then(|w| w.write_series(&series))
        .unwrap();

    // Fault-free baseline over the same file.
    let mut clean = FileSource::open(&path).unwrap();
    let expect = mine_hitset_streaming(&mut clean, 6, &config).unwrap();
    assert!(!expect.is_empty(), "baseline must find patterns");
    assert_eq!(expect.stats.series_scans, 2);

    // The faulty run: physical attempt 1 (the first try of logical scan 2)
    // delivers 250 instants, then dies with a transient I/O error.
    let plan = FaultPlan::new().fail_scan(1, Fault::ShortRead { instants: 250 });
    let faulty = FaultInjectingSource::new(FileSource::open(&path).unwrap(), plan);
    let mut src = with_retries(faulty, 3);
    let got = mine_hitset_streaming(&mut src, 6, &config).unwrap();

    assert_bit_identical(&expect, &got);
    assert_eq!(src.retries(), 1);
    assert_eq!(src.inner().faults_injected(), 1);
    assert_eq!(
        src.inner().attempts(),
        3,
        "scan 1 + failed scan 2 + replayed scan 2"
    );
    std::fs::remove_file(path).ok();
}

/// Both physical passes hiccup — scan 1 dies immediately, scan 2 short
/// reads — and the mine still matches the in-memory result exactly.
#[test]
fn faults_on_both_scans_recover_and_match_memory_mining() {
    let series = busy_series(480);
    let config = MineConfig::new(0.4).unwrap();
    let expect = hitset::mine(&series, 6, &config).unwrap();

    let plan = FaultPlan::new()
        .fail_scan(0, Fault::TransientIo)
        .fail_scan(2, Fault::ShortRead { instants: 100 });
    let faulty = FaultInjectingSource::new(MemorySource::new(&series), plan);
    let mut src = with_retries(faulty, 3);
    let got = mine_hitset_streaming(&mut src, 6, &config).unwrap();

    assert_bit_identical(&expect, &got);
    assert_eq!(src.inner().attempts(), 4, "two logical scans, two retries");
    assert_eq!(src.retries(), 2);
}

/// When every attempt fails, the retrier surfaces the transient error with
/// honest bookkeeping: the policy's full attempt budget spent, zero
/// logical scans completed.
#[test]
fn retry_exhaustion_reports_attempt_counts() {
    let series = busy_series(120);
    let plan = FaultPlan::new()
        .fail_scan(0, Fault::TransientIo)
        .fail_scan(1, Fault::TransientIo)
        .fail_scan(2, Fault::TransientIo);
    let faulty = FaultInjectingSource::new(MemorySource::new(&series), plan);
    let mut src = with_retries(faulty, 3);

    let err = mine_hitset_streaming(&mut src, 6, &MineConfig::new(0.5).unwrap()).unwrap_err();
    assert!(
        matches!(err, Error::Series(ref e) if e.is_transient()),
        "{err}"
    );
    assert_eq!(
        src.attempts(),
        3,
        "all three attempts spent on logical scan 1"
    );
    assert_eq!(src.scans_performed(), 0, "no logical scan completed");
}

/// Fatal damage (truncation) must not be retried: one attempt, typed error.
#[test]
fn truncation_fails_fast_through_the_retrier() {
    let series = busy_series(120);
    let plan = FaultPlan::new().fail_scan(0, Fault::Truncate { instants: 30 });
    let faulty = FaultInjectingSource::new(MemorySource::new(&series), plan);
    let mut src = with_retries(faulty, 5);

    let err = mine_hitset_streaming(&mut src, 6, &MineConfig::new(0.5).unwrap()).unwrap_err();
    assert!(
        matches!(
            err,
            Error::Series(partial_periodic::timeseries::Error::Truncated { .. })
        ),
        "{err}"
    );
    assert_eq!(src.attempts(), 1, "fatal errors burn exactly one attempt");
}

/// Period 0 and periods longer than the series are rejected up front, on
/// both the in-memory and the streaming paths, before any scan happens.
#[test]
fn invalid_periods_are_rejected_before_scanning() {
    let series = busy_series(60);
    let config = MineConfig::new(0.5).unwrap();

    for period in [0usize, 61, 1000] {
        let err = hitset::mine(&series, period, &config).unwrap_err();
        assert!(
            matches!(err, Error::InvalidPeriod { period: p, series_len: 60 } if p == period),
            "{err}"
        );

        let mut src = MemorySource::new(&series);
        let err = mine_hitset_streaming(&mut src, period, &config).unwrap_err();
        assert!(matches!(err, Error::InvalidPeriod { .. }), "{err}");
        assert_eq!(src.scans_performed(), 0, "validation precedes I/O");
    }
}

/// An empty series has no valid period at all.
#[test]
fn empty_series_cannot_be_mined() {
    let series = SeriesBuilder::new().finish();
    let err = hitset::mine(&series, 1, &MineConfig::new(0.5).unwrap()).unwrap_err();
    assert!(
        matches!(
            err,
            Error::InvalidPeriod {
                period: 1,
                series_len: 0
            }
        ),
        "{err}"
    );
}

/// The fault → retry → recovery sequence is visible through the
/// observability sink: the injected fault, the transient-error retry, and
/// the eventual recovery each emit a structured event, in that order, and
/// the mining result is unaffected by being observed.
#[test]
fn fault_retry_recovery_emits_ordered_events() {
    use partial_periodic::observe::{self, Collector, Event};
    use std::sync::Arc;

    let series = busy_series(240);
    let config = MineConfig::new(0.5).unwrap();
    let plan = FaultPlan::new().fail_scan(1, Fault::TransientIo);
    let faulty = FaultInjectingSource::new(MemorySource::new(&series), plan);
    let mut src = with_retries(faulty, 3);

    let collector = Arc::new(Collector::new());
    let got = {
        let _guard = observe::install(collector.clone());
        mine_hitset_streaming(&mut src, 6, &config).unwrap()
    };

    let events = collector.events();
    let pos = |name: &str| {
        events
            .iter()
            .position(|e| matches!(e, Event::Mark { name: n, .. } if *n == name))
            .unwrap_or_else(|| panic!("no {name:?} mark in {events:?}"))
    };
    let fault = pos("fault.injected");
    let retry = pos("retry.transient_error");
    let recovered = pos("retry.recovered");
    assert!(
        fault < retry && retry < recovered,
        "expected fault ({fault}) before retry ({retry}) before recovery ({recovered})"
    );
    assert_eq!(collector.counter_total("faults.injected"), 1);
    assert_eq!(collector.counter_total("source.retries"), 1);

    // Observation must not perturb the mine itself.
    let expect = hitset::mine(&series, 6, &config).unwrap();
    assert_bit_identical(&expect, &got);
}

/// The threat the storage checksums exist for: a bit flip *past* the
/// checksum layer is silent — the scan succeeds and the damage shows up
/// only as different mining output. This documents why `FileSource`
/// re-verifies its trailer on every scan.
#[test]
fn silent_bit_flips_change_results_without_an_error() {
    let series = busy_series(600);
    let config = MineConfig::new(0.5).unwrap();
    let expect = hitset::mine(&series, 6, &config).unwrap();

    // Flip a bit in an instant that carries the planted pattern letter.
    let plan = FaultPlan::new()
        .fail_scan(0, Fault::BitFlip { instant: 0 })
        .fail_scan(1, Fault::BitFlip { instant: 0 });
    let mut src = FaultInjectingSource::new(MemorySource::new(&series), plan);
    let got = mine_hitset_streaming(&mut src, 6, &config).unwrap();

    assert_eq!(src.faults_injected(), 2);
    // The run "succeeds" — that is exactly the problem.
    assert!(
        got.frequent != expect.frequent || got.stats != expect.stats,
        "corruption must be observable in the output"
    );
}

/// Bit-flip fuzz over a whole `.ppmstream` file: every single-bit
/// corruption is either rejected with a typed error at open/materialize
/// time or provably harmless — when the scan succeeds, the series read
/// back must equal the original instant for instant. (Feature *names* in
/// the catalog are the only payload bytes the record and trailer
/// checksums do not cover, and they cannot change which ids each instant
/// carries.) Never a panic, never silently different data.
#[test]
fn stream_bit_flip_fuzz_is_rejected_or_harmless() {
    let series = busy_series(48);
    let path = temp("bitflip");
    StreamWriter::create(&path, &FeatureCatalog::new())
        .and_then(|w| w.write_series(&series))
        .unwrap();
    let pristine = std::fs::read(&path).unwrap();

    let mut rejected = 0usize;
    let mut survived = 0usize;
    for pos in 0..pristine.len() {
        for mask in [0x01u8, 0x80] {
            let mut bytes = pristine.clone();
            bytes[pos] ^= mask;
            std::fs::write(&path, &bytes).unwrap();
            match FileSource::open(&path).and_then(|s| s.materialize()) {
                Err(_) => rejected += 1,
                Ok(read_back) => {
                    survived += 1;
                    assert_eq!(
                        read_back, series,
                        "byte {pos} mask {mask:#04x} changed the data without an error"
                    );
                }
            }
        }
    }
    assert!(
        rejected > survived,
        "checksums should reject most flips ({rejected} rejected, {survived} survived)"
    );
    std::fs::remove_file(path).ok();
}

/// Truncation fuzz: every prefix of a `.ppmstream` file either fails with
/// a typed error (the trailer is gone, so a full-integrity open must
/// refuse) — or is the intact whole file. Salvage, by contrast, recovers
/// exactly the valid record prefix from any cut point past the catalog.
#[test]
fn stream_truncation_fuzz_salvages_a_true_prefix() {
    use partial_periodic::timeseries::storage::stream::salvage_series;

    let series = busy_series(48);
    let path = temp("truncate");
    StreamWriter::create(&path, &FeatureCatalog::new())
        .and_then(|w| w.write_series(&series))
        .unwrap();
    let pristine = std::fs::read(&path).unwrap();

    for cut in 0..pristine.len() {
        std::fs::write(&path, &pristine[..cut]).unwrap();

        // A full-integrity open must never accept a truncated file.
        assert!(
            FileSource::open(&path)
                .and_then(|s| s.materialize())
                .is_err(),
            "cut at {cut}/{} accepted",
            pristine.len()
        );

        // Salvage never panics; whatever it recovers is a true prefix.
        if let Ok((recovered, _, report)) = salvage_series(&path) {
            assert!(recovered.len() <= series.len(), "cut {cut}");
            for t in 0..recovered.len() {
                assert_eq!(
                    recovered.instant(t),
                    series.instant(t),
                    "cut {cut}: salvaged instant {t} differs from the original"
                );
            }
            assert_eq!(report.recovered_instants, recovered.len());
        }
    }
    std::fs::remove_file(path).ok();
}
