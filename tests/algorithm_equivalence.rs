//! Cross-algorithm equivalence: Apriori (Alg 3.1), the max-subpattern
//! hit-set method (Alg 3.2), multi-period looping (Alg 3.3) and shared
//! mining (Alg 3.4) must all report exactly the same frequent patterns with
//! exactly the same counts — and those counts must agree with brute-force
//! segment matching and brute-force subset enumeration.

#[cfg(feature = "property-tests")]
use proptest::prelude::*;

#[cfg(feature = "property-tests")]
use partial_periodic::core::hitset::derive::CountStrategy;
#[cfg(feature = "property-tests")]
use partial_periodic::core::LetterSet;
#[cfg(feature = "property-tests")]
use partial_periodic::multi::{mine_periods_looping, mine_periods_shared, PeriodRange};
use partial_periodic::{apriori, hitset, FeatureCatalog, MineConfig, SeriesBuilder};
#[cfg(feature = "property-tests")]
use partial_periodic::{Algorithm, FeatureId};

#[cfg(feature = "property-tests")]
fn build_series(instants: &[Vec<u8>]) -> partial_periodic::FeatureSeries {
    let mut b = SeriesBuilder::new();
    for inst in instants {
        b.push_instant(inst.iter().map(|&f| FeatureId::from_raw(f as u32)));
    }
    b.finish()
}

/// Instants of 0..=3 features drawn from a 5-feature vocabulary.
#[cfg(feature = "property-tests")]
fn series_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(0u8..5, 0..4), 16..90)
}

#[cfg(feature = "property-tests")]
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn apriori_equals_hitset(
        instants in series_strategy(),
        period in 2usize..8,
        conf_pct in prop::sample::select(vec![25u32, 40, 60, 80, 100]),
    ) {
        prop_assume!(instants.len() >= period);
        let series = build_series(&instants);
        let config = MineConfig::new(conf_pct as f64 / 100.0).unwrap();
        let a = apriori::mine(&series, period, &config).unwrap();
        let h = hitset::mine(&series, period, &config).unwrap();
        prop_assert_eq!(&a.frequent, &h.frequent);
        prop_assert_eq!(a.segment_count, h.segment_count);
        prop_assert_eq!(a.min_count, h.min_count);
        // The hit-set method always takes exactly 2 scans.
        prop_assert_eq!(h.stats.series_scans, 2);
    }

    #[test]
    fn both_counting_strategies_agree(
        instants in series_strategy(),
        period in 2usize..7,
    ) {
        prop_assume!(instants.len() >= period);
        let series = build_series(&instants);
        let config = MineConfig::new(0.3).unwrap();
        let walk =
            hitset::mine_with_strategy(&series, period, &config, CountStrategy::TreeWalk)
                .unwrap();
        let linear =
            hitset::mine_with_strategy(&series, period, &config, CountStrategy::LinearScan)
                .unwrap();
        prop_assert_eq!(walk.frequent, linear.frequent);
    }

    #[test]
    fn counts_match_brute_force_matching(
        instants in series_strategy(),
        period in 2usize..6,
    ) {
        prop_assume!(instants.len() >= period);
        let series = build_series(&instants);
        let config = MineConfig::new(0.4).unwrap();
        let result = hitset::mine(&series, period, &config).unwrap();
        let segments = series.segments(period).unwrap();
        for (pattern, count, _) in result.patterns() {
            let brute =
                segments.iter().filter(|s| pattern.matches_segment(s)).count() as u64;
            prop_assert_eq!(count, brute);
        }
    }

    #[test]
    fn result_is_complete_over_the_alphabet(
        instants in series_strategy(),
        period in 2usize..5,
    ) {
        // Enumerate *every* subset of the frequent-letter alphabet (the
        // alphabet is small for these inputs) and check that exactly the
        // threshold-meeting subsets are reported.
        prop_assume!(instants.len() >= period);
        let series = build_series(&instants);
        let config = MineConfig::new(0.5).unwrap();
        let result = hitset::mine(&series, period, &config).unwrap();
        let n = result.alphabet.len();
        prop_assume!(n <= 12);
        let segments = series.segments(period).unwrap();

        use std::collections::HashMap;
        let reported: HashMap<Vec<usize>, u64> = result
            .frequent
            .iter()
            .map(|fp| (fp.letters.iter().collect(), fp.count))
            .collect();

        for mask in 1u32..(1u32 << n) {
            let letters: Vec<usize> = (0..n).filter(|i| mask & (1 << i) != 0).collect();
            let set = LetterSet::from_indices(n, letters.iter().copied());
            let pattern = partial_periodic::Pattern::from_letter_set(&result.alphabet, &set);
            let brute =
                segments.iter().filter(|s| pattern.matches_segment(s)).count() as u64;
            let frequent = brute >= result.min_count;
            match reported.get(&letters) {
                Some(&count) => {
                    prop_assert!(frequent, "infrequent pattern reported: {letters:?}");
                    prop_assert_eq!(count, brute);
                }
                None => prop_assert!(
                    !frequent,
                    "missing frequent pattern {letters:?} (count {brute} >= {})",
                    result.min_count
                ),
            }
        }
    }

    #[test]
    fn shared_equals_looping(
        instants in series_strategy(),
        lo in 2usize..5,
        span in 0usize..4,
    ) {
        let hi = lo + span;
        prop_assume!(instants.len() >= hi);
        let series = build_series(&instants);
        let range = PeriodRange::new(lo, hi).unwrap();
        let config = MineConfig::new(0.5).unwrap();
        let shared = mine_periods_shared(&series, range, &config).unwrap();
        let looped =
            mine_periods_looping(&series, range, &config, Algorithm::HitSet).unwrap();
        prop_assert_eq!(shared.results.len(), looped.results.len());
        for (s, l) in shared.results.iter().zip(&looped.results) {
            prop_assert_eq!(s.period, l.period);
            prop_assert_eq!(&s.frequent, &l.frequent);
        }
        prop_assert_eq!(shared.total_scans, 2);
    }
}

#[test]
fn algorithms_agree_on_the_paper_example() {
    let mut cat = FeatureCatalog::new();
    let a = cat.intern("a");
    let b = cat.intern("b");
    let c = cat.intern("c");
    let e = cat.intern("e");
    let d = cat.intern("d");
    let mut builder = SeriesBuilder::new();
    for inst in [
        vec![a],
        vec![b, c],
        vec![b],
        vec![a],
        vec![e],
        vec![b],
        vec![a],
        vec![c],
        vec![e],
        vec![d],
    ] {
        builder.push_instant(inst);
    }
    let series = builder.finish();
    let config = MineConfig::new(0.6).unwrap();
    let ap = apriori::mine(&series, 3, &config).unwrap();
    let hs = hitset::mine(&series, 3, &config).unwrap();
    assert_eq!(ap.frequent, hs.frequent);
    assert_eq!(hs.len(), 5); // a**, *c*, **b, a*b, ac*
}
