//! End-to-end pipelines: generate → (store → load) → mine → verify the
//! planted ground truth is recovered.

use partial_periodic::core::scan_frequent_letters;
use partial_periodic::datagen::workloads::{activity, stock};
use partial_periodic::timeseries::{discretize, storage};
use partial_periodic::{hitset, FeatureCatalog, MineConfig, SyntheticSpec};

/// The synthetic generator's contract: mining at the recommended threshold
/// recovers exactly |F1| frequent letters and MAX-PAT-LENGTH as the longest
/// frequent pattern.
#[test]
fn synthetic_ground_truth_is_recovered() {
    for (len, period, max_pat, f1) in [(6_000, 20, 4, 8), (10_000, 50, 6, 12), (4_000, 10, 2, 6)] {
        let spec = SyntheticSpec::table1(len, period, max_pat, f1);
        let g = spec.generate();
        let config = MineConfig::new(spec.recommended_min_conf()).unwrap();
        let result = hitset::mine(&g.series, period, &config).unwrap();
        assert_eq!(
            result.alphabet.len(),
            f1,
            "|F1| mismatch for spec ({len},{period},{max_pat},{f1})"
        );
        assert_eq!(
            result.max_l_length(),
            max_pat,
            "MAX-PAT-LENGTH mismatch for spec ({len},{period},{max_pat},{f1})"
        );
        // The planted letters are exactly the mined alphabet.
        let mined: Vec<(usize, _)> = (0..result.alphabet.len())
            .map(|i| result.alphabet.letter(i))
            .collect();
        assert_eq!(mined, g.planted_letters());
        // The backbone is frequent as a whole.
        let backbone_set = partial_periodic::core::LetterSet::from_indices(
            result.alphabet.len(),
            g.backbone
                .iter()
                .map(|&(o, f)| result.alphabet.index_of(o, f).expect("backbone letter")),
        );
        assert!(
            result.frequent.iter().any(|fp| fp.letters == backbone_set),
            "backbone pattern not frequent"
        );
    }
}

/// Mining results survive a disk round trip of the series.
#[test]
fn storage_round_trip_preserves_mining() {
    let spec = SyntheticSpec::table1(3_000, 15, 3, 6);
    let g = spec.generate();
    let config = MineConfig::new(0.6).unwrap();
    let before = hitset::mine(&g.series, 15, &config).unwrap();

    let dir = std::env::temp_dir().join(format!("ppm-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("series.ppms");
    storage::write_series(&path, &g.series, &g.catalog).unwrap();
    let (loaded, catalog2) = storage::read_series(&path).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(loaded, g.series);
    assert_eq!(catalog2.len(), g.catalog.len());
    let after = hitset::mine(&loaded, 15, &config).unwrap();
    assert_eq!(before.frequent, after.frequent);
}

/// The text format round-trips small series through human-readable form.
#[test]
fn text_format_round_trip() {
    let mut catalog = FeatureCatalog::new();
    let series = activity::generate(
        2,
        &[activity::Habit::weekdays("coffee", 7, 1.0)],
        3,
        0.2,
        5,
        &mut catalog,
    );
    let text = storage::render_series(&series, &catalog);
    let mut catalog2 = FeatureCatalog::new();
    let parsed = storage::parse_series(&text, &mut catalog2).unwrap();
    assert_eq!(parsed.len(), series.len());
    // Feature ids may be renumbered by the re-parse (interning order
    // follows first appearance), so compare instants by *name sets*.
    for t in 0..series.len() {
        let mut before: Vec<&str> = series
            .instant(t)
            .iter()
            .map(|&f| catalog.name(f).unwrap())
            .collect();
        let mut after: Vec<&str> = parsed
            .instant(t)
            .iter()
            .map(|&f| catalog2.name(f).unwrap())
            .collect();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after, "instant {t}");
    }
}

/// The Jim workload's habits surface as weekly frequent letters.
#[test]
fn jim_habits_become_weekly_letters() {
    let mut catalog = FeatureCatalog::new();
    let series = activity::generate(80, &activity::jim_schedule(), 20, 0.3, 11, &mut catalog);
    let config = MineConfig::new(0.5).unwrap();
    let scan = scan_frequent_letters(&series, activity::WEEK, &config).unwrap();
    let paper = catalog.get("read-vancouver-sun").unwrap();
    // The newspaper habit: 5 weekday letters at hour 7.
    let paper_letters = (0..scan.alphabet.len())
        .map(|i| scan.alphabet.letter(i))
        .filter(|&(o, f)| f == paper && o % 24 == 7)
        .count();
    assert_eq!(paper_letters, 5);
    // Saturday groceries at 10:00 (reliability 0.8 ≥ 0.5): offset day 5.
    let grocery = catalog.get("grocery-run").unwrap();
    assert!(scan.alphabet.index_of(5 * 24 + 10, grocery).is_some());
    // Nothing on Sundays at 7:00.
    assert!(scan.alphabet.letters_at(6 * 24 + 7).is_empty());
}

/// Stock movements: discretization via movement features plus mining finds
/// the planted weekly drift.
#[test]
fn stock_drift_is_mined_at_period_five() {
    let prices = stock::prices(2_000, 100.0, stock::weekly_profile(), 7);
    let mut catalog = FeatureCatalog::new();
    let series = stock::movements(&prices, 0.004, &mut catalog);
    let result = hitset::mine(&series, 5, &MineConfig::new(0.7).unwrap()).unwrap();
    let mut cat2 = catalog.clone();
    let pattern = partial_periodic::Pattern::parse("up * * * down", &mut cat2).unwrap();
    let count = result
        .count_of(&pattern)
        .expect("up-Monday/down-Friday frequent");
    assert!(count as f64 / result.segment_count as f64 > 0.7);
}

/// Numeric discretization end to end: equal-width bands over a sinusoid
/// make the trough band perfectly periodic.
#[test]
fn discretized_sinusoid_is_periodic() {
    let values: Vec<f64> = (0..2_400)
        .map(|t| ((t % 24) as f64 / 24.0 * std::f64::consts::TAU).sin())
        .collect();
    let mut catalog = FeatureCatalog::new();
    let d = discretize::Discretizer::equal_width("s", &values, 4).unwrap();
    let series = d.apply(&values, &mut catalog);
    // Every hour maps to a fixed band -> 24 perfect letters. The full
    // frequent set would be all 2^24 subsets, so mine only the maximal
    // pattern: MaxMiner's look-ahead collapses it in one probe.
    let result =
        partial_periodic::maximal::mine_maximal(&series, 24, &MineConfig::new(1.0).unwrap())
            .unwrap();
    assert_eq!(result.alphabet.len(), 24);
    assert_eq!(result.maximal.len(), 1);
    assert_eq!(result.maximal[0].letters.len(), 24);
    assert_eq!(result.maximal[0].count, result.segment_count as u64);
}
