//! Fidelity to the paper's worked examples and stated properties.

use partial_periodic::core::hitset::MaxSubpatternTree;
use partial_periodic::core::{hit_set_bound, Alphabet, LetterSet};
use partial_periodic::{hitset, FeatureCatalog, FeatureId, MineConfig, Pattern, SeriesBuilder};

fn fid(i: u32) -> FeatureId {
    FeatureId::from_raw(i)
}

/// §2 Example 2.1: the frequency count of a*b in "a{b,c}b aeb ace d" (period
/// 3) is 2, its confidence 2/3; the frequency of a** is 3.
#[test]
fn example_2_1_counts_and_confidence() {
    let mut cat = FeatureCatalog::new();
    let a = cat.intern("a");
    let b = cat.intern("b");
    let c = cat.intern("c");
    let e = cat.intern("e");
    let d = cat.intern("d");
    let mut builder = SeriesBuilder::new();
    for inst in [
        vec![a],
        vec![b, c],
        vec![b],
        vec![a],
        vec![e],
        vec![b],
        vec![a],
        vec![c],
        vec![e],
        vec![d],
    ] {
        builder.push_instant(inst);
    }
    let series = builder.finish();
    let result = hitset::mine(&series, 3, &MineConfig::new(0.5).unwrap()).unwrap();
    assert_eq!(result.segment_count, 3);

    let a_star_b = Pattern::parse("a * b", &mut cat).unwrap();
    assert_eq!(result.count_of(&a_star_b), Some(2));
    let (_, _, conf) = result
        .patterns()
        .find(|(p, _, _)| *p == a_star_b)
        .expect("a*b frequent at 0.5");
    assert!((conf - 2.0 / 3.0).abs() < 1e-12);

    let a_star_star = Pattern::parse("a * *", &mut cat).unwrap();
    assert_eq!(result.count_of(&a_star_star), Some(3));
}

/// Property 3.1 (Apriori on periodicity): every subpattern of a frequent
/// pattern is frequent with count ≥ the superpattern's count.
#[test]
fn property_3_1_holds_on_mined_output() {
    let mut b = SeriesBuilder::new();
    let mut x: u64 = 17;
    for _ in 0..200 {
        let mut inst = Vec::new();
        for f in 0..4u32 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(99);
            if !(x >> 33).is_multiple_of(3) {
                inst.push(fid(f));
            }
        }
        b.push_instant(inst);
    }
    let series = b.finish();
    let result = hitset::mine(&series, 5, &MineConfig::new(0.3).unwrap()).unwrap();
    assert!(!result.is_empty());
    use std::collections::HashMap;
    let counts: HashMap<Vec<usize>, u64> = result
        .frequent
        .iter()
        .map(|fp| (fp.letters.iter().collect(), fp.count))
        .collect();
    for fp in &result.frequent {
        let letters: Vec<usize> = fp.letters.iter().collect();
        if letters.len() < 2 {
            continue;
        }
        for drop in 0..letters.len() {
            let sub: Vec<usize> = letters
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != drop)
                .map(|(_, &l)| l)
                .collect();
            let sub_count = counts
                .get(&sub)
                .unwrap_or_else(|| panic!("subpattern {sub:?} of frequent {letters:?} missing"));
            assert!(*sub_count >= fp.count);
        }
    }
}

/// The paper's §3.2 counter-example: for the series ababababab… of period
/// 2, "ab" is perfectly frequent, yet patterns of period 4 like ab** only
/// reach confidence ~1.0 as well — but the crucial published example is
/// f a b a b | a b a b with p=4 vs p=8: frequent patterns of period p are
/// NOT automatically frequent at period 2p for *partial* confidence
/// thresholds. We pin the concrete series from the paper: in
/// "ab ab ab ab ab" mined at period 2, {a@0, b@1} has confidence 1; at
/// period 4, the stretched pattern also holds — so instead we use the
/// paper's actual point: a pattern frequent at period p whose doubled form
/// fails, via a series alternating two segment flavours.
#[test]
fn apriori_does_not_transfer_across_periods() {
    // Segments of period 2: "ab" everywhere -> a@0 conf 1 at period 2.
    // Periods of length 4 see "abab" everywhere too, so to exhibit the
    // failure we alternate: ab cb ab cb … Now at period 2, offset 1 is
    // always b (conf 1). At period 4, offset 1 is b AND offset 3 is b
    // (conf 1 each) but offset 0 alternates a/c: a@0 has conf 1 at period
    // 2? No — a@0 at period 2 has conf 0.5. The real invariant worth
    // pinning: confidence at period 2p of the doubled pattern can differ
    // from the period-p confidence.
    let mut cat = FeatureCatalog::new();
    let a = cat.intern("a");
    let b = cat.intern("b");
    let c = cat.intern("c");
    let mut builder = SeriesBuilder::new();
    for j in 0..20 {
        builder.push_instant(if j % 2 == 0 { vec![a] } else { vec![c] });
        builder.push_instant([b]);
    }
    let series = builder.finish();

    // Period 2: *b has confidence 1.0.
    let p2 = hitset::mine(&series, 2, &MineConfig::new(0.9).unwrap()).unwrap();
    let star_b = Pattern::parse("* b", &mut cat).unwrap();
    assert_eq!(p2.count_of(&star_b), Some(20));

    // Period 4: a@0 is now perfectly periodic (conf 1.0) even though at
    // period 2 it only had confidence 0.5 — frequency at a larger period
    // does not imply frequency at a divisor period, and vice versa.
    let p4 = hitset::mine(&series, 4, &MineConfig::new(0.9).unwrap()).unwrap();
    let a_pat = Pattern::parse("a * * *", &mut cat).unwrap();
    assert_eq!(p4.count_of(&a_pat), Some(10));
    let a_at_2 = Pattern::parse("a *", &mut cat).unwrap();
    assert_eq!(p2.count_of(&a_at_2), None, "a@0 infrequent at period 2");
}

/// Property 3.2: |hit set| ≤ min(m, 2^|F1| − 1), exercised end to end on
/// series engineered to stress both arms of the bound.
#[test]
fn property_3_2_bound_binds() {
    // Arm 1: tiny F1 (3 letters) over many segments -> 2^3 - 1 = 7 binds.
    let mut b = SeriesBuilder::new();
    let mut x: u64 = 1;
    for _ in 0..3000 {
        let mut inst = Vec::new();
        for f in 0..3u32 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(7);
            if (x >> 33).is_multiple_of(2) {
                inst.push(fid(f));
            }
        }
        b.push_instant(inst);
    }
    let series = b.finish();
    let result = hitset::mine(&series, 3, &MineConfig::new(0.2).unwrap()).unwrap();
    let m = result.segment_count as u64;
    let f1 = result.alphabet.len() as u32;
    let bound = hit_set_bound(m, f1);
    assert!(bound < m, "combinatorial arm should bind");
    assert!((result.stats.distinct_hits as u64) <= bound);

    // Arm 2: few segments, larger alphabet -> m binds. 10 segments of
    // period 4 with 8 planted letters: bound = min(10, 255) = 10.
    let mut b2 = SeriesBuilder::new();
    for j in 0..10u32 {
        // Two features per offset, present in alternating halves of the
        // segments so every letter clears a 0.2 threshold.
        for o in 0..4u32 {
            if (j + o) % 2 == 0 {
                b2.push_instant([fid(o)]);
            } else {
                b2.push_instant([fid(4 + o)]);
            }
        }
    }
    let series2 = b2.finish();
    let result2 = hitset::mine(&series2, 4, &MineConfig::new(0.2).unwrap()).unwrap();
    assert_eq!(result2.segment_count, 10);
    assert_eq!(result2.alphabet.len(), 8);
    let bound2 = hit_set_bound(10, 8);
    assert_eq!(bound2, 10, "m should bind");
    assert!((result2.stats.distinct_hits as u64) <= bound2);
}

/// §3.1.2's worked buffer-size figures.
#[test]
fn buffer_size_worked_examples() {
    assert_eq!(hit_set_bound(100, 500), 100);
    assert_eq!(hit_set_bound(100, 8), 100); // m binds before 255 here
    assert_eq!(hit_set_bound(1000, 8), 255);
}

/// Figure 1 / Examples 4.2–4.3, end to end through the public tree API.
#[test]
fn figure_1_tree_and_derivation() {
    let set = |idx: &[usize]| LetterSet::from_indices(4, idx.iter().copied());
    let mut tree = MaxSubpatternTree::new(LetterSet::full(4));
    for (letters, count) in [
        (vec![0usize, 1, 2, 3], 10u64),
        (vec![1, 2, 3], 50),
        (vec![0, 1, 2], 40),
        (vec![0, 2, 3], 32),
        (vec![0, 1, 3], 0),
        (vec![1, 3], 8),
        (vec![2, 3], 0),
        (vec![1, 2], 19),
        (vec![0, 3], 5),
        (vec![0, 2], 2),
        (vec![0, 1], 18),
    ] {
        tree.insert_with_count(&set(&letters), count);
    }
    // Example 4.3's level-2 frequencies, and the min_count-45 frequent set.
    let freqs = [
        (vec![1usize, 3], 68u64),
        (vec![2, 3], 92),
        (vec![1, 2], 119),
        (vec![0, 3], 47),
        (vec![0, 2], 84),
        (vec![0, 1], 68),
    ];
    for (letters, expect) in &freqs {
        assert_eq!(tree.count_superpatterns_walk(&set(letters)), *expect);
    }
    assert!(
        freqs.iter().all(|(_, f)| *f >= 45),
        "all level-2 patterns frequent at 45"
    );
    // Level-1: only two survive (60 and 50); 42 and 10 fall short.
    assert_eq!(tree.count_superpatterns_walk(&set(&[1, 2, 3])), 60);
    assert_eq!(tree.count_superpatterns_walk(&set(&[0, 1, 2])), 50);
    assert_eq!(tree.count_superpatterns_walk(&set(&[0, 2, 3])), 42);
    assert_eq!(tree.count_superpatterns_walk(&set(&[0, 1, 3])), 10);
    // Root: 10 — infrequent at 45.
    assert_eq!(tree.count_superpatterns_walk(&LetterSet::full(4)), 10);
}

/// The letter alphabet uses (offset, feature) canonical order — the
/// missing-letter order the tree's insertion path depends on.
#[test]
fn alphabet_canonical_order_is_stable() {
    let alphabet = Alphabet::new(3, [(2, fid(0)), (0, fid(1)), (1, fid(5)), (1, fid(2))]);
    let order: Vec<(usize, FeatureId)> = (0..alphabet.len()).map(|i| alphabet.letter(i)).collect();
    assert_eq!(
        order,
        vec![(0, fid(1)), (1, fid(2)), (1, fid(5)), (2, fid(0))]
    );
}
