//! End-to-end observability: the instrumented miners emit a deterministic
//! event stream through whatever sink is installed, the JSON-lines schema
//! round-trips through the bundled parser, and — the property everything
//! else depends on — mining output is bit-identical whether or not a sink
//! is watching.

use std::sync::{Arc, Mutex};

use partial_periodic::observe::{self, Collector, Event, Json, JsonLinesSink, NoopSink};
use partial_periodic::{apriori, hitset, parallel, FeatureId, FeatureSeries, MineConfig};
use partial_periodic::{MiningResult, SeriesBuilder};

fn fid(i: u32) -> FeatureId {
    FeatureId::from_raw(i)
}

/// A fixed series with three planted period-6 letters of staggered
/// reliability plus deterministic pseudo-noise; 50 whole segments at
/// period 6. The stagger makes segments project onto *different*
/// subpatterns, so the max-subpattern tree grows real subpattern nodes.
fn fixed_series() -> FeatureSeries {
    let mut b = SeriesBuilder::new();
    let mut x = 7u64;
    for t in 0..300 {
        let mut feats = Vec::new();
        if t % 6 == 0 {
            feats.push(fid(0));
        }
        if t % 6 == 2 && (t / 6) % 4 != 0 {
            feats.push(fid(1));
        }
        if t % 6 == 4 && (t / 6) % 3 != 0 {
            feats.push(fid(2));
        }
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        if (x >> 33).is_multiple_of(3) {
            feats.push(fid(3));
        }
        b.push_instant(feats);
    }
    b.finish()
}

fn mine_collected(series: &FeatureSeries, config: &MineConfig) -> (MiningResult, Arc<Collector>) {
    let collector = Arc::new(Collector::new());
    let result = {
        let _guard = observe::install(collector.clone());
        hitset::mine(series, 6, config).unwrap()
    };
    (result, collector)
}

/// The hit-set miner completes its spans in a fixed order, and the batched
/// segment counter adds up to exactly `m`. Two runs over the same data
/// produce the same span sequence — the stream is deterministic.
#[test]
fn hitset_spans_and_counters_are_deterministic() {
    let series = fixed_series();
    let config = MineConfig::new(0.5).unwrap();
    let (result, collector) = mine_collected(&series, &config);

    assert_eq!(
        collector.finished_span_names(),
        vec![
            "hitset.scan1",
            "hitset.scan2",
            "hitset.derive",
            "hitset.mine"
        ],
        "spans complete innermost-first, in phase order"
    );
    let m = result.segment_count as u64;
    assert_eq!(collector.counter_total("hitset.segments"), m);
    assert_eq!(
        collector.gauge_maxima().get("hitset.segments_total"),
        Some(&m)
    );
    assert_eq!(
        collector.gauge_maxima().get("tree.nodes"),
        Some(&(result.stats.tree_nodes as u64))
    );
    assert_eq!(
        collector.gauge_maxima().get("tree.distinct_hits"),
        Some(&(result.stats.distinct_hits as u64))
    );

    // Sequence numbers are strictly increasing; a rerun repeats the exact
    // event names in the exact order.
    let events = collector.events();
    assert!(events.windows(2).all(|w| w[0].seq() < w[1].seq()));
    let (_, again) = mine_collected(&series, &config);
    let names = |c: &Collector| c.events().iter().map(Event::name).collect::<Vec<_>>();
    assert_eq!(names(&collector), names(&again));
}

/// Apriori emits one `apriori.level` span per level and its candidate
/// counter matches the miner's own statistics.
#[test]
fn apriori_levels_match_stats() {
    let series = fixed_series();
    let config = MineConfig::new(0.5).unwrap();
    let collector = Arc::new(Collector::new());
    let result = {
        let _guard = observe::install(collector.clone());
        apriori::mine(&series, 6, &config).unwrap()
    };
    let levels = collector
        .finished_span_names()
        .iter()
        .filter(|n| **n == "apriori.level")
        .count();
    // One span per counted level; level 1 is scan 1, so max_level - 1.
    assert_eq!(levels, result.stats.max_level - 1, "{levels} level spans");
    assert_eq!(
        collector.counter_total("apriori.candidates"),
        result.stats.candidates_generated
    );
}

/// Worker spans in the parallel miner are parented under the coordinator's
/// scan spans even though they run on other threads, and the segment
/// counter still totals exactly `m` (not once per scan).
#[test]
fn parallel_worker_spans_nest_under_the_coordinator() {
    let series = fixed_series();
    let config = MineConfig::new(0.5).unwrap();
    let collector = Arc::new(Collector::new());
    let result = {
        let _guard = observe::install(collector.clone());
        parallel::mine_parallel(&series, 6, &config, 3).unwrap()
    };
    let events = collector.events();
    let span_id = |name: &str| {
        events
            .iter()
            .find_map(|e| match e {
                Event::SpanStart { id, name: n, .. } if *n == name => Some(*id),
                _ => None,
            })
            .unwrap_or_else(|| panic!("no {name} span"))
    };
    let scan2 = span_id("parallel.scan2");
    let workers: Vec<Option<u64>> = events
        .iter()
        .filter_map(|e| match e {
            Event::SpanStart {
                parent,
                name: "parallel.worker.scan2",
                ..
            } => Some(*parent),
            _ => None,
        })
        .collect();
    assert_eq!(workers.len(), 3);
    assert!(
        workers.iter().all(|p| *p == Some(scan2)),
        "workers must be parented under parallel.scan2: {workers:?}"
    );
    assert_eq!(
        collector.counter_total("hitset.segments"),
        result.segment_count as u64
    );
}

/// A tree-budget abort surfaces as a structured guard event.
#[test]
fn guard_abort_emits_a_structured_event() {
    let series = fixed_series();
    let config = MineConfig::new(0.5).unwrap().with_max_tree_nodes(1);
    let collector = Arc::new(Collector::new());
    let err = {
        let _guard = observe::install(collector.clone());
        hitset::mine(&series, 6, &config).unwrap_err()
    };
    assert!(err.partial_stats().is_some(), "{err}");
    let marks = collector.marks();
    assert!(
        marks
            .iter()
            .any(|(name, _)| *name == "guard.tree_budget_exceeded"),
        "{marks:?}"
    );
}

/// Every line the JSON sink writes parses with the bundled parser, carries
/// the common schema fields, and keeps sequence numbers strictly
/// increasing.
#[test]
fn json_lines_schema_round_trips() {
    #[derive(Clone, Default)]
    struct Buf(Arc<Mutex<Vec<u8>>>);
    impl std::io::Write for Buf {
        fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(b);
            Ok(b.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let series = fixed_series();
    let buf = Buf::default();
    let sink = Arc::new(JsonLinesSink::new(Box::new(buf.clone())));
    {
        let _guard = observe::install(sink.clone());
        hitset::mine(&series, 6, &MineConfig::new(0.5).unwrap()).unwrap();
    }
    assert!(!sink.take_write_error());

    let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    let mut last_seq = 0u64;
    let mut types = std::collections::BTreeSet::new();
    for line in text.lines() {
        let doc = Json::parse(line).unwrap_or_else(|e| panic!("{e} in {line}"));
        let ty = doc.get("type").and_then(Json::as_str).unwrap().to_owned();
        for key in ["seq", "us"] {
            assert!(doc.get(key).and_then(Json::as_u64).is_some(), "{line}");
        }
        assert!(doc.get("name").and_then(Json::as_str).is_some(), "{line}");
        if ty.starts_with("span") {
            assert!(doc.get("id").and_then(Json::as_u64).is_some(), "{line}");
        }
        if ty == "span_end" {
            assert!(doc.get("elapsed_us").and_then(Json::as_u64).is_some());
        }
        let seq = doc.get("seq").unwrap().as_u64().unwrap();
        assert!(seq > last_seq, "sequence must increase: {line}");
        last_seq = seq;
        types.insert(ty);
    }
    assert!(types.contains("span_start") && types.contains("span_end"));
    assert!(types.contains("gauge"));
    // Counters are aggregated by the JSON sink, not streamed per event.
    assert!(!types.contains("counter"));
    let totals = sink.counter_totals();
    assert!(totals.iter().any(|(n, _)| *n == "hitset.segments"));
}

/// A deterministic LCG stream — the repo's stand-in for a property-test
/// generator (the workspace is dependency-free; no proptest).
fn lcg_stream(seed: u64, len: usize, span: u64) -> Vec<u64> {
    let mut x = seed;
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 11) % span
        })
        .collect()
}

/// Merging histograms is associative and order-independent: any grouping
/// of per-worker histograms collapses to the same totals as recording
/// every sample into one. This is what makes the scheduler's per-worker
/// recording trustworthy.
#[test]
fn histogram_merge_is_associative() {
    use partial_periodic::observe::Histogram;

    let samples = lcg_stream(42, 3_000, 50_000_000);
    let chunks: Vec<&[u64]> = samples.chunks(samples.len() / 4).collect();
    let record_all = |vals: &[&[u64]]| {
        let mut h = Histogram::with_default_precision();
        for chunk in vals {
            for &v in *chunk {
                h.record(v);
            }
        }
        h
    };
    let one = record_all(&chunks);

    // ((a+b)+(c+d)) and (a+(b+(c+d))) and reversed order, all equal.
    let part: Vec<Histogram> = chunks
        .iter()
        .map(|c| {
            let mut h = Histogram::with_default_precision();
            for &v in *c {
                h.record(v);
            }
            h
        })
        .collect();
    let mut left = part[0].clone();
    left.merge(&part[1]);
    let mut right = part[2].clone();
    right.merge(&part[3]);
    left.merge(&right);

    let mut nested = part[3].clone();
    nested.merge(&part[2]);
    nested.merge(&part[1]);
    nested.merge(&part[0]);

    for merged in [&left, &nested] {
        assert_eq!(merged.count(), one.count());
        assert_eq!(merged.sum(), one.sum());
        assert_eq!(merged.max(), one.max());
        assert_eq!(merged.min(), one.min());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(merged.value_at_quantile(q), one.value_at_quantile(q), "{q}");
        }
    }
}

/// Quantiles never decrease as q grows, and the extremes are exact: q→0
/// touches the recorded minimum's bucket, q=1 is the exact maximum.
#[test]
fn histogram_quantiles_are_monotone() {
    use partial_periodic::observe::Histogram;

    let mut h = Histogram::with_default_precision();
    let samples = lcg_stream(7, 5_000, 10_000_000);
    for &v in &samples {
        h.record(v);
    }
    let mut last = 0u64;
    for i in 0..=100 {
        let q = i as f64 / 100.0;
        let v = h.value_at_quantile(q);
        assert!(v >= last, "quantile dipped at q={q}: {v} < {last}");
        last = v;
    }
    assert_eq!(h.value_at_quantile(1.0), *samples.iter().max().unwrap());
}

/// Every reported quantile sits within the histogram's advertised relative
/// error of a true (sorted-array) percentile — the bucket-bound guarantee
/// that makes the serve dashboards honest.
#[test]
fn histogram_error_stays_within_advertised_precision() {
    use partial_periodic::observe::Histogram;

    for grid_bits in [2, 5, 10] {
        let mut h = Histogram::new(grid_bits);
        let mut sorted = lcg_stream(99, 4_000, 1_000_000_000);
        for &v in &sorted {
            h.record(v);
        }
        sorted.sort_unstable();
        for q in [0.01, 0.10, 0.50, 0.90, 0.99] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1] as f64;
            let approx = h.value_at_quantile(q) as f64;
            let bound = exact * h.relative_error() + 1.0;
            assert!(
                (approx - exact).abs() <= bound,
                "grid {grid_bits} q={q}: approx {approx} vs exact {exact} (bound {bound})"
            );
        }
    }
}

/// Control characters in strings — panic payloads, store names — must
/// escape to `\uXXXX` so access-log and flight-dump lines stay one line
/// of valid JSON each, and round-trip through the bundled parser.
#[test]
fn json_escaping_handles_control_characters() {
    use partial_periodic::observe::json::escape;

    // `escape` yields the full string literal, surrounding quotes included.
    assert_eq!(escape("plain"), "\"plain\"");
    assert_eq!(escape("a\"b\\c"), "\"a\\\"b\\\\c\"");
    assert_eq!(
        escape("line\nbreak\ttab\rret"),
        "\"line\\nbreak\\ttab\\rret\""
    );
    for c in (0u8..0x20).map(char::from) {
        let escaped = escape(&c.to_string());
        assert!(
            !escaped.chars().any(|e| (e as u32) < 0x20),
            "control char {:#04x} leaked through: {escaped:?}",
            c as u32
        );
        let line = format!("{{\"s\":{escaped}}}");
        let doc = Json::parse(&line).unwrap_or_else(|e| panic!("{e} in {line}"));
        assert_eq!(doc.get("s").unwrap().as_str(), Some(c.to_string().as_str()));
    }
    // Multi-byte text passes through untouched.
    let doc = Json::parse(&format!("{{\"s\":{}}}", escape("héllo ∀x"))).unwrap();
    assert_eq!(doc.get("s").unwrap().as_str(), Some("héllo ∀x"));
}

/// The load-bearing guarantee: results are bit-identical with no sink, the
/// no-op sink, and a collecting sink.
#[test]
fn mining_is_bit_identical_with_observability_on_and_off() {
    let series = fixed_series();
    let config = MineConfig::new(0.5).unwrap();
    let bare = hitset::mine(&series, 6, &config).unwrap();
    let noop = {
        let _guard = observe::install(Arc::new(NoopSink));
        hitset::mine(&series, 6, &config).unwrap()
    };
    let collected = {
        let _guard = observe::install(Arc::new(Collector::new()));
        hitset::mine(&series, 6, &config).unwrap()
    };
    for other in [&noop, &collected] {
        assert_eq!(bare.frequent, other.frequent);
        assert_eq!(bare.alphabet, other.alphabet);
        assert_eq!(bare.stats, other.stats, "stats must not change either");
    }
    assert!(!observe::is_active(), "guards must uninstall on drop");
}
