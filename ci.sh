#!/usr/bin/env bash
# Local CI: formatting, lints, and the tier-1 verify.
# Everything here runs offline against the vendored workspace.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: release build"
cargo build --release

echo "==> release build, all crates (the ppm binary lives in ppm-cli)"
cargo build --release --workspace

echo "==> tier-1: test suite"
cargo test -q

echo "==> workspace test suite (all crates)"
cargo test --workspace -q

echo "CI green."
