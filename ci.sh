#!/usr/bin/env bash
# Local CI: formatting, lints, and the tier-1 verify.
# Everything here runs offline against the vendored workspace.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: release build"
cargo build --release

echo "==> release build, all crates (the ppm binary lives in ppm-cli)"
cargo build --release --workspace

echo "==> tier-1: test suite"
cargo test -q

echo "==> workspace test suite (all crates)"
cargo test --workspace -q

echo "==> observability smoke: mine --trace --metrics-out on a generated dataset"
# Hermetic: everything lands in a temp dir that is removed on exit. The
# emitted JSON-lines schema itself is validated by the repo's own parser in
# the ppm-cli test `metrics_out_writes_parseable_summary`; this step checks
# the shipped binary end to end.
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
./target/release/ppm generate --length 3000 --period 25 --max-pat-length 4 \
  --f1 8 --seed 7 --out "$smoke_dir/smoke.ppms"
./target/release/ppm mine --input "$smoke_dir/smoke.ppms" --period 25 \
  --min-conf 0.6 --trace --metrics-out "$smoke_dir/metrics.json" \
  >"$smoke_dir/stdout.log" 2>"$smoke_dir/trace.log"
grep -q "frequent patterns" "$smoke_dir/stdout.log"
test -s "$smoke_dir/trace.log"   # --trace wrote the span tree to stderr
grep -q '"type":"summary"' "$smoke_dir/metrics.json"
grep -q '"mining_stats"' "$smoke_dir/metrics.json"
./target/release/ppm info --input "$smoke_dir/smoke.ppms" --period 25 \
  | grep -q "hit-set bound"

echo "==> verification smoke: audit, verify, quarantine, checkpoint integrity"
# Honest runs audit clean on every engine; the cross-check diffs all four.
for alg in hitset apriori parallel vertical; do
  ./target/release/ppm mine --input "$smoke_dir/smoke.ppms" --period 25 \
    --min-conf 0.6 --engine "$alg" --audit full \
    | grep -q "audit: clean"
done
# An exported result file re-verifies against its series.
./target/release/ppm mine --input "$smoke_dir/smoke.ppms" --period 25 \
  --min-conf 0.6 --tsv >"$smoke_dir/patterns.tsv"
./target/release/ppm verify --input "$smoke_dir/smoke.ppms" \
  --patterns "$smoke_dir/patterns.tsv" --period 25 --min-conf 0.6 \
  | grep -q "verify: clean"
# A deliberately perturbed count must fail the audit with a non-zero exit.
if ./target/release/ppm mine --input "$smoke_dir/smoke.ppms" --period 25 \
  --min-conf 0.6 --audit --perturb-count 0 >"$smoke_dir/perturb.log" 2>&1; then
  echo "perturbed mine was not caught by the audit" >&2; exit 1
fi
grep -q "count mismatch" "$smoke_dir/perturb.log"
# Quarantine skips injected garbage and keeps mining; exit code 4 marks
# the printed counts as sound lower bounds. Strict fails fast instead.
# (Capture to a file: the quarantine report prints before mining, so a
# `grep -q` pipe would close early and EPIPE the miner under pipefail.)
quarantine_status=0
./target/release/ppm mine --input "$smoke_dir/smoke.ppms" --period 25 \
  --min-conf 0.6 --quarantine --inject-garbage 3 \
  >"$smoke_dir/quarantine.log" || quarantine_status=$?
test "$quarantine_status" -eq 4
grep -q "quarantined 1 instants" "$smoke_dir/quarantine.log"
if ./target/release/ppm mine --input "$smoke_dir/smoke.ppms" --period 25 \
  --min-conf 0.6 --strict --inject-garbage 3 >/dev/null 2>&1; then
  echo "strict mode accepted garbage input" >&2; exit 1
fi
# A corrupted sweep checkpoint is rejected, not silently resumed.
./target/release/ppm sweep --input "$smoke_dir/smoke.ppms" --from 24 --to 26 \
  --min-conf 0.6 --checkpoint "$smoke_dir/sweep.ckpt" >/dev/null
sed -i 's/^period 24 /period 99 /' "$smoke_dir/sweep.ckpt"  # edit a row body; its checksum now lies
if ./target/release/ppm sweep --input "$smoke_dir/smoke.ppms" --from 24 --to 26 \
  --min-conf 0.6 --checkpoint "$smoke_dir/sweep.ckpt" >/dev/null 2>"$smoke_dir/ckpt.log"; then
  echo "corrupted checkpoint was accepted" >&2; exit 1
fi
grep -qi "checksum" "$smoke_dir/ckpt.log"

echo "==> perf smoke: vertical derivation vs the tree walk (BENCH_PR4.json)"
# Capture the committed baseline before this run overwrites it: the PR5
# step gates the fresh vertical derive time against it (>20% = regression).
committed_vertical_us=""
if [ -f BENCH_PR4.json ]; then
  committed_vertical_us="$(grep -o '"vertical_us":[0-9]*' BENCH_PR4.json | cut -d: -f2)"
fi
# A dense E7-style workload (long patterns, big F1) where derivation
# dominates: the sweep mines every period vertically, races each against
# the tree walk (--compare-tree fails on any disagreement), and the bench
# report records the head-to-head. The committed BENCH_PR4.json is this
# step's artifact; regenerate it by re-running ci.sh.
./target/release/ppm generate --length 60000 --period 30 --max-pat-length 12 \
  --f1 24 --seed 11 --out "$smoke_dir/dense.ppms"
(cd "$smoke_dir" && "$OLDPWD/target/release/ppm" sweep --input dense.ppms \
  --from 28 --to 32 --min-conf 0.35 --engine vertical --compare-tree \
  --bench-report PR4 >sweep.log)
grep -q "tree cross-checked" "$smoke_dir/sweep.log"
vertical_us="$(grep -o '"vertical_us":[0-9]*' "$smoke_dir/BENCH_PR4.json" | cut -d: -f2)"
treewalk_us="$(grep -o '"treewalk_us":[0-9]*' "$smoke_dir/BENCH_PR4.json" | cut -d: -f2)"
echo "    derive wall-clock: vertical ${vertical_us}us vs tree walk ${treewalk_us}us"
if [ "$treewalk_us" -le "$vertical_us" ]; then
  echo "vertical derivation did not beat the tree walk" >&2; exit 1
fi
# (The fresh BENCH_PR4.json is committed at the end of the PR5 step, after
# every perf gate has passed — a failed run must not ratchet the baseline.)

echo "==> perf smoke: columnar store + work-stealing sweep (BENCH_PR5.json)"
# The same dense workload, round-tripped through text so the columnar
# catalog matches what a fresh text parse would intern. One sweep run on
# the .ppmc input produces both head-to-heads: --compare-ingest races
# text parse+encode against the columnar open (must win by >= 5x), and
# --workers + --bench-report races the work-stealing scheduler off one
# shared load against the sequential per-period pipeline (must win by
# >= 2x). The committed BENCH_PR5.json is this step's artifact.
./target/release/ppm convert --input "$smoke_dir/dense.ppms" \
  --out "$smoke_dir/dense.txt"
./target/release/ppm convert --input "$smoke_dir/dense.txt" \
  --out "$smoke_dir/dense.ppmc"
(cd "$smoke_dir" && "$OLDPWD/target/release/ppm" sweep --input dense.ppmc \
  --from 30 --to 39 --min-conf 0.6 --engine vertical --workers 8 \
  --compare-ingest dense.txt --bench-report PR5 >sweep5.log)
grep -q "work-stealing scheduler" "$smoke_dir/sweep5.log"
text_us="$(grep -o '"text_us":[0-9]*' "$smoke_dir/BENCH_PR5.json" | cut -d: -f2)"
columnar_us="$(grep -o '"columnar_us":[0-9]*' "$smoke_dir/BENCH_PR5.json" | cut -d: -f2)"
scheduler_us="$(grep -o '"scheduler_us":[0-9]*' "$smoke_dir/BENCH_PR5.json" | cut -d: -f2)"
sequential_us="$(grep -o '"sequential_us":[0-9]*' "$smoke_dir/BENCH_PR5.json" | cut -d: -f2)"
echo "    ingest: text parse+encode ${text_us}us vs columnar open ${columnar_us}us"
echo "    sweep:  sequential per-period ${sequential_us}us vs scheduler ${scheduler_us}us"
if [ "$text_us" -lt $((columnar_us * 5)) ]; then
  echo "columnar open is not >= 5x faster than text parse+encode" >&2; exit 1
fi
if [ "$sequential_us" -lt $((scheduler_us * 2)) ]; then
  echo "work-stealing sweep is not >= 2x faster than the per-period pipeline" >&2; exit 1
fi
# Derive-regression gate: the fresh vertical derive time (measured by the
# PR4 step above on this machine) must stay within 20% of the committed
# baseline. Skipped on a first run with no committed BENCH_PR4.json.
if [ -n "$committed_vertical_us" ]; then
  echo "    derive gate: fresh ${vertical_us}us vs committed ${committed_vertical_us}us (+20% allowed)"
  if [ "$vertical_us" -gt $((committed_vertical_us * 6 / 5)) ]; then
    echo "vertical derive regressed >20% vs the committed BENCH_PR4.json" >&2; exit 1
  fi
fi
cp "$smoke_dir/BENCH_PR4.json" BENCH_PR4.json
cp "$smoke_dir/BENCH_PR5.json" BENCH_PR5.json

echo "==> daemon smoke: serve/query, metrics scrape, flight dump, guard trip, quarantine, kill -9 recovery, SIGTERM drain"
# The daemon serves .ppmc stores; its mine answers must be byte-identical
# to direct `ppm mine` on the same store. --test-faults unlocks the
# fault-injection ops the smoke leans on (inject_garbage).
./target/release/ppm convert --input "$smoke_dir/smoke.ppms" \
  --out "$smoke_dir/smoke.ppmc"
for eng in hitset apriori vertical; do
  for period in 24 25 26; do
    ./target/release/ppm mine --input "$smoke_dir/smoke.ppmc" \
      --period "$period" --min-conf 0.6 --engine "$eng" \
      >"$smoke_dir/direct-$eng-$period.log"
  done
done
./target/release/ppm serve --stores "$smoke_dir/smoke.ppmc" --port 0 \
  --cache "$smoke_dir/results.ppmcache" --test-faults \
  --metrics-out "$smoke_dir/metrics.prom" \
  --access-log "$smoke_dir/access.jsonl" --slow-ms 0 \
  --flight-dump "$smoke_dir/flight.jsonl" \
  >"$smoke_dir/serve1.log" &
serve_pid=$!
for _ in $(seq 50); do
  grep -q "listening on tcp" "$smoke_dir/serve1.log" 2>/dev/null && break
  sleep 0.1
done
port="$(sed -n 's/^listening on tcp .*:\([0-9][0-9]*\) .*/\1/p' "$smoke_dir/serve1.log")"
test -n "$port"
# Nine concurrent clients (three engines x three periods) hammer the one
# shared view at once; each completed answer must diff clean against the
# direct baseline.
query_pids=()
for eng in hitset apriori vertical; do
  for period in 24 25 26; do
    ./target/release/ppm query --port "$port" --store smoke \
      --period "$period" --min-conf 0.6 --engine "$eng" \
      >"$smoke_dir/query-$eng-$period.log" &
    query_pids+=("$!")
  done
done
for pid in "${query_pids[@]}"; do wait "$pid"; done
for eng in hitset apriori vertical; do
  for period in 24 25 26; do
    cmp "$smoke_dir/direct-$eng-$period.log" "$smoke_dir/query-$eng-$period.log"
  done
done
# Observability under load: the stats op reports real latency histograms,
# and the metrics op serves the same state as Prometheus text exposition.
./target/release/ppm query --port "$port" --op stats \
  >"$smoke_dir/daemon-stats.log"
grep -q "latency.queue_wait: n=" "$smoke_dir/daemon-stats.log"
grep -q "latency.service: n=" "$smoke_dir/daemon-stats.log"
grep -Eq "latency\.service: .* p50=[0-9]+us .* p95=[0-9]+us p99=[0-9]+us" \
  "$smoke_dir/daemon-stats.log"
./target/release/ppm query --port "$port" --op metrics \
  >"$smoke_dir/daemon-metrics.log"
grep -q 'ppm_serve_queue_wait_us_bucket{le="' "$smoke_dir/daemon-metrics.log"
grep -q "ppm_serve_queue_wait_us_p95 " "$smoke_dir/daemon-metrics.log"
grep -q "ppm_serve_service_us_p50 " "$smoke_dir/daemon-metrics.log"
grep -q "ppm_serve_service_us_p99 " "$smoke_dir/daemon-metrics.log"
served="$(sed -n 's/^ppm_serve_served_total \([0-9]*\)$/\1/p' "$smoke_dir/daemon-metrics.log")"
if [ -z "$served" ] || [ "$served" -lt 9 ]; then
  echo "expected ppm_serve_served_total >= 9 after the concurrent clients, got '${served}'" >&2
  exit 1
fi
# Every access-log line must be one valid JSON document with the fixed
# fields; --slow-ms 0 forces full span detail onto each mine line.
python3 - "$smoke_dir/access.jsonl" <<'PYEOF'
import json, sys
mines = 0
with open(sys.argv[1]) as f:
    for line in f:
        rec = json.loads(line)
        for key in ("at_us", "op", "outcome", "queue_us", "service_us"):
            assert key in rec, f"missing {key}: {line!r}"
        if rec["op"] == "mine" and rec["outcome"] == "ok":
            mines += 1
            assert rec.get("slow") is True, line
            assert isinstance(rec.get("spans"), list), line
assert mines >= 9, f"expected >= 9 ok mine lines, got {mines}"
PYEOF
# SIGUSR1 dumps the flight recorder: a header line naming the trigger,
# then one valid JSON line per ring-buffer event.
kill -USR1 "$serve_pid"
for _ in $(seq 50); do
  test -s "$smoke_dir/flight.jsonl" 2>/dev/null && break
  sleep 0.1
done
python3 - "$smoke_dir/flight.jsonl" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    lines = [json.loads(l) for l in f]
assert lines, "flight dump is empty"
head = lines[0]
assert head["kind"] == "flight_dump" and head["reason"] == "usr1", head
assert len(lines) > 1, "flight dump carries no events"
assert any(e.get("name") == "serve.request" for e in lines[1:]), \
    "no serve.request event in the flight dump"
PYEOF
# A resource-guard trip comes back as a typed partial-result error (exit 3
# with partial progress), and the daemon keeps serving afterwards.
# (--no-cache: a warm cache entry would answer before the guard can trip.)
guard_status=0
./target/release/ppm query --port "$port" --store smoke --period 25 \
  --min-conf 0.6 --deadline-ms 0 --no-cache \
  >"$smoke_dir/daemon-guard.log" || guard_status=$?
test "$guard_status" -eq 3
grep -q "partial progress" "$smoke_dir/daemon-guard.log"
# Injected garbage is quarantined at the scan boundary (exit 4, counts are
# sound lower bounds) and bypasses the cache.
dq_status=0
./target/release/ppm query --port "$port" --store smoke --period 25 \
  --min-conf 0.6 --quarantine --inject-garbage 3 --show-cached \
  >"$smoke_dir/daemon-quarantine.log" || dq_status=$?
test "$dq_status" -eq 4
grep -q "quarantined 1 instants" "$smoke_dir/daemon-quarantine.log"
grep -q "cached: bypass" "$smoke_dir/daemon-quarantine.log"
# Crash-safety: kill -9 (no drain, no graceful flush) must leave a cache a
# fresh daemon can recover warm — every completed insert was published
# atomically.
kill -9 "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
test -s "$smoke_dir/results.ppmcache"
./target/release/ppm serve --stores "$smoke_dir/smoke.ppmc" --port 0 \
  --cache "$smoke_dir/results.ppmcache" >"$smoke_dir/serve2.log" &
serve_pid=$!
for _ in $(seq 50); do
  grep -q "listening on tcp" "$smoke_dir/serve2.log" 2>/dev/null && break
  sleep 0.1
done
grep -q "warm entries" "$smoke_dir/serve2.log"
if grep -q "(0 warm entries)" "$smoke_dir/serve2.log"; then
  echo "kill -9 lost the result cache" >&2; exit 1
fi
port="$(sed -n 's/^listening on tcp .*:\([0-9][0-9]*\) .*/\1/p' "$smoke_dir/serve2.log")"
test -n "$port"
# The recovered cache answers the same query byte-identically...
./target/release/ppm query --port "$port" --store smoke --period 25 \
  --min-conf 0.6 >"$smoke_dir/query-warm.log"
cmp "$smoke_dir/direct-hitset-25.log" "$smoke_dir/query-warm.log"
# ...and reports it came from the warm cache, not a re-mine.
./target/release/ppm query --port "$port" --store smoke --period 25 \
  --min-conf 0.6 --show-cached >"$smoke_dir/query-cached.log"
grep -q "cached: hit" "$smoke_dir/query-cached.log"
# SIGTERM drains and exits 0 with a clean-stop banner.
kill -TERM "$serve_pid"
wait "$serve_pid"
grep -q "daemon stopped cleanly" "$smoke_dir/serve2.log"

echo "==> chaos smoke: replicated serve, seeded chaos proxy, SIGKILL failover"
# Two replicas of the same store, bounded caches. Replica A is reachable
# only through `ppm chaos` (a fixed-seed fault schedule: delays,
# truncations, corruptions, duplicates, severs), and is SIGKILLed
# mid-stream; the failover client must absorb all of it with stdout
# byte-identical to the direct `ppm mine` baselines captured above.
./target/release/ppm serve --stores "$smoke_dir/smoke.ppmc" --port 0 \
  --cache-max-entries 4 >"$smoke_dir/serveA.log" &
replica_a=$!
./target/release/ppm serve --stores "$smoke_dir/smoke.ppmc" --port 0 \
  --cache-max-entries 4 >"$smoke_dir/serveB.log" &
replica_b=$!
for f in serveA serveB; do
  for _ in $(seq 50); do
    grep -q "listening on tcp" "$smoke_dir/$f.log" 2>/dev/null && break
    sleep 0.1
  done
done
port_a="$(sed -n 's/^listening on tcp .*:\([0-9][0-9]*\) .*/\1/p' "$smoke_dir/serveA.log")"
port_b="$(sed -n 's/^listening on tcp .*:\([0-9][0-9]*\) .*/\1/p' "$smoke_dir/serveB.log")"
test -n "$port_a" && test -n "$port_b"
./target/release/ppm chaos --upstream "127.0.0.1:$port_a" --port 0 \
  --seed 3405 --fault-percent 80 --delay-ms 20 >"$smoke_dir/chaos.log" &
chaos_pid=$!
for _ in $(seq 50); do
  grep -q "listening on tcp" "$smoke_dir/chaos.log" 2>/dev/null && break
  sleep 0.1
done
chaos_port="$(sed -n 's/^listening on tcp .*:\([0-9][0-9]*\)$/\1/p' "$smoke_dir/chaos.log")"
test -n "$chaos_port"
endpoints="127.0.0.1:$chaos_port,127.0.0.1:$port_b"
# Phase 1: both replicas up, faults raging on A's path. Every answer must
# still match the direct baseline exactly (the client's retry note goes
# to stderr, so stdout stays diffable).
: >"$smoke_dir/chaos-client.log"
for eng in hitset apriori vertical; do
  for period in 24 25; do
    ./target/release/ppm query --endpoints "$endpoints" --store smoke \
      --period "$period" --min-conf 0.6 --engine "$eng" \
      --retries 6 --backoff-ms 5 --backoff-max-ms 50 --seed 7 \
      >"$smoke_dir/chaos-$eng-$period.log" 2>>"$smoke_dir/chaos-client.log"
    cmp "$smoke_dir/direct-$eng-$period.log" "$smoke_dir/chaos-$eng-$period.log"
  done
done
# Phase 2: SIGKILL replica A mid-stream — no drain, no goodbye. The
# remaining queries must fail over to B and still match the baselines.
kill -9 "$replica_a"
wait "$replica_a" 2>/dev/null || true
for eng in hitset apriori vertical; do
  ./target/release/ppm query --endpoints "$endpoints" --store smoke \
    --period 26 --min-conf 0.6 --engine "$eng" \
    --retries 6 --backoff-ms 5 --backoff-max-ms 50 --seed 7 \
    >"$smoke_dir/chaos-$eng-26.log" 2>>"$smoke_dir/chaos-client.log"
  cmp "$smoke_dir/direct-$eng-26.log" "$smoke_dir/chaos-$eng-26.log"
done
grep -q "failover(s)" "$smoke_dir/chaos-client.log"
# Readiness probe: the survivor is healthy, no stores quarantined.
./target/release/ppm query --port "$port_b" --op health \
  >"$smoke_dir/chaos-health.log"
grep -q "ready: true degraded: false" "$smoke_dir/chaos-health.log"
# The survivor took the whole circus without a single contained panic,
# and its bounded cache held the line (9 distinct query shapes, 4 slots).
./target/release/ppm query --port "$port_b" --op metrics \
  >"$smoke_dir/chaos-metrics.log"
grep -q "^ppm_serve_panics_total 0$" "$smoke_dir/chaos-metrics.log"
cache_entries="$(sed -n 's/^ppm_serve_cache_entries \([0-9]*\)$/\1/p' "$smoke_dir/chaos-metrics.log")"
test -n "$cache_entries"
if [ "$cache_entries" -gt 4 ]; then
  echo "bounded cache exceeded its cap: $cache_entries entries > 4" >&2; exit 1
fi
kill -TERM "$chaos_pid" "$replica_b"
wait "$chaos_pid" "$replica_b" 2>/dev/null || true
grep -q "daemon stopped cleanly" "$smoke_dir/serveB.log"

echo "CI green."
