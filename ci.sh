#!/usr/bin/env bash
# Local CI: formatting, lints, and the tier-1 verify.
# Everything here runs offline against the vendored workspace.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: release build"
cargo build --release

echo "==> release build, all crates (the ppm binary lives in ppm-cli)"
cargo build --release --workspace

echo "==> tier-1: test suite"
cargo test -q

echo "==> workspace test suite (all crates)"
cargo test --workspace -q

echo "==> observability smoke: mine --trace --metrics-out on a generated dataset"
# Hermetic: everything lands in a temp dir that is removed on exit. The
# emitted JSON-lines schema itself is validated by the repo's own parser in
# the ppm-cli test `metrics_out_writes_parseable_summary`; this step checks
# the shipped binary end to end.
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
./target/release/ppm generate --length 3000 --period 25 --max-pat-length 4 \
  --f1 8 --seed 7 --out "$smoke_dir/smoke.ppms"
./target/release/ppm mine --input "$smoke_dir/smoke.ppms" --period 25 \
  --min-conf 0.6 --trace --metrics-out "$smoke_dir/metrics.json" \
  >"$smoke_dir/stdout.log" 2>"$smoke_dir/trace.log"
grep -q "frequent patterns" "$smoke_dir/stdout.log"
test -s "$smoke_dir/trace.log"   # --trace wrote the span tree to stderr
grep -q '"type":"summary"' "$smoke_dir/metrics.json"
grep -q '"mining_stats"' "$smoke_dir/metrics.json"
./target/release/ppm info --input "$smoke_dir/smoke.ppms" --period 25 \
  | grep -q "hit-set bound"

echo "==> verification smoke: audit, verify, quarantine, checkpoint integrity"
# Honest runs audit clean on every engine; the cross-check diffs all three.
for alg in hitset apriori parallel; do
  ./target/release/ppm mine --input "$smoke_dir/smoke.ppms" --period 25 \
    --min-conf 0.6 --algorithm "$alg" --audit full \
    | grep -q "audit: clean"
done
# An exported result file re-verifies against its series.
./target/release/ppm mine --input "$smoke_dir/smoke.ppms" --period 25 \
  --min-conf 0.6 --tsv >"$smoke_dir/patterns.tsv"
./target/release/ppm verify --input "$smoke_dir/smoke.ppms" \
  --patterns "$smoke_dir/patterns.tsv" --period 25 --min-conf 0.6 \
  | grep -q "verify: clean"
# A deliberately perturbed count must fail the audit with a non-zero exit.
if ./target/release/ppm mine --input "$smoke_dir/smoke.ppms" --period 25 \
  --min-conf 0.6 --audit --perturb-count 0 >"$smoke_dir/perturb.log" 2>&1; then
  echo "perturbed mine was not caught by the audit" >&2; exit 1
fi
grep -q "count mismatch" "$smoke_dir/perturb.log"
# Quarantine skips injected garbage and keeps mining; strict fails fast.
./target/release/ppm mine --input "$smoke_dir/smoke.ppms" --period 25 \
  --min-conf 0.6 --quarantine --inject-garbage 3 \
  | grep -q "quarantined 1 instants"
if ./target/release/ppm mine --input "$smoke_dir/smoke.ppms" --period 25 \
  --min-conf 0.6 --strict --inject-garbage 3 >/dev/null 2>&1; then
  echo "strict mode accepted garbage input" >&2; exit 1
fi
# A corrupted sweep checkpoint is rejected, not silently resumed.
./target/release/ppm sweep --input "$smoke_dir/smoke.ppms" --from 24 --to 26 \
  --min-conf 0.6 --checkpoint "$smoke_dir/sweep.ckpt" >/dev/null
sed -i 's/^period 24 /period 99 /' "$smoke_dir/sweep.ckpt"  # edit a row body; its checksum now lies
if ./target/release/ppm sweep --input "$smoke_dir/smoke.ppms" --from 24 --to 26 \
  --min-conf 0.6 --checkpoint "$smoke_dir/sweep.ckpt" >/dev/null 2>"$smoke_dir/ckpt.log"; then
  echo "corrupted checkpoint was accepted" >&2; exit 1
fi
grep -qi "checksum" "$smoke_dir/ckpt.log"

echo "CI green."
