//! The paper's motivating scenario: mining Jim's weekly routine from an
//! hourly activity log, including perturbation-tolerant mining when the
//! habits jitter by an hour.
//!
//! Run with: `cargo run --example daily_activities`

use partial_periodic::core::scan_frequent_letters;
use partial_periodic::datagen::noise;
use partial_periodic::datagen::workloads::activity::{self, jim_schedule, WEEK};
use partial_periodic::timeseries::calendar::WeeklyGrid;
use partial_periodic::timeseries::window;
use partial_periodic::{hitset, FeatureCatalog, MineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut catalog = FeatureCatalog::new();
    let series = activity::generate(104, &jim_schedule(), 30, 0.35, 7, &mut catalog);
    println!(
        "Two years of hourly activity: {} instants, {} observations",
        series.len(),
        series.total_features()
    );

    // Mine the weekly period. A habit on all 5 weekdays with reliability
    // ~0.9 has weekly confidence ~0.9 per weekday slot.
    let config = MineConfig::new(0.55)?;
    let result = hitset::mine(&series, WEEK, &config)?;
    println!("\n=== Weekly patterns (period = {WEEK} hours, min_conf 0.55) ===");
    let grid = WeeklyGrid::hourly();
    let mut shown = 0;
    for (pattern, count, conf) in result.patterns() {
        if pattern.l_length() >= 1 && shown < 12 {
            // Translate offsets into day/hour for readability.
            let slots: Vec<String> = pattern
                .symbols()
                .iter()
                .enumerate()
                .filter(|(_, s)| !s.is_star())
                .map(|(o, s)| {
                    let names: Vec<&str> = s
                        .features()
                        .iter()
                        .map(|&f| catalog.name(f).unwrap_or("?"))
                        .collect();
                    format!("{} {}", grid.label(o), names.join("+"))
                })
                .collect();
            println!("  [{}]  count={count} conf={conf:.2}", slots.join(" | "));
            shown += 1;
        }
    }
    println!(
        "  ({} patterns total, longest spans {} slots)",
        result.len(),
        result.max_l_length()
    );

    // Perturb: events drift by up to one hour. Compare how many habit
    // letters (frequent 1-patterns) survive with exact matching versus with
    // the §6 slot-enlargement remedy.
    let jittered = noise::jitter(&series, 1, 0.5, 99);
    let exact = scan_frequent_letters(&jittered, WEEK, &config)?;
    let enlarged = window::enlarge_slots(&jittered, 1);
    let tolerant = scan_frequent_letters(&enlarged, WEEK, &config)?;
    println!("\n=== After ±1h jitter on half the events ===");
    println!(
        "  frequent letters, exact matching:      {:>3}",
        exact.alphabet.len()
    );
    println!(
        "  frequent letters, ±1 slot enlargement: {:>3}",
        tolerant.alphabet.len()
    );
    println!(
        "  (clean series had {}; enlargement recovers every habit, and counts \
         each at up to 3 adjacent offsets)",
        result.alphabet.len()
    );
    Ok(())
}
