//! Watching periodic behaviour evolve (paper §6, "perturbation and
//! evolution"): slide a window over two years of Jim's activity log in
//! which a habit is replaced halfway through, and classify each weekly
//! pattern as stable, emerging, vanished, or intermittent.
//!
//! Run with: `cargo run --example evolution_monitoring`

use partial_periodic::datagen::workloads::activity::{self, Habit, WEEK};
use partial_periodic::evolution::{mine_windows, Drift, WindowSpec};
use partial_periodic::timeseries::calendar::WeeklyGrid;
use partial_periodic::{FeatureCatalog, MineConfig, SeriesBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut catalog = FeatureCatalog::new();

    // Year 1: newspaper at 7. Year 2: podcast at 7 instead. Coffee all
    // along. Generate the two years separately and concatenate.
    let year1 = activity::generate(
        52,
        &[
            Habit::weekdays("newspaper", 7, 0.92),
            Habit::weekdays("coffee", 7, 0.9),
        ],
        15,
        0.3,
        1,
        &mut catalog,
    );
    let year2 = activity::generate(
        52,
        &[
            Habit::weekdays("podcast", 7, 0.92),
            Habit::weekdays("coffee", 7, 0.9),
        ],
        15,
        0.3,
        2,
        &mut catalog,
    );
    let mut builder = SeriesBuilder::new();
    for inst in year1.iter().chain(year2.iter()) {
        builder.push_instant(inst.iter().copied());
    }
    let series = builder.finish();
    println!("104 weeks of hourly activity ({} instants)", series.len());

    // Slide a 13-week window with a 13-week stride (quarters).
    let config = MineConfig::new(0.6)?;
    let out = mine_windows(&series, WEEK, &config, WindowSpec::new(13, 13)?)?;
    println!(
        "{} windows of 13 weeks; {} distinct patterns tracked",
        out.window_count(),
        out.tracks.len()
    );

    let n = out.window_count();
    for (label, drift) in [
        ("STABLE   ", Drift::Stable),
        ("VANISHED ", Drift::Vanished),
        ("EMERGING ", Drift::Emerging),
    ] {
        println!("\n{label} patterns:");
        let mut shown = 0;
        for track in out.with_drift(drift) {
            if shown >= 6 {
                println!("  …");
                break;
            }
            let grid = WeeklyGrid::hourly();
            let desc: Vec<String> = track
                .letters
                .iter()
                .map(|&(o, f)| format!("{} {}", grid.label(o), catalog.name(f).unwrap_or("?")))
                .collect();
            let confs: Vec<String> = track
                .confidences
                .iter()
                .map(|c| c.map_or("  -  ".to_owned(), |v| format!("{v:.2} ")))
                .collect();
            println!("  [{}]  conf/quarter: {}", desc.join(" + "), confs.join(""));
            shown += 1;
        }
        if shown == 0 {
            println!("  (none)");
        }
    }

    // The headline transitions.
    let newspaper = catalog.get("newspaper").unwrap();
    let podcast = catalog.get("podcast").unwrap();
    for day in 0..1 {
        let offset = day * 24 + 7;
        if let Some(t) = out.track_of(&[(offset, newspaper)]) {
            assert_eq!(t.classify(n), Drift::Vanished);
        }
        if let Some(t) = out.track_of(&[(offset, podcast)]) {
            assert_eq!(t.classify(n), Drift::Emerging);
        }
    }
    println!(
        "\nnewspaper@Mon07 classified VANISHED, podcast@Mon07 classified EMERGING — as planted."
    );
    Ok(())
}
