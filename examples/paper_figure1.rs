//! Reconstructs Figure 1 of the paper — the max-subpattern tree for
//! C_max = a{b1,b2}*d* — node by node with the published counts, then
//! replays Example 4.2 (reachable ancestors) and Example 4.3 (derivation of
//! the frequent patterns with min_count 45).
//!
//! Run with: `cargo run --example paper_figure1`

use partial_periodic::core::hitset::MaxSubpatternTree;
use partial_periodic::core::{Alphabet, LetterSet, Pattern};
use partial_periodic::FeatureCatalog;

fn main() {
    // Letters of C_max in canonical order: a@0=0, b1@1=1, b2@1=2, d@3=3.
    let mut catalog = FeatureCatalog::new();
    let a = catalog.intern("a");
    let b1 = catalog.intern("b1");
    let b2 = catalog.intern("b2");
    let d = catalog.intern("d");
    let alphabet = Alphabet::new(5, [(0, a), (1, b1), (1, b2), (3, d)]);

    let set = |idx: &[usize]| LetterSet::from_indices(4, idx.iter().copied());
    let show = |s: &LetterSet| Pattern::from_letter_set(&alphabet, s).display_compact(&catalog);

    // Figure 1's node counts (root first, then one-missing, two-missing).
    let mut tree = MaxSubpatternTree::new(LetterSet::full(4));
    let nodes: &[(&[usize], u64)] = &[
        (&[0, 1, 2, 3], 10), // a{b1,b2}*d*
        (&[1, 2, 3], 50),    // *{b1,b2}*d*   (~a)
        (&[0, 1, 2], 40),    // a{b1,b2}***   (~d)
        (&[0, 2, 3], 32),    // ab2*d*        (~b1)
        (&[0, 1, 3], 0),     // ab1*d*        (~b2)
        (&[1, 3], 8),        // *b1*d*
        (&[2, 3], 0),        // *b2*d*
        (&[1, 2], 19),       // *{b1,b2}***
        (&[0, 3], 5),        // a**d*
        (&[0, 2], 2),        // ab2***
        (&[0, 1], 18),       // ab1***
    ];
    for (letters, count) in nodes {
        tree.insert_with_count(&set(letters), *count);
    }

    println!(
        "Max-subpattern tree of Figure 1 (C_max = {}):",
        show(&LetterSet::full(4))
    );
    for (letters, count) in nodes {
        let s = set(letters);
        println!("  {:<14} stored count {count:>3}", show(&s));
    }
    println!(
        "  nodes: {}, distinct hits: {}",
        tree.node_count(),
        tree.distinct_hits()
    );

    // Example 4.2: reachable ancestors of ***d* (missing a, b1, b2).
    let target = set(&[3]);
    println!("\nExample 4.2 — reachable ancestors of {}:", show(&target));
    for (pat, count) in tree.reachable_ancestors(&target) {
        println!("  {:<14} count {count:>3}", show(pat));
    }

    // Example 4.3: frequency derivation with min_count 45.
    println!("\nExample 4.3 — derived frequencies (min_count 45):");
    let min_count = 45;
    let level2: &[&[usize]] = &[&[1, 3], &[2, 3], &[1, 2], &[0, 3], &[0, 2], &[0, 1]];
    for letters in level2 {
        let s = set(letters);
        let freq = tree.count_superpatterns_walk(&s);
        let mark = if freq >= min_count {
            "frequent"
        } else {
            "        "
        };
        println!("  {:<14} frequency {freq:>3}  {mark}", show(&s));
    }
    let level1: &[&[usize]] = &[&[1, 2, 3], &[0, 1, 2], &[0, 2, 3], &[0, 1, 3]];
    for letters in level1 {
        let s = set(letters);
        let freq = tree.count_superpatterns_walk(&s);
        let mark = if freq >= min_count {
            "frequent"
        } else {
            "        "
        };
        println!("  {:<14} frequency {freq:>3}  {mark}", show(&s));
    }
    let root_freq = tree.count_superpatterns_walk(&LetterSet::full(4));
    println!(
        "  {:<14} frequency {root_freq:>3}  (root: not frequent)",
        show(&LetterSet::full(4))
    );

    // Assert the paper's published numbers so this example doubles as a
    // verification run.
    assert_eq!(tree.count_superpatterns_walk(&set(&[1, 3])), 68);
    assert_eq!(tree.count_superpatterns_walk(&set(&[2, 3])), 92);
    assert_eq!(tree.count_superpatterns_walk(&set(&[1, 2])), 119);
    assert_eq!(tree.count_superpatterns_walk(&set(&[0, 3])), 47);
    assert_eq!(tree.count_superpatterns_walk(&set(&[0, 2])), 84);
    assert_eq!(tree.count_superpatterns_walk(&set(&[0, 1])), 68);
    assert_eq!(tree.count_superpatterns_walk(&set(&[1, 2, 3])), 60);
    assert_eq!(tree.count_superpatterns_walk(&set(&[0, 1, 2])), 50);
    println!("\nAll Figure 1 / Example 4.3 frequencies verified.");
}
