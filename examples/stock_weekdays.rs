//! Discovering intra-week structure in stock movements: convert a price
//! series to up/down/flat features, let multi-period shared mining find the
//! 5-day trading week, then mine it for maximal patterns and rules.
//!
//! Run with: `cargo run --example stock_weekdays`

use partial_periodic::datagen::workloads::stock;
use partial_periodic::maximal::mine_maximal;
use partial_periodic::multi::{mine_periods_shared, PeriodRange};
use partial_periodic::{rules, FeatureCatalog, MineConfig, Pattern};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let prices = stock::prices(1_500, 100.0, stock::weekly_profile(), 2024);
    let mut catalog = FeatureCatalog::new();
    let series = stock::movements(&prices, 0.004, &mut catalog);
    println!("{} trading days of movements (up/down/flat)", series.len());

    // Which period is the data periodic at? Sweep 2..=9 in two scans.
    let sweep = mine_periods_shared(&series, PeriodRange::new(2, 9)?, &MineConfig::new(0.75)?)?;
    println!(
        "\n=== Period sweep 2..=9 ({} scans total) ===",
        sweep.total_scans
    );
    for r in &sweep.results {
        println!("  period {} -> {:>3} frequent patterns", r.period, r.len());
    }
    let best = sweep.densest_period().expect("non-empty sweep");
    println!("  densest period: {best} (the trading week)");

    // Mine the discovered period for maximal patterns only.
    let config = MineConfig::new(0.75)?;
    let max = mine_maximal(&series, best, &config)?;
    println!("\n=== Maximal patterns at period {best} (min_conf 0.75) ===");
    for fp in &max.maximal {
        let pattern = Pattern::from_letter_set(&max.alphabet, &fp.letters);
        println!(
            "  {:<22} count={} conf={:.2}",
            pattern.display(&catalog).to_string(),
            fp.count,
            fp.count as f64 / max.segment_count as f64
        );
    }

    // And the periodic rules connecting Monday rises to Friday fades.
    let full = sweep.for_period(best).expect("mined");
    println!("\n=== Periodic rules (min rule confidence 0.8) ===");
    for rule in rules::generate_rules(full, 0.8).into_iter().take(8) {
        println!("  {}", rule.display(full, &catalog));
    }
    Ok(())
}
