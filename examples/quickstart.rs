//! Quickstart: build a tiny feature series, mine it with both algorithms,
//! and print the frequent partial periodic patterns.
//!
//! Run with: `cargo run --example quickstart`

use partial_periodic::{mine, rules, Algorithm, FeatureCatalog, MineConfig, SeriesBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A "day" of three slots: morning, noon, evening. Jim drinks coffee
    // every morning, reads the paper most mornings, and his evenings are
    // noise.
    let mut catalog = FeatureCatalog::new();
    let coffee = catalog.intern("coffee");
    let paper = catalog.intern("newspaper");
    let walk = catalog.intern("walk");
    let tv = catalog.intern("tv");

    let mut builder = SeriesBuilder::new();
    for day in 0..40 {
        // Morning: coffee always, newspaper 9 days out of 10.
        if day % 10 == 3 {
            builder.push_instant([coffee]);
        } else {
            builder.push_instant([coffee, paper]);
        }
        // Noon: nothing regular.
        builder.push_instant([]);
        // Evening: alternates irregularly.
        if day % 3 == 0 {
            builder.push_instant([walk]);
        } else {
            builder.push_instant([tv]);
        }
    }
    let series = builder.finish();

    let config = MineConfig::new(0.8)?;
    println!("=== Frequent partial periodic patterns (period 3, min_conf 0.8) ===");
    let result = mine(&series, 3, &config, Algorithm::HitSet)?;
    for (pattern, count, conf) in result.patterns() {
        println!(
            "  {:<28} count={count:<3} conf={conf:.2}",
            pattern.display(&catalog).to_string()
        );
    }
    println!(
        "\n  scans of the series: {} (the hit-set method always needs 2)",
        result.stats.series_scans
    );

    // The Apriori baseline finds exactly the same patterns, with more scans.
    let apriori = mine(&series, 3, &config, Algorithm::Apriori)?;
    assert_eq!(apriori.frequent, result.frequent);
    println!(
        "  Apriori found the same {} patterns in {} scans",
        apriori.len(),
        apriori.stats.series_scans
    );

    // Periodic association rules: "when coffee, then newspaper".
    println!("\n=== Periodic rules (min rule confidence 0.8) ===");
    for rule in rules::generate_rules(&result, 0.8) {
        println!("  {}", rule.display(&result, &catalog));
    }
    Ok(())
}
