//! Retail transactions, end to end: raw timestamped event log → ETL onto an
//! hourly grid → constraint-based mining ("only patterns involving coffee",
//! "only the morning hours") → periodic rules. Also demonstrates the
//! parallel two-scan miner on the full weekly period.
//!
//! Run with: `cargo run --example retail_events`

use partial_periodic::constraints::{mine_constrained, Constraints};
use partial_periodic::datagen::workloads::retail::{self, store_script};
use partial_periodic::parallel::mine_parallel;
use partial_periodic::timeseries::calendar::WeeklyGrid;
use partial_periodic::{hitset, FeatureCatalog, MineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One year of store events.
    let mut catalog = FeatureCatalog::new();
    let log = retail::generate_events(364, &store_script(), 40, 0.4, 77, &mut catalog);
    println!("{} raw sales events over 364 days", log.len());

    // ETL: bin onto the hourly grid.
    let (series, report) = log.to_series(0, 1, 364 * 24)?;
    println!(
        "binned {} events into {} hourly slots ({} dropped)",
        report.binned,
        series.len(),
        report.before_origin + report.after_end
    );

    let week = 7 * 24;
    let config = MineConfig::new(0.7)?;

    // Constrained query 1: weekly patterns involving coffee.
    let coffee = catalog.get("coffee").expect("coffee interned");
    let q1 = mine_constrained(
        &series,
        week,
        &config,
        &Constraints::none().require(8, coffee), // Monday 08:00 slot
    )?;
    println!(
        "\n=== Weekly patterns containing coffee @ Mon 08:00 (min_conf 0.7, {} total, showing 15) ===",
        q1.len()
    );
    let grid = WeeklyGrid::hourly();
    for (pattern, count, conf) in q1.patterns().take(15) {
        let slots: Vec<String> = pattern
            .symbols()
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.is_star())
            .map(|(o, s)| {
                let names: Vec<&str> = s
                    .features()
                    .iter()
                    .map(|&f| catalog.name(f).unwrap_or("?"))
                    .collect();
                format!("{} {}", grid.label(o), names.join("+"))
            })
            .collect();
        println!("  [{}]  count={count} conf={conf:.2}", slots.join(" | "));
    }

    // Constrained query 2: morning hours only (8–11), ≤ 4 letters.
    let morning: Vec<usize> = (0..7)
        .flat_map(|d| (8..12).map(move |h| d * 24 + h))
        .collect();
    let q2 = mine_constrained(
        &series,
        week,
        &config,
        &Constraints::none().at_offsets(morning).max_letters(4),
    )?;
    println!(
        "\nMorning-slot query: {} patterns over {} admissible letters (full run would consider {})",
        q2.len(),
        q2.alphabet.len(),
        hitset::mine(&series, week, &config)?.alphabet.len()
    );

    // Parallel mining of the full weekly period: identical output, two
    // partitioned scans.
    let sequential = hitset::mine(&series, week, &config)?;
    let parallel = mine_parallel(&series, week, &config, 4)?;
    assert_eq!(sequential.frequent, parallel.frequent);
    println!(
        "\nParallel (4 threads) == sequential: {} patterns, {} scans each",
        parallel.len(),
        parallel.stats.series_scans
    );
    Ok(())
}
