//! Mining periodicity in numeric power-consumption data (paper §6):
//! discretize the load curve into categorical features — at two taxonomy
//! levels — then mine the daily period for maximal patterns, discover the
//! period with the cycle-elimination baseline, and inspect weekly structure
//! on a coarser grid.
//!
//! Run with: `cargo run --example power_grid`

use partial_periodic::core::perfect::mine_perfect;
use partial_periodic::maximal::mine_maximal;
use partial_periodic::multi::PeriodRange;
use partial_periodic::timeseries::{discretize, window};
use partial_periodic::{FeatureCatalog, MineConfig, Pattern};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    use partial_periodic::datagen::workloads::power::{self, SAMPLES_PER_DAY};

    let kw = power::generate(120, 42);
    println!("120 days of hourly power draw ({} samples)", kw.len());

    // Multi-level discretization: 3 coarse bands + 8 fine bands per sample.
    let mut catalog = FeatureCatalog::new();
    let (series, coarse, fine) = discretize::discretize_multi_level("kw", &kw, 3, 8, &mut catalog)?;
    println!(
        "Discretized into {} coarse bands (edges {:?}) and {} fine bands",
        coarse.bins(),
        coarse
            .edges()
            .iter()
            .map(|e| (e * 10.0).round() / 10.0)
            .collect::<Vec<_>>(),
        fine.bins()
    );

    // Daily periodicity: the full frequent set over correlated load bands
    // is exponentially large, so mine only the *maximal* patterns — the
    // hit-set × MaxMiner hybrid keeps this to two scans.
    let config = MineConfig::new(0.85)?;
    let daily = mine_maximal(&series, SAMPLES_PER_DAY, &config)?;
    println!("\n=== Maximal daily patterns (period 24, min_conf 0.85) ===");
    let mut rows: Vec<_> = daily.maximal.iter().collect();
    rows.sort_by_key(|fp| std::cmp::Reverse(fp.letters.len()));
    for fp in rows.iter().take(5) {
        let pattern = Pattern::from_letter_set(&daily.alphabet, &fp.letters);
        let slots: Vec<String> = pattern
            .symbols()
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.is_star())
            .map(|(h, s)| {
                let names: Vec<&str> = s
                    .features()
                    .iter()
                    .map(|&f| catalog.name(f).unwrap_or("?"))
                    .collect();
                format!("{h:02}h={}", names.join("+"))
            })
            .collect();
        println!(
            "  spans {:>2} hours, conf {:.2}: [{}]",
            pattern.l_length(),
            fp.count as f64 / daily.segment_count as f64,
            slots.join(" ")
        );
    }
    println!(
        "  ({} maximal patterns; {} frequent letters; {} series scans)",
        daily.maximal.len(),
        daily.alphabet.len(),
        daily.stats.series_scans
    );

    // Period discovery with the perfect-periodicity baseline: count the
    // letters that hold in *every* cycle, per candidate period.
    println!("\n=== Period discovery via perfect periodicity (20h..28h) ===");
    for p in mine_perfect(&series, PeriodRange::new(20, 28)?)? {
        println!(
            "  period {:>2}h -> {:>2} perfect letters (examined {}/{} segments)",
            p.period,
            p.alphabet.len(),
            p.segments_examined,
            p.segment_count
        );
    }
    println!("  (24h wins: the daily valley bands recur every single day)");

    // Weekly structure on a 3-hour grid: downsample, keep only the coarse
    // bands by re-discretizing the averages, and mine period 56 (= a week
    // of 3h slots).
    let coarse_only = {
        let values: Vec<f64> = kw.chunks(3).map(|c| c.iter().sum::<f64>() / 3.0).collect();
        discretize::Discretizer::equal_width("kw3h", &values, 3)?.apply(&values, &mut catalog)
    };
    let weekly_period = 7 * SAMPLES_PER_DAY / 3;
    let weekly = mine_maximal(&coarse_only, weekly_period, &MineConfig::new(0.9)?)?;
    let longest = weekly
        .maximal
        .iter()
        .map(|fp| fp.letters.len())
        .max()
        .unwrap_or(0);
    println!(
        "\n=== Weekly mining on the 3h coarse grid (period {weekly_period}, min_conf 0.9) ===\n  {} maximal patterns over {} frequent letters, longest spans {} slots, {} scans",
        weekly.maximal.len(),
        weekly.alphabet.len(),
        longest,
        weekly.stats.series_scans
    );
    let downsampled_len = window::downsample(&series, 3)?.len();
    println!("  (downsampled series: {downsampled_len} multi-level slots available too)");
    Ok(())
}
