//! `ppm` binary entry point.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    match ppm_cli::run(&argv, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("ppm: {err}");
            ExitCode::from(err.exit_code() as u8)
        }
    }
}
