//! CLI observability wiring: `--trace`, `--metrics-out`, `--progress`.
//!
//! Parses the shared observability flags into an [`ObsSetup`], installs the
//! requested sinks for the duration of a command, and renders the final
//! metrics summary — per-phase wall-clock aggregates, counter totals, gauge
//! maxima, retry/fault/guard event counts, and the embedded
//! [`MiningStats`] — as the last line of the `--metrics-out` JSON-lines
//! file.
//!
//! When no observability flag is given nothing is installed, so mining
//! runs exactly as before (asserted by the CLI tests).

use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ppm_core::{MiningStats, StatsRollup};
use ppm_observe::{
    aggregate_phases, mark_counts, Collector, Event, Fanout, HumanReporter, Json, JsonLinesSink,
    Sink,
};

use crate::args::Parsed;
use crate::error::CliError;

/// The observability configuration of one CLI invocation.
pub struct ObsSetup {
    collector: Option<Arc<Collector>>,
    json: Option<Arc<JsonLinesSink>>,
    metrics_path: Option<String>,
    trace: bool,
    progress: Option<Arc<ProgressSink>>,
}

impl ObsSetup {
    /// Parses `--trace`, `--metrics-out PATH`, `--progress` and
    /// `--progress-interval-ms MS` from the command line. A value-less
    /// `--metrics-out` is a usage error.
    pub fn from_args(args: &Parsed) -> Result<ObsSetup, CliError> {
        Self::from_args_with(args, false)
    }

    /// [`Self::from_args`], optionally forcing the in-memory collector on
    /// even without `--metrics-out` (used by `sweep --bench-report`, which
    /// needs the aggregated phases for its report file).
    pub fn from_args_with(args: &Parsed, force_collector: bool) -> Result<ObsSetup, CliError> {
        let trace = args.switch("trace");
        let progress = parse_progress(args)?;
        let (json, metrics_path) = if args.switch("metrics-out") {
            let path = args.required("metrics-out")?.to_owned();
            let file = std::fs::File::create(&path)?;
            (
                Some(Arc::new(JsonLinesSink::new(Box::new(file)))),
                Some(path),
            )
        } else {
            (None, None)
        };
        // The collector backs the metrics summary and the bench report; it
        // is pointless (and costs memory) otherwise.
        let collector = if json.is_some() || force_collector {
            Some(Arc::new(Collector::new()))
        } else {
            None
        };
        Ok(ObsSetup {
            collector,
            json,
            metrics_path,
            trace,
            progress,
        })
    }

    /// The daemon variant: `--trace` / `--progress` still wire up sinks,
    /// but `--metrics-out` is *not* consumed — `ppm serve` repurposes
    /// that flag as its Prometheus exposition file path, which the daemon
    /// rewrites continuously instead of appending JSON lines at exit.
    pub fn for_daemon(args: &Parsed) -> Result<ObsSetup, CliError> {
        Ok(ObsSetup {
            collector: None,
            json: None,
            metrics_path: None,
            trace: args.switch("trace"),
            progress: parse_progress(args)?,
        })
    }

    /// Whether any observability output was requested.
    pub fn enabled(&self) -> bool {
        self.trace || self.collector.is_some() || self.progress.is_some()
    }

    /// The in-memory collector, when one is active.
    pub fn collector(&self) -> Option<&Arc<Collector>> {
        self.collector.as_ref()
    }

    /// Installs the configured sinks on the current thread; returns `None`
    /// (and installs nothing) when no flag was given. Keep the guard alive
    /// for the span of the instrumented work.
    pub fn install(&self) -> Option<ppm_observe::Guard> {
        if !self.enabled() {
            return None;
        }
        let mut fanout = Fanout::new();
        if let Some(c) = &self.collector {
            fanout = fanout.push(c.clone() as Arc<dyn Sink>);
        }
        if let Some(j) = &self.json {
            fanout = fanout.push(j.clone() as Arc<dyn Sink>);
        }
        if self.trace {
            fanout = fanout.push(Arc::new(HumanReporter::new(Box::new(std::io::stderr()))));
        }
        if let Some(p) = &self.progress {
            fanout = fanout.push(p.clone() as Arc<dyn Sink>);
        }
        Some(ppm_observe::install(Arc::new(fanout)))
    }

    /// Builds the metrics summary document from the collected events and
    /// (when available) the run's [`MiningStats`]. The `retries` and
    /// `guard_trips` keys are always present — zero on a clean run — so
    /// dashboards need no existence checks.
    pub fn summary_json(&self, stats: Option<&MiningStats>) -> Json {
        let events = self
            .collector
            .as_ref()
            .map(|c| c.events())
            .unwrap_or_default();
        let mut obj = vec![
            ("type".to_owned(), Json::Str("summary".to_owned())),
            (
                "phases".to_owned(),
                Json::Arr(
                    aggregate_phases(&events)
                        .iter()
                        .map(|p| p.to_json())
                        .collect(),
                ),
            ),
            (
                "counters".to_owned(),
                Json::Obj(
                    self.collector
                        .as_ref()
                        .map(|c| c.counter_totals())
                        .unwrap_or_default()
                        .into_iter()
                        .map(|(k, v)| (k, Json::from_u64(v)))
                        .collect(),
                ),
            ),
            (
                "gauges".to_owned(),
                Json::Obj(
                    self.collector
                        .as_ref()
                        .map(|c| c.gauge_maxima())
                        .unwrap_or_default()
                        .into_iter()
                        .map(|(k, v)| (k, Json::from_u64(v)))
                        .collect(),
                ),
            ),
            (
                "marks".to_owned(),
                Json::Obj(
                    mark_counts(&events)
                        .into_iter()
                        .map(|(k, v)| (k.to_owned(), Json::from_u64(v)))
                        .collect(),
                ),
            ),
            ("retries".to_owned(), Json::from_u64(retry_count(&events))),
            (
                "guard_trips".to_owned(),
                Json::from_u64(guard_trip_count(&events)),
            ),
        ];
        if let Some(stats) = stats {
            obj.push(("mining_stats".to_owned(), stats_json(stats)));
        }
        Json::Obj(obj)
    }

    /// Appends the summary document to the `--metrics-out` file (when one
    /// is open) and reports where it went. Surfaces any write failure the
    /// sink recorded during the run. Call *after* dropping the install
    /// guard so the summary work is not itself recorded.
    pub fn finalize(
        &self,
        stats: Option<&MiningStats>,
        out: &mut dyn Write,
    ) -> Result<(), CliError> {
        self.write_summary(self.summary_json(stats), out)
    }

    /// [`Self::finalize`] for commands whose result is a cross-run rollup
    /// rather than one [`MiningStats`]: appends `extra` key/value pairs to
    /// the summary object instead of `mining_stats`.
    pub fn finalize_with_extra(
        &self,
        extra: Vec<(String, Json)>,
        out: &mut dyn Write,
    ) -> Result<(), CliError> {
        let mut summary = self.summary_json(None);
        if let Json::Obj(obj) = &mut summary {
            obj.extend(extra);
        }
        self.write_summary(summary, out)
    }

    fn write_summary(&self, summary: Json, out: &mut dyn Write) -> Result<(), CliError> {
        let Some(json) = &self.json else {
            return Ok(());
        };
        json.append_line(&summary.render());
        if json.take_write_error() {
            return Err(CliError::Io(std::io::Error::other(format!(
                "failed writing metrics to {}",
                self.metrics_path.as_deref().unwrap_or("<metrics-out>")
            ))));
        }
        if let Some(path) = &self.metrics_path {
            writeln!(out, "metrics written to {path}")?;
        }
        Ok(())
    }
}

/// Parses `--progress` / `--progress-interval-ms` into a stderr
/// heartbeat sink.
fn parse_progress(args: &Parsed) -> Result<Option<Arc<ProgressSink>>, CliError> {
    if !args.switch("progress") {
        return Ok(None);
    }
    let interval_ms: u64 = args.parsed_or("progress-interval-ms", 1000)?;
    Ok(Some(Arc::new(ProgressSink::new(
        Box::new(std::io::stderr()),
        Duration::from_millis(interval_ms),
    ))))
}

/// Counts retry events (`source.retries` counter total) in an event log.
fn retry_count(events: &[Event]) -> u64 {
    events
        .iter()
        .filter_map(|e| match e {
            Event::Counter {
                name: "source.retries",
                delta,
                ..
            } => Some(*delta),
            _ => None,
        })
        .sum()
}

/// Counts resource-guard trips (deadline + tree-budget marks).
fn guard_trip_count(events: &[Event]) -> u64 {
    events
        .iter()
        .filter(|e| {
            matches!(
                e,
                Event::Mark {
                    name: "guard.deadline_exceeded" | "guard.tree_budget_exceeded",
                    ..
                }
            )
        })
        .count() as u64
}

/// Encodes a [`MiningStats`] as JSON.
pub fn stats_json(stats: &MiningStats) -> Json {
    Json::Obj(vec![
        (
            "series_scans".to_owned(),
            Json::from_usize(stats.series_scans),
        ),
        (
            "candidates_generated".to_owned(),
            Json::from_u64(stats.candidates_generated),
        ),
        (
            "subset_tests".to_owned(),
            Json::from_u64(stats.subset_tests),
        ),
        ("tree_nodes".to_owned(), Json::from_usize(stats.tree_nodes)),
        (
            "distinct_hits".to_owned(),
            Json::from_usize(stats.distinct_hits),
        ),
        (
            "hit_insertions".to_owned(),
            Json::from_u64(stats.hit_insertions),
        ),
        ("max_level".to_owned(), Json::from_usize(stats.max_level)),
    ])
}

/// Encodes a [`StatsRollup`] as JSON, reporting the summed totals *and*
/// the per-run maxima of the tree-size fields (see the
/// [`MiningStats::absorb`] docs for why both views matter).
pub fn rollup_json(rollup: &StatsRollup) -> Json {
    Json::Obj(vec![
        ("runs".to_owned(), Json::from_usize(rollup.runs)),
        ("total".to_owned(), stats_json(&rollup.total)),
        (
            "max_tree_nodes".to_owned(),
            Json::from_usize(rollup.max_tree_nodes),
        ),
        (
            "max_distinct_hits".to_owned(),
            Json::from_usize(rollup.max_distinct_hits),
        ),
    ])
}

/// A heartbeat sink for `mine --progress`: tracks the
/// `hitset.segments_total` gauge and the batched `hitset.segments`
/// counter, and prints `done/total` with percentage and a naive ETA at
/// most once per interval. Written for stderr so it never pollutes
/// machine-read stdout.
pub struct ProgressSink {
    state: Mutex<ProgressState>,
}

struct ProgressState {
    out: Box<dyn Write + Send>,
    interval: Duration,
    started: Instant,
    last_print: Option<Instant>,
    total: u64,
    done: u64,
}

impl ProgressSink {
    /// Wraps `out`, printing at most once per `interval`.
    pub fn new(out: Box<dyn Write + Send>, interval: Duration) -> Self {
        ProgressSink {
            state: Mutex::new(ProgressState {
                out,
                interval,
                started: Instant::now(),
                last_print: None,
                total: 0,
                done: 0,
            }),
        }
    }
}

impl Sink for ProgressSink {
    fn record(&self, event: &Event) {
        let mut state = self.state.lock().expect("progress lock");
        match event {
            Event::Gauge {
                name: "hitset.segments_total",
                value,
                ..
            } => {
                state.total = *value;
                state.started = Instant::now();
                state.done = 0;
            }
            Event::Counter {
                name: "hitset.segments",
                delta,
                ..
            } => {
                state.done += delta;
                let due = state
                    .last_print
                    .is_none_or(|t| t.elapsed() >= state.interval);
                if !due {
                    return;
                }
                state.last_print = Some(Instant::now());
                let elapsed = state.started.elapsed();
                let (done, total) = (state.done, state.total);
                let line = if total > 0 && done > 0 && done < total {
                    let eta = elapsed.mul_f64((total - done) as f64 / done as f64);
                    format!(
                        "progress: {done}/{total} segments ({:.0}%), elapsed {:.1}s, eta {:.1}s",
                        100.0 * done as f64 / total as f64,
                        elapsed.as_secs_f64(),
                        eta.as_secs_f64()
                    )
                } else {
                    format!(
                        "progress: {done}/{total} segments, elapsed {:.1}s",
                        elapsed.as_secs_f64()
                    )
                };
                let _ = writeln!(state.out, "{line}");
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared_buf() -> (Arc<Mutex<Vec<u8>>>, Box<dyn Write + Send>) {
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf: Arc<Mutex<Vec<u8>>> = Arc::default();
        (buf.clone(), Box::new(Shared(buf)))
    }

    #[test]
    fn progress_prints_with_percentage_and_eta() {
        let (buf, out) = shared_buf();
        let sink = ProgressSink::new(out, Duration::ZERO);
        sink.record(&Event::Gauge {
            seq: 1,
            at_us: 0,
            name: "hitset.segments_total",
            value: 100,
        });
        sink.record(&Event::Counter {
            seq: 2,
            at_us: 10,
            name: "hitset.segments",
            delta: 25,
        });
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert!(text.contains("25/100 segments (25%)"), "{text}");
        assert!(text.contains("eta"), "{text}");
    }

    #[test]
    fn progress_respects_the_interval() {
        let (buf, out) = shared_buf();
        let sink = ProgressSink::new(out, Duration::from_secs(3600));
        sink.record(&Event::Gauge {
            seq: 1,
            at_us: 0,
            name: "hitset.segments_total",
            value: 100,
        });
        for seq in 0..10 {
            sink.record(&Event::Counter {
                seq,
                at_us: 10,
                name: "hitset.segments",
                delta: 1,
            });
        }
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 1, "only the first tick prints");
    }

    #[test]
    fn stats_json_round_trips_through_the_parser() {
        let stats = MiningStats {
            series_scans: 2,
            tree_nodes: 17,
            hit_insertions: 40,
            max_level: 3,
            ..Default::default()
        };
        let parsed = Json::parse(&stats_json(&stats).render()).unwrap();
        assert_eq!(parsed.get("series_scans").unwrap().as_u64(), Some(2));
        assert_eq!(parsed.get("tree_nodes").unwrap().as_u64(), Some(17));
        assert_eq!(parsed.get("hit_insertions").unwrap().as_u64(), Some(40));
    }

    #[test]
    fn rollup_json_reports_total_and_max() {
        let mut rollup = StatsRollup::new();
        rollup.add(&MiningStats {
            tree_nodes: 10,
            ..Default::default()
        });
        rollup.add(&MiningStats {
            tree_nodes: 4,
            ..Default::default()
        });
        let parsed = Json::parse(&rollup_json(&rollup).render()).unwrap();
        assert_eq!(parsed.get("runs").unwrap().as_u64(), Some(2));
        assert_eq!(parsed.get("max_tree_nodes").unwrap().as_u64(), Some(10));
        assert_eq!(
            parsed
                .get("total")
                .unwrap()
                .get("tree_nodes")
                .unwrap()
                .as_u64(),
            Some(14)
        );
    }
}
