//! A small, dependency-free flag parser.
//!
//! Grammar: the first non-flag token is the command; everything else is
//! `--key value` pairs or boolean `--switch`es. A flag is boolean when it
//! is followed by another flag or by nothing. Flags may appear in any
//! order; repeated flags keep the last value.

use std::collections::HashMap;

use crate::error::CliError;

/// Parsed command line: one command plus its flags.
#[derive(Debug, Clone, Default)]
pub struct Parsed {
    /// The subcommand (first positional token).
    pub command: String,
    flags: HashMap<String, Option<String>>,
}

impl Parsed {
    /// Parses `argv` (without the program name).
    pub fn parse(argv: &[String]) -> Result<Parsed, CliError> {
        let mut parsed = Parsed::default();
        let mut i = 0;
        while i < argv.len() {
            let tok = &argv[i];
            if let Some(name) = tok.strip_prefix("--") {
                if name.is_empty() {
                    return Err(CliError::Usage("bare `--` is not a flag".into()));
                }
                let value = argv.get(i + 1).filter(|v| !v.starts_with("--")).cloned();
                if value.is_some() {
                    i += 1;
                }
                parsed.flags.insert(name.to_owned(), value);
            } else if parsed.command.is_empty() {
                parsed.command = tok.clone();
            } else {
                return Err(CliError::Usage(format!(
                    "unexpected positional argument {tok:?}"
                )));
            }
            i += 1;
        }
        if parsed.command.is_empty() {
            return Err(CliError::Usage(format!(
                "no command given\n{}",
                crate::usage()
            )));
        }
        Ok(parsed)
    }

    /// Whether a boolean switch is present.
    pub fn switch(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// An optional string flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).and_then(|v| v.as_deref())
    }

    /// A required string flag.
    pub fn required(&self, name: &str) -> Result<&str, CliError> {
        self.get(name)
            .ok_or_else(|| CliError::Usage(format!("missing required flag --{name} VALUE")))
    }

    /// A required parsed flag.
    pub fn required_parsed<T: std::str::FromStr>(&self, name: &str) -> Result<T, CliError> {
        let raw = self.required(name)?;
        raw.parse()
            .map_err(|_| CliError::Usage(format!("flag --{name}: cannot parse {raw:?}")))
    }

    /// An optional parsed flag with a default.
    pub fn parsed_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| CliError::Usage(format!("flag --{name}: cannot parse {raw:?}"))),
        }
    }

    /// An optional comma-separated list flag (`--offsets 1,2,3`).
    pub fn parsed_list<T: std::str::FromStr>(
        &self,
        name: &str,
    ) -> Result<Option<Vec<T>>, CliError> {
        match self.get(name) {
            None => Ok(None),
            Some(raw) => raw
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(|s| {
                    s.parse().map_err(|_| {
                        CliError::Usage(format!("flag --{name}: cannot parse element {s:?}"))
                    })
                })
                .collect::<Result<Vec<T>, _>>()
                .map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let p = Parsed::parse(&argv("mine --input x.ppms --period 24 --maximal")).unwrap();
        assert_eq!(p.command, "mine");
        assert_eq!(p.get("input"), Some("x.ppms"));
        assert_eq!(p.required_parsed::<usize>("period").unwrap(), 24);
        assert!(p.switch("maximal"));
        assert!(!p.switch("looping"));
    }

    #[test]
    fn boolean_flag_before_valued_flag() {
        let p = Parsed::parse(&argv("mine --maximal --period 7")).unwrap();
        assert!(p.switch("maximal"));
        assert_eq!(p.get("maximal"), None);
        assert_eq!(p.required_parsed::<usize>("period").unwrap(), 7);
    }

    #[test]
    fn missing_command_errors() {
        assert!(Parsed::parse(&argv("--input x")).is_err());
        assert!(Parsed::parse(&[]).is_err());
    }

    #[test]
    fn unexpected_positional_errors() {
        assert!(Parsed::parse(&argv("mine extra")).is_err());
    }

    #[test]
    fn required_flag_errors_when_absent() {
        let p = Parsed::parse(&argv("mine")).unwrap();
        assert!(p.required("input").is_err());
        assert!(p.required_parsed::<usize>("period").is_err());
    }

    #[test]
    fn parse_errors_name_the_flag() {
        let p = Parsed::parse(&argv("mine --period abc")).unwrap();
        let err = p.required_parsed::<usize>("period").unwrap_err();
        assert!(err.to_string().contains("--period"));
    }

    #[test]
    fn defaults_apply() {
        let p = Parsed::parse(&argv("mine")).unwrap();
        assert_eq!(p.parsed_or("threads", 1usize).unwrap(), 1);
        let p = Parsed::parse(&argv("mine --threads 8")).unwrap();
        assert_eq!(p.parsed_or("threads", 1usize).unwrap(), 8);
    }

    #[test]
    fn list_flags_split_on_commas() {
        let p = Parsed::parse(&argv("mine --offsets 1,2,3")).unwrap();
        assert_eq!(
            p.parsed_list::<usize>("offsets").unwrap(),
            Some(vec![1, 2, 3])
        );
        let p = Parsed::parse(&argv("mine")).unwrap();
        assert_eq!(p.parsed_list::<usize>("offsets").unwrap(), None);
        let p = Parsed::parse(&argv("mine --offsets 1,x")).unwrap();
        assert!(p.parsed_list::<usize>("offsets").is_err());
    }

    #[test]
    fn repeated_flags_keep_last() {
        let p = Parsed::parse(&argv("mine --period 3 --period 5")).unwrap();
        assert_eq!(p.required_parsed::<usize>("period").unwrap(), 5);
    }

    #[test]
    fn bare_double_dash_rejected() {
        assert!(Parsed::parse(&argv("mine --")).is_err());
    }
}
