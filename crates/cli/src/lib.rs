//! `ppm` — a command-line partial periodic pattern miner.
//!
//! Thin, testable command layer over the workspace libraries:
//!
//! ```text
//! ppm generate --length 100000 --period 50 --max-pat-length 6 --f1 12 --out data.ppms
//! ppm info     --input data.ppms
//! ppm mine     --input data.ppms --period 50 --min-conf 0.6 [--engine vertical] [--limit 20]
//! ppm sweep    --input data.ppms --from 40 --to 60 --min-conf 0.6 [--engine vertical]
//! ppm perfect  --input data.ppms --from 40 --to 60
//! ppm convert  --input data.txt --out data.ppms
//! ```
//!
//! Series files are the binary `.ppms` format of
//! [`ppm_timeseries::storage::binary`], or the line-oriented text format
//! when the extension is `.txt`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod args;
pub mod checkpoint;
pub mod cmd;
mod error;
pub mod obs;

pub use error::CliError;

use std::io::Write;

/// Entry point shared by the binary and the tests: parses `argv` (without
/// the program name) and runs the selected command, writing human output
/// to `out`.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let parsed = args::Parsed::parse(argv)?;
    match parsed.command.as_str() {
        "generate" => cmd::generate::run(&parsed, out),
        "info" => cmd::info::run(&parsed, out),
        "mine" => cmd::mine::run(&parsed, out),
        "sweep" => cmd::sweep::run(&parsed, out),
        "perfect" => cmd::perfect::run(&parsed, out),
        "convert" => cmd::convert::run(&parsed, out),
        "rules" => cmd::rules::run(&parsed, out),
        "evolve" => cmd::evolve::run(&parsed, out),
        "verify" => cmd::verify::run(&parsed, out),
        "serve" => cmd::serve::run(&parsed, out),
        "query" => cmd::query::run(&parsed, out),
        "chaos" => cmd::chaos::run(&parsed, out),
        "help" | "--help" | "-h" => {
            writeln!(out, "{}", usage())?;
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown command {other:?}\n{}",
            usage()
        ))),
    }
}

/// The top-level usage text.
pub fn usage() -> &'static str {
    "ppm — partial periodic pattern mining (Han, Dong & Yin, ICDE 1999)

USAGE:
  ppm generate --length N --period P --max-pat-length L --f1 K --out FILE [--seed S]
  ppm info     --input FILE [--period P [--min-conf C]]
  ppm mine     --input FILE --period P --min-conf C
               [--engine apriori|hitset|parallel|vertical] [--threads N] [--stream]
               [--max-letters M] [--offsets 1,2,3] [--limit N] [--tsv]
               [--maximal | --closed]
               [--audit [full|sample|N]] [--quarantine] [--strict]
               [--retries N] [--deadline-ms MS] [--max-tree-nodes N]
               [--trace] [--metrics-out FILE]
               [--progress [--progress-interval-ms MS]]
  ppm verify   --input FILE --patterns FILE.tsv --period P --min-conf C
               [--sample [N]]
  ppm sweep    --input FILE --from P1 --to P2 --min-conf C [--looping]
               [--engine hitset|apriori|vertical] [--compare-tree]
               [--workers N] [--compare-ingest FILE.txt]
               [--checkpoint FILE] [--deadline-ms MS] [--max-tree-nodes N]
               [--trace] [--metrics-out FILE] [--bench-report NAME]
  ppm perfect  --input FILE --from P1 --to P2
  ppm rules    --input FILE --period P --min-conf C [--min-rule-conf R] [--tsv]
  ppm evolve   --input FILE --period P --min-conf C --window W [--stride S]
  ppm convert  --input FILE --out FILE [--salvage]
               [--to text|binary|stream|columnar]
  ppm serve    --stores A.ppmc,B.ppmc [--port P | --socket PATH]
               [--workers N] [--queue N] [--cache FILE]
               [--cache-max-entries N] [--cache-max-bytes B]
               [--deadline-ms MS] [--max-tree-nodes N]
               [--drain-ms MS] [--retry-after-ms MS] [--test-faults]
               [--idle-timeout-ms MS] [--frame-deadline-ms MS]
               [--max-requests-per-conn N] [--verify-interval-ms MS]
  ppm query    [--port P | --socket PATH | --endpoints A,B,C]
               [--op mine|rules|verify|info|health|stats|shutdown]
               [--store NAME --period P --min-conf C]
               [--engine hitset|apriori|vertical] [--limit N] [--no-cache]
               [--quarantine [--inject-garbage T]] [--show-cached]
               [--deadline-ms MS] [--max-tree-nodes N] [--min-rule-conf R]
               [--retries N] [--backoff-ms MS] [--backoff-max-ms MS]
               [--io-timeout-ms MS] [--hedge-ms MS] [--seed S] [--recheck]
  ppm chaos    --upstream HOST:PORT [--port P] [--seed S]
               [--fault-percent PCT] [--delay-ms MS]
  ppm help

Series files by extension: .ppms (block binary, checksummed), .ppmstream
(record streaming, minable out of core with --stream), .txt (one instant
per line, features space-separated, '-' = empty), .ppmc (columnar bitmap
store whose on-disk layout is the miners' encoded layout — mine, sweep,
and verify open it straight into a borrowed view with no re-encoding;
write one with convert --to columnar).

Serving: ppm serve keeps every --stores .ppmc open as one shared
zero-copy view and answers concurrent queries over a length-prefixed
JSON protocol (TCP or Unix socket). Admission control sheds queries
beyond --queue with an explicit retry-after response; a panicking query
is contained to an error response; mined results land in a crash-safe
cache (--cache FILE, checksummed entries, atomic publish) keyed by
store fingerprint + period + min_conf + engine, where a lower-confidence
entry also answers higher-confidence queries by anti-monotone filtering.
SIGTERM drains in-flight queries under --drain-ms, flushes the cache,
and exits cleanly. ppm query is the matching client; its mine output is
byte-identical to direct ppm mine on the same store.

Replication: run several `ppm serve` daemons over the same .ppmc files
and point `ppm query --endpoints a,b,c` at all of them. The client
retries transients (connect failures, truncated responses, overload,
quarantined stores) in rounds over the replicas with exponential
backoff + seeded jitter, honors overload retry_after_ms hints, and with
--hedge-ms T duplicates a request still unanswered after T ms to the
next replica — first answer wins, and when both answer they must match
byte-for-byte (minus cache provenance). The daemon re-verifies store
checksums every --verify-interval-ms and quarantines a store whose file
went bad (healthy stores keep serving; `--op health [--recheck]`
reports per-store status and exits 4 when degraded). The result cache
is bounded (--cache-max-entries / --cache-max-bytes, second-chance
eviction, crash-safe). Connections are hardened: --idle-timeout-ms
reaps idle peers, --frame-deadline-ms bounds one frame end to end (slow
feeders can't hold workers), --max-requests-per-conn closes chatty
connections. ppm chaos is a deterministic seeded proxy that delays,
truncates, corrupts, duplicates, and severs responses — the harness the
soak tests use to prove all of the above.

Exit codes (shared between direct commands and the daemon): 0 success;
1 internal failure; 2 usage; 3 partial result (a --deadline-ms /
--max-tree-nodes guard tripped; partial progress was reported); 4 input
quarantined (counts are sound lower bounds); 5 transient-I/O retries
exhausted; 6 daemon overloaded (retry after the hinted backoff).

Resilience: --retries N re-scans a .ppmstream up to N extra times on
transient I/O errors; --deadline-ms / --max-tree-nodes abort runaway mines
with a typed error carrying partial statistics; sweep --checkpoint FILE
records each completed period and resumes after a crash or abort without
re-mining; convert --salvage recovers the valid record prefix of a
truncated .ppmstream.

Engines: --engine picks the counting strategy (--algorithm is the same
flag). hitset is the paper's two-scan max-subpattern method; apriori is
the level-wise Alg 3.1; parallel shards the hit-set scans across threads;
vertical replaces the tree with per-letter segment bitmaps — counting a
candidate is a k-way AND + popcount — and honours --threads too. Every
sweep engine shares ONE encode/load (a .ppmc input opens directly as the
bitmap rows); --compare-tree additionally races each period against the
tree walk and fails on any disagreement. sweep --workers N mines the
range with a work-stealing scheduler (per-worker deques plus a shared
injector, idle workers steal periods from peers) off that one shared
load; with --bench-report the sequential per-period baseline also runs
and the head-to-head lands in sweep_compare. sweep --compare-ingest
FILE.txt (columnar input only) races text parse+encode against the
columnar open and records ingest_compare.

Verification: mine --audit checks the result against the paper's
invariants (anti-monotone counts, downward closure, confidence bounds,
Property 3.2 bookkeeping), recounts patterns with an independent oracle
(full, or a deterministic sample), and diffs the hit-set, Apriori,
streaming, and vertical engines against each other; violations exit
non-zero.
mine --quarantine skips malformed instants at the scan boundary and
reports them (counts become sound lower bounds); --strict fails fast on
the first one instead. verify re-audits an exported `mine --tsv` file
against its input series.

Observability: --trace prints a live span tree to stderr; --metrics-out
FILE streams structured events as JSON lines and appends a final summary
(per-phase timings, counters, retry/guard counts, mining stats);
mine --progress prints a segments/ETA heartbeat to stderr;
sweep --bench-report NAME writes BENCH_NAME.json with per-phase wall
clock, peak tree nodes, and scan counts; info --period P reports the
Property 3.2 hit-set buffer bound for that period."
}
