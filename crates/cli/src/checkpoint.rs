//! Checkpoint files for resumable multi-period sweeps.
//!
//! A long `ppm sweep` over a big series mines one period at a time; losing
//! the whole run to a crash (or a resource-guard abort) at period 58 of 60
//! is needless. With `--checkpoint FILE` the sweep records one line per
//! *completed* period — enough to reprint its summary row without
//! re-mining — and rewrites the file (via a temp file and rename, so a
//! crash mid-write cannot corrupt it) after every period. A rerun with the
//! same input, range, and threshold skips every period already recorded.
//!
//! The format is line-oriented text, human-inspectable:
//!
//! ```text
//! ppm-sweep-checkpoint v2
//! input data.ppms
//! min_conf 0.6
//! range 40 60
//! period 40 12 5 3 2 c=a1b2c3d4e5f60718
//! period 41 9 4 2 2 c=0918273645fedcba
//! ```
//!
//! where each `period` line is `period patterns |F1| max_len scans` plus
//! (since v2) an FNV-1a checksum of the row body, so a damaged or edited
//! row is rejected by name instead of silently resuming from a wrong
//! count. v1 files (no checksums) still load. A checkpoint written by a
//! *different* sweep (mismatched input, threshold, or range) is rejected
//! rather than silently ignored, so stale files cannot masquerade as
//! progress.

use std::fmt::Write as _;
use std::io::Write as _;

use crate::error::CliError;

/// First line of every checkpoint file this version writes.
const MAGIC_V2: &str = "ppm-sweep-checkpoint v2";

/// The previous format: identical except period rows carry no checksum.
/// Still accepted on load so an upgrade never invalidates progress.
const MAGIC_V1: &str = "ppm-sweep-checkpoint v1";

/// FNV-1a over `bytes` — the same dependency-free checksum the stream
/// storage format uses, applied here per row.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Summary of one fully mined period — everything the sweep report prints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeriodRow {
    /// The mined period.
    pub period: usize,
    /// Number of frequent patterns found.
    pub patterns: usize,
    /// Frequent-letter count `|F1|`.
    pub f1: usize,
    /// Longest frequent pattern's L-length.
    pub max_len: usize,
    /// Series scans the mine performed.
    pub scans: usize,
}

/// The persistent state of a checkpointed sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCheckpoint {
    /// The series file the sweep reads.
    pub input: String,
    /// The confidence threshold.
    pub min_conf: f64,
    /// Low end of the period range (inclusive).
    pub from: usize,
    /// High end of the period range (inclusive).
    pub to: usize,
    /// Completed periods, in ascending period order.
    pub rows: Vec<PeriodRow>,
}

impl SweepCheckpoint {
    /// An empty checkpoint for a fresh sweep.
    pub fn new(input: &str, min_conf: f64, from: usize, to: usize) -> Self {
        SweepCheckpoint {
            input: input.to_owned(),
            min_conf,
            from,
            to,
            rows: Vec::new(),
        }
    }

    /// Whether this checkpoint belongs to the sweep described by the
    /// arguments (same input path, threshold, and range).
    pub fn matches(&self, input: &str, min_conf: f64, from: usize, to: usize) -> bool {
        self.input == input && self.min_conf == min_conf && self.from == from && self.to == to
    }

    /// The recorded row for `period`, if that period already completed.
    pub fn row_for(&self, period: usize) -> Option<&PeriodRow> {
        self.rows.iter().find(|r| r.period == period)
    }

    /// Records a completed period, replacing any previous row for it and
    /// keeping the rows sorted by period.
    pub fn record(&mut self, row: PeriodRow) {
        self.rows.retain(|r| r.period != row.period);
        self.rows.push(row);
        self.rows.sort_by_key(|r| r.period);
    }

    /// Serializes to the (v2) checkpoint text format.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{MAGIC_V2}");
        let _ = writeln!(s, "input {}", self.input);
        let _ = writeln!(s, "min_conf {}", self.min_conf);
        let _ = writeln!(s, "range {} {}", self.from, self.to);
        for r in &self.rows {
            let body = format!(
                "{} {} {} {} {}",
                r.period, r.patterns, r.f1, r.max_len, r.scans
            );
            let _ = writeln!(s, "period {body} c={:016x}", fnv64(body.as_bytes()));
        }
        s
    }

    /// Parses the checkpoint text format (v2, or the checksum-less v1).
    /// Corrupt checkpoints are an error — resuming from garbage would
    /// silently skip unmined periods.
    pub fn parse(text: &str) -> Result<Self, CliError> {
        let bad = |detail: &str| CliError::Usage(format!("corrupt checkpoint: {detail}"));
        let mut lines = text.lines();
        let checksummed = match lines.next() {
            Some(MAGIC_V2) => true,
            Some(MAGIC_V1) => false,
            _ => return Err(bad("missing header (is this a ppm sweep checkpoint?)")),
        };
        let field = |line: Option<&str>, key: &str| -> Result<String, CliError> {
            line.and_then(|l| l.strip_prefix(key))
                .and_then(|v| v.strip_prefix(' '))
                .map(str::to_owned)
                .ok_or_else(|| bad(&format!("expected `{key} ...` line")))
        };
        let input = field(lines.next(), "input")?;
        let min_conf: f64 = field(lines.next(), "min_conf")?
            .parse()
            .map_err(|_| bad("unparsable min_conf"))?;
        let range = field(lines.next(), "range")?;
        let mut range_parts = range.split_whitespace().map(str::parse::<usize>);
        let (from, to) = match (range_parts.next(), range_parts.next(), range_parts.next()) {
            (Some(Ok(a)), Some(Ok(b)), None) => (a, b),
            _ => return Err(bad("unparsable range")),
        };
        let mut rows = Vec::new();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let full = line
                .strip_prefix("period ")
                .ok_or_else(|| bad(&format!("unexpected line {line:?}")))?;
            let body = if checksummed {
                let (body, sum) = full
                    .rsplit_once(" c=")
                    .ok_or_else(|| bad(&format!("period row {full:?} missing checksum")))?;
                let sum = u64::from_str_radix(sum, 16)
                    .map_err(|_| bad(&format!("period row {body:?} has unparsable checksum")))?;
                if fnv64(body.as_bytes()) != sum {
                    return Err(bad(&format!(
                        "checksum mismatch on period row {body:?} — \
                         the row was modified or damaged"
                    )));
                }
                body
            } else {
                full
            };
            let nums: Vec<usize> = body
                .split_whitespace()
                .map(|n| {
                    n.parse()
                        .map_err(|_| bad(&format!("unparsable period row {line:?}")))
                })
                .collect::<Result<_, _>>()?;
            let [period, patterns, f1, max_len, scans] = nums[..] else {
                return Err(bad(&format!(
                    "period row needs 5 fields, got {}",
                    nums.len()
                )));
            };
            rows.push(PeriodRow {
                period,
                patterns,
                f1,
                max_len,
                scans,
            });
        }
        Ok(SweepCheckpoint {
            input,
            min_conf,
            from,
            to,
            rows,
        })
    }

    /// Loads the checkpoint at `path`; `Ok(None)` when the file does not
    /// exist yet (a fresh sweep).
    pub fn load(path: &str) -> Result<Option<Self>, CliError> {
        match std::fs::read_to_string(path) {
            Ok(text) => Self::parse(&text).map(Some),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// Atomically and durably writes the checkpoint to `path`: the text
    /// goes to a sibling temp file (fsynced) which is then renamed over the
    /// target, so a crash mid-save leaves either the old checkpoint or the
    /// new one — never a torn file. After the rename the parent directory
    /// is fsynced best-effort, since on some filesystems the new name
    /// itself is not durable until the directory is flushed. A failed
    /// rename removes the temp file rather than leaving it to shadow the
    /// next save.
    pub fn save(&self, path: &str) -> Result<(), CliError> {
        let tmp = format!("{path}.tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(self.render().as_bytes())?;
            f.sync_all()?;
        }
        if let Err(e) = std::fs::rename(&tmp, path) {
            std::fs::remove_file(&tmp).ok();
            return Err(e.into());
        }
        let parent = match std::path::Path::new(path).parent() {
            Some(p) if !p.as_os_str().is_empty() => p.to_owned(),
            _ => std::path::PathBuf::from("."),
        };
        if let Ok(dir) = std::fs::File::open(parent) {
            dir.sync_all().ok();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SweepCheckpoint {
        let mut cp = SweepCheckpoint::new("data.ppms", 0.6, 40, 60);
        cp.record(PeriodRow {
            period: 41,
            patterns: 9,
            f1: 4,
            max_len: 2,
            scans: 2,
        });
        cp.record(PeriodRow {
            period: 40,
            patterns: 12,
            f1: 5,
            max_len: 3,
            scans: 2,
        });
        cp
    }

    #[test]
    fn render_parse_round_trip() {
        let cp = sample();
        let parsed = SweepCheckpoint::parse(&cp.render()).unwrap();
        assert_eq!(parsed, cp);
        assert_eq!(parsed.rows[0].period, 40, "rows stay sorted");
    }

    #[test]
    fn record_replaces_existing_period() {
        let mut cp = sample();
        cp.record(PeriodRow {
            period: 40,
            patterns: 99,
            f1: 5,
            max_len: 3,
            scans: 4,
        });
        assert_eq!(cp.rows.len(), 2);
        assert_eq!(cp.row_for(40).unwrap().patterns, 99);
    }

    #[test]
    fn matches_checks_all_parameters() {
        let cp = sample();
        assert!(cp.matches("data.ppms", 0.6, 40, 60));
        assert!(!cp.matches("other.ppms", 0.6, 40, 60));
        assert!(!cp.matches("data.ppms", 0.5, 40, 60));
        assert!(!cp.matches("data.ppms", 0.6, 41, 60));
        assert!(!cp.matches("data.ppms", 0.6, 40, 61));
    }

    #[test]
    fn corrupt_checkpoints_are_rejected() {
        assert!(SweepCheckpoint::parse("not a checkpoint").is_err());
        let truncated_header = "ppm-sweep-checkpoint v1\ninput x\n";
        assert!(SweepCheckpoint::parse(truncated_header).is_err());
        let bad_row = format!("{}period 3 nonsense\n", sample().render());
        assert!(SweepCheckpoint::parse(&bad_row).is_err());
        let short_row = format!("{}period 3 1 2\n", sample().render());
        assert!(SweepCheckpoint::parse(&short_row).is_err());
    }

    #[test]
    fn v1_checkpoints_without_checksums_still_load() {
        let cp = sample();
        let v1 = cp
            .render()
            .lines()
            .map(|l| match l.split_once(" c=") {
                Some((body, _)) => body.to_owned(),
                None => l.to_owned(),
            })
            .collect::<Vec<_>>()
            .join("\n")
            .replace("ppm-sweep-checkpoint v2", "ppm-sweep-checkpoint v1");
        assert_eq!(SweepCheckpoint::parse(&v1).unwrap(), cp);
    }

    #[test]
    fn damaged_row_is_rejected_by_name() {
        let cp = sample();
        // Flip one digit inside the first period row's data.
        let tampered = cp.render().replace("period 40 12", "period 40 13");
        let err = SweepCheckpoint::parse(&tampered).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("checksum mismatch"), "{msg}");
        assert!(msg.contains("40 13"), "error must name the row: {msg}");
        // A v2 row with the checksum chopped off is also rejected.
        let render = cp.render();
        let headless: String = render
            .lines()
            .map(|l| match l.split_once(" c=") {
                Some((body, _)) => body.to_owned(),
                None => l.to_owned(),
            })
            .collect::<Vec<_>>()
            .join("\n");
        let err = SweepCheckpoint::parse(&headless).unwrap_err();
        assert!(err.to_string().contains("missing checksum"), "{err}");
    }

    #[test]
    fn byte_flip_fuzz_never_panics_and_rarely_passes() {
        let cp = sample();
        let render = cp.render();
        let bytes = render.as_bytes();
        let mut rejected = 0usize;
        for i in 0..bytes.len() {
            for flip in [1u8, 0x20, 0x80] {
                let mut damaged = bytes.to_vec();
                damaged[i] ^= flip;
                let Ok(text) = String::from_utf8(damaged) else {
                    continue; // fs::read_to_string would reject it anyway
                };
                // Typed error or a successful parse — never a panic.
                if SweepCheckpoint::parse(&text).is_err() {
                    rejected += 1;
                }
            }
        }
        // The checksums make most row damage detectable.
        assert!(rejected > bytes.len(), "only {rejected} flips rejected");
    }

    #[test]
    fn truncation_fuzz_never_panics() {
        let render = sample().render();
        for cut in 0..render.len() {
            if !render.is_char_boundary(cut) {
                continue;
            }
            // Every prefix either parses or errors; no partial row may
            // survive as a row.
            if let Ok(cp) = SweepCheckpoint::parse(&render[..cut]) {
                for row in &cp.rows {
                    assert!(sample().rows.contains(row), "fabricated row {row:?}");
                }
            }
        }
    }

    #[test]
    fn failed_rename_cleans_up_the_temp_file() {
        // A non-empty directory at the target path makes rename fail.
        let dir = crate::cmd::testutil::temp_path("checkpoint-dir", "d");
        std::fs::create_dir(&dir).unwrap();
        std::fs::write(dir.join("occupant"), "x").unwrap();
        let path = dir.to_str().unwrap().to_owned();
        let err = sample().save(&path);
        assert!(err.is_err());
        assert!(
            !std::path::Path::new(&format!("{path}.tmp")).exists(),
            "stale temp file left behind"
        );
        std::fs::remove_file(dir.join("occupant")).ok();
        std::fs::remove_dir(&dir).ok();
    }

    #[test]
    fn save_load_round_trip_and_missing_file() {
        let path = crate::cmd::testutil::temp_path("checkpoint", "ckpt");
        let path = path.to_str().unwrap().to_owned();
        assert!(SweepCheckpoint::load(&path).unwrap().is_none());
        let cp = sample();
        cp.save(&path).unwrap();
        assert_eq!(SweepCheckpoint::load(&path).unwrap().unwrap(), cp);
        std::fs::remove_file(&path).ok();
    }
}
