//! `ppm info` — series summary statistics.
//!
//! With `--period P` (and optionally `--min-conf C`, default 0.5) it also
//! runs scan 1 for that period and reports the Property 3.2 hit-set
//! buffer bound `min(m, 2^|F1| − 1)` — a pre-mining estimate of how many
//! distinct hits the max-subpattern tree can accumulate.

use std::io::Write;

use ppm_core::{hit_set_bound, scan_frequent_letters, MineConfig};

use crate::args::Parsed;
use crate::error::CliError;

/// Runs the command.
pub fn run(args: &Parsed, out: &mut dyn Write) -> Result<(), CliError> {
    let input = args.required("input")?;
    let (series, catalog) = super::load_series(input)?;
    let stats = series.stats();
    writeln!(out, "file:                 {input}")?;
    writeln!(out, "instants:             {}", stats.instants)?;
    writeln!(out, "feature occurrences:  {}", stats.total_features)?;
    writeln!(out, "catalog size:         {}", catalog.len())?;
    writeln!(
        out,
        "mean features/slot:   {:.3}",
        stats.mean_features_per_instant
    )?;
    writeln!(
        out,
        "max features/slot:    {}",
        stats.max_features_per_instant
    )?;
    writeln!(out, "empty slots:          {}", stats.empty_instants)?;
    for period in [24usize, 168] {
        if period <= stats.instants {
            writeln!(
                out,
                "whole segments @p={period}: {}",
                series.period_count(period)
            )?;
        }
    }

    // Per-feature occurrence counts across the whole series.
    let mut occurrences = vec![0u64; catalog.len()];
    for instant in series.iter() {
        for feature in instant {
            if let Some(slot) = occurrences.get_mut(feature.index()) {
                *slot += 1;
            }
        }
    }
    if !occurrences.is_empty() {
        writeln!(out, "feature occurrence counts:")?;
        let mut rows: Vec<(&str, u64)> = catalog
            .iter()
            .map(|(id, name)| (name, occurrences[id.index()]))
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        for (name, count) in rows {
            writeln!(out, "  {name:<20} {count}")?;
        }
    }

    if args.switch("period") {
        let period: usize = args.required_parsed("period")?;
        let min_conf: f64 = args.parsed_or("min-conf", 0.5)?;
        let config = MineConfig::new(min_conf)?;
        let scan1 = scan_frequent_letters(&series, period, &config)?;
        let m = scan1.segment_count as u64;
        let f1 = scan1.alphabet.len();
        writeln!(out, "hit-set estimate @p={period}, min_conf {min_conf}:")?;
        writeln!(out, "  segments m:         {m}")?;
        writeln!(out, "  |F1| letters:       {f1}")?;
        writeln!(out, "  min_count:          {}", scan1.min_count)?;
        writeln!(
            out,
            "  hit-set bound:      {} (Property 3.2: min(m, 2^|F1| - 1))",
            hit_set_bound(m, f1 as u32)
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::cmd::testutil::{run_cli, sample_series_file};

    #[test]
    fn prints_stats() {
        let path = sample_series_file("ppms");
        let text = run_cli(&format!("info --input {}", path.display())).unwrap();
        assert!(text.contains("instants:             90"));
        assert!(text.contains("catalog size:         2"));
        // Per-feature occurrences, most frequent first.
        let alpha = text.find("alpha").unwrap();
        let beta = text.find("beta").unwrap();
        assert!(alpha < beta, "{text}");
        assert!(text.contains("alpha                30"), "{text}");
        assert!(text.contains("beta                 20"), "{text}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn period_flag_reports_the_hit_set_bound() {
        let path = sample_series_file("ppms");
        let text = run_cli(&format!("info --input {} --period 3", path.display())).unwrap();
        // m = 30 segments, |F1| = 2 at the default min_conf 0.5, so the
        // Property 3.2 bound is min(30, 2^2 - 1) = 3.
        assert!(text.contains("segments m:         30"), "{text}");
        assert!(text.contains("|F1| letters:       2"), "{text}");
        assert!(text.contains("hit-set bound:      3"), "{text}");

        // A stricter confidence can shrink F1 and with it the bound.
        let text = run_cli(&format!(
            "info --input {} --period 3 --min-conf 0.9",
            path.display()
        ))
        .unwrap();
        assert!(text.contains("|F1| letters:       1"), "{text}");
        assert!(text.contains("hit-set bound:      1"), "{text}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn invalid_period_is_mining_error() {
        let path = sample_series_file("ppms");
        let err = run_cli(&format!("info --input {} --period 0", path.display())).unwrap_err();
        assert_eq!(err.exit_code(), 1);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = run_cli("info --input /definitely/not/here.ppms").unwrap_err();
        assert_eq!(err.exit_code(), 1);
    }
}
