//! `ppm info` — series summary statistics.

use std::io::Write;

use crate::args::Parsed;
use crate::error::CliError;

/// Runs the command.
pub fn run(args: &Parsed, out: &mut dyn Write) -> Result<(), CliError> {
    let input = args.required("input")?;
    let (series, catalog) = super::load_series(input)?;
    let stats = series.stats();
    writeln!(out, "file:                 {input}")?;
    writeln!(out, "instants:             {}", stats.instants)?;
    writeln!(out, "feature occurrences:  {}", stats.total_features)?;
    writeln!(out, "catalog size:         {}", catalog.len())?;
    writeln!(
        out,
        "mean features/slot:   {:.3}",
        stats.mean_features_per_instant
    )?;
    writeln!(
        out,
        "max features/slot:    {}",
        stats.max_features_per_instant
    )?;
    writeln!(out, "empty slots:          {}", stats.empty_instants)?;
    for period in [24usize, 168] {
        if period <= stats.instants {
            writeln!(
                out,
                "whole segments @p={period}: {}",
                series.period_count(period)
            )?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::cmd::testutil::{run_cli, sample_series_file};

    #[test]
    fn prints_stats() {
        let path = sample_series_file("ppms");
        let text = run_cli(&format!("info --input {}", path.display())).unwrap();
        assert!(text.contains("instants:             90"));
        assert!(text.contains("catalog size:         2"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = run_cli("info --input /definitely/not/here.ppms").unwrap_err();
        assert_eq!(err.exit_code(), 1);
    }
}
