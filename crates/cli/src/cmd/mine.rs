//! `ppm mine` — single-period mining with optional constraints.

use std::io::Write;

use ppm_core::audit::{self, AuditMode};
use ppm_core::closed::mine_closed;
use ppm_core::constraints::{mine_constrained, Constraints};
use ppm_core::maximal::mine_maximal;
use ppm_core::parallel::{mine_parallel, mine_parallel_vertical};
use ppm_core::streaming::{mine_apriori_streaming, mine_hitset_streaming};
use ppm_core::vertical::mine_vertical;
use ppm_core::{mine, Algorithm, MineConfig, MiningResult, MiningStats, Pattern};
use ppm_timeseries::columnar::ColumnarReader;
use ppm_timeseries::storage::stream::FileSource;
use ppm_timeseries::{
    EncodedSeriesView, Fault, FaultInjectingSource, FaultPlan, FeatureCatalog, FeatureSeries,
    MemorySource, QuarantineMode, QuarantineReport, QuarantiningSource, RetryPolicy,
    RetryingSource, SeriesBuilder, SeriesSource,
};

use crate::args::Parsed;
use crate::error::CliError;

/// Runs the command. Observability (`--trace`, `--metrics-out`,
/// `--progress`) wraps the whole mine; the metrics summary embeds the
/// run's [`ppm_core::MiningStats`] — including the *partial* stats a
/// resource-guard abort carries — and is written after the sinks detach,
/// so the summary work is never itself recorded.
pub fn run(args: &Parsed, out: &mut dyn Write) -> Result<(), CliError> {
    let obs = crate::obs::ObsSetup::from_args(args)?;
    let guard = obs.install();
    let outcome = run_inner(args, out);
    drop(guard);
    let stats = match &outcome {
        Ok(stats) => stats.clone(),
        Err(CliError::Mining(e)) => e.partial_stats().cloned(),
        Err(_) => None,
    };
    obs.finalize(stats.as_ref(), out)?;
    outcome.map(|_| ())
}

/// The mining body; returns the run's stats for the metrics summary
/// (`None` only for paths that never mined, e.g. a usage error).
fn run_inner(args: &Parsed, out: &mut dyn Write) -> Result<Option<MiningStats>, CliError> {
    let input = args.required("input")?;
    let period: usize = args.required_parsed("period")?;
    let min_conf: f64 = args.required_parsed("min-conf")?;
    let limit: usize = args.parsed_or("limit", 20)?;
    let algorithm = super::resolve_engine(args)?;

    let config = super::apply_guards(args, MineConfig::new(min_conf)?)?;

    let audit_mode = parse_audit_mode(args)?;
    let quarantine = args.switch("quarantine");
    let strict = args.switch("strict");
    // Testing aids for the verification machinery: --inject-garbage plants
    // a contract-violating instant in the scan stream; --perturb-count
    // bumps one reported count after mining so the oracle has something to
    // catch.
    let inject: Option<usize> = if args.switch("inject-garbage") {
        Some(args.required_parsed("inject-garbage")?)
    } else {
        None
    };
    let perturb: Option<usize> = if args.switch("perturb-count") {
        Some(args.required_parsed("perturb-count")?)
    } else {
        None
    };
    if inject.is_some() && !(quarantine || strict) {
        return Err(CliError::Usage(
            "--inject-garbage needs --quarantine or --strict (otherwise the \
             malformed instant would poison the mine unnoticed)"
                .into(),
        ));
    }
    if perturb.is_some() && audit_mode.is_none() {
        return Err(CliError::Usage(
            "--perturb-count only makes sense with --audit (it exists to \
             demonstrate the auditor catching a wrong count)"
                .into(),
        ));
    }
    if audit_mode.is_some() {
        for incompatible in [
            "stream",
            "maximal",
            "closed",
            "tsv",
            "offsets",
            "max-letters",
        ] {
            if args.switch(incompatible) {
                return Err(CliError::Usage(format!(
                    "--audit does not combine with --{incompatible} \
                     (it verifies plain single-period results)"
                )));
            }
        }
    }

    // Out-of-core mode: stream a .ppmstream file; never materialize it.
    if args.switch("stream") {
        if super::format_of(input) != super::Format::Stream {
            return Err(CliError::Usage(
                "--stream requires a .ppmstream input (see `ppm convert`)".into(),
            ));
        }
        if !matches!(algorithm, "apriori" | "hitset") {
            return Err(CliError::Usage(format!(
                "--stream supports --engine apriori|hitset, not {algorithm:?}"
            )));
        }
        let file = FileSource::open(input)?;
        let catalog = file.catalog().clone();
        // --retries N: transparently re-scan up to N extra times when a
        // scan fails with a transient I/O error.
        let retries: usize = if args.switch("retries") {
            args.required_parsed("retries")?
        } else {
            0
        };
        let mut retrying;
        let mut plain;
        let source: &mut dyn SeriesSource = if retries > 0 {
            retrying = RetryingSource::new(file, RetryPolicy::with_max_attempts(retries + 1));
            &mut retrying
        } else {
            plain = file;
            &mut plain
        };
        let mut garbage;
        let source: &mut dyn SeriesSource = match inject {
            Some(t) => {
                garbage = FaultInjectingSource::new(source, garbage_plan(t));
                &mut garbage
            }
            None => source,
        };
        let run_one = |src: &mut dyn SeriesSource| match algorithm {
            "apriori" => mine_apriori_streaming(src, period, &config),
            _ => mine_hitset_streaming(src, period, &config),
        };
        let mut qreport = None;
        let result = if quarantine || strict {
            let mut q = QuarantiningSource::new(source, quarantine_mode(strict));
            let r = run_one(&mut q);
            qreport = Some(q.into_parts().1);
            r
        } else {
            run_one(source)
        };
        let result = report_if_aborted(result, out)?;
        writeln!(
            out,
            "streamed {} file scans from {input}",
            result.stats.series_scans
        )?;
        if let Some(rep) = &qreport {
            print_quarantine(rep, out)?;
        }
        print_result(&result, &catalog, period, min_conf, limit, out)?;
        // Quarantined instants mean the printed counts are lower bounds;
        // scripts learn that through the dedicated exit code.
        if let Some(rep) = &qreport {
            if !rep.is_empty() {
                return Err(CliError::Quarantined { skipped: rep.len() });
            }
        }
        return Ok(Some(result.stats));
    }

    // Columnar fast path: a `.ppmc` file's bytes *are* the bitmap rows, so
    // the view-backed engines mine straight off the load with no series
    // materialized. Modes that need raw instants (quarantine, maximal,
    // closed, constraints) fall through to the materializing path below.
    let needs_instants = quarantine
        || strict
        || args.switch("maximal")
        || args.switch("closed")
        || args.switch("offsets")
        || args.switch("max-letters");
    if super::format_of(input) == super::Format::Columnar && !needs_instants {
        let threads: usize = args.parsed_or("threads", 1)?;
        let viewable =
            matches!(algorithm, "hitset" | "apriori") || (algorithm == "vertical" && threads <= 1);
        if viewable {
            let reader = ColumnarReader::open(input)?;
            let view = reader.view();
            let result = match algorithm {
                "apriori" => ppm_core::apriori::mine_view(view, period, &config),
                "vertical" => ppm_core::vertical::mine_vertical_view(view, period, &config),
                _ => ppm_core::hitset::mine_view(view, period, &config),
            };
            let mut result = report_if_aborted(result, out)?;
            if let Some(idx) = perturb {
                if idx >= result.frequent.len() {
                    return Err(CliError::Usage(format!(
                        "--perturb-count {idx}: result has only {} patterns",
                        result.frequent.len()
                    )));
                }
                result.frequent[idx].count += 1;
                writeln!(out, "perturbed pattern #{idx}: count bumped by 1")?;
            }
            if args.switch("tsv") {
                write!(
                    out,
                    "{}",
                    ppm_core::export::patterns_tsv(&result, reader.catalog())
                )?;
                return Ok(Some(result.stats));
            }
            print_result(&result, reader.catalog(), period, min_conf, limit, out)?;
            if let Some(mode) = audit_mode {
                run_audit_view(view, &result, reader.catalog(), period, &config, mode, out)?;
            }
            return Ok(Some(result.stats));
        }
    }

    let (series, catalog) = super::load_series(input)?;

    // Quarantine: pass every instant through scan-boundary validation and
    // mine the cleaned series. Quarantined instants become empty, so all
    // reported counts/confidences are sound lower bounds.
    let mut skipped = 0;
    let series = if quarantine || strict {
        let (cleaned, rep) = quarantine_series(&series, inject, strict)?;
        print_quarantine(&rep, out)?;
        skipped = rep.len();
        cleaned
    } else {
        series
    };

    // Maximal-only mode short-circuits (it has its own result shape).
    if args.switch("maximal") {
        let result = mine_maximal(&series, period, &config)?;
        writeln!(
            out,
            "{} maximal patterns (period {period}, {} segments, min_conf {min_conf}):",
            result.maximal.len(),
            result.segment_count
        )?;
        for fp in result.maximal.iter().take(limit) {
            let pattern = Pattern::from_letter_set(&result.alphabet, &fp.letters);
            writeln!(
                out,
                "  {}  count={} conf={:.3}",
                pattern.display(&catalog),
                fp.count,
                fp.count as f64 / result.segment_count as f64
            )?;
        }
        return finish_mined(result.stats, skipped);
    }

    // Closed-only mode: the lossless compression of the frequent set.
    if args.switch("closed") {
        let result = mine_closed(&series, period, &config)?;
        writeln!(
            out,
            "{} closed patterns (period {period}, {} segments, min_conf {min_conf}):",
            result.closed.len(),
            result.segment_count
        )?;
        for fp in result.closed.iter().take(limit) {
            let pattern = Pattern::from_letter_set(&result.alphabet, &fp.letters);
            writeln!(
                out,
                "  {}  count={} conf={:.3}",
                pattern.display(&catalog),
                fp.count,
                fp.count as f64 / result.segment_count as f64
            )?;
        }
        return finish_mined(result.stats, skipped);
    }

    let offsets = args.parsed_list::<usize>("offsets")?;
    let max_letters = args
        .get("max-letters")
        .map(|_| args.required_parsed("max-letters"));
    let constrained = offsets.is_some() || max_letters.is_some();

    let mut result = if constrained {
        let mut c = Constraints::none();
        if let Some(o) = offsets {
            c = c.at_offsets(o);
        }
        if let Some(m) = max_letters {
            c = c.max_letters(m?);
        }
        mine_constrained(&series, period, &config, &c)?
    } else {
        let result = match algorithm {
            "apriori" => mine(&series, period, &config, Algorithm::Apriori),
            "hitset" => mine(&series, period, &config, Algorithm::HitSet),
            "parallel" => {
                let threads: usize = args.parsed_or("threads", 4)?;
                mine_parallel(&series, period, &config, threads)
            }
            "vertical" => {
                let threads: usize = args.parsed_or("threads", 1)?;
                if threads > 1 {
                    mine_parallel_vertical(&series, period, &config, threads)
                } else {
                    mine_vertical(&series, period, &config)
                }
            }
            other => {
                return Err(CliError::Usage(format!(
                    "unknown --engine {other:?} (apriori|hitset|parallel|vertical)"
                )))
            }
        };
        report_if_aborted(result, out)?
    };

    if let Some(idx) = perturb {
        if idx >= result.frequent.len() {
            return Err(CliError::Usage(format!(
                "--perturb-count {idx}: result has only {} patterns",
                result.frequent.len()
            )));
        }
        result.frequent[idx].count += 1;
        writeln!(out, "perturbed pattern #{idx}: count bumped by 1")?;
    }

    if args.switch("tsv") {
        write!(out, "{}", ppm_core::export::patterns_tsv(&result, &catalog))?;
        return finish_mined(result.stats, skipped);
    }
    print_result(&result, &catalog, period, min_conf, limit, out)?;
    if let Some(mode) = audit_mode {
        run_audit(&series, &result, &catalog, period, &config, mode, out)?;
    }
    finish_mined(result.stats, skipped)
}

/// The tail of every mined path: a run that quarantined instants reports
/// its (sound, lower-bound) results and then exits with the dedicated
/// quarantine code so scripts can tell "exact" from "defensible".
fn finish_mined(stats: MiningStats, skipped: usize) -> Result<Option<MiningStats>, CliError> {
    if skipped > 0 {
        Err(CliError::Quarantined { skipped })
    } else {
        Ok(Some(stats))
    }
}

/// Parses `--audit` / `--audit full` / `--audit sample` / `--audit N`
/// (sample N patterns).
fn parse_audit_mode(args: &Parsed) -> Result<Option<AuditMode>, CliError> {
    if !args.switch("audit") {
        return Ok(None);
    }
    match args.get("audit") {
        None | Some("full") => Ok(Some(AuditMode::Full)),
        Some("sample") => Ok(Some(AuditMode::sample())),
        Some(other) => match other.parse::<usize>() {
            Ok(n) if n > 0 => Ok(Some(AuditMode::Sample(n))),
            _ => Err(CliError::Usage(format!(
                "--audit accepts full, sample, or a sample size, not {other:?}"
            ))),
        },
    }
}

fn quarantine_mode(strict: bool) -> QuarantineMode {
    if strict {
        QuarantineMode::Reject
    } else {
        QuarantineMode::Quarantine
    }
}

/// A plan that plants [`Fault::Garbage`] on every scan attempt a mine can
/// plausibly make, so the malformed instant survives multi-scan algorithms.
fn garbage_plan(instant: usize) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for attempt in 0..32 {
        plan = plan.fail_scan(attempt, Fault::Garbage { instant });
    }
    plan
}

/// Materializes `series` through a [`QuarantiningSource`] (optionally with
/// an injected garbage instant), returning the cleaned series and the
/// quarantine record. In `--strict` mode a malformed instant surfaces as
/// the source's typed rejection error instead.
fn quarantine_series(
    series: &FeatureSeries,
    inject: Option<usize>,
    strict: bool,
) -> Result<(FeatureSeries, QuarantineReport), CliError> {
    let mem = MemorySource::new(series);
    let mut faulty;
    let mut plain;
    let source: &mut dyn SeriesSource = match inject {
        Some(t) => {
            faulty = FaultInjectingSource::new(mem, garbage_plan(t));
            &mut faulty
        }
        None => {
            plain = mem;
            &mut plain
        }
    };
    let mut q = QuarantiningSource::new(source, quarantine_mode(strict));
    let mut builder = SeriesBuilder::new();
    q.scan(&mut |_, feats| builder.push_instant(feats.iter().copied()))?;
    let (_, report) = q.into_parts();
    Ok((builder.finish(), report))
}

/// Reports what the quarantine skipped (greppable: `quarantined`).
fn print_quarantine(report: &QuarantineReport, out: &mut dyn Write) -> Result<(), CliError> {
    if report.is_empty() {
        writeln!(out, "quarantined 0 instants")?;
        return Ok(());
    }
    writeln!(
        out,
        "quarantined {} instants ({} suppressions across scans); \
         counts below are sound lower bounds:",
        report.len(),
        report.total_skips()
    )?;
    for entry in report.entries().take(10) {
        writeln!(
            out,
            "  instant {}: {} ({} bytes recorded)",
            entry.instant,
            entry.reason,
            entry.bytes.len()
        )?;
    }
    if report.len() > 10 {
        writeln!(out, "  … and {} more", report.len() - 10)?;
    }
    Ok(())
}

/// Runs the full verification stack on a mined result: structural
/// invariants, the differential oracle's recount, and the cross-algorithm
/// diff. Violations are printed and surface as [`CliError::Audit`]
/// (exit code 1) so pipelines fail loudly on a wrong answer.
fn run_audit(
    series: &FeatureSeries,
    result: &MiningResult,
    catalog: &FeatureCatalog,
    period: usize,
    config: &MineConfig,
    mode: AuditMode,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let report = audit::audit(series, result, catalog, mode)?;
    let check = audit::cross_check(series, period, config, catalog)?;
    finish_audit(report, check, out)
}

/// [`run_audit`] for a result mined off a borrowed columnar view: the
/// cross-engine diff runs straight off the packed rows
/// ([`audit::cross_check_view`] — hit-set, Apriori, vertical); the recount
/// oracle needs raw instants, so the view is rebuilt into a series just
/// for that check.
fn run_audit_view(
    view: EncodedSeriesView<'_>,
    result: &MiningResult,
    catalog: &FeatureCatalog,
    period: usize,
    config: &MineConfig,
    mode: AuditMode,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let mut builder = SeriesBuilder::new();
    for t in 0..view.len() {
        builder.push_instant(view.features_at(t));
    }
    let series = builder.finish();
    let report = audit::audit(&series, result, catalog, mode)?;
    let check = audit::cross_check_view(view, period, config, catalog)?;
    finish_audit(report, check, out)
}

/// Shared audit reporting: prints the cross-check verdict and the merged
/// summary, then fails loudly ([`CliError::Audit`], exit code 1) on any
/// violation.
fn finish_audit(
    mut report: ppm_core::audit::AuditReport,
    check: ppm_core::audit::CrossCheck,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    writeln!(
        out,
        "cross-check: {} engines on {} patterns — {}",
        check.algorithms.len(),
        check.compared,
        if check.agreed() { "agree" } else { "DISAGREE" }
    )?;
    report.absorb(check.report);
    writeln!(out, "audit: {}", report.summary())?;
    if report.is_clean() {
        return Ok(());
    }
    for v in &report.violations {
        writeln!(out, "  {v}")?;
    }
    Err(CliError::Audit(format!(
        "{} violations (details above)",
        report.violations.len()
    )))
}

/// On a resource-guard abort ([`ppm_core::Error::DeadlineExceeded`] /
/// [`ppm_core::Error::TreeBudgetExceeded`]) reports the partial progress
/// the error carries before surfacing it — the process still exits
/// non-zero, but the operator sees how far mining got and which knob to
/// turn. Other errors pass through untouched.
fn report_if_aborted(
    result: Result<MiningResult, ppm_core::Error>,
    out: &mut dyn Write,
) -> Result<MiningResult, CliError> {
    match result {
        Ok(r) => Ok(r),
        Err(e) => {
            if let Some(stats) = e.partial_stats() {
                writeln!(out, "mining aborted: {e}")?;
                writeln!(
                    out,
                    "partial progress: {} series scans, {} tree nodes, \
                     {} hit insertions; raise --deadline-ms / --max-tree-nodes to finish",
                    stats.series_scans, stats.tree_nodes, stats.hit_insertions
                )?;
            }
            Err(e.into())
        }
    }
}

/// Shared frequent-pattern report.
fn print_result(
    result: &MiningResult,
    catalog: &ppm_timeseries::FeatureCatalog,
    period: usize,
    min_conf: f64,
    limit: usize,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    writeln!(
        out,
        "{} frequent patterns (period {period}, {} segments, min_conf {min_conf}, \
         {} scans); showing up to {limit}, longest first:",
        result.len(),
        result.segment_count,
        result.stats.series_scans
    )?;
    let mut rows: Vec<_> = result.frequent.iter().collect();
    rows.sort_by(|a, b| {
        b.letters
            .len()
            .cmp(&a.letters.len())
            .then(b.count.cmp(&a.count))
    });
    for fp in rows.into_iter().take(limit) {
        let pattern = Pattern::from_letter_set(&result.alphabet, &fp.letters);
        writeln!(
            out,
            "  {}  count={} conf={:.3}",
            pattern.display(catalog),
            fp.count,
            fp.count as f64 / result.segment_count as f64
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::cmd::testutil::{run_cli, sample_series_file};

    #[test]
    fn mines_the_sample() {
        let path = sample_series_file("ppms");
        let text = run_cli(&format!(
            "mine --input {} --period 3 --min-conf 0.6",
            path.display()
        ))
        .unwrap();
        assert!(text.contains("frequent patterns"), "{text}");
        assert!(text.contains("alpha"), "{text}");
        assert!(text.contains("2 scans"), "{text}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn all_algorithms_agree_in_output_counts() {
        let path = sample_series_file("ppms");
        let base = run_cli(&format!(
            "mine --input {} --period 3 --min-conf 0.6",
            path.display()
        ))
        .unwrap();
        let first_line = base.lines().next().unwrap().to_owned();
        for algo in ["apriori", "parallel", "vertical"] {
            let text = run_cli(&format!(
                "mine --input {} --period 3 --min-conf 0.6 --engine {algo}",
                path.display()
            ))
            .unwrap();
            let n = |s: &str| s.split(' ').next().unwrap().to_owned();
            assert_eq!(
                n(text.lines().next().unwrap()),
                n(&first_line),
                "{algo} disagrees"
            );
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn maximal_mode() {
        let path = sample_series_file("ppms");
        let text = run_cli(&format!(
            "mine --input {} --period 3 --min-conf 0.6 --maximal",
            path.display()
        ))
        .unwrap();
        assert!(text.contains("maximal patterns"), "{text}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn constrained_mode_filters_offsets() {
        let path = sample_series_file("ppms");
        let text = run_cli(&format!(
            "mine --input {} --period 3 --min-conf 0.6 --offsets 0 --max-letters 1",
            path.display()
        ))
        .unwrap();
        assert!(text.contains("alpha"), "{text}");
        assert!(!text.contains("beta"), "{text}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn tsv_output_is_machine_readable() {
        let path = sample_series_file("ppms");
        let text = run_cli(&format!(
            "mine --input {} --period 3 --min-conf 0.6 --tsv",
            path.display()
        ))
        .unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "pattern\tletters\tl_length\tcount\tconfidence");
        assert!(lines.len() > 1);
        assert!(
            lines[1..].iter().all(|l| l.split('\t').count() == 5),
            "{text}"
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn closed_mode() {
        let path = sample_series_file("ppms");
        let text = run_cli(&format!(
            "mine --input {} --period 3 --min-conf 0.6 --closed",
            path.display()
        ))
        .unwrap();
        assert!(text.contains("closed patterns"), "{text}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn stream_mode_mines_out_of_core() {
        let path = sample_series_file("ppmstream");
        let text = run_cli(&format!(
            "mine --input {} --period 3 --min-conf 0.6 --stream",
            path.display()
        ))
        .unwrap();
        assert!(text.contains("streamed 2 file scans"), "{text}");
        assert!(text.contains("alpha"), "{text}");
        // Apriori streams too, with more scans.
        let text = run_cli(&format!(
            "mine --input {} --period 3 --min-conf 0.6 --stream --algorithm apriori",
            path.display()
        ))
        .unwrap();
        assert!(text.contains("file scans"), "{text}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn stream_mode_requires_stream_format() {
        let path = sample_series_file("ppms");
        let err = run_cli(&format!(
            "mine --input {} --period 3 --min-conf 0.6 --stream",
            path.display()
        ))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bad_algorithm_is_usage_error() {
        let path = sample_series_file("ppms");
        for flag in ["--algorithm magic", "--engine magic"] {
            let err = run_cli(&format!(
                "mine --input {} --period 3 --min-conf 0.6 {flag}",
                path.display()
            ))
            .unwrap_err();
            assert_eq!(err.exit_code(), 2, "{flag}");
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn engine_and_algorithm_together_is_usage_error() {
        let path = sample_series_file("ppms");
        let err = run_cli(&format!(
            "mine --input {} --period 3 --min-conf 0.6 --engine vertical --algorithm hitset",
            path.display()
        ))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn vertical_engine_mines_with_two_scans_and_threads() {
        let path = sample_series_file("ppms");
        let base = run_cli(&format!(
            "mine --input {} --period 3 --min-conf 0.6",
            path.display()
        ))
        .unwrap();
        let vertical = run_cli(&format!(
            "mine --input {} --period 3 --min-conf 0.6 --engine vertical",
            path.display()
        ))
        .unwrap();
        assert_eq!(base, vertical, "vertical must report identical patterns");
        assert!(vertical.contains("2 scans"), "{vertical}");
        let threaded = run_cli(&format!(
            "mine --input {} --period 3 --min-conf 0.6 --engine vertical --threads 3",
            path.display()
        ))
        .unwrap();
        assert_eq!(base, threaded, "threaded vertical must agree too");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn retries_flag_streams_like_the_plain_path() {
        let path = sample_series_file("ppmstream");
        let text = run_cli(&format!(
            "mine --input {} --period 3 --min-conf 0.6 --stream --retries 3",
            path.display()
        ))
        .unwrap();
        // A clean file needs no retries; logical scan count is unchanged.
        assert!(text.contains("streamed 2 file scans"), "{text}");
        assert!(text.contains("alpha"), "{text}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn zero_deadline_reports_partial_progress() {
        let path = sample_series_file("ppms");
        let argv: Vec<String> = format!(
            "mine --input {} --period 3 --min-conf 0.6 --deadline-ms 0",
            path.display()
        )
        .split_whitespace()
        .map(str::to_owned)
        .collect();
        let mut out = Vec::new();
        let err = crate::run(&argv, &mut out).unwrap_err();
        // Guard trips have their own exit code: partial result, not failure.
        assert_eq!(err.exit_code(), 3);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("mining aborted"), "{text}");
        assert!(text.contains("partial progress"), "{text}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn valueless_resilience_flags_are_usage_errors() {
        // A forgotten value must not silently disable the guard/retry the
        // user asked for.
        let ppms = sample_series_file("ppms");
        let stream = sample_series_file("ppmstream");
        for cmd in [
            format!(
                "mine --input {} --period 3 --min-conf 0.6 --deadline-ms",
                ppms.display()
            ),
            format!(
                "mine --input {} --period 3 --min-conf 0.6 --max-tree-nodes",
                ppms.display()
            ),
            format!(
                "mine --input {} --period 3 --min-conf 0.6 --stream --retries",
                stream.display()
            ),
            format!(
                "sweep --input {} --from 2 --to 4 --min-conf 0.6 --checkpoint",
                ppms.display()
            ),
        ] {
            let err = run_cli(&cmd).unwrap_err();
            assert_eq!(err.exit_code(), 2, "{cmd}");
        }
        std::fs::remove_file(ppms).ok();
        std::fs::remove_file(stream).ok();
    }

    #[test]
    fn generous_guards_change_nothing() {
        let path = sample_series_file("ppms");
        let base = run_cli(&format!(
            "mine --input {} --period 3 --min-conf 0.6",
            path.display()
        ))
        .unwrap();
        let guarded = run_cli(&format!(
            "mine --input {} --period 3 --min-conf 0.6 \
             --deadline-ms 3600000 --max-tree-nodes 1000000",
            path.display()
        ))
        .unwrap();
        assert_eq!(base, guarded);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn metrics_out_writes_parseable_summary() {
        use crate::cmd::testutil::temp_path;
        use ppm_observe::Json;

        let path = sample_series_file("ppms");
        let metrics = temp_path("mine-metrics", "json");
        let text = run_cli(&format!(
            "mine --input {} --period 3 --min-conf 0.6 --metrics-out {}",
            path.display(),
            metrics.display()
        ))
        .unwrap();
        assert!(text.contains("metrics written to"), "{text}");

        let raw = std::fs::read_to_string(&metrics).unwrap();
        let lines: Vec<&str> = raw.lines().collect();
        assert!(lines.len() > 1, "events plus a summary line: {raw}");
        for line in &lines {
            Json::parse(line).unwrap_or_else(|e| panic!("{e} in {line}"));
        }
        let summary = Json::parse(lines.last().unwrap()).unwrap();
        assert_eq!(summary.get("type").unwrap().as_str(), Some("summary"));
        let phases = summary.get("phases").unwrap().as_arr().unwrap();
        assert!(
            phases
                .iter()
                .any(|p| p.get("name").unwrap().as_str() == Some("hitset.mine")),
            "{raw}"
        );
        assert_eq!(summary.get("retries").unwrap().as_u64(), Some(0));
        assert_eq!(summary.get("guard_trips").unwrap().as_u64(), Some(0));
        let stats = summary.get("mining_stats").unwrap();
        assert_eq!(stats.get("series_scans").unwrap().as_u64(), Some(2));
        std::fs::remove_file(path).ok();
        std::fs::remove_file(metrics).ok();
    }

    #[test]
    fn guard_abort_still_reaches_the_metrics_summary() {
        use crate::cmd::testutil::temp_path;
        use ppm_observe::Json;

        let path = sample_series_file("ppms");
        let metrics = temp_path("mine-metrics-abort", "json");
        let argv: Vec<String> = format!(
            "mine --input {} --period 3 --min-conf 0.6 --deadline-ms 0 --metrics-out {}",
            path.display(),
            metrics.display()
        )
        .split_whitespace()
        .map(str::to_owned)
        .collect();
        let mut out = Vec::new();
        let err = crate::run(&argv, &mut out).unwrap_err();
        assert_eq!(err.exit_code(), 3);

        let raw = std::fs::read_to_string(&metrics).unwrap();
        let summary = Json::parse(raw.lines().last().unwrap()).unwrap();
        assert_eq!(summary.get("guard_trips").unwrap().as_u64(), Some(1));
        // The partial stats carried by the abort still land in the summary.
        assert!(summary.get("mining_stats").is_some(), "{raw}");
        std::fs::remove_file(path).ok();
        std::fs::remove_file(metrics).ok();
    }

    #[test]
    fn trace_and_progress_leave_stdout_unchanged() {
        let path = sample_series_file("ppms");
        let base = run_cli(&format!(
            "mine --input {} --period 3 --min-conf 0.6",
            path.display()
        ))
        .unwrap();
        for extra in [
            "--trace",
            "--progress",
            "--progress --progress-interval-ms 5",
        ] {
            let text = run_cli(&format!(
                "mine --input {} --period 3 --min-conf 0.6 {extra}",
                path.display()
            ))
            .unwrap();
            assert_eq!(base, text, "{extra} must only write to stderr");
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn valueless_metrics_out_is_usage_error() {
        let path = sample_series_file("ppms");
        let err = run_cli(&format!(
            "mine --input {} --period 3 --min-conf 0.6 --metrics-out",
            path.display()
        ))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn audit_full_is_clean_for_all_algorithms() {
        let path = sample_series_file("ppms");
        for algo in ["hitset", "apriori", "parallel", "vertical"] {
            let text = run_cli(&format!(
                "mine --input {} --period 3 --min-conf 0.6 --engine {algo} --audit full",
                path.display()
            ))
            .unwrap();
            assert!(text.contains("audit: clean"), "{algo}: {text}");
            assert!(text.contains("cross-check: 4 engines"), "{algo}: {text}");
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn sampled_audit_is_clean_and_says_so() {
        let path = sample_series_file("ppms");
        let text = run_cli(&format!(
            "mine --input {} --period 3 --min-conf 0.6 --audit 2",
            path.display()
        ))
        .unwrap();
        assert!(text.contains("audit: clean"), "{text}");
        assert!(text.contains("sampled"), "{text}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn audit_catches_a_perturbed_count() {
        let path = sample_series_file("ppms");
        let argv: Vec<String> = format!(
            "mine --input {} --period 3 --min-conf 0.6 --audit full --perturb-count 0",
            path.display()
        )
        .split_whitespace()
        .map(str::to_owned)
        .collect();
        let mut out = Vec::new();
        let err = crate::run(&argv, &mut out).unwrap_err();
        assert_eq!(err.exit_code(), 1);
        assert!(err.to_string().contains("verification failed"), "{err}");
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("count mismatch"), "{text}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn quarantine_reports_injected_garbage_and_still_mines() {
        let path = sample_series_file("ppms");
        let argv: Vec<String> = format!(
            "mine --input {} --period 3 --min-conf 0.6 --quarantine --inject-garbage 1",
            path.display()
        )
        .split_whitespace()
        .map(str::to_owned)
        .collect();
        let mut out = Vec::new();
        // Lower-bound results still print, but the exit code says
        // "quarantined" so scripts can tell exact from defensible.
        let err = crate::run(&argv, &mut out).unwrap_err();
        assert_eq!(err.exit_code(), 4);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("quarantined 1 instants"), "{text}");
        assert!(text.contains("instant 1:"), "{text}");
        assert!(text.contains("frequent patterns"), "{text}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn quarantine_on_clean_input_reports_zero() {
        let path = sample_series_file("ppms");
        let base = run_cli(&format!(
            "mine --input {} --period 3 --min-conf 0.6",
            path.display()
        ))
        .unwrap();
        let text = run_cli(&format!(
            "mine --input {} --period 3 --min-conf 0.6 --quarantine",
            path.display()
        ))
        .unwrap();
        assert!(text.contains("quarantined 0 instants"), "{text}");
        // Quarantining a clean series changes nothing downstream.
        assert!(text.ends_with(&base), "{text}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn strict_mode_fails_fast_on_garbage() {
        let path = sample_series_file("ppms");
        let err = run_cli(&format!(
            "mine --input {} --period 3 --min-conf 0.6 --strict --inject-garbage 1",
            path.display()
        ))
        .unwrap_err();
        assert_eq!(err.exit_code(), 1);
        assert!(err.to_string().contains("instant 1"), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn quarantine_works_in_stream_mode() {
        let path = sample_series_file("ppmstream");
        let argv: Vec<String> = format!(
            "mine --input {} --period 3 --min-conf 0.6 --stream --quarantine --inject-garbage 1",
            path.display()
        )
        .split_whitespace()
        .map(str::to_owned)
        .collect();
        let mut out = Vec::new();
        let err = crate::run(&argv, &mut out).unwrap_err();
        assert_eq!(err.exit_code(), 4);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("quarantined 1 instants"), "{text}");
        assert!(text.contains("frequent patterns"), "{text}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn audit_and_garbage_flag_combinations_are_usage_errors() {
        let path = sample_series_file("ppms");
        for extra in [
            "--audit full --tsv",
            "--audit full --maximal",
            "--audit full --closed",
            "--audit full --stream",
            "--audit full --offsets 0",
            "--audit banana",
            "--perturb-count 0",
            "--inject-garbage 1",
        ] {
            let err = run_cli(&format!(
                "mine --input {} --period 3 --min-conf 0.6 {extra}",
                path.display()
            ))
            .unwrap_err();
            assert_eq!(err.exit_code(), 2, "{extra}: {err}");
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn columnar_input_mines_identically_on_every_view_engine() {
        let ppms = sample_series_file("ppms");
        let ppmc = sample_series_file("ppmc");
        for engine in ["hitset", "apriori", "vertical"] {
            let from_binary = run_cli(&format!(
                "mine --input {} --period 3 --min-conf 0.6 --engine {engine}",
                ppms.display()
            ))
            .unwrap();
            let from_columnar = run_cli(&format!(
                "mine --input {} --period 3 --min-conf 0.6 --engine {engine}",
                ppmc.display()
            ))
            .unwrap();
            assert_eq!(from_binary, from_columnar, "{engine}");
        }
        std::fs::remove_file(ppms).ok();
        std::fs::remove_file(ppmc).ok();
    }

    #[test]
    fn columnar_audit_runs_the_view_oracle() {
        let path = sample_series_file("ppmc");
        let text = run_cli(&format!(
            "mine --input {} --period 3 --min-conf 0.6 --audit full",
            path.display()
        ))
        .unwrap();
        assert!(text.contains("cross-check: 3 engines"), "{text}");
        assert!(text.contains("audit: clean"), "{text}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn columnar_audit_catches_a_perturbed_count() {
        let path = sample_series_file("ppmc");
        let argv: Vec<String> = format!(
            "mine --input {} --period 3 --min-conf 0.6 --audit full --perturb-count 0",
            path.display()
        )
        .split_whitespace()
        .map(str::to_owned)
        .collect();
        let mut out = Vec::new();
        let err = crate::run(&argv, &mut out).unwrap_err();
        assert_eq!(err.exit_code(), 1);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("count mismatch"), "{text}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn columnar_input_materializes_for_instant_modes() {
        let path = sample_series_file("ppmc");
        let text = run_cli(&format!(
            "mine --input {} --period 3 --min-conf 0.6 --maximal",
            path.display()
        ))
        .unwrap();
        assert!(text.contains("maximal patterns"), "{text}");
        let text = run_cli(&format!(
            "mine --input {} --period 3 --min-conf 0.6 --quarantine",
            path.display()
        ))
        .unwrap();
        assert!(text.contains("quarantined 0 instants"), "{text}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bad_confidence_is_mining_error() {
        let path = sample_series_file("ppms");
        let err = run_cli(&format!(
            "mine --input {} --period 3 --min-conf 7",
            path.display()
        ))
        .unwrap_err();
        assert_eq!(err.exit_code(), 1);
        std::fs::remove_file(path).ok();
    }
}
