//! `ppm mine` — single-period mining with optional constraints.

use std::io::Write;

use ppm_core::closed::mine_closed;
use ppm_core::constraints::{mine_constrained, Constraints};
use ppm_core::maximal::mine_maximal;
use ppm_core::parallel::mine_parallel;
use ppm_core::streaming::{mine_apriori_streaming, mine_hitset_streaming};
use ppm_core::{mine, Algorithm, MineConfig, MiningResult, MiningStats, Pattern};
use ppm_timeseries::storage::stream::FileSource;
use ppm_timeseries::{RetryPolicy, RetryingSource, SeriesSource};

use crate::args::Parsed;
use crate::error::CliError;

/// Runs the command. Observability (`--trace`, `--metrics-out`,
/// `--progress`) wraps the whole mine; the metrics summary embeds the
/// run's [`ppm_core::MiningStats`] — including the *partial* stats a
/// resource-guard abort carries — and is written after the sinks detach,
/// so the summary work is never itself recorded.
pub fn run(args: &Parsed, out: &mut dyn Write) -> Result<(), CliError> {
    let obs = crate::obs::ObsSetup::from_args(args)?;
    let guard = obs.install();
    let outcome = run_inner(args, out);
    drop(guard);
    let stats = match &outcome {
        Ok(stats) => stats.clone(),
        Err(CliError::Mining(e)) => e.partial_stats().cloned(),
        Err(_) => None,
    };
    obs.finalize(stats.as_ref(), out)?;
    outcome.map(|_| ())
}

/// The mining body; returns the run's stats for the metrics summary
/// (`None` only for paths that never mined, e.g. a usage error).
fn run_inner(args: &Parsed, out: &mut dyn Write) -> Result<Option<MiningStats>, CliError> {
    let input = args.required("input")?;
    let period: usize = args.required_parsed("period")?;
    let min_conf: f64 = args.required_parsed("min-conf")?;
    let limit: usize = args.parsed_or("limit", 20)?;
    let algorithm = args.get("algorithm").unwrap_or("hitset");

    let config = super::apply_guards(args, MineConfig::new(min_conf)?)?;

    // Out-of-core mode: stream a .ppmstream file; never materialize it.
    if args.switch("stream") {
        if super::format_of(input) != super::Format::Stream {
            return Err(CliError::Usage(
                "--stream requires a .ppmstream input (see `ppm convert`)".into(),
            ));
        }
        let file = FileSource::open(input)?;
        let catalog = file.catalog().clone();
        // --retries N: transparently re-scan up to N extra times when a
        // scan fails with a transient I/O error.
        let retries: usize = if args.switch("retries") {
            args.required_parsed("retries")?
        } else {
            0
        };
        let mut retrying;
        let mut plain;
        let source: &mut dyn SeriesSource = if retries > 0 {
            retrying = RetryingSource::new(file, RetryPolicy::with_max_attempts(retries + 1));
            &mut retrying
        } else {
            plain = file;
            &mut plain
        };
        let result = match algorithm {
            "apriori" => mine_apriori_streaming(source, period, &config),
            "hitset" => mine_hitset_streaming(source, period, &config),
            other => {
                return Err(CliError::Usage(format!(
                    "--stream supports --algorithm apriori|hitset, not {other:?}"
                )))
            }
        };
        let result = report_if_aborted(result, out)?;
        writeln!(
            out,
            "streamed {} file scans from {input}",
            result.stats.series_scans
        )?;
        print_result(&result, &catalog, period, min_conf, limit, out)?;
        return Ok(Some(result.stats));
    }

    let (series, catalog) = super::load_series(input)?;

    // Maximal-only mode short-circuits (it has its own result shape).
    if args.switch("maximal") {
        let result = mine_maximal(&series, period, &config)?;
        writeln!(
            out,
            "{} maximal patterns (period {period}, {} segments, min_conf {min_conf}):",
            result.maximal.len(),
            result.segment_count
        )?;
        for fp in result.maximal.iter().take(limit) {
            let pattern = Pattern::from_letter_set(&result.alphabet, &fp.letters);
            writeln!(
                out,
                "  {}  count={} conf={:.3}",
                pattern.display(&catalog),
                fp.count,
                fp.count as f64 / result.segment_count as f64
            )?;
        }
        return Ok(Some(result.stats));
    }

    // Closed-only mode: the lossless compression of the frequent set.
    if args.switch("closed") {
        let result = mine_closed(&series, period, &config)?;
        writeln!(
            out,
            "{} closed patterns (period {period}, {} segments, min_conf {min_conf}):",
            result.closed.len(),
            result.segment_count
        )?;
        for fp in result.closed.iter().take(limit) {
            let pattern = Pattern::from_letter_set(&result.alphabet, &fp.letters);
            writeln!(
                out,
                "  {}  count={} conf={:.3}",
                pattern.display(&catalog),
                fp.count,
                fp.count as f64 / result.segment_count as f64
            )?;
        }
        return Ok(Some(result.stats));
    }

    let offsets = args.parsed_list::<usize>("offsets")?;
    let max_letters = args
        .get("max-letters")
        .map(|_| args.required_parsed("max-letters"));
    let constrained = offsets.is_some() || max_letters.is_some();

    let result = if constrained {
        let mut c = Constraints::none();
        if let Some(o) = offsets {
            c = c.at_offsets(o);
        }
        if let Some(m) = max_letters {
            c = c.max_letters(m?);
        }
        mine_constrained(&series, period, &config, &c)?
    } else {
        let result = match algorithm {
            "apriori" => mine(&series, period, &config, Algorithm::Apriori),
            "hitset" => mine(&series, period, &config, Algorithm::HitSet),
            "parallel" => {
                let threads: usize = args.parsed_or("threads", 4)?;
                mine_parallel(&series, period, &config, threads)
            }
            other => {
                return Err(CliError::Usage(format!(
                    "unknown --algorithm {other:?} (apriori|hitset|parallel)"
                )))
            }
        };
        report_if_aborted(result, out)?
    };

    if args.switch("tsv") {
        write!(out, "{}", ppm_core::export::patterns_tsv(&result, &catalog))?;
        return Ok(Some(result.stats));
    }
    print_result(&result, &catalog, period, min_conf, limit, out)?;
    Ok(Some(result.stats))
}

/// On a resource-guard abort ([`ppm_core::Error::DeadlineExceeded`] /
/// [`ppm_core::Error::TreeBudgetExceeded`]) reports the partial progress
/// the error carries before surfacing it — the process still exits
/// non-zero, but the operator sees how far mining got and which knob to
/// turn. Other errors pass through untouched.
fn report_if_aborted(
    result: Result<MiningResult, ppm_core::Error>,
    out: &mut dyn Write,
) -> Result<MiningResult, CliError> {
    match result {
        Ok(r) => Ok(r),
        Err(e) => {
            if let Some(stats) = e.partial_stats() {
                writeln!(out, "mining aborted: {e}")?;
                writeln!(
                    out,
                    "partial progress: {} series scans, {} tree nodes, \
                     {} hit insertions; raise --deadline-ms / --max-tree-nodes to finish",
                    stats.series_scans, stats.tree_nodes, stats.hit_insertions
                )?;
            }
            Err(e.into())
        }
    }
}

/// Shared frequent-pattern report.
fn print_result(
    result: &MiningResult,
    catalog: &ppm_timeseries::FeatureCatalog,
    period: usize,
    min_conf: f64,
    limit: usize,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    writeln!(
        out,
        "{} frequent patterns (period {period}, {} segments, min_conf {min_conf}, \
         {} scans); showing up to {limit}, longest first:",
        result.len(),
        result.segment_count,
        result.stats.series_scans
    )?;
    let mut rows: Vec<_> = result.frequent.iter().collect();
    rows.sort_by(|a, b| {
        b.letters
            .len()
            .cmp(&a.letters.len())
            .then(b.count.cmp(&a.count))
    });
    for fp in rows.into_iter().take(limit) {
        let pattern = Pattern::from_letter_set(&result.alphabet, &fp.letters);
        writeln!(
            out,
            "  {}  count={} conf={:.3}",
            pattern.display(catalog),
            fp.count,
            fp.count as f64 / result.segment_count as f64
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::cmd::testutil::{run_cli, sample_series_file};

    #[test]
    fn mines_the_sample() {
        let path = sample_series_file("ppms");
        let text = run_cli(&format!(
            "mine --input {} --period 3 --min-conf 0.6",
            path.display()
        ))
        .unwrap();
        assert!(text.contains("frequent patterns"), "{text}");
        assert!(text.contains("alpha"), "{text}");
        assert!(text.contains("2 scans"), "{text}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn all_algorithms_agree_in_output_counts() {
        let path = sample_series_file("ppms");
        let base = run_cli(&format!(
            "mine --input {} --period 3 --min-conf 0.6",
            path.display()
        ))
        .unwrap();
        let first_line = base.lines().next().unwrap().to_owned();
        for algo in ["apriori", "parallel"] {
            let text = run_cli(&format!(
                "mine --input {} --period 3 --min-conf 0.6 --algorithm {algo}",
                path.display()
            ))
            .unwrap();
            let n = |s: &str| s.split(' ').next().unwrap().to_owned();
            assert_eq!(
                n(text.lines().next().unwrap()),
                n(&first_line),
                "{algo} disagrees"
            );
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn maximal_mode() {
        let path = sample_series_file("ppms");
        let text = run_cli(&format!(
            "mine --input {} --period 3 --min-conf 0.6 --maximal",
            path.display()
        ))
        .unwrap();
        assert!(text.contains("maximal patterns"), "{text}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn constrained_mode_filters_offsets() {
        let path = sample_series_file("ppms");
        let text = run_cli(&format!(
            "mine --input {} --period 3 --min-conf 0.6 --offsets 0 --max-letters 1",
            path.display()
        ))
        .unwrap();
        assert!(text.contains("alpha"), "{text}");
        assert!(!text.contains("beta"), "{text}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn tsv_output_is_machine_readable() {
        let path = sample_series_file("ppms");
        let text = run_cli(&format!(
            "mine --input {} --period 3 --min-conf 0.6 --tsv",
            path.display()
        ))
        .unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "pattern\tletters\tl_length\tcount\tconfidence");
        assert!(lines.len() > 1);
        assert!(
            lines[1..].iter().all(|l| l.split('\t').count() == 5),
            "{text}"
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn closed_mode() {
        let path = sample_series_file("ppms");
        let text = run_cli(&format!(
            "mine --input {} --period 3 --min-conf 0.6 --closed",
            path.display()
        ))
        .unwrap();
        assert!(text.contains("closed patterns"), "{text}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn stream_mode_mines_out_of_core() {
        let path = sample_series_file("ppmstream");
        let text = run_cli(&format!(
            "mine --input {} --period 3 --min-conf 0.6 --stream",
            path.display()
        ))
        .unwrap();
        assert!(text.contains("streamed 2 file scans"), "{text}");
        assert!(text.contains("alpha"), "{text}");
        // Apriori streams too, with more scans.
        let text = run_cli(&format!(
            "mine --input {} --period 3 --min-conf 0.6 --stream --algorithm apriori",
            path.display()
        ))
        .unwrap();
        assert!(text.contains("file scans"), "{text}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn stream_mode_requires_stream_format() {
        let path = sample_series_file("ppms");
        let err = run_cli(&format!(
            "mine --input {} --period 3 --min-conf 0.6 --stream",
            path.display()
        ))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bad_algorithm_is_usage_error() {
        let path = sample_series_file("ppms");
        let err = run_cli(&format!(
            "mine --input {} --period 3 --min-conf 0.6 --algorithm magic",
            path.display()
        ))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn retries_flag_streams_like_the_plain_path() {
        let path = sample_series_file("ppmstream");
        let text = run_cli(&format!(
            "mine --input {} --period 3 --min-conf 0.6 --stream --retries 3",
            path.display()
        ))
        .unwrap();
        // A clean file needs no retries; logical scan count is unchanged.
        assert!(text.contains("streamed 2 file scans"), "{text}");
        assert!(text.contains("alpha"), "{text}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn zero_deadline_reports_partial_progress() {
        let path = sample_series_file("ppms");
        let argv: Vec<String> = format!(
            "mine --input {} --period 3 --min-conf 0.6 --deadline-ms 0",
            path.display()
        )
        .split_whitespace()
        .map(str::to_owned)
        .collect();
        let mut out = Vec::new();
        let err = crate::run(&argv, &mut out).unwrap_err();
        assert_eq!(err.exit_code(), 1);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("mining aborted"), "{text}");
        assert!(text.contains("partial progress"), "{text}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn valueless_resilience_flags_are_usage_errors() {
        // A forgotten value must not silently disable the guard/retry the
        // user asked for.
        let ppms = sample_series_file("ppms");
        let stream = sample_series_file("ppmstream");
        for cmd in [
            format!(
                "mine --input {} --period 3 --min-conf 0.6 --deadline-ms",
                ppms.display()
            ),
            format!(
                "mine --input {} --period 3 --min-conf 0.6 --max-tree-nodes",
                ppms.display()
            ),
            format!(
                "mine --input {} --period 3 --min-conf 0.6 --stream --retries",
                stream.display()
            ),
            format!(
                "sweep --input {} --from 2 --to 4 --min-conf 0.6 --checkpoint",
                ppms.display()
            ),
        ] {
            let err = run_cli(&cmd).unwrap_err();
            assert_eq!(err.exit_code(), 2, "{cmd}");
        }
        std::fs::remove_file(ppms).ok();
        std::fs::remove_file(stream).ok();
    }

    #[test]
    fn generous_guards_change_nothing() {
        let path = sample_series_file("ppms");
        let base = run_cli(&format!(
            "mine --input {} --period 3 --min-conf 0.6",
            path.display()
        ))
        .unwrap();
        let guarded = run_cli(&format!(
            "mine --input {} --period 3 --min-conf 0.6 \
             --deadline-ms 3600000 --max-tree-nodes 1000000",
            path.display()
        ))
        .unwrap();
        assert_eq!(base, guarded);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn metrics_out_writes_parseable_summary() {
        use crate::cmd::testutil::temp_path;
        use ppm_observe::Json;

        let path = sample_series_file("ppms");
        let metrics = temp_path("mine-metrics", "json");
        let text = run_cli(&format!(
            "mine --input {} --period 3 --min-conf 0.6 --metrics-out {}",
            path.display(),
            metrics.display()
        ))
        .unwrap();
        assert!(text.contains("metrics written to"), "{text}");

        let raw = std::fs::read_to_string(&metrics).unwrap();
        let lines: Vec<&str> = raw.lines().collect();
        assert!(lines.len() > 1, "events plus a summary line: {raw}");
        for line in &lines {
            Json::parse(line).unwrap_or_else(|e| panic!("{e} in {line}"));
        }
        let summary = Json::parse(lines.last().unwrap()).unwrap();
        assert_eq!(summary.get("type").unwrap().as_str(), Some("summary"));
        let phases = summary.get("phases").unwrap().as_arr().unwrap();
        assert!(
            phases
                .iter()
                .any(|p| p.get("name").unwrap().as_str() == Some("hitset.mine")),
            "{raw}"
        );
        assert_eq!(summary.get("retries").unwrap().as_u64(), Some(0));
        assert_eq!(summary.get("guard_trips").unwrap().as_u64(), Some(0));
        let stats = summary.get("mining_stats").unwrap();
        assert_eq!(stats.get("series_scans").unwrap().as_u64(), Some(2));
        std::fs::remove_file(path).ok();
        std::fs::remove_file(metrics).ok();
    }

    #[test]
    fn guard_abort_still_reaches_the_metrics_summary() {
        use crate::cmd::testutil::temp_path;
        use ppm_observe::Json;

        let path = sample_series_file("ppms");
        let metrics = temp_path("mine-metrics-abort", "json");
        let argv: Vec<String> = format!(
            "mine --input {} --period 3 --min-conf 0.6 --deadline-ms 0 --metrics-out {}",
            path.display(),
            metrics.display()
        )
        .split_whitespace()
        .map(str::to_owned)
        .collect();
        let mut out = Vec::new();
        let err = crate::run(&argv, &mut out).unwrap_err();
        assert_eq!(err.exit_code(), 1);

        let raw = std::fs::read_to_string(&metrics).unwrap();
        let summary = Json::parse(raw.lines().last().unwrap()).unwrap();
        assert_eq!(summary.get("guard_trips").unwrap().as_u64(), Some(1));
        // The partial stats carried by the abort still land in the summary.
        assert!(summary.get("mining_stats").is_some(), "{raw}");
        std::fs::remove_file(path).ok();
        std::fs::remove_file(metrics).ok();
    }

    #[test]
    fn trace_and_progress_leave_stdout_unchanged() {
        let path = sample_series_file("ppms");
        let base = run_cli(&format!(
            "mine --input {} --period 3 --min-conf 0.6",
            path.display()
        ))
        .unwrap();
        for extra in [
            "--trace",
            "--progress",
            "--progress --progress-interval-ms 5",
        ] {
            let text = run_cli(&format!(
                "mine --input {} --period 3 --min-conf 0.6 {extra}",
                path.display()
            ))
            .unwrap();
            assert_eq!(base, text, "{extra} must only write to stderr");
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn valueless_metrics_out_is_usage_error() {
        let path = sample_series_file("ppms");
        let err = run_cli(&format!(
            "mine --input {} --period 3 --min-conf 0.6 --metrics-out",
            path.display()
        ))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bad_confidence_is_mining_error() {
        let path = sample_series_file("ppms");
        let err = run_cli(&format!(
            "mine --input {} --period 3 --min-conf 7",
            path.display()
        ))
        .unwrap_err();
        assert_eq!(err.exit_code(), 1);
        std::fs::remove_file(path).ok();
    }
}
