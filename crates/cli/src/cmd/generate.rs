//! `ppm generate` — write a synthetic series (paper §5.1 generator).

use std::io::Write;

use ppm_datagen::SyntheticSpec;

use crate::args::Parsed;
use crate::error::CliError;

/// Runs the command.
pub fn run(args: &Parsed, out: &mut dyn Write) -> Result<(), CliError> {
    let length: usize = args.required_parsed("length")?;
    let period: usize = args.required_parsed("period")?;
    let max_pat: usize = args.required_parsed("max-pat-length")?;
    let f1: usize = args.required_parsed("f1")?;
    let out_path = args.required("out")?;

    let mut spec = SyntheticSpec::table1(length, period, max_pat, f1);
    spec.seed = args.parsed_or("seed", spec.seed)?;
    if let Err(detail) = spec.validate() {
        return Err(CliError::Usage(detail));
    }
    let data = spec.generate();
    super::save_series(out_path, &data.series, &data.catalog)?;

    let stats = data.series.stats();
    writeln!(
        out,
        "wrote {out_path}: {} instants, {} feature occurrences ({:.2}/instant)",
        stats.instants, stats.total_features, stats.mean_features_per_instant
    )?;
    writeln!(
        out,
        "planted: period={period} MAX-PAT-LENGTH={max_pat} |F1|={f1} \
         (mine with --min-conf {})",
        spec.recommended_min_conf()
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::cmd::testutil::{run_cli, temp_path};

    #[test]
    fn generates_a_minable_file() {
        let path = temp_path("gen", "ppms");
        let p = path.to_str().unwrap();
        let text = run_cli(&format!(
            "generate --length 5000 --period 20 --max-pat-length 3 --f1 6 --out {p}"
        ))
        .unwrap();
        assert!(text.contains("wrote"));
        assert!(text.contains("|F1|=6"));
        // The file is loadable and has the right length.
        let (series, _) = crate::cmd::load_series(p).unwrap();
        assert_eq!(series.len(), 5000);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_invalid_spec() {
        let path = temp_path("gen-bad", "ppms");
        let err = run_cli(&format!(
            "generate --length 10 --period 20 --max-pat-length 3 --f1 6 --out {}",
            path.display()
        ))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn missing_flags_are_usage_errors() {
        let err = run_cli("generate --length 5000").unwrap_err();
        assert_eq!(err.exit_code(), 2);
    }
}
