//! `ppm sweep` — multi-period mining over a range (Algs 3.3/3.4).
//!
//! Every engine shares **one** encode/load: columnar (`.ppmc`) input opens
//! straight into the bitmap rows; other formats are bit-packed once and
//! every period mines from that borrowed view. `--workers N` replaces the
//! per-period loop with the work-stealing scheduler
//! ([`ppm_core::multi::mine_periods_scheduled`]).
//!
//! With `--checkpoint FILE` the sweep mines one period at a time (the
//! looping strategy of Alg 3.3), records each completed period in the
//! checkpoint, and on a rerun resumes without re-mining anything already
//! recorded. Resource-guard aborts (`--deadline-ms`, `--max-tree-nodes`)
//! degrade gracefully: the periods mined so far are reported and kept in
//! the checkpoint instead of the whole run dying.

use std::io::Write;
use std::time::Instant;

use ppm_core::multi::{
    mine_periods_looping_view, mine_periods_scheduled, mine_periods_shared_view, MultiPeriodResult,
    PeriodRange, SweepEngine,
};
use ppm_core::vertical::{mine_vertical, mine_vertical_view};
use ppm_core::{hitset, Algorithm, MineConfig, StatsRollup};
use ppm_observe::Json;
use ppm_timeseries::columnar::ColumnarReader;
use ppm_timeseries::{storage, EncodedSeries, EncodedSeriesView, FeatureCatalog, FeatureSeries};

use crate::args::Parsed;
use crate::checkpoint::{PeriodRow, SweepCheckpoint};
use crate::error::CliError;
use crate::obs::{rollup_json, ObsSetup};

/// Runs the command. `--trace` / `--metrics-out` work as for `mine`;
/// `--bench-report NAME` additionally writes a stable `BENCH_NAME.json`
/// with per-phase wall-clock aggregates, peak tree size, and scan counts.
pub fn run(args: &Parsed, out: &mut dyn Write) -> Result<(), CliError> {
    let bench = if args.switch("bench-report") {
        let name = args.required("bench-report")?;
        if name.is_empty() || name.contains(['/', '\\']) {
            return Err(CliError::Usage(format!(
                "--bench-report name {name:?} must be a bare file-name fragment"
            )));
        }
        if args.switch("checkpoint") {
            return Err(CliError::Usage(
                "--bench-report cannot be combined with --checkpoint \
                 (checkpoint rows do not carry full per-phase stats)"
                    .into(),
            ));
        }
        Some(name.to_owned())
    } else {
        None
    };
    let obs = ObsSetup::from_args_with(args, bench.is_some())?;
    let guard = obs.install();
    let outcome = run_inner(args, out);
    drop(guard);
    let sweep = match &outcome {
        Ok(sweep) => Some(sweep.clone()),
        Err(_) => None,
    };
    obs.finalize_with_extra(
        sweep
            .as_ref()
            .map(|s| ("stats_rollup".to_owned(), rollup_json(&s.rollup)))
            .into_iter()
            .collect(),
        out,
    )?;
    if let (Some(name), Some(sweep)) = (&bench, &sweep) {
        write_bench_report(name, args, sweep, &obs, out)?;
    }
    outcome.map(|_| ())
}

/// What a sweep reports upward: the cross-period stats rollup plus the
/// number of *physical* series scans — for shared mining that is 2, while
/// the rollup's `total.series_scans` sums every period's logical count.
/// The optional comparison records land in the bench report.
#[derive(Clone)]
struct SweepOutcome {
    rollup: StatsRollup,
    physical_scans: usize,
    sweep_compare: Option<SweepCompare>,
    ingest_compare: Option<IngestCompare>,
}

impl SweepOutcome {
    fn new(rollup: StatsRollup, physical_scans: usize) -> Self {
        SweepOutcome {
            rollup,
            physical_scans,
            sweep_compare: None,
            ingest_compare: None,
        }
    }
}

/// The scheduler-vs-sequential head-to-head (`--workers N --bench-report`):
/// one shared load feeding the work-stealing pool against the honest
/// per-period baseline that loads and encodes from scratch for every
/// period, exactly as a standalone `mine` per period would.
#[derive(Clone)]
struct SweepCompare {
    scheduler_us: u64,
    sequential_us: u64,
    workers: usize,
}

/// The ingest head-to-head (`--compare-ingest TEXTFILE`): text parse +
/// bit-pack against a columnar open that loads the rows as they sit on
/// disk. The two encodings are asserted bit-identical before timing wins.
#[derive(Clone)]
struct IngestCompare {
    text_us: u64,
    columnar_us: u64,
}

/// The sweep body; returns the rollup and scan count for the metrics
/// summary and the bench report.
fn run_inner(args: &Parsed, out: &mut dyn Write) -> Result<SweepOutcome, CliError> {
    let input = args.required("input")?;
    let from: usize = args.required_parsed("from")?;
    let to: usize = args.required_parsed("to")?;
    let min_conf: f64 = args.required_parsed("min-conf")?;

    let engine = super::resolve_engine(args)?;
    if !matches!(engine, "hitset" | "apriori" | "vertical") {
        return Err(CliError::Usage(format!(
            "sweep supports --engine hitset|apriori|vertical, not {engine:?}"
        )));
    }
    if engine != "hitset" && (args.switch("looping") || args.switch("checkpoint")) {
        return Err(CliError::Usage(format!(
            "--looping and --checkpoint are hit-set sweep modes; \
             they do not combine with --engine {engine}"
        )));
    }
    if args.switch("compare-tree") && engine != "vertical" {
        return Err(CliError::Usage(
            "--compare-tree only applies to --engine vertical (it races the \
             vertical derivation against the tree walk)"
                .into(),
        ));
    }
    let workers: usize = if args.switch("workers") {
        let w: usize = args.required_parsed("workers")?;
        if w == 0 {
            return Err(CliError::Usage("--workers must be at least 1".into()));
        }
        w
    } else {
        1
    };
    if workers > 1 {
        for flag in ["checkpoint", "compare-tree", "looping"] {
            if args.switch(flag) {
                return Err(CliError::Usage(format!(
                    "--workers runs the work-stealing scheduler; it does not \
                     combine with --{flag}"
                )));
            }
        }
    }

    let config = super::apply_guards(args, MineConfig::new(min_conf)?)?;
    let range = PeriodRange::new(from, to)?;

    if args.switch("checkpoint") {
        let checkpoint_path = args.required("checkpoint")?;
        let (series, _catalog) = super::load_series(input)?;
        return run_checkpointed(
            input,
            from,
            to,
            min_conf,
            checkpoint_path,
            &series,
            &config,
            out,
        );
    }

    // One-time encode/load shared by EVERY engine: a columnar file opens
    // straight into the bitmap rows (the on-disk layout is the encoded
    // layout); any other format is materialized and bit-packed exactly
    // once, here, never again per period.
    let reader_slot;
    let encoded_slot;
    let view: EncodedSeriesView<'_> = match super::format_of(input) {
        super::Format::Columnar => {
            reader_slot = ColumnarReader::open(input)?;
            reader_slot.view()
        }
        _ => {
            let (series, _catalog) = super::load_series(input)?;
            encoded_slot = EncodedSeries::encode(&series);
            encoded_slot.view()
        }
    };

    let ingest_compare = if args.switch("compare-ingest") {
        Some(run_ingest_compare(args, input, out)?)
    } else {
        None
    };

    let mut outcome = if workers > 1 {
        run_scheduled(
            args, input, view, range, &config, engine, workers, from, to, min_conf, out,
        )?
    } else if engine == "vertical" {
        run_vertical(args, view, range, &config, from, to, min_conf, out)?
    } else {
        let (result, how) = if engine == "apriori" {
            (
                mine_periods_looping_view(view, range, &config, Algorithm::Apriori)?,
                "looping Apriori, Alg 3.3/3.1",
            )
        } else if args.switch("looping") {
            (
                mine_periods_looping_view(view, range, &config, Algorithm::HitSet)?,
                "looping, Alg 3.3",
            )
        } else {
            (
                mine_periods_shared_view(view, range, &config)?,
                "shared, Alg 3.4",
            )
        };

        writeln!(
            out,
            "periods {from}..={to}, min_conf {min_conf}, {} total series scans \
             ({how}):",
            result.total_scans,
        )?;
        let (rollup, rows) = tabulate(&result);
        print_table(&rows, out)?;
        SweepOutcome::new(rollup, result.total_scans)
    };
    outcome.ingest_compare = ingest_compare;
    Ok(outcome)
}

/// Folds a multi-period result into the stats rollup and the report rows.
fn tabulate(result: &MultiPeriodResult) -> (StatsRollup, Vec<PeriodRow>) {
    let mut rollup = StatsRollup::new();
    let rows = result
        .results
        .iter()
        .map(|r| {
            rollup.add(&r.stats);
            PeriodRow {
                period: r.period,
                patterns: r.len(),
                f1: r.alphabet.len(),
                max_len: r.max_l_length(),
                scans: r.stats.series_scans,
            }
        })
        .collect();
    (rollup, rows)
}

/// The `--workers N` path: the whole range is mined by the work-stealing
/// scheduler off the shared view. With `--bench-report` the sequential
/// per-period baseline (fresh load + encode + mine per period, exactly the
/// standalone `mine` pipeline) runs afterwards; its results must be
/// bit-identical and the wall-clock head-to-head lands in `sweep_compare`.
#[allow(clippy::too_many_arguments)]
fn run_scheduled(
    args: &Parsed,
    input: &str,
    view: EncodedSeriesView<'_>,
    range: PeriodRange,
    config: &MineConfig,
    engine: &str,
    workers: usize,
    from: usize,
    to: usize,
    min_conf: f64,
    out: &mut dyn Write,
) -> Result<SweepOutcome, CliError> {
    let sweep_engine = match engine {
        "apriori" => SweepEngine::Apriori,
        "vertical" => SweepEngine::Vertical,
        _ => SweepEngine::HitSet,
    };
    let start = Instant::now();
    let result = mine_periods_scheduled(view, range, config, sweep_engine, workers)?;
    let scheduler_us = start.elapsed().as_micros() as u64;

    // Guard trips fail only the periods that hit them; the completed
    // periods still print, the aborted ones are named with their partial
    // progress, and the process exits with the partial-result code.
    if !result.failures.is_empty() {
        for f in &result.failures {
            writeln!(out, "period {} aborted: {}", f.period, f.error)?;
            if let Some(stats) = f.error.partial_stats() {
                writeln!(
                    out,
                    "  partial progress: {} series scans, {} tree nodes, {} hit insertions",
                    stats.series_scans, stats.tree_nodes, stats.hit_insertions
                )?;
            }
        }
        writeln!(
            out,
            "periods {from}..={to}: {} completed, {} aborted by resource guards; \
             raise --deadline-ms / --max-tree-nodes to finish:",
            result.results.len(),
            result.failures.len()
        )?;
        let (_rollup, rows) = tabulate(&result);
        print_table(&rows, out)?;
        let first = result
            .failures
            .into_iter()
            .next()
            .expect("checked nonempty");
        return Err(CliError::Mining(first.error));
    }

    let sweep_compare = if args.switch("bench-report") {
        let start = Instant::now();
        let baseline = sequential_baseline(input, range, config, engine)?;
        let sequential_us = start.elapsed().as_micros() as u64;
        if baseline.results.len() != result.results.len() {
            return Err(CliError::Audit(format!(
                "scheduler mined {} periods, sequential baseline {}",
                result.results.len(),
                baseline.results.len()
            )));
        }
        for (a, b) in result.results.iter().zip(&baseline.results) {
            if a.period != b.period || a.frequent != b.frequent {
                return Err(CliError::Audit(format!(
                    "scheduler and sequential baseline disagree at period {} \
                     ({} vs {} patterns)",
                    a.period,
                    a.len(),
                    b.len()
                )));
            }
        }
        writeln!(
            out,
            "sweep compare: scheduler {scheduler_us} us ({workers} workers, one shared load) \
             vs sequential per-period {sequential_us} us ({:.2}x)",
            sequential_us as f64 / scheduler_us.max(1) as f64
        )?;
        Some(SweepCompare {
            scheduler_us,
            sequential_us,
            workers,
        })
    } else {
        None
    };

    writeln!(
        out,
        "periods {from}..={to}, min_conf {min_conf}, {} total series scans \
         (work-stealing scheduler, {workers} workers):",
        result.total_scans,
    )?;
    let (rollup, rows) = tabulate(&result);
    print_table(&rows, out)?;
    let mut outcome = SweepOutcome::new(rollup, result.total_scans);
    outcome.sweep_compare = sweep_compare;
    Ok(outcome)
}

/// The honest sequential baseline for `sweep_compare`: every period pays
/// the full standalone pipeline — load the input, (re-)encode, mine — the
/// cost an operator pays running `mine` once per period. Skips periods
/// longer than the series like every sweep does.
fn sequential_baseline(
    input: &str,
    range: PeriodRange,
    config: &MineConfig,
    engine: &str,
) -> Result<MultiPeriodResult, CliError> {
    let mut results = Vec::new();
    let mut total_scans = 0;
    for period in range.iter() {
        let (series, _catalog) = super::load_series(input)?;
        if period > series.len() {
            continue;
        }
        let r = match engine {
            "apriori" => ppm_core::mine(&series, period, config, Algorithm::Apriori)?,
            "vertical" => mine_vertical(&series, period, config)?,
            _ => ppm_core::mine(&series, period, config, Algorithm::HitSet)?,
        };
        total_scans += r.stats.series_scans;
        results.push(r);
    }
    Ok(MultiPeriodResult::complete(results, total_scans))
}

/// The `--compare-ingest TEXTFILE` head-to-head (columnar input only):
/// parse + bit-pack the text twin, then open the columnar store, assert
/// the two encodings bit-identical, and report both wall-clocks.
fn run_ingest_compare(
    args: &Parsed,
    input: &str,
    out: &mut dyn Write,
) -> Result<IngestCompare, CliError> {
    if super::format_of(input) != super::Format::Columnar {
        return Err(CliError::Usage(
            "--compare-ingest races text ingestion against a columnar open; \
             the sweep input must be a .ppmc file"
                .into(),
        ));
    }
    let text_path = args.required("compare-ingest")?;
    if super::format_of(text_path) != super::Format::Text {
        return Err(CliError::Usage(
            "--compare-ingest expects the text (.txt) twin of the columnar input".into(),
        ));
    }

    // Best-of-3 per side: a single shot on a busy machine measures the
    // scheduler's mood, not the ingest path. The minimum is the honest
    // steady-state cost of each pipeline.
    let mut text_us = u64::MAX;
    let mut encoded = None;
    for _ in 0..3 {
        let start = Instant::now();
        let text = std::fs::read_to_string(text_path)?;
        let mut catalog = FeatureCatalog::new();
        let series = storage::parse_series(&text, &mut catalog)?;
        let round = EncodedSeries::encode(&series);
        text_us = text_us.min(start.elapsed().as_micros() as u64);
        encoded = Some(round);
    }
    let encoded = encoded.expect("three ingest rounds ran");

    let mut columnar_us = u64::MAX;
    let mut reader = None;
    for _ in 0..3 {
        let start = Instant::now();
        let round = ColumnarReader::open(input)?;
        columnar_us = columnar_us.min(start.elapsed().as_micros() as u64);
        reader = Some(round);
    }
    let reader = reader.expect("three columnar opens ran");

    let fresh = encoded.view();
    let opened = reader.view();
    let identical = fresh.len() == opened.len()
        && fresh.width() == opened.width()
        && (0..fresh.len()).all(|t| fresh.instant_words(t) == opened.instant_words(t));
    if !identical {
        return Err(CliError::Audit(format!(
            "--compare-ingest: {text_path} does not encode bit-identically to {input}"
        )));
    }
    writeln!(
        out,
        "ingest compare: text parse+encode {text_us} us vs columnar open {columnar_us} us \
         ({:.2}x)",
        text_us as f64 / columnar_us.max(1) as f64
    )?;
    Ok(IngestCompare {
        text_us,
        columnar_us,
    })
}

/// A vertical-engine sweep: every period is mined columnarly from the
/// shared bitmap view ([`mine_vertical_view`]) — one encode or one
/// columnar load for the whole range. With `--compare-tree` each period is
/// also mined with the hit-set tree walk off the same view and the two
/// frequent sets are diffed — a disagreement is a verification failure,
/// and a bench report captures both engines' `*.derive` phases for the
/// speedup line.
#[allow(clippy::too_many_arguments)]
fn run_vertical(
    args: &Parsed,
    view: EncodedSeriesView<'_>,
    range: PeriodRange,
    config: &MineConfig,
    from: usize,
    to: usize,
    min_conf: f64,
    out: &mut dyn Write,
) -> Result<SweepOutcome, CliError> {
    let compare = args.switch("compare-tree");
    let mut rollup = StatsRollup::new();
    let mut rows = Vec::new();
    for period in range.iter().filter(|&p| p <= view.len()) {
        let result = mine_vertical_view(view, period, config)?;
        if compare {
            let tree = hitset::mine_view(view, period, config)?;
            if result.frequent != tree.frequent {
                return Err(CliError::Audit(format!(
                    "vertical and tree-walk derivations disagree at period {period} \
                     ({} vs {} patterns)",
                    result.len(),
                    tree.len()
                )));
            }
        }
        rollup.add(&result.stats);
        rows.push(PeriodRow {
            period,
            patterns: result.len(),
            f1: result.alphabet.len(),
            max_len: result.max_l_length(),
            scans: result.stats.series_scans,
        });
    }
    let total_scans: usize = rows.iter().map(|r| r.scans).sum();
    writeln!(
        out,
        "periods {from}..={to}, min_conf {min_conf}, {total_scans} total series scans \
         (vertical bitmap engine{}):",
        if compare { ", tree cross-checked" } else { "" }
    )?;
    print_table(&rows, out)?;
    Ok(SweepOutcome::new(rollup, total_scans))
}

/// Writes `BENCH_<name>.json`: a machine-readable benchmark record with a
/// stable schema — per-phase wall-clock aggregates from the collected
/// spans, gauge maxima, a fixed cache/scheduler counter `snapshot`, the
/// peak tree size across periods, and the scan totals. When both the
/// vertical and tree-walk derivation phases ran
/// (`--engine vertical --compare-tree`), a `derive_compare` object records
/// their wall-clock head-to-head.
fn write_bench_report(
    name: &str,
    args: &Parsed,
    sweep: &SweepOutcome,
    obs: &ObsSetup,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let events = obs.collector().map(|c| c.events()).unwrap_or_default();
    let aggregates = ppm_observe::aggregate_phases(&events);
    let phases: Vec<Json> = aggregates.iter().map(|p| p.to_json()).collect();
    let gauges: Vec<(String, Json)> = obs
        .collector()
        .map(|c| c.gauge_maxima())
        .unwrap_or_default()
        .into_iter()
        .map(|(k, v)| (k, Json::from_u64(v)))
        .collect();
    let wall_us = events.last().map(|e| e.at_us()).unwrap_or(0);
    // A fixed-schema snapshot of the cache and scheduler counters, so
    // report diffing never depends on which counters happened to fire:
    // absent counters read as zero (sweeps never touch the serve cache,
    // single-worker sweeps never steal).
    let counter = |name: &str| obs.collector().map_or(0, |c| c.counter_total(name));
    let gauge_max = |name: &str| {
        obs.collector()
            .and_then(|c| c.gauge_maxima().get(name).copied())
            .unwrap_or(0)
    };
    let snapshot = Json::Obj(vec![
        (
            "cache_hits".to_owned(),
            Json::from_u64(counter("serve.cache.hits")),
        ),
        (
            "cache_derived".to_owned(),
            Json::from_u64(counter("serve.cache.derived")),
        ),
        (
            "cache_misses".to_owned(),
            Json::from_u64(counter("serve.cache.misses")),
        ),
        (
            "tasks_stolen".to_owned(),
            Json::from_u64(counter("sweep.tasks_stolen")),
        ),
        (
            "worker_busy_us".to_owned(),
            Json::from_u64(gauge_max("sweep.worker_busy_us")),
        ),
    ]);
    let mut fields = vec![
        ("type".to_owned(), Json::Str("bench".to_owned())),
        ("name".to_owned(), Json::Str(name.to_owned())),
        (
            "engine".to_owned(),
            Json::Str(super::resolve_engine(args)?.to_owned()),
        ),
        (
            "from".to_owned(),
            Json::from_usize(args.required_parsed("from")?),
        ),
        (
            "to".to_owned(),
            Json::from_usize(args.required_parsed("to")?),
        ),
        ("wall_us".to_owned(), Json::from_u64(wall_us)),
        ("phases".to_owned(), Json::Arr(phases)),
        ("gauges".to_owned(), Json::Obj(gauges)),
        ("snapshot".to_owned(), snapshot),
        (
            "peak_tree_nodes".to_owned(),
            Json::from_usize(sweep.rollup.max_tree_nodes),
        ),
        (
            "total_scans".to_owned(),
            Json::from_usize(sweep.physical_scans),
        ),
        ("stats_rollup".to_owned(), rollup_json(&sweep.rollup)),
    ];
    let phase_us = |name: &str| {
        aggregates
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.total_us)
    };
    if let Some(sc) = &sweep.sweep_compare {
        let speedup = if sc.scheduler_us > 0 {
            sc.sequential_us as f64 / sc.scheduler_us as f64
        } else {
            0.0
        };
        fields.push((
            "sweep_compare".to_owned(),
            Json::Obj(vec![
                ("scheduler_us".to_owned(), Json::from_u64(sc.scheduler_us)),
                ("sequential_us".to_owned(), Json::from_u64(sc.sequential_us)),
                ("speedup".to_owned(), Json::Num(speedup)),
                ("workers".to_owned(), Json::from_usize(sc.workers)),
            ]),
        ));
    }
    if let Some(ic) = &sweep.ingest_compare {
        let speedup = if ic.columnar_us > 0 {
            ic.text_us as f64 / ic.columnar_us as f64
        } else {
            0.0
        };
        fields.push((
            "ingest_compare".to_owned(),
            Json::Obj(vec![
                ("text_us".to_owned(), Json::from_u64(ic.text_us)),
                ("columnar_us".to_owned(), Json::from_u64(ic.columnar_us)),
                ("speedup".to_owned(), Json::Num(speedup)),
            ]),
        ));
    }
    if let (Some(vertical_us), Some(treewalk_us)) =
        (phase_us("vertical.derive"), phase_us("hitset.derive"))
    {
        let speedup = if vertical_us > 0 {
            treewalk_us as f64 / vertical_us as f64
        } else {
            0.0
        };
        fields.push((
            "derive_compare".to_owned(),
            Json::Obj(vec![
                ("vertical_us".to_owned(), Json::from_u64(vertical_us)),
                ("treewalk_us".to_owned(), Json::from_u64(treewalk_us)),
                ("speedup".to_owned(), Json::Num(speedup)),
            ]),
        ));
    }
    let doc = Json::Obj(fields);
    let path = format!("BENCH_{name}.json");
    std::fs::write(&path, format!("{}\n", doc.render()))?;
    writeln!(out, "bench report written to {path}")?;
    Ok(())
}

/// The shared per-period summary table, plus the densest period.
fn print_table(rows: &[PeriodRow], out: &mut dyn Write) -> Result<(), CliError> {
    writeln!(
        out,
        "{:>8} {:>10} {:>9} {:>14}",
        "period", "patterns", "|F1|", "max pattern"
    )?;
    for r in rows {
        writeln!(
            out,
            "{:>8} {:>10} {:>9} {:>14}",
            r.period, r.patterns, r.f1, r.max_len
        )?;
    }
    if let Some(best) = rows.iter().max_by_key(|r| r.patterns) {
        writeln!(out, "densest period: {}", best.period)?;
    }
    Ok(())
}

/// A checkpointed sweep: one period at a time, resuming from (and updating)
/// the checkpoint file after every completed period. The returned rollup
/// covers only the periods mined *now* — checkpoint rows carry summary
/// columns, not full stats.
#[allow(clippy::too_many_arguments)]
fn run_checkpointed(
    input: &str,
    from: usize,
    to: usize,
    min_conf: f64,
    checkpoint_path: &str,
    series: &FeatureSeries,
    config: &MineConfig,
    out: &mut dyn Write,
) -> Result<SweepOutcome, CliError> {
    let mut checkpoint = match SweepCheckpoint::load(checkpoint_path)? {
        Some(cp) if cp.matches(input, min_conf, from, to) => {
            ppm_observe::mark("checkpoint.resumed", || {
                format!(
                    "resumed {checkpoint_path} with {} periods already mined",
                    cp.rows.len()
                )
            });
            writeln!(
                out,
                "resuming from checkpoint {checkpoint_path}: {} of {} periods already mined",
                cp.rows.len(),
                to - from + 1
            )?;
            cp
        }
        Some(_) => {
            return Err(CliError::Usage(format!(
                "checkpoint {checkpoint_path} was written by a different sweep \
                 (input, min-conf, or range mismatch); delete it or choose another path"
            )))
        }
        None => SweepCheckpoint::new(input, min_conf, from, to),
    };

    let mut rollup = StatsRollup::new();
    let mut mined_now = 0usize;
    let mut aborted: Option<ppm_core::Error> = None;
    for period in from..=to {
        if checkpoint.row_for(period).is_some() {
            continue;
        }
        match hitset::mine(series, period, config) {
            Ok(r) => {
                rollup.add(&r.stats);
                checkpoint.record(PeriodRow {
                    period,
                    patterns: r.len(),
                    f1: r.alphabet.len(),
                    max_len: r.max_l_length(),
                    scans: r.stats.series_scans,
                });
                checkpoint.save(checkpoint_path)?;
                ppm_observe::mark("checkpoint.saved", || {
                    format!("period {period} recorded in {checkpoint_path}")
                });
                mined_now += 1;
            }
            // Resource-guard aborts degrade: keep what we have, stop early.
            Err(e) if e.partial_stats().is_some() => {
                aborted = Some(e);
                break;
            }
            Err(e) => return Err(e.into()),
        }
    }

    let total_scans: usize = checkpoint.rows.iter().map(|r| r.scans).sum();
    writeln!(
        out,
        "periods {from}..={to}, min_conf {min_conf}, {total_scans} total series scans \
         (checkpointed looping; {mined_now} mined now, {} from checkpoint):",
        checkpoint.rows.len() - mined_now
    )?;
    print_table(&checkpoint.rows, out)?;

    let outcome = SweepOutcome::new(rollup, total_scans);
    match aborted {
        Some(e) => {
            // Persist the header even if no period completed, so the rerun
            // message below is honest and resume Just Works.
            checkpoint.save(checkpoint_path)?;
            writeln!(out, "sweep aborted early: {e}")?;
            writeln!(
                out,
                "{} of {} periods completed; progress saved in {checkpoint_path} — \
                 rerun the same command to resume",
                checkpoint.rows.len(),
                to - from + 1
            )?;
        }
        None => {
            writeln!(
                out,
                "sweep complete; checkpoint retained at {checkpoint_path}"
            )?;
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use crate::checkpoint::{PeriodRow, SweepCheckpoint};
    use crate::cmd::testutil::{run_cli, sample_series_file, temp_path};

    #[test]
    fn shared_sweep_reports_two_scans() {
        let path = sample_series_file("ppms");
        let text = run_cli(&format!(
            "sweep --input {} --from 2 --to 6 --min-conf 0.6",
            path.display()
        ))
        .unwrap();
        assert!(text.contains("2 total series scans"), "{text}");
        // Period 6 (a multiple of the planted 3) sees the letters twice
        // per segment, so it is densest; period 3 itself has 3 patterns.
        assert!(text.contains("densest period: 6"), "{text}");
        let p3 = text
            .lines()
            .find(|l| l.trim_start().starts_with("3 "))
            .unwrap();
        assert!(p3.contains(" 3 "), "{p3}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn looping_sweep_scales_scans() {
        let path = sample_series_file("ppms");
        let text = run_cli(&format!(
            "sweep --input {} --from 2 --to 6 --min-conf 0.6 --looping",
            path.display()
        ))
        .unwrap();
        assert!(text.contains("10 total series scans"), "{text}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn inverted_range_is_rejected() {
        let path = sample_series_file("ppms");
        let err = run_cli(&format!(
            "sweep --input {} --from 6 --to 2 --min-conf 0.6",
            path.display()
        ))
        .unwrap_err();
        assert_eq!(err.exit_code(), 1);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn checkpointed_sweep_matches_looping_sweep() {
        let path = sample_series_file("ppms");
        let ckpt = temp_path("sweep-clean", "ckpt");
        let text = run_cli(&format!(
            "sweep --input {} --from 2 --to 6 --min-conf 0.6 --checkpoint {}",
            path.display(),
            ckpt.display()
        ))
        .unwrap();
        assert!(text.contains("10 total series scans"), "{text}");
        assert!(text.contains("5 mined now, 0 from checkpoint"), "{text}");
        assert!(text.contains("sweep complete"), "{text}");
        assert!(text.contains("densest period: 6"), "{text}");
        let cp = SweepCheckpoint::load(ckpt.to_str().unwrap())
            .unwrap()
            .unwrap();
        assert_eq!(cp.rows.len(), 5);
        std::fs::remove_file(path).ok();
        std::fs::remove_file(ckpt).ok();
    }

    #[test]
    fn resumed_sweep_skips_completed_periods() {
        let path = sample_series_file("ppms");
        let ckpt = temp_path("sweep-resume", "ckpt");
        // Seed the checkpoint with a sentinel row for period 2: its pattern
        // count (999) could never come from actual mining, so seeing it in
        // the resumed run's report proves period 2 was NOT re-mined.
        let mut cp = SweepCheckpoint::new(path.to_str().unwrap(), 0.6, 2, 6);
        cp.record(PeriodRow {
            period: 2,
            patterns: 999,
            f1: 1,
            max_len: 1,
            scans: 2,
        });
        cp.save(ckpt.to_str().unwrap()).unwrap();

        let text = run_cli(&format!(
            "sweep --input {} --from 2 --to 6 --min-conf 0.6 --checkpoint {}",
            path.display(),
            ckpt.display()
        ))
        .unwrap();
        assert!(text.contains("resuming from checkpoint"), "{text}");
        assert!(text.contains("1 of 5 periods already mined"), "{text}");
        assert!(text.contains("4 mined now, 1 from checkpoint"), "{text}");
        assert!(text.contains("999"), "sentinel row must survive: {text}");
        std::fs::remove_file(path).ok();
        std::fs::remove_file(ckpt).ok();
    }

    #[test]
    fn mismatched_checkpoint_is_rejected() {
        let path = sample_series_file("ppms");
        let ckpt = temp_path("sweep-mismatch", "ckpt");
        let cp = SweepCheckpoint::new("some-other-input.ppms", 0.6, 2, 6);
        cp.save(ckpt.to_str().unwrap()).unwrap();
        let err = run_cli(&format!(
            "sweep --input {} --from 2 --to 6 --min-conf 0.6 --checkpoint {}",
            path.display(),
            ckpt.display()
        ))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("different sweep"), "{err}");
        std::fs::remove_file(path).ok();
        std::fs::remove_file(ckpt).ok();
    }

    #[test]
    fn bench_report_writes_a_stable_json_file() {
        use ppm_observe::Json;

        let path = sample_series_file("ppms");
        let name = format!("test-sweep-{}", std::process::id());
        let text = run_cli(&format!(
            "sweep --input {} --from 2 --to 6 --min-conf 0.6 --bench-report {name}",
            path.display()
        ))
        .unwrap();
        let report = format!("BENCH_{name}.json");
        assert!(text.contains(&report), "{text}");

        let doc = Json::parse(&std::fs::read_to_string(&report).unwrap()).unwrap();
        assert_eq!(doc.get("type").unwrap().as_str(), Some("bench"));
        assert_eq!(doc.get("from").unwrap().as_u64(), Some(2));
        assert_eq!(doc.get("to").unwrap().as_u64(), Some(6));
        assert!(!doc.get("phases").unwrap().as_arr().unwrap().is_empty());
        assert!(doc.get("peak_tree_nodes").unwrap().as_u64().unwrap() > 0);
        // Shared mining (Alg 3.4): two scans total across all periods.
        assert_eq!(doc.get("total_scans").unwrap().as_u64(), Some(2));
        let rollup = doc.get("stats_rollup").unwrap();
        assert_eq!(rollup.get("runs").unwrap().as_u64(), Some(5));
        std::fs::remove_file(path).ok();
        std::fs::remove_file(report).ok();
    }

    #[test]
    fn bench_report_rejects_checkpoint_and_bad_names() {
        let path = sample_series_file("ppms");
        let ckpt = temp_path("sweep-bench-ckpt", "ckpt");
        let err = run_cli(&format!(
            "sweep --input {} --from 2 --to 6 --min-conf 0.6 \
             --bench-report x --checkpoint {}",
            path.display(),
            ckpt.display()
        ))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        let err = run_cli(&format!(
            "sweep --input {} --from 2 --to 6 --min-conf 0.6 --bench-report a/b",
            path.display()
        ))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn sweep_metrics_summary_carries_the_rollup() {
        use ppm_observe::Json;

        let path = sample_series_file("ppms");
        let metrics = temp_path("sweep-metrics", "json");
        run_cli(&format!(
            "sweep --input {} --from 2 --to 6 --min-conf 0.6 --looping --metrics-out {}",
            path.display(),
            metrics.display()
        ))
        .unwrap();
        let raw = std::fs::read_to_string(&metrics).unwrap();
        let summary = Json::parse(raw.lines().last().unwrap()).unwrap();
        assert_eq!(summary.get("type").unwrap().as_str(), Some("summary"));
        let rollup = summary.get("stats_rollup").unwrap();
        assert_eq!(rollup.get("runs").unwrap().as_u64(), Some(5));
        // Looping (Alg 3.3): 2 scans per period, summed in the total.
        assert_eq!(
            rollup
                .get("total")
                .unwrap()
                .get("series_scans")
                .unwrap()
                .as_u64(),
            Some(10)
        );
        std::fs::remove_file(path).ok();
        std::fs::remove_file(metrics).ok();
    }

    #[test]
    fn checkpointed_sweep_emits_checkpoint_marks() {
        use ppm_observe::Json;

        let path = sample_series_file("ppms");
        let ckpt = temp_path("sweep-marks", "ckpt");
        let metrics = temp_path("sweep-marks-metrics", "json");
        run_cli(&format!(
            "sweep --input {} --from 2 --to 3 --min-conf 0.6 --checkpoint {} --metrics-out {}",
            path.display(),
            ckpt.display(),
            metrics.display()
        ))
        .unwrap();
        let raw = std::fs::read_to_string(&metrics).unwrap();
        let summary = Json::parse(raw.lines().last().unwrap()).unwrap();
        let marks = summary.get("marks").unwrap();
        assert_eq!(
            marks.get("checkpoint.saved").and_then(Json::as_u64),
            Some(2),
            "{raw}"
        );

        // Resuming the finished sweep emits the resume mark.
        let metrics2 = temp_path("sweep-marks-metrics2", "json");
        run_cli(&format!(
            "sweep --input {} --from 2 --to 3 --min-conf 0.6 --checkpoint {} --metrics-out {}",
            path.display(),
            ckpt.display(),
            metrics2.display()
        ))
        .unwrap();
        let raw = std::fs::read_to_string(&metrics2).unwrap();
        let summary = Json::parse(raw.lines().last().unwrap()).unwrap();
        assert_eq!(
            summary
                .get("marks")
                .unwrap()
                .get("checkpoint.resumed")
                .and_then(Json::as_u64),
            Some(1),
            "{raw}"
        );
        std::fs::remove_file(path).ok();
        std::fs::remove_file(ckpt).ok();
        std::fs::remove_file(metrics).ok();
        std::fs::remove_file(metrics2).ok();
    }

    #[test]
    fn vertical_sweep_reports_the_same_table_as_shared() {
        let path = sample_series_file("ppms");
        let shared = run_cli(&format!(
            "sweep --input {} --from 2 --to 6 --min-conf 0.6",
            path.display()
        ))
        .unwrap();
        let vertical = run_cli(&format!(
            "sweep --input {} --from 2 --to 6 --min-conf 0.6 --engine vertical",
            path.display()
        ))
        .unwrap();
        assert!(vertical.contains("vertical bitmap engine"), "{vertical}");
        // Same per-period table, different engine line: compare from the
        // table header down.
        let table = |s: &str| {
            s.lines()
                .skip_while(|l| !l.contains("patterns"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(table(&shared), table(&vertical));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn compare_tree_sweep_records_the_derivation_race() {
        use ppm_observe::Json;

        let path = sample_series_file("ppms");
        let name = format!("test-vertical-{}", std::process::id());
        let text = run_cli(&format!(
            "sweep --input {} --from 2 --to 6 --min-conf 0.6 \
             --engine vertical --compare-tree --bench-report {name}",
            path.display()
        ))
        .unwrap();
        assert!(text.contains("tree cross-checked"), "{text}");
        let report = format!("BENCH_{name}.json");
        let doc = Json::parse(&std::fs::read_to_string(&report).unwrap()).unwrap();
        assert_eq!(doc.get("engine").unwrap().as_str(), Some("vertical"));
        let gauges = doc.get("gauges").unwrap();
        assert!(gauges.get("vertical.bitmap_bytes").is_some(), "{doc:?}");
        let race = doc.get("derive_compare").unwrap();
        assert!(race.get("vertical_us").unwrap().as_u64().is_some());
        assert!(race.get("treewalk_us").unwrap().as_u64().is_some());
        assert!(race.get("speedup").unwrap().as_f64().is_some());
        std::fs::remove_file(path).ok();
        std::fs::remove_file(report).ok();
    }

    #[test]
    fn vertical_engine_flag_combinations_are_usage_errors() {
        let path = sample_series_file("ppms");
        let ckpt = temp_path("sweep-vertical-ckpt", "ckpt");
        for extra in [
            "--engine vertical --looping".to_owned(),
            format!("--engine vertical --checkpoint {}", ckpt.display()),
            "--compare-tree".to_owned(),
            "--engine parallel".to_owned(),
            "--engine vertical --algorithm hitset".to_owned(),
        ] {
            let err = run_cli(&format!(
                "sweep --input {} --from 2 --to 6 --min-conf 0.6 {extra}",
                path.display()
            ))
            .unwrap_err();
            assert_eq!(err.exit_code(), 2, "{extra}: {err}");
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn columnar_sweep_matches_binary_sweep_on_every_engine() {
        let ppms = sample_series_file("ppms");
        let ppmc = sample_series_file("ppmc");
        for extra in ["", "--engine vertical", "--engine apriori", "--looping"] {
            let from_binary = run_cli(&format!(
                "sweep --input {} --from 2 --to 6 --min-conf 0.6 {extra}",
                ppms.display()
            ))
            .unwrap();
            let from_columnar = run_cli(&format!(
                "sweep --input {} --from 2 --to 6 --min-conf 0.6 {extra}",
                ppmc.display()
            ))
            .unwrap();
            assert_eq!(from_binary, from_columnar, "{extra}");
        }
        std::fs::remove_file(ppms).ok();
        std::fs::remove_file(ppmc).ok();
    }

    #[test]
    fn workers_sweep_matches_the_sequential_table() {
        let path = sample_series_file("ppms");
        for engine in ["hitset", "apriori", "vertical"] {
            let sequential = run_cli(&format!(
                "sweep --input {} --from 2 --to 6 --min-conf 0.6 --engine {engine} --looping",
                path.display()
            ));
            // --looping is hitset-only; use the engine's own sequential path.
            let sequential = match sequential {
                Ok(s) => s,
                Err(_) => run_cli(&format!(
                    "sweep --input {} --from 2 --to 6 --min-conf 0.6 --engine {engine}",
                    path.display()
                ))
                .unwrap(),
            };
            let scheduled = run_cli(&format!(
                "sweep --input {} --from 2 --to 6 --min-conf 0.6 --engine {engine} --workers 3",
                path.display()
            ))
            .unwrap();
            assert!(
                scheduled.contains("work-stealing scheduler, 3 workers"),
                "{scheduled}"
            );
            let table = |s: &str| {
                s.lines()
                    .skip_while(|l| !l.contains("patterns"))
                    .collect::<Vec<_>>()
                    .join("\n")
            };
            assert_eq!(table(&sequential), table(&scheduled), "{engine}");
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn workers_flag_combinations_are_usage_errors() {
        let path = sample_series_file("ppms");
        let ckpt = temp_path("sweep-workers-ckpt", "ckpt");
        for extra in [
            "--workers 2 --looping".to_owned(),
            format!("--workers 2 --checkpoint {}", ckpt.display()),
            "--workers 2 --engine vertical --compare-tree".to_owned(),
            "--workers 0".to_owned(),
            "--workers".to_owned(),
        ] {
            let err = run_cli(&format!(
                "sweep --input {} --from 2 --to 6 --min-conf 0.6 {extra}",
                path.display()
            ))
            .unwrap_err();
            assert_eq!(err.exit_code(), 2, "{extra}: {err}");
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn workers_bench_report_records_the_sweep_compare() {
        use ppm_observe::Json;

        let path = sample_series_file("ppmc");
        let name = format!("test-workers-{}", std::process::id());
        let text = run_cli(&format!(
            "sweep --input {} --from 2 --to 6 --min-conf 0.6 \
             --engine vertical --workers 2 --bench-report {name}",
            path.display()
        ))
        .unwrap();
        assert!(text.contains("sweep compare: scheduler"), "{text}");
        let report = format!("BENCH_{name}.json");
        let doc = Json::parse(&std::fs::read_to_string(&report).unwrap()).unwrap();
        let compare = doc.get("sweep_compare").unwrap();
        assert!(compare.get("scheduler_us").unwrap().as_u64().is_some());
        assert!(compare.get("sequential_us").unwrap().as_u64().is_some());
        assert!(compare.get("speedup").unwrap().as_f64().is_some());
        assert_eq!(compare.get("workers").unwrap().as_u64(), Some(2));
        // The scheduler snapshot rides along: steal/busy counters are
        // real, the serve-cache counters read zero outside the daemon.
        let snapshot = doc.get("snapshot").unwrap();
        assert!(snapshot.get("tasks_stolen").unwrap().as_u64().is_some());
        assert!(snapshot.get("worker_busy_us").unwrap().as_u64().unwrap() > 0);
        assert_eq!(snapshot.get("cache_hits").unwrap().as_u64(), Some(0));
        assert_eq!(snapshot.get("cache_derived").unwrap().as_u64(), Some(0));
        assert_eq!(snapshot.get("cache_misses").unwrap().as_u64(), Some(0));
        std::fs::remove_file(path).ok();
        std::fs::remove_file(report).ok();
    }

    #[test]
    fn compare_ingest_races_text_against_columnar() {
        use ppm_observe::Json;

        let txt = sample_series_file("txt");
        let ppmc = temp_path("sweep-ingest", "ppmc");
        run_cli(&format!(
            "convert --input {} --out {}",
            txt.display(),
            ppmc.display()
        ))
        .unwrap();
        let name = format!("test-ingest-{}", std::process::id());
        let text = run_cli(&format!(
            "sweep --input {} --from 2 --to 6 --min-conf 0.6 --engine vertical \
             --compare-ingest {} --bench-report {name}",
            ppmc.display(),
            txt.display()
        ))
        .unwrap();
        assert!(text.contains("ingest compare: text parse+encode"), "{text}");
        let report = format!("BENCH_{name}.json");
        let doc = Json::parse(&std::fs::read_to_string(&report).unwrap()).unwrap();
        let compare = doc.get("ingest_compare").unwrap();
        assert!(compare.get("text_us").unwrap().as_u64().is_some());
        assert!(compare.get("columnar_us").unwrap().as_u64().is_some());
        assert!(compare.get("speedup").unwrap().as_f64().is_some());
        // The columnar load feeds the mmap-bytes gauge into the report.
        let gauges = doc.get("gauges").unwrap();
        assert!(gauges.get("columnar.mmap_bytes").is_some(), "{doc:?}");
        std::fs::remove_file(txt).ok();
        std::fs::remove_file(ppmc).ok();
        std::fs::remove_file(report).ok();
    }

    #[test]
    fn compare_ingest_requires_columnar_input() {
        let ppms = sample_series_file("ppms");
        let txt = sample_series_file("txt");
        let err = run_cli(&format!(
            "sweep --input {} --from 2 --to 6 --min-conf 0.6 --compare-ingest {}",
            ppms.display(),
            txt.display()
        ))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        std::fs::remove_file(ppms).ok();
        std::fs::remove_file(txt).ok();
    }

    #[test]
    fn deadline_abort_degrades_and_keeps_progress() {
        let path = sample_series_file("ppms");
        let ckpt = temp_path("sweep-deadline", "ckpt");
        // A zero deadline aborts on the very first period, but the command
        // still succeeds, reporting zero completed periods.
        let text = run_cli(&format!(
            "sweep --input {} --from 2 --to 6 --min-conf 0.6 --checkpoint {} --deadline-ms 0",
            path.display(),
            ckpt.display()
        ))
        .unwrap();
        assert!(text.contains("sweep aborted early"), "{text}");
        assert!(text.contains("0 of 5 periods completed"), "{text}");
        // Rerunning without the deadline finishes the job from the start.
        let text = run_cli(&format!(
            "sweep --input {} --from 2 --to 6 --min-conf 0.6 --checkpoint {}",
            path.display(),
            ckpt.display()
        ))
        .unwrap();
        assert!(text.contains("sweep complete"), "{text}");
        std::fs::remove_file(path).ok();
        std::fs::remove_file(ckpt).ok();
    }

    #[test]
    fn scheduled_guard_trips_fail_per_period_with_exit_3() {
        let path = sample_series_file("ppms");
        // A zero deadline trips the guard in every scheduled worker; each
        // period fails individually, the failures are named with partial
        // progress, and the process exits with the partial-result code.
        let argv: Vec<String> = format!(
            "sweep --input {} --from 2 --to 6 --min-conf 0.6 --workers 3 --deadline-ms 0",
            path.display()
        )
        .split_whitespace()
        .map(str::to_owned)
        .collect();
        let mut out = Vec::new();
        let err = crate::run(&argv, &mut out).unwrap_err();
        assert_eq!(err.exit_code(), 3);
        let text = String::from_utf8(out).unwrap();
        for period in 2..=6 {
            assert!(text.contains(&format!("period {period} aborted")), "{text}");
        }
        assert!(text.contains("partial progress"), "{text}");
        assert!(text.contains("0 completed, 5 aborted"), "{text}");
        std::fs::remove_file(path).ok();
    }
}
