//! `ppm sweep` — multi-period mining over a range (Algs 3.3/3.4).

use std::io::Write;

use ppm_core::multi::{mine_periods_looping, mine_periods_shared, PeriodRange};
use ppm_core::{Algorithm, MineConfig};

use crate::args::Parsed;
use crate::error::CliError;

/// Runs the command.
pub fn run(args: &Parsed, out: &mut dyn Write) -> Result<(), CliError> {
    let input = args.required("input")?;
    let from: usize = args.required_parsed("from")?;
    let to: usize = args.required_parsed("to")?;
    let min_conf: f64 = args.required_parsed("min-conf")?;

    let (series, _catalog) = super::load_series(input)?;
    let config = MineConfig::new(min_conf)?;
    let range = PeriodRange::new(from, to)?;

    let result = if args.switch("looping") {
        mine_periods_looping(&series, range, &config, Algorithm::HitSet)?
    } else {
        mine_periods_shared(&series, range, &config)?
    };

    writeln!(
        out,
        "periods {from}..={to}, min_conf {min_conf}, {} total series scans \
         ({}):",
        result.total_scans,
        if args.switch("looping") { "looping, Alg 3.3" } else { "shared, Alg 3.4" }
    )?;
    writeln!(out, "{:>8} {:>10} {:>9} {:>14}", "period", "patterns", "|F1|", "max pattern")?;
    for r in &result.results {
        writeln!(
            out,
            "{:>8} {:>10} {:>9} {:>14}",
            r.period,
            r.len(),
            r.alphabet.len(),
            r.max_l_length()
        )?;
    }
    if let Some(best) = result.densest_period() {
        writeln!(out, "densest period: {best}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::cmd::testutil::{run_cli, sample_series_file};

    #[test]
    fn shared_sweep_reports_two_scans() {
        let path = sample_series_file("ppms");
        let text =
            run_cli(&format!("sweep --input {} --from 2 --to 6 --min-conf 0.6", path.display()))
                .unwrap();
        assert!(text.contains("2 total series scans"), "{text}");
        // Period 6 (a multiple of the planted 3) sees the letters twice
        // per segment, so it is densest; period 3 itself has 3 patterns.
        assert!(text.contains("densest period: 6"), "{text}");
        let p3 = text.lines().find(|l| l.trim_start().starts_with("3 ")).unwrap();
        assert!(p3.contains(" 3 "), "{p3}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn looping_sweep_scales_scans() {
        let path = sample_series_file("ppms");
        let text = run_cli(&format!(
            "sweep --input {} --from 2 --to 6 --min-conf 0.6 --looping",
            path.display()
        ))
        .unwrap();
        assert!(text.contains("10 total series scans"), "{text}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn inverted_range_is_rejected() {
        let path = sample_series_file("ppms");
        let err =
            run_cli(&format!("sweep --input {} --from 6 --to 2 --min-conf 0.6", path.display()))
                .unwrap_err();
        assert_eq!(err.exit_code(), 1);
        std::fs::remove_file(path).ok();
    }
}
