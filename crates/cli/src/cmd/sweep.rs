//! `ppm sweep` — multi-period mining over a range (Algs 3.3/3.4).
//!
//! With `--checkpoint FILE` the sweep mines one period at a time (the
//! looping strategy of Alg 3.3), records each completed period in the
//! checkpoint, and on a rerun resumes without re-mining anything already
//! recorded. Resource-guard aborts (`--deadline-ms`, `--max-tree-nodes`)
//! degrade gracefully: the periods mined so far are reported and kept in
//! the checkpoint instead of the whole run dying.

use std::io::Write;

use ppm_core::multi::{mine_periods_looping, mine_periods_shared, PeriodRange};
use ppm_core::{hitset, Algorithm, MineConfig};
use ppm_timeseries::FeatureSeries;

use crate::args::Parsed;
use crate::checkpoint::{PeriodRow, SweepCheckpoint};
use crate::error::CliError;

/// Runs the command.
pub fn run(args: &Parsed, out: &mut dyn Write) -> Result<(), CliError> {
    let input = args.required("input")?;
    let from: usize = args.required_parsed("from")?;
    let to: usize = args.required_parsed("to")?;
    let min_conf: f64 = args.required_parsed("min-conf")?;

    let (series, _catalog) = super::load_series(input)?;
    let config = super::apply_guards(args, MineConfig::new(min_conf)?)?;
    let range = PeriodRange::new(from, to)?;

    if args.switch("checkpoint") {
        let checkpoint_path = args.required("checkpoint")?;
        return run_checkpointed(
            input,
            from,
            to,
            min_conf,
            checkpoint_path,
            &series,
            &config,
            out,
        );
    }

    let result = if args.switch("looping") {
        mine_periods_looping(&series, range, &config, Algorithm::HitSet)?
    } else {
        mine_periods_shared(&series, range, &config)?
    };

    writeln!(
        out,
        "periods {from}..={to}, min_conf {min_conf}, {} total series scans \
         ({}):",
        result.total_scans,
        if args.switch("looping") {
            "looping, Alg 3.3"
        } else {
            "shared, Alg 3.4"
        }
    )?;
    let rows: Vec<PeriodRow> = result
        .results
        .iter()
        .map(|r| PeriodRow {
            period: r.period,
            patterns: r.len(),
            f1: r.alphabet.len(),
            max_len: r.max_l_length(),
            scans: r.stats.series_scans,
        })
        .collect();
    print_table(&rows, out)?;
    Ok(())
}

/// The shared per-period summary table, plus the densest period.
fn print_table(rows: &[PeriodRow], out: &mut dyn Write) -> Result<(), CliError> {
    writeln!(
        out,
        "{:>8} {:>10} {:>9} {:>14}",
        "period", "patterns", "|F1|", "max pattern"
    )?;
    for r in rows {
        writeln!(
            out,
            "{:>8} {:>10} {:>9} {:>14}",
            r.period, r.patterns, r.f1, r.max_len
        )?;
    }
    if let Some(best) = rows.iter().max_by_key(|r| r.patterns) {
        writeln!(out, "densest period: {}", best.period)?;
    }
    Ok(())
}

/// A checkpointed sweep: one period at a time, resuming from (and updating)
/// the checkpoint file after every completed period.
#[allow(clippy::too_many_arguments)]
fn run_checkpointed(
    input: &str,
    from: usize,
    to: usize,
    min_conf: f64,
    checkpoint_path: &str,
    series: &FeatureSeries,
    config: &MineConfig,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let mut checkpoint = match SweepCheckpoint::load(checkpoint_path)? {
        Some(cp) if cp.matches(input, min_conf, from, to) => {
            writeln!(
                out,
                "resuming from checkpoint {checkpoint_path}: {} of {} periods already mined",
                cp.rows.len(),
                to - from + 1
            )?;
            cp
        }
        Some(_) => {
            return Err(CliError::Usage(format!(
                "checkpoint {checkpoint_path} was written by a different sweep \
                 (input, min-conf, or range mismatch); delete it or choose another path"
            )))
        }
        None => SweepCheckpoint::new(input, min_conf, from, to),
    };

    let mut mined_now = 0usize;
    let mut aborted: Option<ppm_core::Error> = None;
    for period in from..=to {
        if checkpoint.row_for(period).is_some() {
            continue;
        }
        match hitset::mine(series, period, config) {
            Ok(r) => {
                checkpoint.record(PeriodRow {
                    period,
                    patterns: r.len(),
                    f1: r.alphabet.len(),
                    max_len: r.max_l_length(),
                    scans: r.stats.series_scans,
                });
                checkpoint.save(checkpoint_path)?;
                mined_now += 1;
            }
            // Resource-guard aborts degrade: keep what we have, stop early.
            Err(e) if e.partial_stats().is_some() => {
                aborted = Some(e);
                break;
            }
            Err(e) => return Err(e.into()),
        }
    }

    let total_scans: usize = checkpoint.rows.iter().map(|r| r.scans).sum();
    writeln!(
        out,
        "periods {from}..={to}, min_conf {min_conf}, {total_scans} total series scans \
         (checkpointed looping; {mined_now} mined now, {} from checkpoint):",
        checkpoint.rows.len() - mined_now
    )?;
    print_table(&checkpoint.rows, out)?;

    match aborted {
        Some(e) => {
            // Persist the header even if no period completed, so the rerun
            // message below is honest and resume Just Works.
            checkpoint.save(checkpoint_path)?;
            writeln!(out, "sweep aborted early: {e}")?;
            writeln!(
                out,
                "{} of {} periods completed; progress saved in {checkpoint_path} — \
                 rerun the same command to resume",
                checkpoint.rows.len(),
                to - from + 1
            )?;
        }
        None => {
            writeln!(
                out,
                "sweep complete; checkpoint retained at {checkpoint_path}"
            )?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::checkpoint::{PeriodRow, SweepCheckpoint};
    use crate::cmd::testutil::{run_cli, sample_series_file, temp_path};

    #[test]
    fn shared_sweep_reports_two_scans() {
        let path = sample_series_file("ppms");
        let text = run_cli(&format!(
            "sweep --input {} --from 2 --to 6 --min-conf 0.6",
            path.display()
        ))
        .unwrap();
        assert!(text.contains("2 total series scans"), "{text}");
        // Period 6 (a multiple of the planted 3) sees the letters twice
        // per segment, so it is densest; period 3 itself has 3 patterns.
        assert!(text.contains("densest period: 6"), "{text}");
        let p3 = text
            .lines()
            .find(|l| l.trim_start().starts_with("3 "))
            .unwrap();
        assert!(p3.contains(" 3 "), "{p3}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn looping_sweep_scales_scans() {
        let path = sample_series_file("ppms");
        let text = run_cli(&format!(
            "sweep --input {} --from 2 --to 6 --min-conf 0.6 --looping",
            path.display()
        ))
        .unwrap();
        assert!(text.contains("10 total series scans"), "{text}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn inverted_range_is_rejected() {
        let path = sample_series_file("ppms");
        let err = run_cli(&format!(
            "sweep --input {} --from 6 --to 2 --min-conf 0.6",
            path.display()
        ))
        .unwrap_err();
        assert_eq!(err.exit_code(), 1);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn checkpointed_sweep_matches_looping_sweep() {
        let path = sample_series_file("ppms");
        let ckpt = temp_path("sweep-clean", "ckpt");
        let text = run_cli(&format!(
            "sweep --input {} --from 2 --to 6 --min-conf 0.6 --checkpoint {}",
            path.display(),
            ckpt.display()
        ))
        .unwrap();
        assert!(text.contains("10 total series scans"), "{text}");
        assert!(text.contains("5 mined now, 0 from checkpoint"), "{text}");
        assert!(text.contains("sweep complete"), "{text}");
        assert!(text.contains("densest period: 6"), "{text}");
        let cp = SweepCheckpoint::load(ckpt.to_str().unwrap())
            .unwrap()
            .unwrap();
        assert_eq!(cp.rows.len(), 5);
        std::fs::remove_file(path).ok();
        std::fs::remove_file(ckpt).ok();
    }

    #[test]
    fn resumed_sweep_skips_completed_periods() {
        let path = sample_series_file("ppms");
        let ckpt = temp_path("sweep-resume", "ckpt");
        // Seed the checkpoint with a sentinel row for period 2: its pattern
        // count (999) could never come from actual mining, so seeing it in
        // the resumed run's report proves period 2 was NOT re-mined.
        let mut cp = SweepCheckpoint::new(path.to_str().unwrap(), 0.6, 2, 6);
        cp.record(PeriodRow {
            period: 2,
            patterns: 999,
            f1: 1,
            max_len: 1,
            scans: 2,
        });
        cp.save(ckpt.to_str().unwrap()).unwrap();

        let text = run_cli(&format!(
            "sweep --input {} --from 2 --to 6 --min-conf 0.6 --checkpoint {}",
            path.display(),
            ckpt.display()
        ))
        .unwrap();
        assert!(text.contains("resuming from checkpoint"), "{text}");
        assert!(text.contains("1 of 5 periods already mined"), "{text}");
        assert!(text.contains("4 mined now, 1 from checkpoint"), "{text}");
        assert!(text.contains("999"), "sentinel row must survive: {text}");
        std::fs::remove_file(path).ok();
        std::fs::remove_file(ckpt).ok();
    }

    #[test]
    fn mismatched_checkpoint_is_rejected() {
        let path = sample_series_file("ppms");
        let ckpt = temp_path("sweep-mismatch", "ckpt");
        let cp = SweepCheckpoint::new("some-other-input.ppms", 0.6, 2, 6);
        cp.save(ckpt.to_str().unwrap()).unwrap();
        let err = run_cli(&format!(
            "sweep --input {} --from 2 --to 6 --min-conf 0.6 --checkpoint {}",
            path.display(),
            ckpt.display()
        ))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("different sweep"), "{err}");
        std::fs::remove_file(path).ok();
        std::fs::remove_file(ckpt).ok();
    }

    #[test]
    fn deadline_abort_degrades_and_keeps_progress() {
        let path = sample_series_file("ppms");
        let ckpt = temp_path("sweep-deadline", "ckpt");
        // A zero deadline aborts on the very first period, but the command
        // still succeeds, reporting zero completed periods.
        let text = run_cli(&format!(
            "sweep --input {} --from 2 --to 6 --min-conf 0.6 --checkpoint {} --deadline-ms 0",
            path.display(),
            ckpt.display()
        ))
        .unwrap();
        assert!(text.contains("sweep aborted early"), "{text}");
        assert!(text.contains("0 of 5 periods completed"), "{text}");
        // Rerunning without the deadline finishes the job from the start.
        let text = run_cli(&format!(
            "sweep --input {} --from 2 --to 6 --min-conf 0.6 --checkpoint {}",
            path.display(),
            ckpt.display()
        ))
        .unwrap();
        assert!(text.contains("sweep complete"), "{text}");
        std::fs::remove_file(path).ok();
        std::fs::remove_file(ckpt).ok();
    }
}
