//! `ppm sweep` — multi-period mining over a range (Algs 3.3/3.4).
//!
//! With `--checkpoint FILE` the sweep mines one period at a time (the
//! looping strategy of Alg 3.3), records each completed period in the
//! checkpoint, and on a rerun resumes without re-mining anything already
//! recorded. Resource-guard aborts (`--deadline-ms`, `--max-tree-nodes`)
//! degrade gracefully: the periods mined so far are reported and kept in
//! the checkpoint instead of the whole run dying.

use std::io::Write;

use ppm_core::multi::{mine_periods_looping, mine_periods_shared, PeriodRange};
use ppm_core::vertical::mine_vertical_encoded;
use ppm_core::{hitset, Algorithm, MineConfig, StatsRollup};
use ppm_observe::Json;
use ppm_timeseries::{EncodedSeries, FeatureSeries};

use crate::args::Parsed;
use crate::checkpoint::{PeriodRow, SweepCheckpoint};
use crate::error::CliError;
use crate::obs::{rollup_json, ObsSetup};

/// Runs the command. `--trace` / `--metrics-out` work as for `mine`;
/// `--bench-report NAME` additionally writes a stable `BENCH_NAME.json`
/// with per-phase wall-clock aggregates, peak tree size, and scan counts.
pub fn run(args: &Parsed, out: &mut dyn Write) -> Result<(), CliError> {
    let bench = if args.switch("bench-report") {
        let name = args.required("bench-report")?;
        if name.is_empty() || name.contains(['/', '\\']) {
            return Err(CliError::Usage(format!(
                "--bench-report name {name:?} must be a bare file-name fragment"
            )));
        }
        if args.switch("checkpoint") {
            return Err(CliError::Usage(
                "--bench-report cannot be combined with --checkpoint \
                 (checkpoint rows do not carry full per-phase stats)"
                    .into(),
            ));
        }
        Some(name.to_owned())
    } else {
        None
    };
    let obs = ObsSetup::from_args_with(args, bench.is_some())?;
    let guard = obs.install();
    let outcome = run_inner(args, out);
    drop(guard);
    let sweep = match &outcome {
        Ok(sweep) => Some(sweep.clone()),
        Err(_) => None,
    };
    obs.finalize_with_extra(
        sweep
            .as_ref()
            .map(|s| ("stats_rollup".to_owned(), rollup_json(&s.rollup)))
            .into_iter()
            .collect(),
        out,
    )?;
    if let (Some(name), Some(sweep)) = (&bench, &sweep) {
        write_bench_report(name, args, sweep, &obs, out)?;
    }
    outcome.map(|_| ())
}

/// What a sweep reports upward: the cross-period stats rollup plus the
/// number of *physical* series scans — for shared mining that is 2, while
/// the rollup's `total.series_scans` sums every period's logical count.
#[derive(Clone)]
struct SweepOutcome {
    rollup: StatsRollup,
    physical_scans: usize,
}

/// The sweep body; returns the rollup and scan count for the metrics
/// summary and the bench report.
fn run_inner(args: &Parsed, out: &mut dyn Write) -> Result<SweepOutcome, CliError> {
    let input = args.required("input")?;
    let from: usize = args.required_parsed("from")?;
    let to: usize = args.required_parsed("to")?;
    let min_conf: f64 = args.required_parsed("min-conf")?;

    let engine = super::resolve_engine(args)?;
    if !matches!(engine, "hitset" | "apriori" | "vertical") {
        return Err(CliError::Usage(format!(
            "sweep supports --engine hitset|apriori|vertical, not {engine:?}"
        )));
    }
    if engine != "hitset" && (args.switch("looping") || args.switch("checkpoint")) {
        return Err(CliError::Usage(format!(
            "--looping and --checkpoint are hit-set sweep modes; \
             they do not combine with --engine {engine}"
        )));
    }
    if args.switch("compare-tree") && engine != "vertical" {
        return Err(CliError::Usage(
            "--compare-tree only applies to --engine vertical (it races the \
             vertical derivation against the tree walk)"
                .into(),
        ));
    }

    let (series, _catalog) = super::load_series(input)?;
    let config = super::apply_guards(args, MineConfig::new(min_conf)?)?;
    let range = PeriodRange::new(from, to)?;

    if args.switch("checkpoint") {
        let checkpoint_path = args.required("checkpoint")?;
        return run_checkpointed(
            input,
            from,
            to,
            min_conf,
            checkpoint_path,
            &series,
            &config,
            out,
        );
    }

    if engine == "vertical" {
        return run_vertical(args, &series, range, &config, from, to, min_conf, out);
    }

    let (result, how) = if engine == "apriori" {
        (
            mine_periods_looping(&series, range, &config, Algorithm::Apriori)?,
            "looping Apriori, Alg 3.3/3.1",
        )
    } else if args.switch("looping") {
        (
            mine_periods_looping(&series, range, &config, Algorithm::HitSet)?,
            "looping, Alg 3.3",
        )
    } else {
        (
            mine_periods_shared(&series, range, &config)?,
            "shared, Alg 3.4",
        )
    };

    writeln!(
        out,
        "periods {from}..={to}, min_conf {min_conf}, {} total series scans \
         ({how}):",
        result.total_scans,
    )?;
    let mut rollup = StatsRollup::new();
    let rows: Vec<PeriodRow> = result
        .results
        .iter()
        .map(|r| {
            rollup.add(&r.stats);
            PeriodRow {
                period: r.period,
                patterns: r.len(),
                f1: r.alphabet.len(),
                max_len: r.max_l_length(),
                scans: r.stats.series_scans,
            }
        })
        .collect();
    print_table(&rows, out)?;
    Ok(SweepOutcome {
        rollup,
        physical_scans: result.total_scans,
    })
}

/// A vertical-engine sweep: the series is bit-packed once into an
/// [`EncodedSeries`] and every period is mined columnarly from that cache
/// ([`mine_vertical_encoded`]). With `--compare-tree` each period is also
/// mined with the hit-set tree walk and the two frequent sets are diffed —
/// a disagreement is a verification failure, and a bench report captures
/// both engines' `*.derive` phases for the speedup line.
#[allow(clippy::too_many_arguments)]
fn run_vertical(
    args: &Parsed,
    series: &FeatureSeries,
    range: PeriodRange,
    config: &MineConfig,
    from: usize,
    to: usize,
    min_conf: f64,
    out: &mut dyn Write,
) -> Result<SweepOutcome, CliError> {
    let compare = args.switch("compare-tree");
    let encoded = EncodedSeries::encode(series);
    let mut rollup = StatsRollup::new();
    let mut rows = Vec::new();
    for period in range.iter().filter(|&p| p <= series.len()) {
        let result = mine_vertical_encoded(series, &encoded, period, config)?;
        if compare {
            let tree = hitset::mine(series, period, config)?;
            if result.frequent != tree.frequent {
                return Err(CliError::Audit(format!(
                    "vertical and tree-walk derivations disagree at period {period} \
                     ({} vs {} patterns)",
                    result.len(),
                    tree.len()
                )));
            }
        }
        rollup.add(&result.stats);
        rows.push(PeriodRow {
            period,
            patterns: result.len(),
            f1: result.alphabet.len(),
            max_len: result.max_l_length(),
            scans: result.stats.series_scans,
        });
    }
    let total_scans: usize = rows.iter().map(|r| r.scans).sum();
    writeln!(
        out,
        "periods {from}..={to}, min_conf {min_conf}, {total_scans} total series scans \
         (vertical bitmap engine{}):",
        if compare { ", tree cross-checked" } else { "" }
    )?;
    print_table(&rows, out)?;
    Ok(SweepOutcome {
        rollup,
        physical_scans: total_scans,
    })
}

/// Writes `BENCH_<name>.json`: a machine-readable benchmark record with a
/// stable schema — per-phase wall-clock aggregates from the collected
/// spans, gauge maxima, the peak tree size across periods, and the scan
/// totals. When both the vertical and tree-walk derivation phases ran
/// (`--engine vertical --compare-tree`), a `derive_compare` object records
/// their wall-clock head-to-head.
fn write_bench_report(
    name: &str,
    args: &Parsed,
    sweep: &SweepOutcome,
    obs: &ObsSetup,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let events = obs.collector().map(|c| c.events()).unwrap_or_default();
    let aggregates = ppm_observe::aggregate_phases(&events);
    let phases: Vec<Json> = aggregates.iter().map(|p| p.to_json()).collect();
    let gauges: Vec<(String, Json)> = obs
        .collector()
        .map(|c| c.gauge_maxima())
        .unwrap_or_default()
        .into_iter()
        .map(|(k, v)| (k, Json::from_u64(v)))
        .collect();
    let wall_us = events.last().map(|e| e.at_us()).unwrap_or(0);
    let mut fields = vec![
        ("type".to_owned(), Json::Str("bench".to_owned())),
        ("name".to_owned(), Json::Str(name.to_owned())),
        (
            "engine".to_owned(),
            Json::Str(super::resolve_engine(args)?.to_owned()),
        ),
        (
            "from".to_owned(),
            Json::from_usize(args.required_parsed("from")?),
        ),
        (
            "to".to_owned(),
            Json::from_usize(args.required_parsed("to")?),
        ),
        ("wall_us".to_owned(), Json::from_u64(wall_us)),
        ("phases".to_owned(), Json::Arr(phases)),
        ("gauges".to_owned(), Json::Obj(gauges)),
        (
            "peak_tree_nodes".to_owned(),
            Json::from_usize(sweep.rollup.max_tree_nodes),
        ),
        (
            "total_scans".to_owned(),
            Json::from_usize(sweep.physical_scans),
        ),
        ("stats_rollup".to_owned(), rollup_json(&sweep.rollup)),
    ];
    let phase_us = |name: &str| {
        aggregates
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.total_us)
    };
    if let (Some(vertical_us), Some(treewalk_us)) =
        (phase_us("vertical.derive"), phase_us("hitset.derive"))
    {
        let speedup = if vertical_us > 0 {
            treewalk_us as f64 / vertical_us as f64
        } else {
            0.0
        };
        fields.push((
            "derive_compare".to_owned(),
            Json::Obj(vec![
                ("vertical_us".to_owned(), Json::from_u64(vertical_us)),
                ("treewalk_us".to_owned(), Json::from_u64(treewalk_us)),
                ("speedup".to_owned(), Json::Num(speedup)),
            ]),
        ));
    }
    let doc = Json::Obj(fields);
    let path = format!("BENCH_{name}.json");
    std::fs::write(&path, format!("{}\n", doc.render()))?;
    writeln!(out, "bench report written to {path}")?;
    Ok(())
}

/// The shared per-period summary table, plus the densest period.
fn print_table(rows: &[PeriodRow], out: &mut dyn Write) -> Result<(), CliError> {
    writeln!(
        out,
        "{:>8} {:>10} {:>9} {:>14}",
        "period", "patterns", "|F1|", "max pattern"
    )?;
    for r in rows {
        writeln!(
            out,
            "{:>8} {:>10} {:>9} {:>14}",
            r.period, r.patterns, r.f1, r.max_len
        )?;
    }
    if let Some(best) = rows.iter().max_by_key(|r| r.patterns) {
        writeln!(out, "densest period: {}", best.period)?;
    }
    Ok(())
}

/// A checkpointed sweep: one period at a time, resuming from (and updating)
/// the checkpoint file after every completed period. The returned rollup
/// covers only the periods mined *now* — checkpoint rows carry summary
/// columns, not full stats.
#[allow(clippy::too_many_arguments)]
fn run_checkpointed(
    input: &str,
    from: usize,
    to: usize,
    min_conf: f64,
    checkpoint_path: &str,
    series: &FeatureSeries,
    config: &MineConfig,
    out: &mut dyn Write,
) -> Result<SweepOutcome, CliError> {
    let mut checkpoint = match SweepCheckpoint::load(checkpoint_path)? {
        Some(cp) if cp.matches(input, min_conf, from, to) => {
            ppm_observe::mark("checkpoint.resumed", || {
                format!(
                    "resumed {checkpoint_path} with {} periods already mined",
                    cp.rows.len()
                )
            });
            writeln!(
                out,
                "resuming from checkpoint {checkpoint_path}: {} of {} periods already mined",
                cp.rows.len(),
                to - from + 1
            )?;
            cp
        }
        Some(_) => {
            return Err(CliError::Usage(format!(
                "checkpoint {checkpoint_path} was written by a different sweep \
                 (input, min-conf, or range mismatch); delete it or choose another path"
            )))
        }
        None => SweepCheckpoint::new(input, min_conf, from, to),
    };

    let mut rollup = StatsRollup::new();
    let mut mined_now = 0usize;
    let mut aborted: Option<ppm_core::Error> = None;
    for period in from..=to {
        if checkpoint.row_for(period).is_some() {
            continue;
        }
        match hitset::mine(series, period, config) {
            Ok(r) => {
                rollup.add(&r.stats);
                checkpoint.record(PeriodRow {
                    period,
                    patterns: r.len(),
                    f1: r.alphabet.len(),
                    max_len: r.max_l_length(),
                    scans: r.stats.series_scans,
                });
                checkpoint.save(checkpoint_path)?;
                ppm_observe::mark("checkpoint.saved", || {
                    format!("period {period} recorded in {checkpoint_path}")
                });
                mined_now += 1;
            }
            // Resource-guard aborts degrade: keep what we have, stop early.
            Err(e) if e.partial_stats().is_some() => {
                aborted = Some(e);
                break;
            }
            Err(e) => return Err(e.into()),
        }
    }

    let total_scans: usize = checkpoint.rows.iter().map(|r| r.scans).sum();
    writeln!(
        out,
        "periods {from}..={to}, min_conf {min_conf}, {total_scans} total series scans \
         (checkpointed looping; {mined_now} mined now, {} from checkpoint):",
        checkpoint.rows.len() - mined_now
    )?;
    print_table(&checkpoint.rows, out)?;

    match aborted {
        Some(e) => {
            // Persist the header even if no period completed, so the rerun
            // message below is honest and resume Just Works.
            checkpoint.save(checkpoint_path)?;
            writeln!(out, "sweep aborted early: {e}")?;
            writeln!(
                out,
                "{} of {} periods completed; progress saved in {checkpoint_path} — \
                 rerun the same command to resume",
                checkpoint.rows.len(),
                to - from + 1
            )?;
        }
        None => {
            writeln!(
                out,
                "sweep complete; checkpoint retained at {checkpoint_path}"
            )?;
        }
    }
    Ok(SweepOutcome {
        rollup,
        physical_scans: total_scans,
    })
}

#[cfg(test)]
mod tests {
    use crate::checkpoint::{PeriodRow, SweepCheckpoint};
    use crate::cmd::testutil::{run_cli, sample_series_file, temp_path};

    #[test]
    fn shared_sweep_reports_two_scans() {
        let path = sample_series_file("ppms");
        let text = run_cli(&format!(
            "sweep --input {} --from 2 --to 6 --min-conf 0.6",
            path.display()
        ))
        .unwrap();
        assert!(text.contains("2 total series scans"), "{text}");
        // Period 6 (a multiple of the planted 3) sees the letters twice
        // per segment, so it is densest; period 3 itself has 3 patterns.
        assert!(text.contains("densest period: 6"), "{text}");
        let p3 = text
            .lines()
            .find(|l| l.trim_start().starts_with("3 "))
            .unwrap();
        assert!(p3.contains(" 3 "), "{p3}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn looping_sweep_scales_scans() {
        let path = sample_series_file("ppms");
        let text = run_cli(&format!(
            "sweep --input {} --from 2 --to 6 --min-conf 0.6 --looping",
            path.display()
        ))
        .unwrap();
        assert!(text.contains("10 total series scans"), "{text}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn inverted_range_is_rejected() {
        let path = sample_series_file("ppms");
        let err = run_cli(&format!(
            "sweep --input {} --from 6 --to 2 --min-conf 0.6",
            path.display()
        ))
        .unwrap_err();
        assert_eq!(err.exit_code(), 1);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn checkpointed_sweep_matches_looping_sweep() {
        let path = sample_series_file("ppms");
        let ckpt = temp_path("sweep-clean", "ckpt");
        let text = run_cli(&format!(
            "sweep --input {} --from 2 --to 6 --min-conf 0.6 --checkpoint {}",
            path.display(),
            ckpt.display()
        ))
        .unwrap();
        assert!(text.contains("10 total series scans"), "{text}");
        assert!(text.contains("5 mined now, 0 from checkpoint"), "{text}");
        assert!(text.contains("sweep complete"), "{text}");
        assert!(text.contains("densest period: 6"), "{text}");
        let cp = SweepCheckpoint::load(ckpt.to_str().unwrap())
            .unwrap()
            .unwrap();
        assert_eq!(cp.rows.len(), 5);
        std::fs::remove_file(path).ok();
        std::fs::remove_file(ckpt).ok();
    }

    #[test]
    fn resumed_sweep_skips_completed_periods() {
        let path = sample_series_file("ppms");
        let ckpt = temp_path("sweep-resume", "ckpt");
        // Seed the checkpoint with a sentinel row for period 2: its pattern
        // count (999) could never come from actual mining, so seeing it in
        // the resumed run's report proves period 2 was NOT re-mined.
        let mut cp = SweepCheckpoint::new(path.to_str().unwrap(), 0.6, 2, 6);
        cp.record(PeriodRow {
            period: 2,
            patterns: 999,
            f1: 1,
            max_len: 1,
            scans: 2,
        });
        cp.save(ckpt.to_str().unwrap()).unwrap();

        let text = run_cli(&format!(
            "sweep --input {} --from 2 --to 6 --min-conf 0.6 --checkpoint {}",
            path.display(),
            ckpt.display()
        ))
        .unwrap();
        assert!(text.contains("resuming from checkpoint"), "{text}");
        assert!(text.contains("1 of 5 periods already mined"), "{text}");
        assert!(text.contains("4 mined now, 1 from checkpoint"), "{text}");
        assert!(text.contains("999"), "sentinel row must survive: {text}");
        std::fs::remove_file(path).ok();
        std::fs::remove_file(ckpt).ok();
    }

    #[test]
    fn mismatched_checkpoint_is_rejected() {
        let path = sample_series_file("ppms");
        let ckpt = temp_path("sweep-mismatch", "ckpt");
        let cp = SweepCheckpoint::new("some-other-input.ppms", 0.6, 2, 6);
        cp.save(ckpt.to_str().unwrap()).unwrap();
        let err = run_cli(&format!(
            "sweep --input {} --from 2 --to 6 --min-conf 0.6 --checkpoint {}",
            path.display(),
            ckpt.display()
        ))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("different sweep"), "{err}");
        std::fs::remove_file(path).ok();
        std::fs::remove_file(ckpt).ok();
    }

    #[test]
    fn bench_report_writes_a_stable_json_file() {
        use ppm_observe::Json;

        let path = sample_series_file("ppms");
        let name = format!("test-sweep-{}", std::process::id());
        let text = run_cli(&format!(
            "sweep --input {} --from 2 --to 6 --min-conf 0.6 --bench-report {name}",
            path.display()
        ))
        .unwrap();
        let report = format!("BENCH_{name}.json");
        assert!(text.contains(&report), "{text}");

        let doc = Json::parse(&std::fs::read_to_string(&report).unwrap()).unwrap();
        assert_eq!(doc.get("type").unwrap().as_str(), Some("bench"));
        assert_eq!(doc.get("from").unwrap().as_u64(), Some(2));
        assert_eq!(doc.get("to").unwrap().as_u64(), Some(6));
        assert!(!doc.get("phases").unwrap().as_arr().unwrap().is_empty());
        assert!(doc.get("peak_tree_nodes").unwrap().as_u64().unwrap() > 0);
        // Shared mining (Alg 3.4): two scans total across all periods.
        assert_eq!(doc.get("total_scans").unwrap().as_u64(), Some(2));
        let rollup = doc.get("stats_rollup").unwrap();
        assert_eq!(rollup.get("runs").unwrap().as_u64(), Some(5));
        std::fs::remove_file(path).ok();
        std::fs::remove_file(report).ok();
    }

    #[test]
    fn bench_report_rejects_checkpoint_and_bad_names() {
        let path = sample_series_file("ppms");
        let ckpt = temp_path("sweep-bench-ckpt", "ckpt");
        let err = run_cli(&format!(
            "sweep --input {} --from 2 --to 6 --min-conf 0.6 \
             --bench-report x --checkpoint {}",
            path.display(),
            ckpt.display()
        ))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        let err = run_cli(&format!(
            "sweep --input {} --from 2 --to 6 --min-conf 0.6 --bench-report a/b",
            path.display()
        ))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn sweep_metrics_summary_carries_the_rollup() {
        use ppm_observe::Json;

        let path = sample_series_file("ppms");
        let metrics = temp_path("sweep-metrics", "json");
        run_cli(&format!(
            "sweep --input {} --from 2 --to 6 --min-conf 0.6 --looping --metrics-out {}",
            path.display(),
            metrics.display()
        ))
        .unwrap();
        let raw = std::fs::read_to_string(&metrics).unwrap();
        let summary = Json::parse(raw.lines().last().unwrap()).unwrap();
        assert_eq!(summary.get("type").unwrap().as_str(), Some("summary"));
        let rollup = summary.get("stats_rollup").unwrap();
        assert_eq!(rollup.get("runs").unwrap().as_u64(), Some(5));
        // Looping (Alg 3.3): 2 scans per period, summed in the total.
        assert_eq!(
            rollup
                .get("total")
                .unwrap()
                .get("series_scans")
                .unwrap()
                .as_u64(),
            Some(10)
        );
        std::fs::remove_file(path).ok();
        std::fs::remove_file(metrics).ok();
    }

    #[test]
    fn checkpointed_sweep_emits_checkpoint_marks() {
        use ppm_observe::Json;

        let path = sample_series_file("ppms");
        let ckpt = temp_path("sweep-marks", "ckpt");
        let metrics = temp_path("sweep-marks-metrics", "json");
        run_cli(&format!(
            "sweep --input {} --from 2 --to 3 --min-conf 0.6 --checkpoint {} --metrics-out {}",
            path.display(),
            ckpt.display(),
            metrics.display()
        ))
        .unwrap();
        let raw = std::fs::read_to_string(&metrics).unwrap();
        let summary = Json::parse(raw.lines().last().unwrap()).unwrap();
        let marks = summary.get("marks").unwrap();
        assert_eq!(
            marks.get("checkpoint.saved").and_then(Json::as_u64),
            Some(2),
            "{raw}"
        );

        // Resuming the finished sweep emits the resume mark.
        let metrics2 = temp_path("sweep-marks-metrics2", "json");
        run_cli(&format!(
            "sweep --input {} --from 2 --to 3 --min-conf 0.6 --checkpoint {} --metrics-out {}",
            path.display(),
            ckpt.display(),
            metrics2.display()
        ))
        .unwrap();
        let raw = std::fs::read_to_string(&metrics2).unwrap();
        let summary = Json::parse(raw.lines().last().unwrap()).unwrap();
        assert_eq!(
            summary
                .get("marks")
                .unwrap()
                .get("checkpoint.resumed")
                .and_then(Json::as_u64),
            Some(1),
            "{raw}"
        );
        std::fs::remove_file(path).ok();
        std::fs::remove_file(ckpt).ok();
        std::fs::remove_file(metrics).ok();
        std::fs::remove_file(metrics2).ok();
    }

    #[test]
    fn vertical_sweep_reports_the_same_table_as_shared() {
        let path = sample_series_file("ppms");
        let shared = run_cli(&format!(
            "sweep --input {} --from 2 --to 6 --min-conf 0.6",
            path.display()
        ))
        .unwrap();
        let vertical = run_cli(&format!(
            "sweep --input {} --from 2 --to 6 --min-conf 0.6 --engine vertical",
            path.display()
        ))
        .unwrap();
        assert!(vertical.contains("vertical bitmap engine"), "{vertical}");
        // Same per-period table, different engine line: compare from the
        // table header down.
        let table = |s: &str| {
            s.lines()
                .skip_while(|l| !l.contains("patterns"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(table(&shared), table(&vertical));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn compare_tree_sweep_records_the_derivation_race() {
        use ppm_observe::Json;

        let path = sample_series_file("ppms");
        let name = format!("test-vertical-{}", std::process::id());
        let text = run_cli(&format!(
            "sweep --input {} --from 2 --to 6 --min-conf 0.6 \
             --engine vertical --compare-tree --bench-report {name}",
            path.display()
        ))
        .unwrap();
        assert!(text.contains("tree cross-checked"), "{text}");
        let report = format!("BENCH_{name}.json");
        let doc = Json::parse(&std::fs::read_to_string(&report).unwrap()).unwrap();
        assert_eq!(doc.get("engine").unwrap().as_str(), Some("vertical"));
        let gauges = doc.get("gauges").unwrap();
        assert!(gauges.get("vertical.bitmap_bytes").is_some(), "{doc:?}");
        let race = doc.get("derive_compare").unwrap();
        assert!(race.get("vertical_us").unwrap().as_u64().is_some());
        assert!(race.get("treewalk_us").unwrap().as_u64().is_some());
        assert!(race.get("speedup").unwrap().as_f64().is_some());
        std::fs::remove_file(path).ok();
        std::fs::remove_file(report).ok();
    }

    #[test]
    fn vertical_engine_flag_combinations_are_usage_errors() {
        let path = sample_series_file("ppms");
        let ckpt = temp_path("sweep-vertical-ckpt", "ckpt");
        for extra in [
            "--engine vertical --looping".to_owned(),
            format!("--engine vertical --checkpoint {}", ckpt.display()),
            "--compare-tree".to_owned(),
            "--engine parallel".to_owned(),
            "--engine vertical --algorithm hitset".to_owned(),
        ] {
            let err = run_cli(&format!(
                "sweep --input {} --from 2 --to 6 --min-conf 0.6 {extra}",
                path.display()
            ))
            .unwrap_err();
            assert_eq!(err.exit_code(), 2, "{extra}: {err}");
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn deadline_abort_degrades_and_keeps_progress() {
        let path = sample_series_file("ppms");
        let ckpt = temp_path("sweep-deadline", "ckpt");
        // A zero deadline aborts on the very first period, but the command
        // still succeeds, reporting zero completed periods.
        let text = run_cli(&format!(
            "sweep --input {} --from 2 --to 6 --min-conf 0.6 --checkpoint {} --deadline-ms 0",
            path.display(),
            ckpt.display()
        ))
        .unwrap();
        assert!(text.contains("sweep aborted early"), "{text}");
        assert!(text.contains("0 of 5 periods completed"), "{text}");
        // Rerunning without the deadline finishes the job from the start.
        let text = run_cli(&format!(
            "sweep --input {} --from 2 --to 6 --min-conf 0.6 --checkpoint {}",
            path.display(),
            ckpt.display()
        ))
        .unwrap();
        assert!(text.contains("sweep complete"), "{text}");
        std::fs::remove_file(path).ok();
        std::fs::remove_file(ckpt).ok();
    }
}
