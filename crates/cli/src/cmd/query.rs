//! `ppm query` — replication-aware client for running `ppm serve`
//! daemons.
//!
//! Sends one request frame and renders the response. A `mine` query
//! prints byte-for-byte what a direct `ppm mine` against the same store
//! would print, so scripts can diff the two; daemon-side failures carry
//! their wire code straight through to the exit status (see
//! [`crate::error::CliError`] for the taxonomy).
//!
//! Transport is [`ppm_serve::FailoverClient`]: `--endpoints a,b,c` names
//! replicas, transients are retried with exponential backoff + seeded
//! jitter (`--retries`, `--backoff-ms`, `--seed`), overload hints are
//! honored, and `--hedge-ms T` duplicates a slow request to the next
//! replica, asserting byte-identical answers. With a single endpoint the
//! same bounded retry policy applies before exiting 5 (retries
//! exhausted) or 6 (overloaded).

use std::io::Write;

use ppm_observe::Json;
use ppm_serve::protocol;
use ppm_serve::{ClientError, Endpoint, ErrorCode, FailoverClient, RetryPolicy};

use crate::args::Parsed;
use crate::error::CliError;

/// Runs one query against the daemon(s).
pub fn run(args: &Parsed, out: &mut dyn Write) -> Result<(), CliError> {
    let op = args.get("op").unwrap_or("mine");
    let request = build_request(op, args)?;
    let response = exchange(args, &request)?;
    render(op, args, &response, out)
}

/// Builds the request frame for `op` from the command-line flags.
fn build_request(op: &str, args: &Parsed) -> Result<Json, CliError> {
    let mut fields = vec![
        ("v".to_owned(), Json::from_u64(protocol::VERSION)),
        ("op".to_owned(), Json::Str(op.to_owned())),
    ];
    match op {
        "mine" | "rules" | "verify" => {
            fields.push((
                "store".to_owned(),
                Json::Str(args.required("store")?.into()),
            ));
            fields.push((
                "period".to_owned(),
                Json::from_u64(args.required_parsed("period")?),
            ));
            fields.push((
                "min_conf".to_owned(),
                Json::Num(args.required_parsed("min-conf")?),
            ));
            if let Some(engine) = args.get("engine") {
                fields.push(("engine".to_owned(), Json::Str(engine.to_owned())));
            }
            fields.push((
                "limit".to_owned(),
                Json::from_u64(args.parsed_or("limit", 20)?),
            ));
            if args.switch("deadline-ms") {
                fields.push((
                    "deadline_ms".to_owned(),
                    Json::from_u64(args.required_parsed("deadline-ms")?),
                ));
            }
            if args.switch("max-tree-nodes") {
                fields.push((
                    "max_tree_nodes".to_owned(),
                    Json::from_u64(args.required_parsed("max-tree-nodes")?),
                ));
            }
            if args.switch("no-cache") {
                fields.push(("no_cache".to_owned(), Json::Bool(true)));
            }
            if args.switch("quarantine") {
                fields.push(("quarantine".to_owned(), Json::Bool(true)));
            }
            if args.switch("inject-garbage") {
                fields.push((
                    "inject_garbage".to_owned(),
                    Json::from_u64(args.required_parsed("inject-garbage")?),
                ));
            }
            if op == "rules" {
                fields.push((
                    "min_rule_conf".to_owned(),
                    Json::Num(args.parsed_or("min-rule-conf", 0.8)?),
                ));
            }
        }
        "info" => {
            if let Some(store) = args.get("store") {
                fields.push(("store".to_owned(), Json::Str(store.to_owned())));
            }
        }
        "health" => {
            if args.switch("recheck") {
                fields.push(("recheck".to_owned(), Json::Bool(true)));
            }
        }
        "stats" | "metrics" | "shutdown" | "panic" => {}
        other => {
            return Err(CliError::Usage(format!(
                "unknown --op {other:?} (mine|rules|verify|info|health|stats|metrics|shutdown)"
            )))
        }
    }
    Ok(Json::Obj(fields))
}

/// The replica list: `--endpoints a,b,c` (each `host:port` or
/// `unix:/path`), or the single classic `--host`/`--port` / `--socket`
/// target.
fn endpoints_from(args: &Parsed) -> Result<Vec<Endpoint>, CliError> {
    if let Some(list) = args.get("endpoints") {
        let endpoints: Vec<Endpoint> = list
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(Endpoint::parse)
            .collect();
        if endpoints.is_empty() {
            return Err(CliError::Usage("--endpoints names no endpoints".into()));
        }
        return Ok(endpoints);
    }
    if let Some(path) = args.get("socket") {
        return Ok(vec![Endpoint::Unix(path.into())]);
    }
    let host = args.get("host").unwrap_or("127.0.0.1");
    let port: u16 = args.required_parsed("port")?;
    Ok(vec![Endpoint::Tcp(format!("{host}:{port}"))])
}

/// The retry/failover/hedging policy from the command-line flags.
fn policy_from(args: &Parsed) -> Result<RetryPolicy, CliError> {
    let defaults = RetryPolicy::default();
    Ok(RetryPolicy {
        retries: args.parsed_or("retries", defaults.retries)?,
        backoff_ms: args.parsed_or("backoff-ms", defaults.backoff_ms)?,
        backoff_max_ms: args.parsed_or("backoff-max-ms", defaults.backoff_max_ms)?,
        io_timeout_ms: args.parsed_or("io-timeout-ms", defaults.io_timeout_ms)?,
        hedge_after_ms: if args.switch("hedge-ms") {
            Some(args.required_parsed("hedge-ms")?)
        } else {
            None
        },
        seed: args.parsed_or("seed", defaults.seed)?,
    })
}

/// Issues the request through the failover client; transient trouble is
/// retried across endpoints per the policy, and only transport-level
/// defeat becomes an error here (typed daemon errors flow to
/// [`render`]). What the client had to do to get the answer is noted on
/// stderr so scripts diffing stdout stay clean.
fn exchange(args: &Parsed, request: &Json) -> Result<Json, CliError> {
    let mut client = FailoverClient::new(endpoints_from(args)?, policy_from(args)?);
    let outcome = client.request(request);
    let stats = client.stats();
    if stats.failovers > 0 || stats.hedges > 0 || stats.backoffs > 0 {
        eprintln!(
            "ppm query: {} attempt(s), {} failover(s), {} backoff sleep(s), \
             {} hedge(s) ({} won by the hedge)",
            stats.attempts, stats.failovers, stats.backoffs, stats.hedges, stats.hedge_wins
        );
    }
    outcome.map_err(|e| match e {
        ClientError::Exhausted {
            overloaded: true, ..
        } => CliError::Daemon(ErrorCode::Overloaded, e.to_string()),
        ClientError::Exhausted { .. } => {
            CliError::Daemon(ErrorCode::RetriesExhausted, e.to_string())
        }
        ClientError::Diverged { .. } => CliError::Daemon(ErrorCode::Internal, e.to_string()),
    })
}

/// Renders the response and maps failures onto the exit-code taxonomy.
fn render(op: &str, args: &Parsed, resp: &Json, out: &mut dyn Write) -> Result<(), CliError> {
    match resp.get("type").and_then(Json::as_str) {
        Some("overload") => {
            let retry_after_ms = resp
                .get("retry_after_ms")
                .and_then(Json::as_u64)
                .unwrap_or(0);
            Err(CliError::Overloaded { retry_after_ms })
        }
        Some("error") => {
            let code = ErrorCode::from_wire(resp.get("code").and_then(Json::as_u64).unwrap_or(1));
            let message = resp
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or("(no message)")
                .to_owned();
            // Guard trips print their partial progress like direct `ppm
            // mine` does before exiting with the partial-result code (the
            // daemon message already carries the "mining aborted:" prefix).
            if let Some(stats) = resp.get("partial_stats") {
                writeln!(out, "{message}")?;
                let n = |f: &str| stats.get(f).and_then(Json::as_u64).unwrap_or(0);
                writeln!(
                    out,
                    "partial progress: {} series scans, {} tree nodes, \
                     {} hit insertions; raise --deadline-ms / --max-tree-nodes to finish",
                    n("series_scans"),
                    n("tree_nodes"),
                    n("hit_insertions")
                )?;
            }
            Err(CliError::Daemon(code, message))
        }
        Some("result") => render_result(op, args, resp, out),
        other => Err(CliError::Daemon(
            ErrorCode::Internal,
            format!("malformed daemon response (type {other:?})"),
        )),
    }
}

/// Success rendering, per op.
fn render_result(
    op: &str,
    args: &Parsed,
    resp: &Json,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let u = |field: &str| resp.get(field).and_then(Json::as_u64).unwrap_or(0);
    match op {
        "mine" => {
            let quarantined = resp.get("quarantined").and_then(Json::as_u64);
            if let Some(n) = quarantined {
                if n == 0 {
                    writeln!(out, "quarantined 0 instants")?;
                } else {
                    writeln!(
                        out,
                        "quarantined {n} instants; counts below are sound lower bounds:"
                    )?;
                }
            }
            print_mine_rows(args, resp, out)?;
            if args.switch("show-cached") {
                let cached = resp.get("cached").and_then(Json::as_str).unwrap_or("?");
                writeln!(out, "cached: {cached}")?;
            }
            if let Some(n) = quarantined.filter(|&n| n > 0) {
                return Err(CliError::Quarantined {
                    skipped: n as usize,
                });
            }
            Ok(())
        }
        "rules" => {
            let min_rule_conf = resp
                .get("min_rule_conf")
                .and_then(Json::as_f64)
                .unwrap_or(0.8);
            let limit: usize = args.parsed_or("limit", 20)?;
            writeln!(
                out,
                "{} rules at confidence >= {min_rule_conf} (from {} frequent patterns, \
                 period {}); showing up to {limit}:",
                u("n_rules"),
                u("n_frequent"),
                u("period")
            )?;
            for row in rows_of(resp) {
                if let Some(text) = row.as_str() {
                    writeln!(out, "  {text}")?;
                }
            }
            Ok(())
        }
        "verify" => {
            let agreed = matches!(resp.get("agreed"), Some(Json::Bool(true)));
            writeln!(
                out,
                "cross-check: {} engines on {} patterns — {}",
                u("engines"),
                u("compared"),
                if agreed { "agree" } else { "DISAGREE" }
            )?;
            let violations = resp
                .get("violations")
                .and_then(Json::as_arr)
                .map(|v| v.len())
                .unwrap_or(0);
            if let Some(Json::Arr(vs)) = resp.get("violations") {
                for v in vs {
                    if let Some(text) = v.as_str() {
                        writeln!(out, "  {text}")?;
                    }
                }
            }
            if agreed {
                Ok(())
            } else {
                Err(CliError::Audit(format!(
                    "{violations} violations (details above)"
                )))
            }
        }
        "info" => {
            if let Some(Json::Arr(stores)) = resp.get("stores") {
                for s in stores {
                    writeln!(
                        out,
                        "{}: {} instants, {}-bit rows, {} features, {} bytes, fingerprint {}",
                        s.get("name").and_then(Json::as_str).unwrap_or("?"),
                        s.get("instants").and_then(Json::as_u64).unwrap_or(0),
                        s.get("width").and_then(Json::as_u64).unwrap_or(0),
                        s.get("features").and_then(Json::as_u64).unwrap_or(0),
                        s.get("file_bytes").and_then(Json::as_u64).unwrap_or(0),
                        s.get("fingerprint").and_then(Json::as_str).unwrap_or("?"),
                    )?;
                }
            }
            Ok(())
        }
        "health" => {
            let degraded = matches!(resp.get("degraded"), Some(Json::Bool(true)));
            writeln!(
                out,
                "ready: {} degraded: {} ({}/{} stores quarantined)",
                matches!(resp.get("ready"), Some(Json::Bool(true))),
                degraded,
                u("stores_quarantined"),
                u("stores_total"),
            )?;
            if let Some(Json::Arr(stores)) = resp.get("stores") {
                for s in stores {
                    writeln!(
                        out,
                        "  {}: {} (fingerprint {})",
                        s.get("name").and_then(Json::as_str).unwrap_or("?"),
                        s.get("status").and_then(Json::as_str).unwrap_or("?"),
                        s.get("fingerprint").and_then(Json::as_str).unwrap_or("?"),
                    )?;
                }
            }
            if degraded {
                // Scripts probing readiness get the quarantine exit code
                // without having to parse the listing.
                return Err(CliError::Daemon(
                    ErrorCode::Quarantined,
                    format!("{} store(s) quarantined", u("stores_quarantined")),
                ));
            }
            Ok(())
        }
        "stats" => {
            for field in [
                "queue_depth",
                "shed",
                "served",
                "panics",
                "conn_reaped",
                "bad_frames",
                "stores",
                "stores_quarantined",
                "uptime_s",
                "worker_busy_us",
            ] {
                writeln!(out, "{field}: {}", u(field))?;
            }
            if let Some(cache) = resp.get("cache") {
                for field in [
                    "entries",
                    "bytes",
                    "hits",
                    "derived",
                    "misses",
                    "rejected",
                    "evictions",
                ] {
                    writeln!(
                        out,
                        "cache.{field}: {}",
                        cache.get(field).and_then(Json::as_u64).unwrap_or(0)
                    )?;
                }
            }
            if let Some(latency) = resp.get("latency") {
                print_latency(latency, out)?;
            }
            Ok(())
        }
        "metrics" => {
            // The raw Prometheus exposition, unmodified — pipe it to a
            // file and a scraper can read it directly.
            if let Some(text) = resp.get("exposition").and_then(Json::as_str) {
                out.write_all(text.as_bytes())?;
            }
            Ok(())
        }
        "shutdown" => {
            writeln!(out, "daemon draining")?;
            Ok(())
        }
        _ => Ok(()),
    }
}

/// Renders the `stats` latency block as one line per histogram:
/// `latency.service: n=9 mean=2100us p50=1800us p90=4000us p95=4200us
/// p99=4800us max=5000us`. Empty histograms print `n=0 (no samples)` so
/// an idle daemon still shows the full set of series.
fn print_latency(latency: &Json, out: &mut dyn Write) -> Result<(), CliError> {
    for name in [
        "queue_wait",
        "service",
        "scan1",
        "scan2",
        "derive",
        "cache_lookup",
    ] {
        let Some(h) = latency.get(name) else {
            continue;
        };
        let u = |f: &str| h.get(f).and_then(Json::as_u64).unwrap_or(0);
        let count = u("count");
        if count == 0 {
            writeln!(out, "latency.{name}: n=0 (no samples)")?;
            continue;
        }
        writeln!(
            out,
            "latency.{name}: n={count} mean={}us p50={}us p90={}us p95={}us p99={}us max={}us",
            h.get("mean_us").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            u("p50_us"),
            u("p90_us"),
            u("p95_us"),
            u("p99_us"),
            u("max_us")
        )?;
    }
    Ok(())
}

/// Prints the `mine` rows exactly as `ppm mine`'s `print_result` does, so
/// the two outputs diff clean.
fn print_mine_rows(args: &Parsed, resp: &Json, out: &mut dyn Write) -> Result<(), CliError> {
    let min_conf: f64 = args.required_parsed("min-conf")?;
    let limit: usize = args.parsed_or("limit", 20)?;
    let patterns = resp.get("patterns").and_then(Json::as_u64).unwrap_or(0);
    let segments = resp.get("segments").and_then(Json::as_u64).unwrap_or(0);
    let scans = resp.get("scans").and_then(Json::as_u64).unwrap_or(0);
    let period = resp.get("period").and_then(Json::as_u64).unwrap_or(0);
    writeln!(
        out,
        "{patterns} frequent patterns (period {period}, {segments} segments, \
         min_conf {min_conf}, {scans} scans); showing up to {limit}, longest first:",
    )?;
    for row in rows_of(resp) {
        let cells = match row.as_arr() {
            Some(cells) if cells.len() == 3 => cells,
            _ => continue,
        };
        let display = cells[0].as_str().unwrap_or("?");
        let count = cells[2].as_u64().unwrap_or(0);
        writeln!(
            out,
            "  {display}  count={count} conf={:.3}",
            count as f64 / segments as f64
        )?;
    }
    Ok(())
}

/// The response's `rows` array (empty when absent).
fn rows_of(resp: &Json) -> &[Json] {
    resp.get("rows").and_then(Json::as_arr).unwrap_or(&[])
}

#[cfg(test)]
mod tests {
    use crate::cmd::testutil::run_cli;

    #[test]
    fn unknown_op_is_usage_error() {
        let err = run_cli("query --op launch --port 1").unwrap_err();
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn missing_port_and_socket_is_usage_error() {
        let err = run_cli("query --op stats").unwrap_err();
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn connection_refused_retries_then_exits_5() {
        // Port 1 is privileged and never our daemon. Even with a single
        // endpoint the bounded retry policy applies: the client makes its
        // rounds, then exits with the retries-exhausted code — not a
        // generic I/O failure on the first refusal.
        let err = run_cli("query --op stats --port 1 --retries 2 --backoff-ms 1").unwrap_err();
        assert_eq!(err.exit_code(), 5, "{err}");
        assert!(err.to_string().contains("2 attempt(s)"), "{err}");
    }

    #[test]
    fn endpoints_flag_accepts_a_replica_list() {
        // Both replicas refuse; the client must rotate over both per
        // round (2 retries × 2 endpoints = 4 attempts) and then exit 5.
        let err = run_cli(
            "query --op stats --endpoints 127.0.0.1:1,127.0.0.1:2 --retries 2 --backoff-ms 1",
        )
        .unwrap_err();
        assert_eq!(err.exit_code(), 5, "{err}");
        assert!(err.to_string().contains("4 attempt(s)"), "{err}");
    }

    #[test]
    fn empty_endpoints_list_is_usage_error() {
        let err = run_cli("query --op stats --endpoints ,").unwrap_err();
        assert_eq!(err.exit_code(), 2);
    }
}
