//! `ppm perfect` — perfect periodicity with cycle elimination.

use std::io::Write;

use ppm_core::multi::PeriodRange;
use ppm_core::perfect::mine_perfect;
use ppm_core::Pattern;

use crate::args::Parsed;
use crate::error::CliError;

/// Runs the command.
pub fn run(args: &Parsed, out: &mut dyn Write) -> Result<(), CliError> {
    let input = args.required("input")?;
    let from: usize = args.required_parsed("from")?;
    let to: usize = args.required_parsed("to")?;

    let (series, catalog) = super::load_series(input)?;
    let range = PeriodRange::new(from, to)?;
    let results = mine_perfect(&series, range)?;

    writeln!(
        out,
        "perfect (confidence = 1) periodicity, periods {from}..={to}:"
    )?;
    for p in &results {
        write!(
            out,
            "  period {:>4}: {:>3} perfect letters, examined {}/{} segments",
            p.period,
            p.alphabet.len(),
            p.segments_examined,
            p.segment_count
        )?;
        if p.has_pattern() && p.alphabet.len() <= 8 {
            let pattern = Pattern::from_letter_set(&p.alphabet, &p.alphabet.full_set());
            write!(out, "  [{}]", pattern.display(&catalog))?;
        }
        writeln!(out)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::cmd::testutil::{run_cli, sample_series_file};

    #[test]
    fn finds_the_perfect_letter() {
        let path = sample_series_file("ppms");
        let text = run_cli(&format!(
            "perfect --input {} --from 2 --to 4",
            path.display()
        ))
        .unwrap();
        // "alpha" holds in every period-3 segment.
        assert!(text.contains("period    3:   1 perfect letters"), "{text}");
        assert!(text.contains("alpha"), "{text}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn cycle_elimination_is_visible() {
        let path = sample_series_file("ppms");
        let text = run_cli(&format!(
            "perfect --input {} --from 2 --to 2",
            path.display()
        ))
        .unwrap();
        // Period 2 has no perfect letter; elimination exits early.
        assert!(text.contains("period    2:   0 perfect letters"), "{text}");
        std::fs::remove_file(path).ok();
    }
}
