//! `ppm verify` — audit an exported pattern file against its input series.
//!
//! Closes the loop on `mine --tsv`: the exported claims are parsed back,
//! checked for internal consistency (letter counts, L-lengths, confidence
//! arithmetic, anti-monotonicity across claims), and recounted against the
//! series by the differential oracle. A clean verify means the artifact a
//! pipeline stored still matches the data it was derived from — a damaged,
//! stale, or tampered export fails with exit code 1 and a violation list.

use std::io::Write;

use ppm_core::audit::{verify_claims, AuditMode, DEFAULT_SAMPLE};
use ppm_core::export::parse_patterns_tsv;

use crate::args::Parsed;
use crate::error::CliError;

/// Runs the command. Observability flags (`--trace`, `--metrics-out`)
/// wrap the verification like they wrap a mine.
pub fn run(args: &Parsed, out: &mut dyn Write) -> Result<(), CliError> {
    let obs = crate::obs::ObsSetup::from_args(args)?;
    let guard = obs.install();
    let outcome = run_inner(args, out);
    drop(guard);
    obs.finalize(None, out)?;
    outcome
}

fn run_inner(args: &Parsed, out: &mut dyn Write) -> Result<(), CliError> {
    let input = args.required("input")?;
    let patterns = args.required("patterns")?;
    let period: usize = args.required_parsed("period")?;
    let min_conf: f64 = args.required_parsed("min-conf")?;
    // --sample [N]: recount a deterministic sample instead of every claim.
    let mode = if args.switch("sample") {
        AuditMode::Sample(args.parsed_or("sample", DEFAULT_SAMPLE)?)
    } else {
        AuditMode::Full
    };

    let (series, mut catalog) = super::load_series(input)?;
    let text = std::fs::read_to_string(patterns)?;
    let claims = parse_patterns_tsv(&text, &mut catalog)?;
    writeln!(
        out,
        "verifying {} claims from {patterns} against {input} \
         (period {period}, min_conf {min_conf})",
        claims.len()
    )?;
    let report = verify_claims(&series, period, min_conf, &claims, &catalog, mode)?;
    writeln!(out, "verify: {}", report.summary())?;
    if report.is_clean() {
        return Ok(());
    }
    for v in &report.violations {
        writeln!(out, "  {v}")?;
    }
    Err(CliError::Audit(format!(
        "{} violations (details above)",
        report.violations.len()
    )))
}

#[cfg(test)]
mod tests {
    use crate::cmd::testutil::{run_cli, sample_series_file, temp_path};

    fn export_tsv(input: &std::path::Path) -> std::path::PathBuf {
        let tsv = run_cli(&format!(
            "mine --input {} --period 3 --min-conf 0.6 --tsv",
            input.display()
        ))
        .unwrap();
        let path = temp_path("verify-claims", "tsv");
        std::fs::write(&path, tsv).unwrap();
        path
    }

    #[test]
    fn clean_export_verifies() {
        let input = sample_series_file("ppms");
        let claims = export_tsv(&input);
        let text = run_cli(&format!(
            "verify --input {} --patterns {} --period 3 --min-conf 0.6",
            input.display(),
            claims.display()
        ))
        .unwrap();
        assert!(text.contains("verify: clean"), "{text}");
        std::fs::remove_file(input).ok();
        std::fs::remove_file(claims).ok();
    }

    #[test]
    fn tampered_count_fails_with_exit_1() {
        let input = sample_series_file("ppms");
        let claims = export_tsv(&input);
        // Bump the first data row's count field.
        let raw = std::fs::read_to_string(&claims).unwrap();
        let mut lines: Vec<String> = raw.lines().map(str::to_owned).collect();
        let mut fields: Vec<String> = lines[1].split('\t').map(str::to_owned).collect();
        let count: u64 = fields[3].parse().unwrap();
        fields[3] = (count + 3).to_string();
        lines[1] = fields.join("\t");
        std::fs::write(&claims, lines.join("\n")).unwrap();

        let argv: Vec<String> = format!(
            "verify --input {} --patterns {} --period 3 --min-conf 0.6",
            input.display(),
            claims.display()
        )
        .split_whitespace()
        .map(str::to_owned)
        .collect();
        let mut out = Vec::new();
        let err = crate::run(&argv, &mut out).unwrap_err();
        assert_eq!(err.exit_code(), 1);
        assert!(err.to_string().contains("verification failed"), "{err}");
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("violation"), "{text}");
        std::fs::remove_file(input).ok();
        std::fs::remove_file(claims).ok();
    }

    #[test]
    fn damaged_tsv_is_a_mining_error_not_a_panic() {
        let input = sample_series_file("ppms");
        let claims = temp_path("verify-broken", "tsv");
        std::fs::write(&claims, "not a header\njunk\n").unwrap();
        let err = run_cli(&format!(
            "verify --input {} --patterns {} --period 3 --min-conf 0.6",
            input.display(),
            claims.display()
        ))
        .unwrap_err();
        assert_eq!(err.exit_code(), 1);
        std::fs::remove_file(input).ok();
        std::fs::remove_file(claims).ok();
    }

    #[test]
    fn sampled_verify_is_still_clean() {
        let input = sample_series_file("ppms");
        let claims = export_tsv(&input);
        let text = run_cli(&format!(
            "verify --input {} --patterns {} --period 3 --min-conf 0.6 --sample 2",
            input.display(),
            claims.display()
        ))
        .unwrap();
        assert!(text.contains("verify: clean"), "{text}");
        assert!(text.contains("sampled"), "{text}");
        std::fs::remove_file(input).ok();
        std::fs::remove_file(claims).ok();
    }

    #[test]
    fn columnar_input_verifies() {
        let input = sample_series_file("ppmc");
        let claims = export_tsv(&input);
        let text = run_cli(&format!(
            "verify --input {} --patterns {} --period 3 --min-conf 0.6",
            input.display(),
            claims.display()
        ))
        .unwrap();
        assert!(text.contains("verify: clean"), "{text}");
        std::fs::remove_file(input).ok();
        std::fs::remove_file(claims).ok();
    }

    #[test]
    fn missing_flags_are_usage_errors() {
        let err = run_cli("verify --input x.ppms --period 3").unwrap_err();
        assert_eq!(err.exit_code(), 2);
    }
}
