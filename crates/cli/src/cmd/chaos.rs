//! `ppm chaos` — the deterministic chaos proxy, as a command.
//!
//! Stands a [`ppm_serve::ChaosProxy`] in front of a running daemon so
//! soak scripts (and curious operators) can watch the client's
//! retry/failover machinery absorb delayed, truncated, corrupted,
//! duplicated, and severed responses. The fault schedule is a pure
//! function of `--seed` and the connection order — print the seed,
//! rerun it, and the exact same connections misbehave the exact same
//! way.

use std::io::Write;

use ppm_serve::chaos::{ChaosConfig, ChaosProxy};

use crate::args::Parsed;
use crate::error::CliError;

/// Runs the proxy until SIGTERM/SIGINT.
pub fn run(args: &Parsed, out: &mut dyn Write) -> Result<(), CliError> {
    let upstream = args.required("upstream")?;
    let listen_port: u16 = args.parsed_or("port", 0)?;
    let listen = format!("127.0.0.1:{listen_port}");
    let defaults = ChaosConfig::default();
    let config = ChaosConfig {
        seed: args.parsed_or("seed", defaults.seed)?,
        fault_percent: args.parsed_or("fault-percent", defaults.fault_percent)?,
        delay_ms: args.parsed_or("delay-ms", defaults.delay_ms)?,
    };
    if config.fault_percent > 100 {
        return Err(CliError::Usage("--fault-percent is a 0-100 percent".into()));
    }

    let shutdown = ppm_serve::signal::install_termination_handler();
    let proxy = ChaosProxy::bind(&listen, upstream, config.clone())?;
    writeln!(
        out,
        "chaos: seed {} fault-percent {} delay-ms {} upstream {upstream}",
        config.seed, config.fault_percent, config.delay_ms
    )?;
    // The last banner line carries the resolved address — scripts parse
    // it exactly like `ppm serve`'s.
    writeln!(out, "listening on tcp {}", proxy.local_addr())?;
    out.flush()?;

    // The proxy polls its own stop handle; bridge the signal flag to it
    // from a sidecar thread so Ctrl-C lands within a tick.
    let stop = proxy.stop_handle();
    let watcher = std::thread::spawn(move || loop {
        if shutdown.is_set() {
            stop.store(true, std::sync::atomic::Ordering::SeqCst);
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    });
    proxy.run()?;
    watcher.join().ok();
    writeln!(
        out,
        "chaos proxy stopped ({} connections)",
        proxy.connections()
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::cmd::testutil::run_cli;

    #[test]
    fn missing_upstream_is_usage_error() {
        let err = run_cli("chaos --port 0").unwrap_err();
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn fault_percent_is_validated() {
        let err = run_cli("chaos --upstream 127.0.0.1:1 --fault-percent 150").unwrap_err();
        assert_eq!(err.exit_code(), 2);
    }
}
