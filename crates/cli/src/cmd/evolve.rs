//! `ppm evolve` — windowed mining with drift classification.

use std::io::Write;

use ppm_core::evolution::{mine_windows, Drift, WindowSpec};
use ppm_core::MineConfig;

use crate::args::Parsed;
use crate::error::CliError;

/// Runs the command.
pub fn run(args: &Parsed, out: &mut dyn Write) -> Result<(), CliError> {
    let input = args.required("input")?;
    let period: usize = args.required_parsed("period")?;
    let min_conf: f64 = args.required_parsed("min-conf")?;
    let window: usize = args.required_parsed("window")?;
    let stride: usize = args.parsed_or("stride", window)?;
    let limit: usize = args.parsed_or("limit", 10)?;

    let (series, catalog) = super::load_series(input)?;
    let config = MineConfig::new(min_conf)?;
    let spec = WindowSpec::new(window, stride)?;
    let result = mine_windows(&series, period, &config, spec)?;
    let n = result.window_count();

    writeln!(
        out,
        "{} windows of {window} segments (stride {stride}), {} tracked patterns:",
        n,
        result.tracks.len()
    )?;
    for (label, drift) in [
        ("stable", Drift::Stable),
        ("emerging", Drift::Emerging),
        ("vanished", Drift::Vanished),
        ("intermittent", Drift::Intermittent),
    ] {
        let tracks: Vec<_> = result.with_drift(drift).collect();
        writeln!(out, "\n{label} ({}):", tracks.len())?;
        for track in tracks.into_iter().take(limit) {
            let letters: Vec<String> = track
                .letters
                .iter()
                .map(|&(o, f)| format!("{}@{o}", catalog.name_or_placeholder(f)))
                .collect();
            let confs: Vec<String> = track
                .confidences
                .iter()
                .map(|c| c.map_or("  .  ".to_owned(), |v| format!("{v:5.2}")))
                .collect();
            writeln!(out, "  [{}] {}", letters.join(" "), confs.join(" "))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::cmd::testutil::{run_cli, sample_series_file};

    #[test]
    fn classifies_tracks() {
        let path = sample_series_file("ppms");
        let text = run_cli(&format!(
            "evolve --input {} --period 3 --min-conf 0.6 --window 10",
            path.display()
        ))
        .unwrap();
        assert!(text.contains("3 windows"), "{text}");
        assert!(text.contains("stable"), "{text}");
        assert!(text.contains("alpha@0"), "{text}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn window_longer_than_series_errors() {
        let path = sample_series_file("ppms");
        let err = run_cli(&format!(
            "evolve --input {} --period 3 --min-conf 0.6 --window 1000",
            path.display()
        ))
        .unwrap_err();
        assert_eq!(err.exit_code(), 1);
        std::fs::remove_file(path).ok();
    }
}
