//! `ppm rules` — periodic association rules from a mined period.

use std::io::Write;

use ppm_core::rules::generate_rules;
use ppm_core::{hitset, MineConfig};

use crate::args::Parsed;
use crate::error::CliError;

/// Runs the command.
pub fn run(args: &Parsed, out: &mut dyn Write) -> Result<(), CliError> {
    let input = args.required("input")?;
    let period: usize = args.required_parsed("period")?;
    let min_conf: f64 = args.required_parsed("min-conf")?;
    let min_rule_conf: f64 = args.parsed_or("min-rule-conf", 0.8)?;
    let limit: usize = args.parsed_or("limit", 20)?;

    let (series, catalog) = super::load_series(input)?;
    let config = MineConfig::new(min_conf)?;
    let result = hitset::mine(&series, period, &config)?;
    let rules = generate_rules(&result, min_rule_conf);

    if args.switch("tsv") {
        write!(
            out,
            "{}",
            ppm_core::export::rules_tsv(&rules, &result, &catalog)
        )?;
        return Ok(());
    }

    writeln!(
        out,
        "{} rules at confidence >= {min_rule_conf} (from {} frequent patterns, period {period}); showing up to {limit}:",
        rules.len(),
        result.len()
    )?;
    for rule in rules.iter().take(limit) {
        writeln!(out, "  {}", rule.display(&result, &catalog))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::cmd::testutil::{run_cli, sample_series_file};

    #[test]
    fn emits_rules() {
        let path = sample_series_file("ppms");
        let text = run_cli(&format!(
            "rules --input {} --period 3 --min-conf 0.5 --min-rule-conf 0.5",
            path.display()
        ))
        .unwrap();
        assert!(text.contains("=>"), "{text}");
        assert!(text.contains("alpha") || text.contains("beta"), "{text}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn threshold_can_silence_all_rules() {
        let path = sample_series_file("ppms");
        let text = run_cli(&format!(
            "rules --input {} --period 3 --min-conf 0.5 --min-rule-conf 0.999",
            path.display()
        ))
        .unwrap();
        // beta => alpha holds at 1.0, so at least that one survives; check
        // the header formatting rather than emptiness.
        assert!(text.contains("rules at confidence >= 0.999"), "{text}");
        std::fs::remove_file(path).ok();
    }
}
