//! Command implementations.

pub mod chaos;
pub mod convert;
pub mod evolve;
pub mod generate;
pub mod info;
pub mod mine;
pub mod perfect;
pub mod query;
pub mod rules;
pub mod serve;
pub mod sweep;
pub mod verify;

use std::path::Path;

use ppm_core::MineConfig;
use ppm_timeseries::columnar::{self, ColumnarReader};
use ppm_timeseries::storage::{self, stream};
use ppm_timeseries::{FeatureCatalog, FeatureSeries};

use crate::args::Parsed;
use crate::error::CliError;

/// Applies the shared resource-guard flags — `--deadline-ms` and
/// `--max-tree-nodes` — to a mining config. Guarded miners abort with a
/// typed error carrying partial statistics when either limit is hit.
pub fn apply_guards(args: &Parsed, mut config: MineConfig) -> Result<MineConfig, CliError> {
    // `switch()` (not `get()`) so a value-less `--deadline-ms` is a usage
    // error instead of silently disabling the guard the user asked for.
    if args.switch("deadline-ms") {
        let ms: u64 = args.required_parsed("deadline-ms")?;
        config = config.with_deadline(std::time::Duration::from_millis(ms));
    }
    if args.switch("max-tree-nodes") {
        let nodes: usize = args.required_parsed("max-tree-nodes")?;
        config = config.with_max_tree_nodes(nodes);
    }
    Ok(config)
}

/// Resolves the counting engine from `--engine` (preferred) or its older
/// spelling `--algorithm`; both given at once is ambiguous and rejected.
/// Defaults to the hit-set engine. Which values are legal depends on the
/// command, so validation happens at the call site.
pub fn resolve_engine(args: &Parsed) -> Result<&str, CliError> {
    match (args.get("engine"), args.get("algorithm")) {
        (Some(_), Some(_)) => Err(CliError::Usage(
            "--engine and --algorithm are the same flag; pass only one".into(),
        )),
        (Some(e), None) | (None, Some(e)) => Ok(e),
        (None, None) => Ok("hitset"),
    }
}

/// Series file formats, chosen by extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Line-oriented text (`.txt`).
    Text,
    /// Block binary (`.ppms` and anything unrecognized).
    Binary,
    /// Record-streaming binary (`.ppmstream`).
    Stream,
    /// Columnar bitmap store (`.ppmc`) — the on-disk layout *is* the
    /// encoded-series layout, so miners borrow the loaded words directly.
    Columnar,
}

impl Format {
    /// Parses an explicit format name (the `convert --to` values).
    pub fn parse(name: &str) -> Result<Format, CliError> {
        match name {
            "text" => Ok(Format::Text),
            "binary" => Ok(Format::Binary),
            "stream" => Ok(Format::Stream),
            "columnar" => Ok(Format::Columnar),
            other => Err(CliError::Usage(format!(
                "unknown format `{other}` (expected text, binary, stream, or columnar)"
            ))),
        }
    }
}

/// Detects the format of `path` from its extension.
pub fn format_of(path: &str) -> Format {
    match Path::new(path).extension().and_then(|e| e.to_str()) {
        Some(ext) if ext.eq_ignore_ascii_case("txt") => Format::Text,
        Some(ext) if ext.eq_ignore_ascii_case("ppmstream") => Format::Stream,
        Some(ext) if ext.eq_ignore_ascii_case("ppmc") => Format::Columnar,
        _ => Format::Binary,
    }
}

/// Loads a series (and catalog) from `path` in whatever format the
/// extension indicates. Streaming files are materialized.
pub fn load_series(path: &str) -> Result<(FeatureSeries, FeatureCatalog), CliError> {
    match format_of(path) {
        Format::Text => {
            let text = std::fs::read_to_string(path)?;
            let mut catalog = FeatureCatalog::new();
            let series = storage::parse_series(&text, &mut catalog)?;
            Ok((series, catalog))
        }
        Format::Binary => Ok(storage::read_series(path)?),
        Format::Stream => {
            let source = stream::FileSource::open(path)?;
            let series = source.materialize()?;
            let catalog = source.catalog().clone();
            Ok((series, catalog))
        }
        Format::Columnar => {
            let reader = ColumnarReader::open(path)?;
            let series = reader.to_series();
            let catalog = reader.catalog().clone();
            Ok((series, catalog))
        }
    }
}

/// Saves a series to `path` in the format its extension indicates.
pub fn save_series(
    path: &str,
    series: &FeatureSeries,
    catalog: &FeatureCatalog,
) -> Result<(), CliError> {
    save_series_as(path, format_of(path), series, catalog)
}

/// Saves a series to `path` in an explicitly chosen format, regardless of
/// the path's extension (the `convert --to` escape hatch).
pub fn save_series_as(
    path: &str,
    format: Format,
    series: &FeatureSeries,
    catalog: &FeatureCatalog,
) -> Result<(), CliError> {
    match format {
        Format::Text => {
            std::fs::write(path, storage::render_series(series, catalog))?;
            Ok(())
        }
        Format::Binary => {
            storage::write_series(path, series, catalog)?;
            Ok(())
        }
        Format::Stream => {
            stream::StreamWriter::create(path, catalog)?.write_series(series)?;
            Ok(())
        }
        Format::Columnar => {
            columnar::write_columnar(path, series, catalog)?;
            Ok(())
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Helpers shared by command tests.

    use super::*;
    use ppm_timeseries::SeriesBuilder;

    /// A unique temp path with the given extension.
    pub fn temp_path(tag: &str, ext: &str) -> std::path::PathBuf {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "ppm-cli-test-{}-{tag}-{n}.{ext}",
            std::process::id()
        ))
    }

    /// Writes a simple periodic series (period 3: alpha at 0 always, beta
    /// at 1 in 2/3 of segments) to a temp file; returns the path.
    pub fn sample_series_file(ext: &str) -> std::path::PathBuf {
        let mut catalog = FeatureCatalog::new();
        let a = catalog.intern("alpha");
        let b = catalog.intern("beta");
        let mut builder = SeriesBuilder::new();
        for j in 0..30 {
            builder.push_instant([a]);
            builder.push_instant(if j % 3 != 0 { vec![b] } else { vec![] });
            builder.push_instant([]);
        }
        let series = builder.finish();
        let path = temp_path("sample", ext);
        save_series(path.to_str().unwrap(), &series, &catalog).unwrap();
        path
    }

    /// Runs the CLI end to end, capturing stdout.
    pub fn run_cli(line: &str) -> Result<String, CliError> {
        let argv: Vec<String> = line.split_whitespace().map(str::to_owned).collect();
        let mut out = Vec::new();
        crate::run(&argv, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8 output"))
    }

    #[test]
    fn all_formats_round_trip_through_helpers() {
        for ext in ["txt", "ppms", "ppmstream", "ppmc"] {
            let path = sample_series_file(ext);
            let (series, catalog) = load_series(path.to_str().unwrap()).unwrap();
            assert_eq!(series.len(), 90, "{ext}");
            assert!(catalog.get("alpha").is_some(), "{ext}");
            std::fs::remove_file(path).ok();
        }
    }

    #[test]
    fn format_detection() {
        assert_eq!(format_of("a.txt"), Format::Text);
        assert_eq!(format_of("a.TXT"), Format::Text);
        assert_eq!(format_of("a.ppms"), Format::Binary);
        assert_eq!(format_of("a.ppmstream"), Format::Stream);
        assert_eq!(format_of("a.ppmc"), Format::Columnar);
        assert_eq!(format_of("noext"), Format::Binary);
    }

    #[test]
    fn explicit_format_names_parse() {
        assert_eq!(Format::parse("text").unwrap(), Format::Text);
        assert_eq!(Format::parse("binary").unwrap(), Format::Binary);
        assert_eq!(Format::parse("stream").unwrap(), Format::Stream);
        assert_eq!(Format::parse("columnar").unwrap(), Format::Columnar);
        assert_eq!(Format::parse("parquet").unwrap_err().exit_code(), 2);
    }
}
