//! `ppm serve` — the fault-tolerant mining daemon.
//!
//! Keeps every `--stores` `.ppmc` open as a shared zero-copy view and
//! answers concurrent queries (see `ppm query`) over TCP or a Unix
//! socket until SIGTERM/SIGINT, which drains in-flight work and flushes
//! the crash-safe result cache before exiting.

use std::io::Write;
use std::path::PathBuf;

use ppm_serve::server::{Bind, ServeConfig, Server};
use ppm_serve::StoreRegistry;

use crate::args::Parsed;
use crate::error::CliError;

/// Runs the daemon until a termination signal (or a `shutdown` query).
pub fn run(args: &Parsed, out: &mut dyn Write) -> Result<(), CliError> {
    let stores: Vec<String> = args
        .required("stores")?
        .split(',')
        .filter(|s| !s.is_empty())
        .map(str::to_owned)
        .collect();

    let bind = match args.get("socket") {
        Some(path) => Bind::Unix(PathBuf::from(path)),
        None => {
            let host = args.get("host").unwrap_or("127.0.0.1");
            let port: u16 = args.parsed_or("port", 0)?;
            Bind::Tcp(format!("{host}:{port}"))
        }
    };

    let mut config = ServeConfig::new(bind);
    config.workers = args.parsed_or("workers", 4)?;
    config.queue_cap = args.parsed_or("queue", 16)?;
    config.cache_path = args.get("cache").map(PathBuf::from);
    if args.switch("deadline-ms") {
        config.default_deadline_ms = Some(args.required_parsed("deadline-ms")?);
    }
    if args.switch("max-tree-nodes") {
        config.default_max_tree_nodes = Some(args.required_parsed("max-tree-nodes")?);
    }
    config.drain_ms = args.parsed_or("drain-ms", 5_000)?;
    config.retry_after_ms = args.parsed_or("retry-after-ms", 100)?;
    config.test_faults = args.switch("test-faults");
    // Connection hardening and health: per-frame/idle deadlines, the
    // per-connection request budget, the store re-verification interval
    // (0 disables), and the result-cache growth bounds.
    config.idle_timeout_ms = args.parsed_or("idle-timeout-ms", config.idle_timeout_ms)?;
    config.frame_deadline_ms = args.parsed_or("frame-deadline-ms", config.frame_deadline_ms)?;
    config.max_requests_per_conn =
        args.parsed_or("max-requests-per-conn", config.max_requests_per_conn)?;
    config.verify_interval_ms = args.parsed_or("verify-interval-ms", config.verify_interval_ms)?;
    config.cache_limits.max_entries =
        args.parsed_or("cache-max-entries", config.cache_limits.max_entries)?;
    config.cache_limits.max_bytes =
        args.parsed_or("cache-max-bytes", config.cache_limits.max_bytes)?;
    // Observability surface: `--metrics-out` is the continuously
    // rewritten Prometheus exposition file (not the JSON-lines sink the
    // one-shot commands write), `--access-log` the per-query JSON-lines
    // log, `--slow-ms` the full-span-detail threshold, `--flight-dump`
    // where SIGUSR1/panic/shed flight-recorder dumps land.
    config.metrics_out = args.get("metrics-out").map(PathBuf::from);
    config.access_log = args.get("access-log").map(PathBuf::from);
    if args.switch("slow-ms") {
        config.slow_ms = Some(args.required_parsed("slow-ms")?);
    }
    config.flight_path = args.get("flight-dump").map(PathBuf::from);
    config.flight_events = args.parsed_or("flight-events", config.flight_events)?;
    if config.workers == 0 || config.queue_cap == 0 {
        return Err(CliError::Usage(
            "--workers and --queue must be at least 1".into(),
        ));
    }

    let obs = crate::obs::ObsSetup::for_daemon(args)?;
    let guard = obs.install();
    let _shutdown = ppm_serve::signal::install_termination_handler();

    let registry = StoreRegistry::open(&stores).map_err(CliError::Usage)?;
    let server = Server::bind(registry, config.clone())?;

    for store in server_stores(&server) {
        writeln!(out, "store {store}")?;
    }
    writeln!(
        out,
        "cache: {} ({} warm entries)",
        config
            .cache_path
            .as_deref()
            .map(|p| p.display().to_string())
            .unwrap_or_else(|| "memory only".to_owned()),
        server.warm_cache_entries()
    )?;
    if let Some(p) = &config.metrics_out {
        writeln!(out, "metrics exposition: {}", p.display())?;
    }
    if let Some(p) = &config.access_log {
        writeln!(out, "access log: {}", p.display())?;
    }
    if let Some(p) = &config.flight_path {
        writeln!(out, "flight dumps: {} (SIGUSR1 to trigger)", p.display())?;
    }
    // The last banner line carries the resolved address — scripts parse it
    // to learn the port when `--port 0` picked one.
    writeln!(
        out,
        "listening on {} ({} workers, queue {})",
        server.local_addr(),
        config.workers,
        config.queue_cap
    )?;
    out.flush()?;

    server.run()?;
    drop(guard);
    writeln!(out, "daemon stopped cleanly")?;
    Ok(())
}

/// One banner line per store: name, size, fingerprint.
fn server_stores(server: &Server) -> Vec<String> {
    server
        .registry()
        .iter()
        .map(|s| {
            format!(
                "{}: {} instants, {} features, fingerprint {:016x}",
                s.name,
                s.reader.len(),
                s.reader.catalog().len(),
                s.fingerprint()
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use crate::cmd::testutil::{run_cli, sample_series_file};

    #[test]
    fn missing_stores_is_usage_error() {
        let err = run_cli("serve --port 0").unwrap_err();
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn unopenable_store_is_usage_error() {
        let err = run_cli("serve --stores /definitely/not/here.ppmc --port 0").unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("cannot open store"), "{err}");
    }

    #[test]
    fn zero_workers_is_usage_error() {
        let path = sample_series_file("ppmc");
        let err = run_cli(&format!(
            "serve --stores {} --port 0 --workers 0",
            path.display()
        ))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        std::fs::remove_file(path).ok();
    }
}
