//! `ppm convert` — transcode between the text and binary series formats.
//!
//! `--salvage` recovers what it can from a damaged `.ppmstream` file (one
//! truncated by a crashed writer, say) instead of refusing to read it: the
//! valid record prefix is extracted and written to the output path.

use std::io::Write;

use ppm_timeseries::storage::salvage_series;

use crate::args::Parsed;
use crate::error::CliError;

/// Runs the command.
pub fn run(args: &Parsed, out: &mut dyn Write) -> Result<(), CliError> {
    let input = args.required("input")?;
    let output = args.required("out")?;

    if args.switch("salvage") {
        if super::format_of(input) != super::Format::Stream {
            return Err(CliError::Usage(
                "--salvage recovers damaged .ppmstream files; other formats \
                 fail whole-file checksums and cannot be partially recovered"
                    .into(),
            ));
        }
        let (series, catalog, report) = salvage_series(input)?;
        super::save_series(output, &series, &catalog)?;
        writeln!(
            out,
            "salvaged {input} -> {output}: {} instants recovered",
            report.recovered_instants
        )?;
        if report.clean {
            writeln!(out, "file was intact; output is a faithful copy")?;
        } else {
            writeln!(out, "damage: {}", report.detail)?;
        }
        return Ok(());
    }

    let (series, catalog) = super::load_series(input)?;
    // `--to text|binary|stream|columnar` overrides extension sniffing, so
    // a columnar store can live at any path (`convert --to columnar`).
    let format = match args.get("to") {
        Some(name) => super::Format::parse(name)?,
        None => super::format_of(output),
    };
    super::save_series_as(output, format, &series, &catalog)?;
    writeln!(
        out,
        "converted {input} -> {output} ({} instants, {} features)",
        series.len(),
        catalog.len()
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::cmd::testutil::{run_cli, sample_series_file, temp_path};

    #[test]
    fn binary_to_text_and_back() {
        let bin = sample_series_file("ppms");
        let txt = temp_path("conv", "txt");
        let bin2 = temp_path("conv2", "ppms");
        run_cli(&format!(
            "convert --input {} --out {}",
            bin.display(),
            txt.display()
        ))
        .unwrap();
        run_cli(&format!(
            "convert --input {} --out {}",
            txt.display(),
            bin2.display()
        ))
        .unwrap();
        let (a, _) = crate::cmd::load_series(bin.to_str().unwrap()).unwrap();
        let (b, _) = crate::cmd::load_series(bin2.to_str().unwrap()).unwrap();
        assert_eq!(a.len(), b.len());
        // Same feature multiset per instant (ids may be renumbered).
        assert_eq!(a.total_features(), b.total_features());
        for p in [bin, txt, bin2] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn salvage_recovers_truncated_stream() {
        let stream = sample_series_file("ppmstream");
        // Chop the trailer and the last few records off, as a crashed
        // writer would.
        let bytes = std::fs::read(&stream).unwrap();
        std::fs::write(&stream, &bytes[..bytes.len() - 40]).unwrap();

        // A plain convert refuses the damaged file...
        let rescue = temp_path("salvaged", "ppms");
        let err = run_cli(&format!(
            "convert --input {} --out {}",
            stream.display(),
            rescue.display()
        ))
        .unwrap_err();
        assert_eq!(err.exit_code(), 1);

        // ...while --salvage recovers the valid prefix.
        let text = run_cli(&format!(
            "convert --input {} --out {} --salvage",
            stream.display(),
            rescue.display()
        ))
        .unwrap();
        assert!(text.contains("instants recovered"), "{text}");
        assert!(text.contains("damage:"), "{text}");
        let (series, catalog) = crate::cmd::load_series(rescue.to_str().unwrap()).unwrap();
        assert!(!series.is_empty() && series.len() < 90, "a strict prefix");
        assert!(catalog.get("alpha").is_some());
        for p in [stream, rescue] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn salvage_requires_stream_input() {
        let bin = sample_series_file("ppms");
        let out = temp_path("salvage-bad", "ppms");
        let err = run_cli(&format!(
            "convert --input {} --out {} --salvage",
            bin.display(),
            out.display()
        ))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        std::fs::remove_file(bin).ok();
    }

    #[test]
    fn to_columnar_and_back_preserves_the_series() {
        let bin = sample_series_file("ppms");
        // `--to columnar` wins over the misleading `.dat` extension.
        let col = temp_path("conv-col", "dat");
        let back = temp_path("conv-col-back", "ppms");
        run_cli(&format!(
            "convert --input {} --out {} --to columnar",
            bin.display(),
            col.display()
        ))
        .unwrap();
        let reader = ppm_timeseries::columnar::ColumnarReader::open(&col).unwrap();
        assert_eq!(reader.len(), 90);
        let text = run_cli(&format!(
            "convert --input {} --out {} --to binary",
            col.display(),
            back.display()
        ))
        .unwrap_err();
        // `.dat` sniffs as block binary, not columnar — the typed error
        // (bad magic) proves sniffing stayed honest; converting back needs
        // the real extension.
        assert_eq!(text.exit_code(), 1);
        let col2 = temp_path("conv-col2", "ppmc");
        std::fs::copy(&col, &col2).unwrap();
        run_cli(&format!(
            "convert --input {} --out {}",
            col2.display(),
            back.display()
        ))
        .unwrap();
        let (a, _) = crate::cmd::load_series(bin.to_str().unwrap()).unwrap();
        let (b, _) = crate::cmd::load_series(back.to_str().unwrap()).unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.total_features(), b.total_features());
        for p in [bin, col, col2, back] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn rejects_unknown_to_format() {
        let bin = sample_series_file("ppms");
        let out = temp_path("conv-badfmt", "ppms");
        let err = run_cli(&format!(
            "convert --input {} --out {} --to parquet",
            bin.display(),
            out.display()
        ))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        std::fs::remove_file(bin).ok();
    }

    #[test]
    fn text_output_is_readable() {
        let bin = sample_series_file("ppms");
        let txt = temp_path("conv-read", "txt");
        run_cli(&format!(
            "convert --input {} --out {}",
            bin.display(),
            txt.display()
        ))
        .unwrap();
        let content = std::fs::read_to_string(&txt).unwrap();
        assert!(content.contains("alpha"));
        assert!(content.contains('-'));
        for p in [bin, txt] {
            std::fs::remove_file(p).ok();
        }
    }
}
