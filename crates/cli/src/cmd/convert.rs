//! `ppm convert` — transcode between the text and binary series formats.

use std::io::Write;

use crate::args::Parsed;
use crate::error::CliError;

/// Runs the command.
pub fn run(args: &Parsed, out: &mut dyn Write) -> Result<(), CliError> {
    let input = args.required("input")?;
    let output = args.required("out")?;
    let (series, catalog) = super::load_series(input)?;
    super::save_series(output, &series, &catalog)?;
    writeln!(
        out,
        "converted {input} -> {output} ({} instants, {} features)",
        series.len(),
        catalog.len()
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::cmd::testutil::{run_cli, sample_series_file, temp_path};

    #[test]
    fn binary_to_text_and_back() {
        let bin = sample_series_file("ppms");
        let txt = temp_path("conv", "txt");
        let bin2 = temp_path("conv2", "ppms");
        run_cli(&format!("convert --input {} --out {}", bin.display(), txt.display())).unwrap();
        run_cli(&format!("convert --input {} --out {}", txt.display(), bin2.display()))
            .unwrap();
        let (a, _) = crate::cmd::load_series(bin.to_str().unwrap()).unwrap();
        let (b, _) = crate::cmd::load_series(bin2.to_str().unwrap()).unwrap();
        assert_eq!(a.len(), b.len());
        // Same feature multiset per instant (ids may be renumbered).
        assert_eq!(a.total_features(), b.total_features());
        for p in [bin, txt, bin2] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn text_output_is_readable() {
        let bin = sample_series_file("ppms");
        let txt = temp_path("conv-read", "txt");
        run_cli(&format!("convert --input {} --out {}", bin.display(), txt.display())).unwrap();
        let content = std::fs::read_to_string(&txt).unwrap();
        assert!(content.contains("alpha"));
        assert!(content.contains('-'));
        for p in [bin, txt] {
            std::fs::remove_file(p).ok();
        }
    }
}
