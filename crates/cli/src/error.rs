//! CLI error type and the exit-code taxonomy.
//!
//! Exit codes are part of the tool's contract — scripts branch on them —
//! and they are shared with the daemon's wire-level error codes
//! ([`ppm_serve::ErrorCode`]), so `ppm query` against a daemon and `ppm
//! mine` against a file exit identically for the same failure:
//!
//! | code | meaning                                                       |
//! |------|---------------------------------------------------------------|
//! | 0    | success                                                       |
//! | 1    | internal failure (I/O, mining error, audit violation, panic)  |
//! | 2    | usage: unknown command, missing/invalid flag                  |
//! | 3    | partial result: a resource guard (deadline / tree budget)     |
//! |      | tripped; partial progress stats were reported                 |
//! | 4    | quarantined: input instants were skipped; reported counts are |
//! |      | sound lower bounds, not exact                                 |
//! | 5    | transient-I/O retries exhausted: the failure survived the     |
//! |      | retry policy and is probably environmental                    |
//! | 6    | overloaded: the daemon shed the query; retry after backoff    |

use std::fmt;

use ppm_serve::ErrorCode;

/// Errors surfaced to the terminal, each mapping onto the exit-code
/// taxonomy above.
#[derive(Debug)]
pub enum CliError {
    /// Bad invocation: unknown command, missing/invalid flag.
    Usage(String),
    /// I/O failure reading or writing files or the terminal.
    Io(std::io::Error),
    /// Failure from the series substrate.
    Series(ppm_timeseries::Error),
    /// Failure from the mining layer.
    Mining(ppm_core::Error),
    /// Verification found violations: the result (or an exported claim
    /// file) failed the invariant auditor or the differential oracle.
    Audit(String),
    /// Quarantine skipped input instants: results were printed but are
    /// lower bounds, and scripts get a distinct exit code saying so.
    Quarantined {
        /// How many instants were quarantined.
        skipped: usize,
    },
    /// The daemon shed this query at admission; retry after the hint.
    Overloaded {
        /// Backoff hint from the daemon's overload response.
        retry_after_ms: u64,
    },
    /// The daemon answered with a typed error frame; the code carries
    /// straight through to the exit status.
    Daemon(ErrorCode, String),
}

impl CliError {
    /// The process exit code this error maps to (see the module table).
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => ErrorCode::Usage.exit_code(),
            CliError::Quarantined { .. } => ErrorCode::Quarantined.exit_code(),
            CliError::Overloaded { .. } => ErrorCode::Overloaded.exit_code(),
            CliError::Daemon(code, _) => code.exit_code(),
            CliError::Mining(e) => {
                if e.partial_stats().is_some() {
                    ErrorCode::PartialResult.exit_code()
                } else if e.is_transient() {
                    ErrorCode::RetriesExhausted.exit_code()
                } else {
                    ErrorCode::Internal.exit_code()
                }
            }
            CliError::Series(e) => {
                // A transient error that reaches the top means every retry
                // was spent.
                if e.is_transient() {
                    ErrorCode::RetriesExhausted.exit_code()
                } else {
                    ErrorCode::Internal.exit_code()
                }
            }
            _ => ErrorCode::Internal.exit_code(),
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Io(e) => write!(f, "i/o error: {e}"),
            CliError::Series(e) => write!(f, "series error: {e}"),
            CliError::Mining(e) => write!(f, "mining error: {e}"),
            CliError::Audit(msg) => write!(f, "verification failed: {msg}"),
            CliError::Quarantined { skipped } => write!(
                f,
                "input quarantined: {skipped} instant(s) skipped; printed counts are lower bounds"
            ),
            CliError::Overloaded { retry_after_ms } => write!(
                f,
                "daemon overloaded: query shed at admission; retry after {retry_after_ms}ms"
            ),
            CliError::Daemon(code, msg) => write!(f, "daemon error [{code}]: {msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<ppm_timeseries::Error> for CliError {
    fn from(e: ppm_timeseries::Error) -> Self {
        CliError::Series(e)
    }
}

impl From<ppm_core::Error> for CliError {
    fn from(e: ppm_core::Error) -> Self {
        CliError::Mining(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn exit_codes() {
        assert_eq!(CliError::Usage("x".into()).exit_code(), 2);
        let io: CliError = std::io::Error::other("boom").into();
        assert_eq!(io.exit_code(), 1);
        assert!(io.to_string().contains("boom"));
        assert_eq!(CliError::Audit("claims".into()).exit_code(), 1);
    }

    #[test]
    fn guard_trips_exit_3() {
        // A zero deadline trips immediately and carries partial stats.
        let mut cat = ppm_timeseries::FeatureCatalog::new();
        let a = cat.intern("a");
        let mut b = ppm_timeseries::SeriesBuilder::new();
        for _ in 0..8 {
            b.push_instant([a]);
            b.push_instant([]);
        }
        let series = b.finish();
        let config = ppm_core::MineConfig::new(0.5)
            .unwrap()
            .with_deadline(Duration::from_secs(0));
        let err = ppm_core::mine(&series, 2, &config, ppm_core::Algorithm::HitSet).unwrap_err();
        assert!(err.partial_stats().is_some());
        assert_eq!(CliError::Mining(err).exit_code(), 3);
    }

    #[test]
    fn robustness_codes_are_distinct() {
        assert_eq!(CliError::Quarantined { skipped: 3 }.exit_code(), 4);
        assert_eq!(CliError::Overloaded { retry_after_ms: 50 }.exit_code(), 6);
        assert_eq!(
            CliError::Daemon(ErrorCode::PartialResult, "slow".into()).exit_code(),
            3
        );
        assert_eq!(
            CliError::Daemon(ErrorCode::Internal, "panicked".into()).exit_code(),
            1
        );
        let quarantined = CliError::Quarantined { skipped: 3 };
        assert!(
            quarantined.to_string().contains("lower bounds"),
            "{quarantined}"
        );
    }
}
