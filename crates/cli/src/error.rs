//! CLI error type.

use std::fmt;

/// Errors surfaced to the terminal with exit code 1 (or 2 for usage).
#[derive(Debug)]
pub enum CliError {
    /// Bad invocation: unknown command, missing/invalid flag.
    Usage(String),
    /// I/O failure reading or writing files or the terminal.
    Io(std::io::Error),
    /// Failure from the series substrate.
    Series(ppm_timeseries::Error),
    /// Failure from the mining layer.
    Mining(ppm_core::Error),
    /// Verification found violations: the result (or an exported claim
    /// file) failed the invariant auditor or the differential oracle.
    Audit(String),
}

impl CliError {
    /// The process exit code this error maps to.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            _ => 1,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Io(e) => write!(f, "i/o error: {e}"),
            CliError::Series(e) => write!(f, "series error: {e}"),
            CliError::Mining(e) => write!(f, "mining error: {e}"),
            CliError::Audit(msg) => write!(f, "verification failed: {msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<ppm_timeseries::Error> for CliError {
    fn from(e: ppm_timeseries::Error) -> Self {
        CliError::Series(e)
    }
}

impl From<ppm_core::Error> for CliError {
    fn from(e: ppm_core::Error) -> Self {
        CliError::Mining(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes() {
        assert_eq!(CliError::Usage("x".into()).exit_code(), 2);
        let io: CliError = std::io::Error::other("boom").into();
        assert_eq!(io.exit_code(), 1);
        assert!(io.to_string().contains("boom"));
    }
}
