//! Regenerates every table and figure of the paper's evaluation, plus the
//! analysis-backed experiments indexed in DESIGN.md.
//!
//! ```text
//! experiments [all|table1|figure1|figure2|scans|space|multiperiod|maximal|derive|disk|extensions] [--quick]
//! ```
//!
//! `--quick` shrinks series lengths so the whole suite finishes in well
//! under a minute; the default sizes match the paper (100k and 500k).

use ppm_bench::*;
use ppm_core::hitset::MaxSubpatternTree;
use ppm_core::multi::PeriodRange;
use ppm_core::perfect::mine_perfect;
use ppm_core::{hitset, scan_frequent_letters, LetterSet, MineConfig};
use ppm_datagen::{noise, SyntheticSpec};
use ppm_timeseries::window;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all")
        .to_owned();

    let run = |name: &str| which == "all" || which == name;
    let mut ran = false;

    if run("table1") {
        table1(quick);
        ran = true;
    }
    if run("figure1") {
        figure1();
        ran = true;
    }
    if run("figure2") {
        figure2(quick);
        ran = true;
    }
    if run("scans") {
        scans(quick);
        ran = true;
    }
    if run("space") {
        space(quick);
        ran = true;
    }
    if run("multiperiod") {
        multiperiod(quick);
        ran = true;
    }
    if run("maximal") {
        maximal_exp(quick);
        ran = true;
    }
    if run("derive") {
        derive_ablation(quick);
        ran = true;
    }
    if run("disk") {
        disk(quick);
        ran = true;
    }
    if run("extensions") {
        extensions(quick);
        ran = true;
    }
    if !ran {
        eprintln!(
            "unknown experiment {which:?}; expected one of all, table1, figure1, \
             figure2, scans, space, multiperiod, maximal, derive, disk, extensions"
        );
        std::process::exit(2);
    }
}

fn banner(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

/// Table 1 — parameters of the synthetic time series, validated by mining
/// the generator's own output.
fn table1(quick: bool) {
    banner("TABLE 1 — synthetic generator parameters (requested vs mined)");
    // Quick mode shrinks lengths but keeps every row at >= 400 whole
    // segments — below that, sampling noise can push a 0.65-confidence
    // letter across the 0.6 threshold and the self-check would flake.
    let rows = run_table1(if quick {
        &[
            (20_000, 50, 4, 12),
            (20_000, 50, 8, 12),
            (50_000, 50, 6, 12),
            (10_000, 20, 5, 10),
            (40_000, 100, 10, 20),
        ]
    } else {
        &[
            (100_000, 50, 4, 12),
            (100_000, 50, 8, 12),
            (500_000, 50, 6, 12),
            (50_000, 20, 5, 10),
            (100_000, 100, 10, 20),
        ]
    });
    println!(
        "{:>8} {:>6} {:>15} {:>6} | {:>12} {:>17} {:>10}",
        "LENGTH", "p", "MAX-PAT-LENGTH", "|F1|", "mined |F1|", "mined MAX-PAT-LEN", "feat/slot"
    );
    for r in rows {
        println!(
            "{:>8} {:>6} {:>15} {:>6} | {:>12} {:>17} {:>10.2}",
            r.length, r.period, r.max_pat_length, r.f1_count, r.recovered_f1,
            r.recovered_max_len, r.mean_features
        );
        assert_eq!(r.recovered_f1, r.f1_count);
        assert_eq!(r.recovered_max_len, r.max_pat_length);
    }
    println!("All parameters recovered exactly.");
}

/// Figure 1 — the max-subpattern tree worked example (§4, Examples 4.2/4.3).
fn figure1() {
    banner("FIGURE 1 — max-subpattern tree for C_max = a{b1,b2}*d* (published counts)");
    let set = |idx: &[usize]| LetterSet::from_indices(4, idx.iter().copied());
    let mut tree = MaxSubpatternTree::new(LetterSet::full(4));
    let nodes: &[(&str, &[usize], u64)] = &[
        ("a{b1,b2}*d*", &[0, 1, 2, 3], 10),
        ("*{b1,b2}*d*", &[1, 2, 3], 50),
        ("a{b1,b2}***", &[0, 1, 2], 40),
        ("ab2*d*", &[0, 2, 3], 32),
        ("ab1*d*", &[0, 1, 3], 0),
        ("*b1*d*", &[1, 3], 8),
        ("*b2*d*", &[2, 3], 0),
        ("*{b1,b2}***", &[1, 2], 19),
        ("a**d*", &[0, 3], 5),
        ("ab2***", &[0, 2], 2),
        ("ab1***", &[0, 1], 18),
    ];
    for (_, letters, count) in nodes {
        tree.insert_with_count(&set(letters), *count);
    }
    println!("{:<14} {:>6} {:>20}", "node", "count", "derived frequency");
    for (name, letters, count) in nodes {
        let freq = tree.count_superpatterns_walk(&set(letters));
        println!("{name:<14} {count:>6} {freq:>20}");
    }
    // Example 4.3's published frequencies.
    let expect: &[(&[usize], u64)] = &[
        (&[1, 3], 68),
        (&[2, 3], 92),
        (&[1, 2], 119),
        (&[0, 3], 47),
        (&[0, 2], 84),
        (&[0, 1], 68),
        (&[1, 2, 3], 60),
        (&[0, 1, 2], 50),
    ];
    for (letters, freq) in expect {
        assert_eq!(tree.count_superpatterns_walk(&set(letters)), *freq);
    }
    println!("Example 4.3 frequencies {{68, 68, 47, 119, 92, 84}} and {{60, 50}} verified.");
}

/// Figure 2 — Apriori vs max-subpattern hit-set runtime as MAX-PAT-LENGTH
/// grows; p = 50, |F1| = 12; LENGTH ∈ {100k, 500k}.
fn figure2(quick: bool) {
    banner("FIGURE 2 — run time vs MAX-PAT-LENGTH (p=50, |F1|=12, min_conf=0.6)");
    let lengths: &[usize] = if quick { &[20_000, 100_000] } else { &[100_000, 500_000] };
    let mpls = [2usize, 4, 6, 8, 10];
    for &length in lengths {
        println!("\nLENGTH = {length}");
        println!(
            "{:>15} {:>12} {:>12} {:>9} {:>8} {:>8} {:>9}",
            "MAX-PAT-LENGTH", "Apriori(s)", "HitSet(s)", "speedup", "A-scans", "H-scans", "patterns"
        );
        for r in run_figure2(length, &mpls) {
            assert_eq!(r.recovered_max_len, r.max_pat_length);
            println!(
                "{:>15} {:>12.3} {:>12.3} {:>8.2}x {:>8} {:>8} {:>9}",
                r.max_pat_length,
                r.apriori_secs,
                r.hitset_secs,
                r.apriori_secs / r.hitset_secs,
                r.apriori_scans,
                r.hitset_scans,
                r.patterns
            );
        }
    }
    println!(
        "\nShape check (paper): HitSet ~flat, Apriori ~linear in MAX-PAT-LENGTH,\n\
         ~2x gain at L=6 growing with L; both scale ~5x from 100k to 500k."
    );
}

/// E4 — scan counts (the paper's §3 analyses).
fn scans(quick: bool) {
    banner("E4 — series scans per algorithm (analysis of Algorithms 3.1/3.2)");
    let length = if quick { 20_000 } else { 100_000 };
    println!("{:>15} {:>14} {:>13}", "MAX-PAT-LENGTH", "Apriori scans", "HitSet scans");
    for r in run_scans(length, &[2, 4, 6, 8, 10]) {
        println!("{:>15} {:>14} {:>13}", r.max_pat_length, r.apriori, r.hitset);
        assert_eq!(r.hitset, 2);
        assert_eq!(r.apriori, r.max_pat_length);
    }
    println!("HitSet: always 2. Apriori: 1 + one per level 2..=MAX-PAT-LENGTH (the final");
    println!("level holds a single maximal pattern, so its join yields no further scan).");
}

/// E5 — Property 3.2 buffer bound.
fn space(quick: bool) {
    banner("E5 — hit-set size vs the Property 3.2 bound min(m, 2^|F1| - 1)");
    let length = if quick { 20_000 } else { 100_000 };
    println!(
        "{:>6} {:>10} {:>14} {:>11} {:>12}",
        "|F1|", "segments", "distinct hits", "tree nodes", "bound"
    );
    for r in run_space(length, 50, &[4, 6, 8, 10, 12, 16]) {
        println!(
            "{:>6} {:>10} {:>14} {:>11} {:>12}",
            r.f1_count, r.segments, r.distinct_hits, r.tree_nodes, r.bound
        );
    }
    println!("All runs satisfied the bound (asserted).");
}

/// E6 — multi-period: looping (Alg 3.3) vs shared (Alg 3.4).
fn multiperiod(quick: bool) {
    banner("E6 — multi-period mining: looping (Alg 3.3) vs shared (Alg 3.4)");
    let length = if quick { 20_000 } else { 100_000 };
    println!(
        "{:>8} {:>12} {:>11} {:>13} {:>12}",
        "periods", "looping(s)", "shared(s)", "loop scans", "shared scans"
    );
    for r in run_multiperiod(length, &[1, 3, 6, 12, 20]) {
        println!(
            "{:>8} {:>12.3} {:>11.3} {:>13} {:>12}",
            r.periods, r.looping_secs, r.shared_secs, r.looping_scans, r.shared_scans
        );
        assert_eq!(r.shared_scans, 2);
    }
    println!("Shared mining holds at 2 scans regardless of the range width.");
}

/// E8 — maximal mining hybrid (§4's proposed MaxMiner combination).
fn maximal_exp(quick: bool) {
    banner("E8 — frequent vs closed vs maximal pattern mining");
    let length = if quick { 20_000 } else { 100_000 };
    println!(
        "{:>15} {:>9} {:>12} {:>10} {:>9} {:>8} {:>8} {:>12}",
        "MAX-PAT-LENGTH", "full(s)", "maxminer(s)", "closed(s)", "frequent", "closed",
        "maximal", "tree probes"
    );
    for r in run_maximal(length, &[2, 4, 6, 8, 10]) {
        println!(
            "{:>15} {:>9.3} {:>12.3} {:>10.3} {:>9} {:>8} {:>8} {:>12}",
            r.max_pat_length, r.full_secs, r.maxminer_secs, r.closed_secs, r.frequent,
            r.closed, r.maximal, r.maxminer_probes
        );
    }
    println!("Look-ahead keeps probe counts near-linear while the frequent set grows 2^L;");
    println!("the closed set compresses the frequent set losslessly.");
}

/// E7 — derivation counting ablation: tree walk vs linear scan.
fn derive_ablation(quick: bool) {
    banner("E7 — ablation: tree-walk vs linear-scan candidate counting");
    let lengths: &[usize] =
        if quick { &[10_000, 50_000] } else { &[50_000, 100_000, 250_000, 500_000] };
    println!(
        "{:>9} {:>10} {:>11} {:>14}",
        "LENGTH", "walk(s)", "linear(s)", "distinct hits"
    );
    for r in run_derivation_ablation(lengths) {
        println!(
            "{:>9} {:>10.3} {:>11.3} {:>14}",
            r.length, r.walk_secs, r.linear_secs, r.distinct_hits
        );
    }
}

/// E10 — disk-resident mining: the §5 argument that scans are the cost.
fn disk(quick: bool) {
    banner("E10 — disk-resident mining (streaming .ppmstream, every scan is file I/O)");
    let length = if quick { 50_000 } else { 200_000 };
    println!(
        "{:>15} {:>12} {:>12} {:>9} {:>12} {:>12} {:>10}",
        "MAX-PAT-LENGTH", "Apriori(s)", "HitSet(s)", "speedup", "A file scans", "H file scans",
        "file MB"
    );
    for r in run_disk(length, &[2, 4, 6, 8, 10]) {
        println!(
            "{:>15} {:>12.3} {:>12.3} {:>8.2}x {:>12} {:>12} {:>10.1}",
            r.max_pat_length,
            r.apriori_secs,
            r.hitset_secs,
            r.apriori_secs / r.hitset_secs,
            r.apriori_scans,
            r.hitset_scans,
            r.file_bytes as f64 / 1e6
        );
        assert_eq!(r.hitset_scans, 2);
    }
    println!("Every Apriori level re-reads the file; the hit-set method never exceeds 2 reads.");
}

/// E9 — the §6 extensions: perturbation tolerance and taxonomy drill-down.
fn extensions(quick: bool) {
    banner("E9 — extensions: perturbation tolerance & multi-level mining");
    let scale = if quick { 4 } else { 1 };

    // Perturbation: plant a clean period-24 structure, jitter it, compare
    // the recovered frequent letters with and without slot enlargement.
    let spec = SyntheticSpec::table1(48_000 / scale, 24, 4, 8);
    let data = spec.generate();
    let config = MineConfig::new(spec.recommended_min_conf()).unwrap();
    let clean = scan_frequent_letters(&data.series, 24, &config).unwrap();
    println!("\nPerturbation (slot enlargement, §6):");
    println!(
        "{:>12} {:>14} {:>16}",
        "jitter prob", "exact letters", "enlarged letters"
    );
    for prob in [0.0, 0.25, 0.5, 0.75] {
        let jittered = noise::jitter(&data.series, 1, prob, 1234);
        let exact = scan_frequent_letters(&jittered, 24, &config).unwrap();
        let enlarged =
            scan_frequent_letters(&window::enlarge_slots(&jittered, 1), 24, &config).unwrap();
        println!(
            "{:>12.2} {:>14} {:>16}",
            prob,
            exact.alphabet.len(),
            enlarged.alphabet.len()
        );
    }
    println!("(clean series: {} letters)", clean.alphabet.len());

    // Perfect-periodicity baseline with cycle elimination, on a series
    // with a genuinely perfect letter: the synthetic backbone fires at
    // 0.85, so overlay one feature that holds in *every* period-24 cycle.
    let perfect_series = {
        let marker = ppm_timeseries::FeatureId::from_raw(90_000);
        let mut b = ppm_timeseries::SeriesBuilder::new();
        for (t, inst) in data.series.iter().enumerate() {
            if t % 24 == 5 {
                b.push_instant(inst.iter().copied().chain([marker]));
            } else {
                b.push_instant(inst.iter().copied());
            }
        }
        b.finish()
    };
    println!("\nPerfect periodicity with cycle elimination ([12]-style baseline):");
    let perfect = mine_perfect(&perfect_series, PeriodRange::new(20, 28).unwrap()).unwrap();
    for p in perfect {
        println!(
            "  period {:>2}: {:>2} perfect letters, examined {:>4}/{} segments",
            p.period,
            p.alphabet.len(),
            p.segments_examined,
            p.segment_count
        );
    }

    // Sanity: a single long-period mining at confidence 1 matches the
    // perfect miner (checked in tests; demonstrated here).
    let full = hitset::mine(&perfect_series, 24, &MineConfig::new(1.0).unwrap()).unwrap();
    println!(
        "\nhitset::mine at min_conf=1.0 agrees: {} letter(s) ({} pattern(s)) at period 24.",
        full.alphabet.len(),
        full.len()
    );
}
