//! Experiment harness reproducing the paper's evaluation (§5) plus the
//! analysis-backed experiments of DESIGN.md.
//!
//! Each `run_*` function executes one experiment and returns structured
//! rows; the `experiments` binary renders them in the paper's table/series
//! shapes, and the Criterion benches reuse the same workloads for
//! statistically sound timing. Wall-clock numbers here are single-shot
//! measurements (the paper reports single runs on a Pentium 166; we care
//! about curve *shape*, not absolute seconds).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::time::Instant;

use ppm_core::hitset::derive::CountStrategy;
use ppm_core::multi::{mine_periods_looping, mine_periods_shared, PeriodRange};
use ppm_core::{apriori, hit_set_bound, hitset, maximal, Algorithm, MineConfig};
use ppm_datagen::SyntheticSpec;
use ppm_timeseries::FeatureSeries;

/// Times a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

// ------------------------------------------------------------- Figure 2

/// One point of the Figure 2 sweep.
#[derive(Debug, Clone)]
pub struct Fig2Row {
    /// Series length (the paper runs 100k and 500k).
    pub length: usize,
    /// MAX-PAT-LENGTH of the planted structure.
    pub max_pat_length: usize,
    /// Apriori (Alg 3.1) wall seconds.
    pub apriori_secs: f64,
    /// Hit-set (Alg 3.2) wall seconds.
    pub hitset_secs: f64,
    /// Apriori scans over the series.
    pub apriori_scans: usize,
    /// Hit-set scans over the series (always 2).
    pub hitset_scans: usize,
    /// Frequent patterns found (identical for both algorithms — verified).
    pub patterns: usize,
    /// Recovered maximal L-length (must equal `max_pat_length`).
    pub recovered_max_len: usize,
}

/// Runs the Figure 2 experiment: Apriori vs max-subpattern hit-set as
/// MAX-PAT-LENGTH grows, at the paper's `p = 50`, `|F1| = 12`.
///
/// Panics if the two algorithms disagree — the benchmark doubles as a
/// correctness check.
pub fn run_figure2(length: usize, max_pat_lengths: &[usize]) -> Vec<Fig2Row> {
    let mut rows = Vec::new();
    for &mpl in max_pat_lengths {
        let spec = SyntheticSpec::figure2(length, mpl);
        let data = spec.generate();
        let config = MineConfig::new(spec.recommended_min_conf()).unwrap();

        // Deterministic workload: report the minimum of three runs so a
        // stray scheduler hiccup cannot dent the curve.
        let mut apriori_secs = f64::INFINITY;
        let mut hitset_secs = f64::INFINITY;
        let mut ap = None;
        let mut hs = None;
        for _ in 0..3 {
            let (a, t) = timed(|| apriori::mine(&data.series, 50, &config).unwrap());
            apriori_secs = apriori_secs.min(t);
            ap = Some(a);
            let (h, t) = timed(|| hitset::mine(&data.series, 50, &config).unwrap());
            hitset_secs = hitset_secs.min(t);
            hs = Some(h);
        }
        let (ap, hs) = (ap.expect("ran"), hs.expect("ran"));
        assert_eq!(ap.frequent, hs.frequent, "algorithms disagree at MPL {mpl}");

        rows.push(Fig2Row {
            length,
            max_pat_length: mpl,
            apriori_secs,
            hitset_secs,
            apriori_scans: ap.stats.series_scans,
            hitset_scans: hs.stats.series_scans,
            patterns: hs.len(),
            recovered_max_len: hs.max_l_length(),
        });
    }
    rows
}

// ------------------------------------------------------------- Table 1

/// Generator self-check for one Table 1 parameter row.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Requested series length.
    pub length: usize,
    /// Requested period.
    pub period: usize,
    /// Requested MAX-PAT-LENGTH.
    pub max_pat_length: usize,
    /// Requested |F1|.
    pub f1_count: usize,
    /// |F1| recovered by mining at the recommended threshold.
    pub recovered_f1: usize,
    /// MAX-PAT-LENGTH recovered by mining.
    pub recovered_max_len: usize,
    /// Mean features per instant in the generated series.
    pub mean_features: f64,
}

/// Validates that the generator honours the four Table 1 parameters by
/// mining its own output.
pub fn run_table1(rows: &[(usize, usize, usize, usize)]) -> Vec<Table1Row> {
    rows.iter()
        .map(|&(length, period, mpl, f1)| {
            let spec = SyntheticSpec::table1(length, period, mpl, f1);
            let data = spec.generate();
            let config = MineConfig::new(spec.recommended_min_conf()).unwrap();
            let result = hitset::mine(&data.series, period, &config).unwrap();
            Table1Row {
                length,
                period,
                max_pat_length: mpl,
                f1_count: f1,
                recovered_f1: result.alphabet.len(),
                recovered_max_len: result.max_l_length(),
                mean_features: data.series.stats().mean_features_per_instant,
            }
        })
        .collect()
}

// ------------------------------------------------------------- Scans (E4)

/// Scan counts per algorithm for one MAX-PAT-LENGTH.
#[derive(Debug, Clone)]
pub struct ScanRow {
    /// MAX-PAT-LENGTH of the planted structure.
    pub max_pat_length: usize,
    /// Apriori scans (1 + one per level).
    pub apriori: usize,
    /// Hit-set scans (always 2).
    pub hitset: usize,
}

/// Measures series scans as the longest pattern grows (§3 analysis).
pub fn run_scans(length: usize, max_pat_lengths: &[usize]) -> Vec<ScanRow> {
    max_pat_lengths
        .iter()
        .map(|&mpl| {
            let spec = SyntheticSpec::figure2(length, mpl);
            let data = spec.generate();
            let config = MineConfig::new(spec.recommended_min_conf()).unwrap();
            let ap = apriori::mine(&data.series, 50, &config).unwrap();
            let hs = hitset::mine(&data.series, 50, &config).unwrap();
            ScanRow {
                max_pat_length: mpl,
                apriori: ap.stats.series_scans,
                hitset: hs.stats.series_scans,
            }
        })
        .collect()
}

// ------------------------------------------------------------- Space (E5)

/// Hit-set sizes against the Property 3.2 bound.
#[derive(Debug, Clone)]
pub struct SpaceRow {
    /// |F1| of the planted structure.
    pub f1_count: usize,
    /// Number of whole segments m.
    pub segments: usize,
    /// Distinct hit patterns stored.
    pub distinct_hits: usize,
    /// Total tree nodes (incl. 0-count interior nodes).
    pub tree_nodes: usize,
    /// The Property 3.2 bound min(m, 2^|F1| − 1).
    pub bound: u64,
}

/// Sweeps |F1| and verifies Property 3.2 end to end.
pub fn run_space(length: usize, period: usize, f1_counts: &[usize]) -> Vec<SpaceRow> {
    f1_counts
        .iter()
        .map(|&f1| {
            let mpl = (f1 / 2).max(2);
            let spec = SyntheticSpec::table1(length, period, mpl, f1);
            let data = spec.generate();
            let config = MineConfig::new(spec.recommended_min_conf()).unwrap();
            let result = hitset::mine(&data.series, period, &config).unwrap();
            let bound =
                hit_set_bound(result.segment_count as u64, result.alphabet.len() as u32);
            assert!(
                result.stats.distinct_hits as u64 <= bound,
                "Property 3.2 violated: {} > {bound}",
                result.stats.distinct_hits
            );
            SpaceRow {
                f1_count: f1,
                segments: result.segment_count,
                distinct_hits: result.stats.distinct_hits,
                tree_nodes: result.stats.tree_nodes,
                bound,
            }
        })
        .collect()
}

// --------------------------------------------------------- Multi-period (E6)

/// Looping (Alg 3.3) vs shared (Alg 3.4) over a period range.
#[derive(Debug, Clone)]
pub struct MultiPeriodRow {
    /// Number of periods in the range.
    pub periods: usize,
    /// Looping wall seconds.
    pub looping_secs: f64,
    /// Shared wall seconds.
    pub shared_secs: f64,
    /// Looping scan count (2 per period).
    pub looping_scans: usize,
    /// Shared scan count (always 2).
    pub shared_scans: usize,
}

/// Compares Algorithms 3.3 and 3.4 on period ranges of growing width
/// centred on the planted period.
pub fn run_multiperiod(length: usize, widths: &[usize]) -> Vec<MultiPeriodRow> {
    let spec = SyntheticSpec::table1(length, 24, 4, 8);
    let data = spec.generate();
    let config = MineConfig::new(spec.recommended_min_conf()).unwrap();
    widths
        .iter()
        .map(|&w| {
            let range = PeriodRange::new(24 - w / 2, 24 + w.div_ceil(2)).unwrap();
            let (looped, looping_secs) = timed(|| {
                mine_periods_looping(&data.series, range, &config, Algorithm::HitSet).unwrap()
            });
            let (shared, shared_secs) =
                timed(|| mine_periods_shared(&data.series, range, &config).unwrap());
            for (a, b) in looped.results.iter().zip(&shared.results) {
                assert_eq!(a.frequent, b.frequent, "period {}", a.period);
            }
            MultiPeriodRow {
                periods: range.len(),
                looping_secs,
                shared_secs,
                looping_scans: looped.total_scans,
                shared_scans: shared.total_scans,
            }
        })
        .collect()
}

// ------------------------------------------------------------- Maximal (E8)

/// Full derivation vs MaxMiner-hybrid maximal mining vs closed mining.
#[derive(Debug, Clone)]
pub struct MaximalRow {
    /// MAX-PAT-LENGTH of the planted structure.
    pub max_pat_length: usize,
    /// Full derivation (all frequent patterns) wall seconds.
    pub full_secs: f64,
    /// MaxMiner hybrid wall seconds.
    pub maxminer_secs: f64,
    /// Closure-based closed mining wall seconds.
    pub closed_secs: f64,
    /// Total frequent patterns (full derivation).
    pub frequent: usize,
    /// Maximal patterns.
    pub maximal: usize,
    /// Closed patterns (lossless compression of the frequent set).
    pub closed: usize,
    /// Tree-count lookups performed by MaxMiner.
    pub maxminer_probes: u64,
}

/// The §4 hybrid: how much work look-ahead saves as patterns lengthen.
pub fn run_maximal(length: usize, max_pat_lengths: &[usize]) -> Vec<MaximalRow> {
    max_pat_lengths
        .iter()
        .map(|&mpl| {
            let spec = SyntheticSpec::figure2(length, mpl);
            let data = spec.generate();
            let config = MineConfig::new(spec.recommended_min_conf()).unwrap();
            let (full, full_secs) =
                timed(|| hitset::mine(&data.series, 50, &config).unwrap());
            let (max, maxminer_secs) =
                timed(|| maximal::mine_maximal(&data.series, 50, &config).unwrap());
            let (closed, closed_secs) =
                timed(|| ppm_core::closed::mine_closed(&data.series, 50, &config).unwrap());
            let reference = full.maximal();
            assert_eq!(max.maximal.len(), reference.len(), "maximal sets disagree");
            assert_eq!(
                closed.closed,
                ppm_core::closed::closed_of(&full),
                "closed sets disagree"
            );
            MaximalRow {
                max_pat_length: mpl,
                full_secs,
                maxminer_secs,
                closed_secs,
                frequent: full.len(),
                maximal: max.maximal.len(),
                closed: closed.closed.len(),
                maxminer_probes: max.stats.subset_tests,
            }
        })
        .collect()
}

// ----------------------------------------------------- Derivation ablation (E7)

/// Tree-walk vs linear-scan candidate counting.
#[derive(Debug, Clone)]
pub struct DeriveRow {
    /// Series length used.
    pub length: usize,
    /// Tree-walk derivation wall seconds (whole Alg 3.2 run).
    pub walk_secs: f64,
    /// Linear-scan derivation wall seconds (whole Alg 3.2 run).
    pub linear_secs: f64,
    /// Distinct hits in the tree.
    pub distinct_hits: usize,
}

/// Ablation: the paper's pruned trie traversal against a flat scan of the
/// hit set, as the hit set grows with series length.
pub fn run_derivation_ablation(lengths: &[usize]) -> Vec<DeriveRow> {
    lengths
        .iter()
        .map(|&length| {
            let spec = SyntheticSpec::figure2(length, 6);
            let data = spec.generate();
            let config = MineConfig::new(spec.recommended_min_conf()).unwrap();
            let (walk, walk_secs) = timed(|| {
                hitset::mine_with_strategy(&data.series, 50, &config, CountStrategy::TreeWalk)
                    .unwrap()
            });
            let (linear, linear_secs) = timed(|| {
                hitset::mine_with_strategy(&data.series, 50, &config, CountStrategy::LinearScan)
                    .unwrap()
            });
            assert_eq!(walk.frequent, linear.frequent);
            DeriveRow {
                length,
                walk_secs,
                linear_secs,
                distinct_hits: walk.stats.distinct_hits,
            }
        })
        .collect()
}

/// Convenience: generate the standard Figure 2 series once (for benches).
pub fn figure2_series(length: usize, max_pat_length: usize) -> FeatureSeries {
    SyntheticSpec::figure2(length, max_pat_length).generate().series
}

// ------------------------------------------------------------- Disk (E10)

/// Disk-resident mining: Apriori vs hit-set when every scan is real I/O.
#[derive(Debug, Clone)]
pub struct DiskRow {
    /// MAX-PAT-LENGTH of the planted structure.
    pub max_pat_length: usize,
    /// Streaming Apriori wall seconds (includes all file re-reads).
    pub apriori_secs: f64,
    /// Streaming hit-set wall seconds.
    pub hitset_secs: f64,
    /// Physical file scans by Apriori.
    pub apriori_scans: usize,
    /// Physical file scans by the hit-set method (always 2).
    pub hitset_scans: usize,
    /// File size in bytes.
    pub file_bytes: u64,
}

/// The §5 disk argument, made concrete: stream both algorithms from a
/// `.ppmstream` file, so Apriori's extra levels become extra passes over
/// the file. Results are asserted equal to the in-memory miners.
pub fn run_disk(length: usize, max_pat_lengths: &[usize]) -> Vec<DiskRow> {
    use ppm_core::streaming::{mine_apriori_streaming, mine_hitset_streaming};
    use ppm_timeseries::storage::stream::{FileSource, StreamWriter};
    use ppm_timeseries::SeriesSource as _;

    let dir = std::env::temp_dir().join(format!("ppm-disk-exp-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let mut rows = Vec::new();
    for &mpl in max_pat_lengths {
        let spec = SyntheticSpec::figure2(length, mpl);
        let data = spec.generate();
        let config = MineConfig::new(spec.recommended_min_conf()).unwrap();
        let path = dir.join(format!("fig2-{length}-{mpl}.ppmstream"));
        StreamWriter::create(&path, &data.catalog)
            .and_then(|w| w.write_series(&data.series))
            .expect("write stream file");
        let file_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);

        let mut src = FileSource::open(&path).expect("open stream file");
        let (ap, apriori_secs) =
            timed(|| mine_apriori_streaming(&mut src, 50, &config).unwrap());
        let apriori_scans = src.scans_performed();

        let mut src = FileSource::open(&path).expect("open stream file");
        let (hs, hitset_secs) =
            timed(|| mine_hitset_streaming(&mut src, 50, &config).unwrap());
        let hitset_scans = src.scans_performed();

        assert_eq!(ap.frequent, hs.frequent, "disk algorithms disagree at MPL {mpl}");
        let mem = hitset::mine(&data.series, 50, &config).unwrap();
        assert_eq!(hs.frequent, mem.frequent, "disk vs memory disagree at MPL {mpl}");

        std::fs::remove_file(&path).ok();
        rows.push(DiskRow {
            max_pat_length: mpl,
            apriori_secs,
            hitset_secs,
            apriori_scans,
            hitset_scans,
            file_bytes,
        });
    }
    std::fs::remove_dir_all(&dir).ok();
    rows
}
