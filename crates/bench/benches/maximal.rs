//! Experiment E8 as a Criterion benchmark: full frequent-set derivation vs
//! the hit-set × MaxMiner hybrid for maximal-pattern mining (§4's proposed
//! combination), as the planted pattern lengthens and the full frequent
//! set grows like 2^L.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ppm_bench::figure2_series;
use ppm_core::{hitset, maximal, MineConfig};

fn bench_maximal(c: &mut Criterion) {
    let mut group = c.benchmark_group("maximal");
    let config = MineConfig::new(0.6).unwrap();
    for mpl in [4usize, 8, 10] {
        let series = figure2_series(50_000, mpl);
        group.bench_with_input(BenchmarkId::new("full_derivation", mpl), &mpl, |b, _| {
            b.iter(|| black_box(hitset::mine(&series, 50, &config).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("maxminer_hybrid", mpl), &mpl, |b, _| {
            b.iter(|| black_box(maximal::mine_maximal(&series, 50, &config).unwrap()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    targets = bench_maximal
}
criterion_main!(benches);
