//! Figure 2 as a Criterion benchmark: Apriori (Alg 3.1) vs max-subpattern
//! hit-set (Alg 3.2) as MAX-PAT-LENGTH grows, at the paper's p = 50,
//! |F1| = 12. The paper's curves — hit-set flat, Apriori linear in the
//! pattern length — fall out of the per-point timings.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ppm_bench::figure2_series;
use ppm_core::{apriori, hitset, MineConfig};

fn bench_figure2(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure2");
    let config = MineConfig::new(0.6).unwrap();
    // Criterion repeats each point many times, so use a 50k series (the
    // `experiments` binary runs the paper's full 100k/500k sweep once).
    let length = 50_000;
    for mpl in [2usize, 6, 10] {
        let series = figure2_series(length, mpl);
        group.bench_with_input(BenchmarkId::new("apriori", mpl), &mpl, |b, _| {
            b.iter(|| black_box(apriori::mine(&series, 50, &config).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("hitset", mpl), &mpl, |b, _| {
            b.iter(|| black_box(hitset::mine(&series, 50, &config).unwrap()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    targets = bench_figure2
}
criterion_main!(benches);
