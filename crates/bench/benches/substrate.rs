//! Substrate micro-benchmarks: the first scan (F1 counting), segment
//! projection through the letter alphabet, and the binary storage codec —
//! the building blocks whose costs the §3 analyses take as given.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use ppm_bench::figure2_series;
use ppm_core::{scan_frequent_letters, MineConfig};
use ppm_datagen::SyntheticSpec;
use ppm_timeseries::storage::binary;
use ppm_timeseries::FeatureCatalog;

fn bench_scan1(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan1");
    let config = MineConfig::new(0.6).unwrap();
    for length in [50_000usize, 200_000] {
        let series = figure2_series(length, 6);
        group.throughput(Throughput::Elements(length as u64));
        group.bench_with_input(BenchmarkId::from_parameter(length), &length, |b, _| {
            b.iter(|| black_box(scan_frequent_letters(&series, 50, &config).unwrap()))
        });
    }
    group.finish();
}

fn bench_storage(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage");
    let data = SyntheticSpec::table1(100_000, 50, 6, 12).generate();
    let bytes = binary::encode_series(&data.series, &data.catalog);
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("encode", |b| {
        b.iter(|| black_box(binary::encode_series(&data.series, &data.catalog)))
    });
    group.bench_function("decode", |b| {
        b.iter(|| black_box(binary::decode_series(&bytes).unwrap()))
    });
    group.finish();
}

fn bench_stream_format(c: &mut Criterion) {
    use ppm_timeseries::storage::stream::{FileSource, StreamWriter};
    use ppm_timeseries::SeriesSource as _;

    let mut group = c.benchmark_group("stream_format");
    let data = SyntheticSpec::table1(100_000, 50, 6, 12).generate();
    let dir = std::env::temp_dir().join(format!("ppm-bench-stream-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bench.ppmstream");
    StreamWriter::create(&path, &data.catalog)
        .and_then(|w| w.write_series(&data.series))
        .unwrap();
    let bytes = std::fs::metadata(&path).unwrap().len();
    group.throughput(Throughput::Bytes(bytes));

    group.bench_function("write_100k", |b| {
        let out = dir.join("write.ppmstream");
        b.iter(|| {
            StreamWriter::create(&out, &data.catalog)
                .and_then(|w| w.write_series(&data.series))
                .unwrap();
        })
    });
    group.bench_function("scan_100k", |b| {
        let mut src = FileSource::open(&path).unwrap();
        b.iter(|| {
            let mut total = 0usize;
            src.scan(&mut |_, feats| total += feats.len()).unwrap();
            black_box(total)
        })
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

fn bench_builder(c: &mut Criterion) {
    let mut group = c.benchmark_group("series_builder");
    let data = SyntheticSpec::table1(100_000, 50, 6, 12).generate();
    let instants: Vec<Vec<ppm_timeseries::FeatureId>> =
        data.series.iter().map(|i| i.to_vec()).collect();
    group.throughput(Throughput::Elements(instants.len() as u64));
    group.bench_function("push_instants_100k", |b| {
        b.iter(|| {
            let mut builder = ppm_timeseries::SeriesBuilder::with_capacity(
                instants.len(),
                data.series.total_features(),
            );
            for inst in &instants {
                builder.push_instant(inst.iter().copied());
            }
            black_box(builder.finish())
        })
    });
    // Catalog interning throughput.
    group.bench_function("catalog_intern_10k", |b| {
        let names: Vec<String> = (0..10_000).map(|i| format!("feature-{i}")).collect();
        b.iter(|| {
            let mut cat = FeatureCatalog::new();
            for n in &names {
                cat.intern(n);
            }
            black_box(cat.len())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    targets = bench_scan1, bench_storage, bench_stream_format, bench_builder
}
criterion_main!(benches);
