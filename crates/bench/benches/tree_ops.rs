//! Experiment E7 as a Criterion benchmark: max-subpattern tree operations
//! in isolation — hit insertion throughput (Algorithm 4.1) and the two
//! candidate-counting strategies of Algorithm 4.2 (the paper's pruned
//! trie walk vs a flat scan of the distinct hits).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ppm_core::hitset::MaxSubpatternTree;
use ppm_core::LetterSet;

/// Deterministic pseudo-random hit patterns over `universe` letters.
fn make_hits(universe: usize, count: usize) -> Vec<LetterSet> {
    let mut x: u64 = 0x243f6a8885a308d3;
    (0..count)
        .map(|_| {
            let mut set = LetterSet::new(universe);
            // 2..=universe letters per hit, biased long (like real hits).
            for i in 0..universe {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                if !(x >> 33).is_multiple_of(3) {
                    set.insert(i);
                }
            }
            if set.len() < 2 {
                set.insert(0);
                set.insert(1);
            }
            set
        })
        .collect()
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_insert");
    for universe in [12usize, 24, 48] {
        let hits = make_hits(universe, 2_000);
        group.bench_with_input(BenchmarkId::from_parameter(universe), &universe, |b, _| {
            b.iter(|| {
                let mut tree = MaxSubpatternTree::new(LetterSet::full(universe));
                for h in &hits {
                    tree.insert(h);
                }
                black_box(tree.node_count())
            })
        });
    }
    group.finish();
}

fn bench_count_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_count");
    let universe = 16;
    let hits = make_hits(universe, 4_000);
    let mut tree = MaxSubpatternTree::new(LetterSet::full(universe));
    for h in &hits {
        tree.insert(h);
    }
    let candidates: Vec<LetterSet> = (0..universe)
        .flat_map(|a| (a + 1..universe).map(move |b| (a, b)))
        .map(|(a, b)| LetterSet::from_indices(universe, [a, b]))
        .collect();

    group.bench_function("walk", |b| {
        b.iter(|| {
            let total: u64 =
                candidates.iter().map(|p| tree.count_superpatterns_walk(p)).sum();
            black_box(total)
        })
    });
    group.bench_function("linear", |b| {
        b.iter(|| {
            let total: u64 =
                candidates.iter().map(|p| tree.count_superpatterns_linear(p)).sum();
            black_box(total)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    targets = bench_insert, bench_count_strategies
}
criterion_main!(benches);
