//! Text ingestion vs the columnar store: the cost of getting a series
//! into minable (bit-packed) form. The text path pays parse + intern +
//! encode on every open; the columnar path reads the `.ppmc` file whose
//! byte layout *is* the encoded layout, so "ingest" is one read, one
//! checksum pass, and one endianness-normalising copy of the word block.
//! A `sweep` subtracts this difference once per run; a per-period
//! pipeline without the shared load pays it once per period.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ppm_timeseries::columnar::{write_columnar, ColumnarReader};
use ppm_timeseries::storage::{parse_series, render_series};
use ppm_timeseries::{EncodedSeries, FeatureCatalog, FeatureId, SeriesBuilder};

/// A dense periodic series with `f1` planted features, sized so parse +
/// encode dominates over file-system noise.
fn dense_series(length: usize, period: usize, f1: usize) -> (ppm_timeseries::FeatureSeries, FeatureCatalog) {
    let mut catalog = FeatureCatalog::new();
    let ids: Vec<FeatureId> = (0..f1).map(|i| catalog.intern(&format!("f{i}"))).collect();
    let mut x: u64 = 0x9e3779b97f4a7c15;
    let mut b = SeriesBuilder::new();
    for t in 0..length {
        let mut inst = Vec::new();
        if t % period < f1 {
            inst.push(ids[t % period]);
        }
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        if (x >> 60) < 6 {
            inst.push(ids[(x >> 33) as usize % f1]);
        }
        b.push_instant(inst);
    }
    (b.finish(), catalog)
}

fn bench_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest_vs_columnar");
    for &length in &[20_000usize, 60_000] {
        let (series, catalog) = dense_series(length, 24, 24);
        let dir = std::env::temp_dir();
        let txt = dir.join(format!("ppm-bench-ingest-{length}.txt"));
        let ppmc = dir.join(format!("ppm-bench-ingest-{length}.ppmc"));
        std::fs::write(&txt, render_series(&series, &catalog)).unwrap();
        write_columnar(&ppmc, &series, &catalog).unwrap();

        group.bench_with_input(
            BenchmarkId::new("text_parse_encode", length),
            &txt,
            |b, path| {
                b.iter(|| {
                    let text = std::fs::read_to_string(path).unwrap();
                    let mut cat = FeatureCatalog::new();
                    let series = parse_series(&text, &mut cat).unwrap();
                    black_box(EncodedSeries::encode(&series).bytes())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("columnar_open", length),
            &ppmc,
            |b, path| {
                b.iter(|| {
                    let reader = ColumnarReader::open(path).unwrap();
                    black_box(reader.view().bytes())
                })
            },
        );
        std::fs::remove_file(&txt).ok();
        std::fs::remove_file(&ppmc).ok();
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    targets = bench_ingest
}
criterion_main!(benches);
