//! Vertical counting vs the max-subpattern tree: the three candidate
//! counting strategies of the derivation phase head to head — the paper's
//! pruned trie walk (Algorithm 4.2), the flat linear scan of distinct
//! hits, and the transposed per-letter bitmap AND of the vertical engine —
//! plus the end-to-end mines on an E7-style dense workload.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ppm_core::hitset::MaxSubpatternTree;
use ppm_core::vertical::{mine_vertical, VerticalIndex};
use ppm_core::{hitset, LetterSet, MineConfig};
use ppm_timeseries::{FeatureId, SeriesBuilder};

/// Deterministic pseudo-random hit patterns over `universe` letters,
/// biased long like the dense hits of experiment E7.
fn make_hits(universe: usize, count: usize) -> Vec<LetterSet> {
    let mut x: u64 = 0x243f6a8885a308d3;
    (0..count)
        .map(|_| {
            let mut set = LetterSet::new(universe);
            for i in 0..universe {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                if !(x >> 33).is_multiple_of(3) {
                    set.insert(i);
                }
            }
            if set.len() < 2 {
                set.insert(0);
                set.insert(1);
            }
            set
        })
        .collect()
}

/// A dense periodic series: every offset of every segment carries its
/// planted feature with high probability, so F1 is large and the
/// derivation dominates the mine.
fn dense_series(period: usize, segments: usize) -> ppm_timeseries::FeatureSeries {
    let mut x: u64 = 0x9e3779b97f4a7c15;
    let mut b = SeriesBuilder::new();
    for _ in 0..segments {
        for offset in 0..period {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let mut inst = Vec::new();
            if !(x >> 33).is_multiple_of(5) {
                inst.push(FeatureId::from_raw(offset as u32));
            }
            if (x >> 33).is_multiple_of(2) {
                inst.push(FeatureId::from_raw((offset as u32 + 1) % period as u32));
            }
            b.push_instant(inst);
        }
    }
    b.finish()
}

fn bench_count_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("derive_count");
    let universe = 16;
    let hits = make_hits(universe, 4_000);
    let mut tree = MaxSubpatternTree::new(LetterSet::full(universe));
    for h in &hits {
        tree.insert(h);
    }
    let index = VerticalIndex::from_tree(&tree);
    let candidates: Vec<LetterSet> = (0..universe)
        .flat_map(|a| (a + 1..universe).map(move |b| (a, b)))
        .map(|(a, b)| LetterSet::from_indices(universe, [a, b]))
        .collect();

    group.bench_function("walk", |b| {
        b.iter(|| {
            let total: u64 =
                candidates.iter().map(|p| tree.count_superpatterns_walk(p)).sum();
            black_box(total)
        })
    });
    group.bench_function("linear", |b| {
        b.iter(|| {
            let total: u64 =
                candidates.iter().map(|p| tree.count_superpatterns_linear(p)).sum();
            black_box(total)
        })
    });
    group.bench_function("vertical", |b| {
        b.iter(|| {
            let total: u64 = candidates.iter().map(|p| index.count(p)).sum();
            black_box(total)
        })
    });
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_mine");
    let config = MineConfig::new(0.3).unwrap();
    for period in [8usize, 12] {
        let series = dense_series(period, 2_000);
        group.bench_with_input(BenchmarkId::new("hitset", period), &period, |b, &p| {
            b.iter(|| black_box(hitset::mine(&series, p, &config).unwrap().len()))
        });
        group.bench_with_input(BenchmarkId::new("vertical", period), &period, |b, &p| {
            b.iter(|| black_box(mine_vertical(&series, p, &config).unwrap().len()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    targets = bench_count_strategies, bench_end_to_end
}
criterion_main!(benches);
