//! Parallel-mining scaling benchmark: the partitioned two-scan miner
//! against the sequential hit-set miner on a large series.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ppm_bench::figure2_series;
use ppm_core::parallel::mine_parallel;
use ppm_core::{hitset, MineConfig};

fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_mining");
    let series = figure2_series(200_000, 6);
    let config = MineConfig::new(0.6).unwrap();

    group.bench_function("sequential", |b| {
        b.iter(|| black_box(hitset::mine(&series, 50, &config).unwrap()))
    });
    for threads in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| black_box(mine_parallel(&series, 50, &config, threads).unwrap()))
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    targets = bench_parallel
}
criterion_main!(benches);
