//! Experiment E6 as a Criterion benchmark: multi-period mining by looping
//! (Algorithm 3.3) vs shared two-scan mining (Algorithm 3.4), as the
//! period range widens.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ppm_core::multi::{mine_periods_looping, mine_periods_shared, PeriodRange};
use ppm_core::{Algorithm, MineConfig};
use ppm_datagen::SyntheticSpec;

fn bench_multi_period(c: &mut Criterion) {
    let mut group = c.benchmark_group("multi_period");
    let data = SyntheticSpec::table1(30_000, 24, 4, 8).generate();
    let config = MineConfig::new(0.6).unwrap();
    for width in [3usize, 9, 15] {
        let range = PeriodRange::new(24 - width / 2, 24 + width.div_ceil(2)).unwrap();
        group.bench_with_input(BenchmarkId::new("looping", width), &width, |b, _| {
            b.iter(|| {
                black_box(
                    mine_periods_looping(&data.series, range, &config, Algorithm::HitSet)
                        .unwrap(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("shared", width), &width, |b, _| {
            b.iter(|| black_box(mine_periods_shared(&data.series, range, &config).unwrap()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    targets = bench_multi_period
}
criterion_main!(benches);
