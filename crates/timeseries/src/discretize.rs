//! Discretization of numeric time series into categorical features.
//!
//! The paper (§6) notes that numeric series — "such as stock or power
//! consumption fluctuation" — are mined by examining the value distribution
//! and discretizing into single- or multiple-level categorical data. This
//! module provides the standard schemes:
//!
//! * [`Discretizer::equal_width`] — `k` bins of equal value span;
//! * [`Discretizer::equal_depth`] — `k` quantile bins of (approximately)
//!   equal population;
//! * [`discretize_multi_level`] — a coarse *and* a fine binning emitted
//!   together, so multi-level mining can drill down (paper §6).
//!
//! Each bin becomes one feature (e.g. `power[2/5]`); discretizing a numeric
//! series yields a [`FeatureSeries`] with exactly one feature per instant
//! (or several, for the multi-level variant).

use crate::catalog::{FeatureCatalog, FeatureId};
use crate::error::{Error, Result};
use crate::series::{FeatureSeries, SeriesBuilder};

/// A fitted binning of a numeric domain into `k` labelled intervals.
///
/// Bin `i` covers `[edge[i], edge[i+1])`, except the last bin, which is
/// closed on the right so the maximum value is representable.
#[derive(Debug, Clone, PartialEq)]
pub struct Discretizer {
    /// `k + 1` ascending bin edges.
    edges: Vec<f64>,
    /// Label stem used when interning bin features (`stem[i/k]`).
    stem: String,
}

impl Discretizer {
    /// Fits `bins` equal-width intervals spanning `[min, max]` of `values`.
    pub fn equal_width(stem: &str, values: &[f64], bins: usize) -> Result<Self> {
        validate(stem, values, bins)?;
        let (lo, hi) = min_max(values);
        let mut edges = Vec::with_capacity(bins + 1);
        if lo == hi {
            // Degenerate constant series: one bin swallowing everything.
            edges.push(lo);
            edges.push(hi);
            for _ in 1..bins {
                edges.push(hi);
            }
        } else {
            let width = (hi - lo) / bins as f64;
            for i in 0..=bins {
                edges.push(lo + width * i as f64);
            }
            // Guard against floating-point drift on the last edge.
            edges[bins] = hi;
        }
        Ok(Discretizer {
            edges,
            stem: stem.to_owned(),
        })
    }

    /// Fits `bins` equal-depth (quantile) intervals of `values`.
    ///
    /// Heavily duplicated values can make some quantile edges coincide; the
    /// fitted binning then has fewer *effective* bins but assignment remains
    /// total and deterministic.
    pub fn equal_depth(stem: &str, values: &[f64], bins: usize) -> Result<Self> {
        validate(stem, values, bins)?;
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let n = sorted.len();
        let mut edges = Vec::with_capacity(bins + 1);
        edges.push(sorted[0]);
        for i in 1..bins {
            let rank = (i * n) / bins;
            edges.push(sorted[rank.min(n - 1)]);
        }
        edges.push(sorted[n - 1]);
        // Edges must be non-decreasing; enforce in case of adversarial fp.
        for i in 1..edges.len() {
            if edges[i] < edges[i - 1] {
                edges[i] = edges[i - 1];
            }
        }
        Ok(Discretizer {
            edges,
            stem: stem.to_owned(),
        })
    }

    /// Number of bins `k`.
    pub fn bins(&self) -> usize {
        self.edges.len() - 1
    }

    /// The fitted edges (`k + 1` ascending values).
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Assigns a value to its bin index in `0..k`.
    ///
    /// Values outside the fitted range clamp to the first/last bin, so the
    /// discretizer can be fitted on one window and applied to another.
    pub fn bin_of(&self, value: f64) -> usize {
        let k = self.bins();
        if value <= self.edges[0] {
            return 0;
        }
        if value >= self.edges[k] {
            return k - 1;
        }
        // partition_point: first edge strictly greater than value.
        let idx = self.edges.partition_point(|&e| e <= value);
        (idx - 1).min(k - 1)
    }

    /// Interns the `k` bin features into `catalog`, returning their ids in
    /// bin order. Feature names look like `power[2/5]`.
    pub fn intern_features(&self, catalog: &mut FeatureCatalog) -> Vec<FeatureId> {
        let k = self.bins();
        (0..k)
            .map(|i| catalog.intern(&format!("{}[{}/{}]", self.stem, i, k)))
            .collect()
    }

    /// Discretizes `values` into a categorical [`FeatureSeries`] with one
    /// bin feature per instant.
    pub fn apply(&self, values: &[f64], catalog: &mut FeatureCatalog) -> FeatureSeries {
        let ids = self.intern_features(catalog);
        let mut builder = SeriesBuilder::with_capacity(values.len(), values.len());
        for &v in values {
            builder.push_instant([ids[self.bin_of(v)]]);
        }
        builder.finish()
    }
}

/// Discretizes `values` at two granularities simultaneously: a coarse level
/// (`coarse_bins`) and a fine level (`fine_bins`). Each instant carries
/// **both** its coarse and fine bin features, enabling multi-level partial
/// periodicity mining (paper §6): mine the coarse level first, then drill
/// into the fine features.
pub fn discretize_multi_level(
    stem: &str,
    values: &[f64],
    coarse_bins: usize,
    fine_bins: usize,
    catalog: &mut FeatureCatalog,
) -> Result<(FeatureSeries, Discretizer, Discretizer)> {
    if coarse_bins >= fine_bins {
        return Err(Error::InvalidDiscretization {
            detail: format!("coarse bins {coarse_bins} must be < fine bins {fine_bins}"),
        });
    }
    let coarse = Discretizer::equal_width(&format!("{stem}:L1"), values, coarse_bins)?;
    let fine = Discretizer::equal_width(&format!("{stem}:L2"), values, fine_bins)?;
    let coarse_ids = coarse.intern_features(catalog);
    let fine_ids = fine.intern_features(catalog);
    let mut builder = SeriesBuilder::with_capacity(values.len(), values.len() * 2);
    for &v in values {
        builder.push_instant([coarse_ids[coarse.bin_of(v)], fine_ids[fine.bin_of(v)]]);
    }
    Ok((builder.finish(), coarse, fine))
}

fn validate(stem: &str, values: &[f64], bins: usize) -> Result<()> {
    if bins == 0 {
        return Err(Error::InvalidDiscretization {
            detail: "bins must be >= 1".into(),
        });
    }
    if values.is_empty() {
        return Err(Error::InvalidDiscretization {
            detail: "no values to fit".into(),
        });
    }
    if stem.is_empty() {
        return Err(Error::InvalidDiscretization {
            detail: "empty feature stem".into(),
        });
    }
    if values.iter().any(|v| v.is_nan()) {
        return Err(Error::InvalidDiscretization {
            detail: "NaN in input values".into(),
        });
    }
    Ok(())
}

fn min_max(values: &[f64]) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_width_bins_partition_the_range() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let d = Discretizer::equal_width("x", &values, 4).unwrap();
        assert_eq!(d.bins(), 4);
        assert_eq!(d.bin_of(0.0), 0);
        assert_eq!(d.bin_of(24.0), 0);
        assert_eq!(d.bin_of(25.0), 1);
        assert_eq!(d.bin_of(99.0), 3);
        // Out-of-range clamps.
        assert_eq!(d.bin_of(-5.0), 0);
        assert_eq!(d.bin_of(1e9), 3);
    }

    #[test]
    fn equal_depth_balances_population() {
        // 0..100 uniformly: each of 4 quantile bins should get ~25 values.
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let d = Discretizer::equal_depth("x", &values, 4).unwrap();
        let mut counts = [0usize; 4];
        for &v in &values {
            counts[d.bin_of(v)] += 1;
        }
        for c in counts {
            assert!((20..=30).contains(&c), "unbalanced bins: {counts:?}");
        }
    }

    #[test]
    fn equal_depth_handles_heavy_duplicates() {
        let mut values = vec![1.0; 90];
        values.extend([2.0; 10]);
        let d = Discretizer::equal_depth("x", &values, 4).unwrap();
        // Assignment stays total even with coincident edges.
        for &v in &values {
            assert!(d.bin_of(v) < d.bins());
        }
    }

    #[test]
    fn constant_series_degenerates_gracefully() {
        let values = vec![7.0; 10];
        let d = Discretizer::equal_width("x", &values, 3).unwrap();
        for &v in &values {
            assert_eq!(d.bin_of(v), 0);
        }
    }

    #[test]
    fn apply_produces_one_feature_per_instant() {
        let values = vec![0.0, 10.0, 5.0, 9.9];
        let mut cat = FeatureCatalog::new();
        let d = Discretizer::equal_width("load", &values, 2).unwrap();
        let s = d.apply(&values, &mut cat);
        assert_eq!(s.len(), 4);
        for t in 0..4 {
            assert_eq!(s.instant(t).len(), 1);
        }
        assert!(cat.get("load[0/2]").is_some());
        assert!(cat.get("load[1/2]").is_some());
        // Same bin for 10.0 (max, closed) and 9.9.
        assert_eq!(s.instant(1), s.instant(3));
    }

    #[test]
    fn multi_level_carries_both_granularities() {
        let values: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let mut cat = FeatureCatalog::new();
        let (s, coarse, fine) = discretize_multi_level("p", &values, 2, 8, &mut cat).unwrap();
        assert_eq!(coarse.bins(), 2);
        assert_eq!(fine.bins(), 8);
        assert_eq!(s.len(), 50);
        for t in 0..50 {
            assert_eq!(s.instant(t).len(), 2, "instant {t} must have coarse+fine");
        }
        assert_eq!(cat.len(), 10);
    }

    #[test]
    fn multi_level_requires_coarse_lt_fine() {
        let values = vec![1.0, 2.0];
        let mut cat = FeatureCatalog::new();
        assert!(discretize_multi_level("p", &values, 4, 4, &mut cat).is_err());
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(Discretizer::equal_width("x", &[], 3).is_err());
        assert!(Discretizer::equal_width("x", &[1.0], 0).is_err());
        assert!(Discretizer::equal_width("", &[1.0], 2).is_err());
        assert!(Discretizer::equal_width("x", &[1.0, f64::NAN], 2).is_err());
        assert!(Discretizer::equal_depth("x", &[f64::NAN], 2).is_err());
    }

    #[test]
    fn bin_of_is_total_and_in_range() {
        let values: Vec<f64> = (0..37).map(|i| (i as f64).sin() * 20.0).collect();
        for bins in 1..8 {
            let d = Discretizer::equal_width("x", &values, bins).unwrap();
            for &v in &values {
                assert!(d.bin_of(v) < bins);
            }
            let d = Discretizer::equal_depth("x", &values, bins).unwrap();
            for &v in &values {
                assert!(d.bin_of(v) < bins);
            }
        }
    }
}
