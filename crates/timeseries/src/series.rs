//! The compact, immutable feature time series.

use crate::catalog::FeatureId;
use crate::error::{Error, Result};
use crate::segment::Segments;

/// An immutable feature time series `D_1, D_2, …, D_N`.
///
/// Each instant holds a **set** of features (sorted, deduplicated
/// [`FeatureId`]s). Storage is CSR-style: one flat feature array plus an
/// offsets array, so a 500 000-instant series with a handful of features per
/// instant is a pair of contiguous allocations — cache-friendly for the
/// repeated full scans the mining algorithms perform.
///
/// Build one with [`SeriesBuilder`], or load one via [`crate::storage`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureSeries {
    /// `offsets[t]..offsets[t+1]` indexes `features` for instant `t`.
    offsets: Vec<usize>,
    /// Sorted, deduplicated feature ids per instant, concatenated.
    features: Vec<FeatureId>,
}

impl FeatureSeries {
    /// An empty series.
    pub fn empty() -> Self {
        FeatureSeries {
            offsets: vec![0],
            features: Vec::new(),
        }
    }

    /// Number of time instants `N`.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the series has no instants.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of feature occurrences across all instants.
    pub fn total_features(&self) -> usize {
        self.features.len()
    }

    /// The feature set at instant `t` (sorted ascending, no duplicates).
    ///
    /// # Panics
    /// Panics if `t >= self.len()`.
    pub fn instant(&self, t: usize) -> &[FeatureId] {
        &self.features[self.offsets[t]..self.offsets[t + 1]]
    }

    /// The feature set at instant `t`, or `None` past the end.
    pub fn get(&self, t: usize) -> Option<&[FeatureId]> {
        if t < self.len() {
            Some(self.instant(t))
        } else {
            None
        }
    }

    /// Whether instant `t` contains feature `f` (binary search).
    pub fn contains(&self, t: usize, f: FeatureId) -> bool {
        self.instant(t).binary_search(&f).is_ok()
    }

    /// Iterates over the instants in time order.
    pub fn iter(&self) -> InstantIter<'_> {
        InstantIter {
            series: self,
            next: 0,
        }
    }

    /// A period-segment view of this series for period `p`.
    ///
    /// Returns an error if `p == 0` or `p > self.len()` (no whole segment
    /// would exist).
    pub fn segments(&self, period: usize) -> Result<Segments<'_>> {
        Segments::new(self, period)
    }

    /// The number of whole period segments `m = ⌊N/p⌋` for period `p`,
    /// without constructing a view. Returns 0 for `p == 0`.
    pub fn period_count(&self, period: usize) -> usize {
        self.len().checked_div(period).unwrap_or(0)
    }

    /// The largest feature id present, or `None` for a featureless series.
    pub fn max_feature_id(&self) -> Option<FeatureId> {
        self.features.iter().copied().max()
    }

    /// Summary statistics used by validation and experiment reports.
    pub fn stats(&self) -> SeriesStats {
        let n = self.len();
        let total = self.total_features();
        let mut max_per_instant = 0usize;
        let mut empty_instants = 0usize;
        for t in 0..n {
            let k = self.offsets[t + 1] - self.offsets[t];
            max_per_instant = max_per_instant.max(k);
            if k == 0 {
                empty_instants += 1;
            }
        }
        SeriesStats {
            instants: n,
            total_features: total,
            distinct_features: self.max_feature_id().map_or(0, |f| f.index() + 1),
            mean_features_per_instant: if n == 0 { 0.0 } else { total as f64 / n as f64 },
            max_features_per_instant: max_per_instant,
            empty_instants,
        }
    }

    /// Reassembles a series from raw CSR parts; used by storage and
    /// derivation code. Validates monotone offsets and per-instant ordering.
    pub fn from_raw_parts(offsets: Vec<usize>, features: Vec<FeatureId>) -> Result<Self> {
        if offsets.is_empty() || offsets[0] != 0 {
            return Err(Error::Corrupt {
                detail: "offsets must start at 0".into(),
            });
        }
        if *offsets.last().expect("nonempty") != features.len() {
            return Err(Error::Corrupt {
                detail: format!(
                    "final offset {} != feature count {}",
                    offsets.last().unwrap(),
                    features.len()
                ),
            });
        }
        for w in offsets.windows(2) {
            if w[0] > w[1] {
                return Err(Error::Corrupt {
                    detail: "offsets must be non-decreasing".into(),
                });
            }
            let set = &features[w[0]..w[1]];
            for pair in set.windows(2) {
                if pair[0] >= pair[1] {
                    return Err(Error::Corrupt {
                        detail: "instant feature sets must be strictly ascending".into(),
                    });
                }
            }
        }
        Ok(FeatureSeries { offsets, features })
    }

    /// Exposes the raw CSR parts `(offsets, features)`; used by storage.
    pub fn raw_parts(&self) -> (&[usize], &[FeatureId]) {
        (&self.offsets, &self.features)
    }

    /// Returns the series truncated to its first `n` instants.
    pub fn truncated(&self, n: usize) -> FeatureSeries {
        self.slice(0, n.min(self.len()))
    }

    /// Returns a copy of the instants `start..end` as a standalone series.
    /// Bounds are clamped to the series; an inverted range yields an empty
    /// series.
    pub fn slice(&self, start: usize, end: usize) -> FeatureSeries {
        let start = start.min(self.len());
        let end = end.clamp(start, self.len());
        let base = self.offsets[start];
        let offsets: Vec<usize> = self.offsets[start..=end]
            .iter()
            .map(|&o| o - base)
            .collect();
        FeatureSeries {
            features: self.features[base..self.offsets[end]].to_vec(),
            offsets,
        }
    }
}

impl<'a> IntoIterator for &'a FeatureSeries {
    type Item = &'a [FeatureId];
    type IntoIter = InstantIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over the instants of a [`FeatureSeries`] in time order.
#[derive(Debug, Clone)]
pub struct InstantIter<'a> {
    series: &'a FeatureSeries,
    next: usize,
}

impl<'a> Iterator for InstantIter<'a> {
    type Item = &'a [FeatureId];

    fn next(&mut self) -> Option<&'a [FeatureId]> {
        if self.next < self.series.len() {
            let t = self.next;
            self.next += 1;
            Some(self.series.instant(t))
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.series.len() - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for InstantIter<'_> {}

/// Summary statistics of a series, as produced by [`FeatureSeries::stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesStats {
    /// Number of instants `N`.
    pub instants: usize,
    /// Total feature occurrences.
    pub total_features: usize,
    /// Upper bound on the feature vocabulary (max id + 1).
    pub distinct_features: usize,
    /// Mean features per instant.
    pub mean_features_per_instant: f64,
    /// Maximum features at any single instant.
    pub max_features_per_instant: usize,
    /// Number of instants with an empty feature set.
    pub empty_instants: usize,
}

/// Incremental builder for [`FeatureSeries`].
///
/// Feature sets pushed per instant are sorted and deduplicated, so callers
/// can hand over features in any order:
///
/// ```
/// use ppm_timeseries::{FeatureId, SeriesBuilder};
///
/// let f = |i| FeatureId::from_raw(i);
/// let mut b = SeriesBuilder::new();
/// b.push_instant([f(2), f(0), f(2)]);
/// let s = b.finish();
/// assert_eq!(s.instant(0), &[f(0), f(2)]);
/// ```
#[derive(Debug, Default, Clone)]
pub struct SeriesBuilder {
    offsets: Vec<usize>,
    features: Vec<FeatureId>,
}

impl SeriesBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        SeriesBuilder {
            offsets: vec![0],
            features: Vec::new(),
        }
    }

    /// Creates a builder with capacity hints for `instants` instants holding
    /// roughly `total_features` feature occurrences.
    pub fn with_capacity(instants: usize, total_features: usize) -> Self {
        let mut offsets = Vec::with_capacity(instants + 1);
        offsets.push(0);
        SeriesBuilder {
            offsets,
            features: Vec::with_capacity(total_features),
        }
    }

    /// Appends one instant holding the given feature set (any order,
    /// duplicates ignored).
    pub fn push_instant<I>(&mut self, features: I)
    where
        I: IntoIterator<Item = FeatureId>,
    {
        let start = self.features.len();
        self.features.extend(features);
        self.features[start..].sort_unstable();
        // Deduplicate the tail we just appended.
        let mut write = start;
        for read in start..self.features.len() {
            if write == start || self.features[write - 1] != self.features[read] {
                self.features[write] = self.features[read];
                write += 1;
            }
        }
        self.features.truncate(write);
        self.offsets.push(self.features.len());
    }

    /// Number of instants pushed so far.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finalizes into an immutable [`FeatureSeries`].
    pub fn finish(self) -> FeatureSeries {
        FeatureSeries {
            offsets: self.offsets,
            features: self.features,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> FeatureId {
        FeatureId::from_raw(i)
    }

    #[test]
    fn empty_series() {
        let s = FeatureSeries::empty();
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
        assert_eq!(s.total_features(), 0);
        assert_eq!(s.get(0), None);
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn builder_sorts_and_dedups() {
        let mut b = SeriesBuilder::new();
        b.push_instant([f(5), f(1), f(5), f(3), f(1)]);
        b.push_instant([]);
        b.push_instant([f(0)]);
        let s = b.finish();
        assert_eq!(s.len(), 3);
        assert_eq!(s.instant(0), &[f(1), f(3), f(5)]);
        assert!(s.instant(1).is_empty());
        assert_eq!(s.instant(2), &[f(0)]);
    }

    #[test]
    fn contains_uses_set_semantics() {
        let mut b = SeriesBuilder::new();
        b.push_instant([f(2), f(4), f(9)]);
        let s = b.finish();
        assert!(s.contains(0, f(4)));
        assert!(!s.contains(0, f(3)));
    }

    #[test]
    fn iter_matches_instants() {
        let mut b = SeriesBuilder::new();
        for t in 0..10u32 {
            b.push_instant([f(t % 3)]);
        }
        let s = b.finish();
        let via_iter: Vec<Vec<FeatureId>> = s.iter().map(|x| x.to_vec()).collect();
        let via_index: Vec<Vec<FeatureId>> = (0..10).map(|t| s.instant(t).to_vec()).collect();
        assert_eq!(via_iter, via_index);
        assert_eq!(s.iter().len(), 10);
    }

    #[test]
    fn period_count_handles_edges() {
        let mut b = SeriesBuilder::new();
        for _ in 0..10 {
            b.push_instant([f(0)]);
        }
        let s = b.finish();
        assert_eq!(s.period_count(0), 0);
        assert_eq!(s.period_count(3), 3);
        assert_eq!(s.period_count(10), 1);
        assert_eq!(s.period_count(11), 0);
    }

    #[test]
    fn stats_summarize() {
        let mut b = SeriesBuilder::new();
        b.push_instant([f(0), f(7)]);
        b.push_instant([]);
        b.push_instant([f(1)]);
        let s = b.finish();
        let st = s.stats();
        assert_eq!(st.instants, 3);
        assert_eq!(st.total_features, 3);
        assert_eq!(st.distinct_features, 8); // max id 7 -> bound 8
        assert_eq!(st.max_features_per_instant, 2);
        assert_eq!(st.empty_instants, 1);
        assert!((st.mean_features_per_instant - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_raw_parts_validates() {
        // Valid.
        let ok = FeatureSeries::from_raw_parts(vec![0, 2, 2], vec![f(0), f(3)]);
        assert!(ok.is_ok());
        // Offsets must start at 0.
        assert!(FeatureSeries::from_raw_parts(vec![1, 2], vec![f(0), f(1)]).is_err());
        // Final offset must match feature count.
        assert!(FeatureSeries::from_raw_parts(vec![0, 1], vec![]).is_err());
        // Offsets must be monotone.
        assert!(FeatureSeries::from_raw_parts(vec![0, 2, 1], vec![f(0), f(1)]).is_err());
        // Instant sets must be strictly ascending.
        assert!(FeatureSeries::from_raw_parts(vec![0, 2], vec![f(1), f(1)]).is_err());
        assert!(FeatureSeries::from_raw_parts(vec![0, 2], vec![f(2), f(1)]).is_err());
    }

    #[test]
    fn truncated_keeps_prefix() {
        let mut b = SeriesBuilder::new();
        b.push_instant([f(0)]);
        b.push_instant([f(1), f(2)]);
        b.push_instant([f(3)]);
        let s = b.finish();
        let t = s.truncated(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.instant(0), &[f(0)]);
        assert_eq!(t.instant(1), &[f(1), f(2)]);
        // Truncating past the end is a no-op.
        assert_eq!(s.truncated(10).len(), 3);
    }

    #[test]
    fn slice_extracts_windows() {
        let mut b = SeriesBuilder::new();
        for t in 0..6u32 {
            b.push_instant([f(t), f(t + 10)]);
        }
        let s = b.finish();
        let mid = s.slice(2, 5);
        assert_eq!(mid.len(), 3);
        assert_eq!(mid.instant(0), &[f(2), f(12)]);
        assert_eq!(mid.instant(2), &[f(4), f(14)]);
        // Clamping and inverted ranges.
        assert_eq!(s.slice(4, 99).len(), 2);
        assert_eq!(s.slice(5, 2).len(), 0);
        assert_eq!(s.slice(99, 100).len(), 0);
        // A slice is a well-formed standalone series.
        let (o, ft) = mid.raw_parts();
        FeatureSeries::from_raw_parts(o.to_vec(), ft.to_vec()).unwrap();
    }

    #[test]
    fn round_trip_raw_parts() {
        let mut b = SeriesBuilder::new();
        b.push_instant([f(1), f(9)]);
        b.push_instant([f(4)]);
        let s = b.finish();
        let (o, ft) = s.raw_parts();
        let s2 = FeatureSeries::from_raw_parts(o.to_vec(), ft.to_vec()).unwrap();
        assert_eq!(s, s2);
    }
}
