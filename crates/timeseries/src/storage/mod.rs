//! On-disk persistence for feature series and catalogs.
//!
//! Two formats:
//!
//! * [`binary`] — a compact, versioned, checksummed binary format (magic
//!   `PPMS`), suitable for the large synthetic series of the paper's
//!   performance study (§5: 100k–500k instants).
//! * [`text`] — a line-oriented human-editable format (one instant per line,
//!   features separated by spaces), convenient for examples and fixtures.
//!
//! Both formats round-trip a [`crate::FeatureSeries`] exactly; the binary
//! format additionally embeds the [`crate::FeatureCatalog`] so a file is
//! self-describing.

pub mod binary;
pub mod stream;
pub mod text;

pub use binary::{read_series, write_series};
pub use stream::{salvage_series, FileSource, SalvageReport, StreamWriter};
pub use text::{parse_series, render_series};
