//! Line-oriented text format for small series and fixtures.
//!
//! One instant per line; feature names separated by whitespace; an empty
//! line (or a lone `-`) is an instant with no features; `#` starts a
//! comment. Feature names are interned into the catalog on first sight.
//!
//! ```text
//! # Jim's mornings, hourly slots
//! coffee newspaper
//! commute
//! -
//! ```

use crate::catalog::FeatureCatalog;
use crate::error::{Error, Result};
use crate::series::{FeatureSeries, SeriesBuilder};

/// Parses the text format, interning names into `catalog`.
pub fn parse_series(input: &str, catalog: &mut FeatureCatalog) -> Result<FeatureSeries> {
    let mut builder = SeriesBuilder::new();
    for (lineno, raw) in input.lines().enumerate() {
        let line = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let line = line.trim();
        if line == "-" {
            builder.push_instant([]);
            continue;
        }
        if line.is_empty() {
            // Blank (or comment-only) lines are separators, not instants;
            // an explicit empty instant is spelled `-`.
            continue;
        }
        let mut feats = Vec::new();
        for tok in line.split_whitespace() {
            if tok.chars().any(|c| c.is_control()) {
                return Err(Error::Parse {
                    line: lineno + 1,
                    detail: format!("control character in token {tok:?}"),
                });
            }
            feats.push(catalog.intern(tok));
        }
        builder.push_instant(feats);
    }
    Ok(builder.finish())
}

/// Renders a series in the text format using `catalog` for names.
///
/// Ids missing from the catalog render as `f{raw}` placeholders so output
/// never fails.
pub fn render_series(series: &FeatureSeries, catalog: &FeatureCatalog) -> String {
    let mut out = String::new();
    for instant in series.iter() {
        if instant.is_empty() {
            out.push('-');
        } else {
            for (i, f) in instant.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                out.push_str(&catalog.name_or_placeholder(*f));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_series() {
        let mut cat = FeatureCatalog::new();
        let s = parse_series("coffee newspaper\ncommute\n-\n", &mut cat).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.instant(0).len(), 2);
        assert_eq!(s.instant(1).len(), 1);
        assert!(s.instant(2).is_empty());
        assert_eq!(cat.len(), 3);
    }

    #[test]
    fn comments_are_skipped() {
        let mut cat = FeatureCatalog::new();
        let s = parse_series("# header\na b # trailing\n# another\nc\n", &mut cat).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.instant(0).len(), 2);
        assert_eq!(s.instant(1).len(), 1);
    }

    #[test]
    fn duplicate_names_share_ids() {
        let mut cat = FeatureCatalog::new();
        let s = parse_series("x\nx\nx y\n", &mut cat).unwrap();
        assert_eq!(cat.len(), 2);
        assert_eq!(s.instant(0), s.instant(1));
    }

    #[test]
    fn round_trip() {
        let mut cat = FeatureCatalog::new();
        let text = "alpha beta\n-\ngamma\n";
        let s = parse_series(text, &mut cat).unwrap();
        let rendered = render_series(&s, &cat);
        assert_eq!(rendered, text);
        let mut cat2 = FeatureCatalog::new();
        let s2 = parse_series(&rendered, &mut cat2).unwrap();
        assert_eq!(s.len(), s2.len());
    }

    #[test]
    fn renders_unknown_ids_as_placeholders() {
        use crate::catalog::FeatureId;
        use crate::series::SeriesBuilder;
        let mut b = SeriesBuilder::new();
        b.push_instant([FeatureId::from_raw(42)]);
        let s = b.finish();
        let cat = FeatureCatalog::new();
        assert_eq!(render_series(&s, &cat), "f42\n");
    }

    #[test]
    fn rejects_control_characters() {
        let mut cat = FeatureCatalog::new();
        let err = parse_series("ok\nbad\u{1}tok\n", &mut cat).unwrap_err();
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn empty_input_is_empty_series() {
        let mut cat = FeatureCatalog::new();
        let s = parse_series("", &mut cat).unwrap();
        assert!(s.is_empty());
    }
}
