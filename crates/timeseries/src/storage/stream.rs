//! Streaming (record-oriented) series format and its disk scan source.
//!
//! The block format of [`super::binary`] stores all offsets, then all
//! features — ideal for loading whole, useless for streaming. This format
//! (`.ppmstream`, magic `PPMS2`) writes one self-delimiting record per
//! instant so a scan is a single buffered forward read:
//!
//! ```text
//! magic      : [u8; 5] = b"PPMS2"
//! version    : u32     = 1
//! n_names    : u32                      catalog
//! names      : n_names * (u32 len, bytes)
//! records    : per instant: u16 count, count * u32 feature ids
//! trailer    : u8 = 0xFF marker, u64 n_instants, u64 FNV-1a of records
//! ```
//!
//! A `count` of `u16::MAX` is the trailer sentinel (a real instant holds at
//! most `u16::MAX − 1` features, enforced at write time).
//!
//! Integrity: every full pass — [`FileSource::open`], every
//! [`SeriesSource::scan`], and [`FileSource::materialize`] — recomputes the
//! running FNV-1a checksum and verifies it against the trailer, reporting
//! [`Error::Corrupt`] on mismatch and the typed [`Error::Truncated`] when
//! the file ends mid-record. [`salvage_series`] recovers the valid record
//! prefix of a truncated file.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use crate::catalog::{FeatureCatalog, FeatureId};
use crate::error::{Error, Result};
use crate::series::FeatureSeries;
use crate::source::SeriesSource;

const MAGIC: &[u8; 5] = b"PPMS2";
const VERSION: u32 = 1;
const TRAILER_SENTINEL: u16 = u16::MAX;

#[derive(Debug, Clone)]
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Incremental writer for the streaming format.
pub struct StreamWriter {
    out: BufWriter<File>,
    hash: Fnv64,
    instants: u64,
}

impl StreamWriter {
    /// Creates `path` and writes the header with `catalog`.
    pub fn create(path: impl AsRef<Path>, catalog: &FeatureCatalog) -> Result<Self> {
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(MAGIC)?;
        out.write_all(&VERSION.to_le_bytes())?;
        out.write_all(&(catalog.len() as u32).to_le_bytes())?;
        for (_, name) in catalog.iter() {
            out.write_all(&(name.len() as u32).to_le_bytes())?;
            out.write_all(name.as_bytes())?;
        }
        Ok(StreamWriter {
            out,
            hash: Fnv64::new(),
            instants: 0,
        })
    }

    /// Appends one instant. Features may arrive unsorted; they are written
    /// sorted and deduplicated.
    pub fn write_instant(&mut self, features: &[FeatureId]) -> Result<()> {
        let mut sorted: Vec<u32> = features.iter().map(|f| f.raw()).collect();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() >= TRAILER_SENTINEL as usize {
            return Err(Error::Corrupt {
                detail: format!(
                    "instant with {} features exceeds format limit",
                    sorted.len()
                ),
            });
        }
        let count = (sorted.len() as u16).to_le_bytes();
        self.out.write_all(&count)?;
        self.hash.update(&count);
        for raw in sorted {
            let bytes = raw.to_le_bytes();
            self.out.write_all(&bytes)?;
            self.hash.update(&bytes);
        }
        self.instants += 1;
        Ok(())
    }

    /// Writes a whole series and finishes the file.
    pub fn write_series(mut self, series: &FeatureSeries) -> Result<()> {
        for instant in series.iter() {
            self.write_instant(instant)?;
        }
        self.finish()
    }

    /// Writes the trailer and flushes.
    pub fn finish(mut self) -> Result<()> {
        self.out.write_all(&TRAILER_SENTINEL.to_le_bytes())?;
        self.out.write_all(&[0xFFu8][..1])?; // marker byte inside trailer
        self.out.write_all(&self.instants.to_le_bytes())?;
        self.out.write_all(&self.hash.0.to_le_bytes())?;
        self.out.flush()?;
        Ok(())
    }
}

/// A disk-backed [`SeriesSource`]: every [`SeriesSource::scan`] re-opens
/// the file and streams it front to back, so the number of physical passes
/// over the data equals `scans_performed()` — exactly the paper's cost
/// model for disk-resident series.
#[derive(Debug)]
pub struct FileSource {
    path: PathBuf,
    catalog: FeatureCatalog,
    instants: u64,
    scans: usize,
}

impl FileSource {
    /// Opens `path`, reading the header and trailer metadata (one pass to
    /// locate and verify the trailer).
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut source = FileSource {
            path,
            catalog: FeatureCatalog::new(),
            instants: 0,
            scans: 0,
        };
        // Validation pass: parse header + all records + trailer.
        let (catalog, instants) = source.verify()?;
        source.catalog = catalog;
        source.instants = instants;
        Ok(source)
    }

    /// The embedded catalog.
    pub fn catalog(&self) -> &FeatureCatalog {
        &self.catalog
    }

    /// One full integrity pass: returns (catalog, instant count) or a
    /// corruption error.
    fn verify(&self) -> Result<(FeatureCatalog, u64)> {
        let mut reader = RecordReader::open(&self.path)?;
        let mut n = 0u64;
        let mut buf = Vec::new();
        while reader.next_instant(&mut buf)?.is_some() {
            n += 1;
        }
        let (stated, ok, catalog) = reader.finish()?;
        if !ok {
            return Err(Error::Corrupt {
                detail: "record checksum mismatch".into(),
            });
        }
        if stated != n {
            return Err(Error::Corrupt {
                detail: format!("trailer states {stated} instants, read {n}"),
            });
        }
        Ok((catalog, n))
    }

    /// Loads the whole file into an in-memory [`FeatureSeries`], verifying
    /// the trailer checksum like any other full pass.
    pub fn materialize(&self) -> Result<FeatureSeries> {
        let mut reader = RecordReader::open(&self.path)?;
        let mut builder = crate::series::SeriesBuilder::new();
        let mut buf = Vec::new();
        while reader.next_instant(&mut buf)?.is_some() {
            builder.push_instant(buf.iter().copied());
        }
        let (_, ok, _) = reader.finish()?;
        if !ok {
            return Err(Error::Corrupt {
                detail: "record checksum mismatch".into(),
            });
        }
        Ok(builder.finish())
    }
}

/// What [`salvage_series`] managed to recover from a damaged stream file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SalvageReport {
    /// Complete records recovered (a prefix of the original series).
    pub recovered_instants: usize,
    /// `true` when the file was actually intact: trailer present, checksum
    /// verified, stated count matching. A clean salvage is a plain read.
    pub clean: bool,
    /// Description of the damage when `clean` is `false`.
    pub detail: String,
}

/// Best-effort recovery of a damaged `.ppmstream` file: reads the valid
/// prefix of complete records and stops at the first sign of damage instead
/// of failing.
///
/// The header (magic, version, catalog) must parse — without it there is
/// no catalog to interpret records against, so header damage is still a
/// hard error. Past the header:
///
/// * truncation mid-record → every complete record before the cut is kept;
/// * a missing or damaged trailer → records are kept, flagged not-clean;
/// * a checksum mismatch → records are returned but flagged, because a bit
///   flip *within* the recovered range cannot be localized.
pub fn salvage_series(
    path: impl AsRef<Path>,
) -> Result<(FeatureSeries, FeatureCatalog, SalvageReport)> {
    let mut reader = RecordReader::open(path.as_ref())?;
    let catalog = reader.catalog.clone();
    let mut builder = crate::series::SeriesBuilder::new();
    let mut buf = Vec::new();
    let mut n = 0usize;
    let damage: Option<String> = loop {
        match reader.next_instant(&mut buf) {
            Ok(Some(())) => {
                builder.push_instant(buf.iter().copied());
                n += 1;
            }
            Ok(None) => break None,
            Err(e) => break Some(e.to_string()),
        }
    };
    let report = match damage {
        Some(detail) => SalvageReport {
            recovered_instants: n,
            clean: false,
            detail,
        },
        None => match reader.finish() {
            Ok((stated, true, _)) if stated == n as u64 => SalvageReport {
                recovered_instants: n,
                clean: true,
                detail: String::new(),
            },
            Ok((stated, ok, _)) => SalvageReport {
                recovered_instants: n,
                clean: false,
                detail: if ok {
                    format!("trailer states {stated} instants, read {n}")
                } else {
                    "record checksum mismatch".into()
                },
            },
            Err(e) => SalvageReport {
                recovered_instants: n,
                clean: false,
                detail: e.to_string(),
            },
        },
    };
    Ok((builder.finish(), catalog, report))
}

impl SeriesSource for FileSource {
    fn instant_count(&self) -> usize {
        self.instants as usize
    }

    /// One full pass. The running FNV-1a checksum is re-verified against
    /// the trailer on *every* scan — not just at open — so corruption that
    /// appears while a multi-scan mine is in flight (a concurrent writer, a
    /// failing disk) surfaces as [`Error::Corrupt`] instead of silently
    /// skewing counts.
    fn scan(&mut self, visit: &mut dyn FnMut(usize, &[FeatureId])) -> Result<()> {
        let _span = ppm_observe::span("storage.scan");
        self.scans += 1;
        let mut reader = RecordReader::open(&self.path)?;
        let mut buf = Vec::new();
        let mut t = 0usize;
        while reader.next_instant(&mut buf)?.is_some() {
            visit(t, &buf);
            t += 1;
        }
        let (stated, ok, _) = reader.finish()?;
        if !ok {
            return Err(Error::Corrupt {
                detail: format!("record checksum mismatch on scan {}", self.scans),
            });
        }
        if stated != t as u64 {
            return Err(Error::Corrupt {
                detail: format!("trailer states {stated} instants, scan read {t}"),
            });
        }
        Ok(())
    }

    fn scans_performed(&self) -> usize {
        self.scans
    }
}

/// Low-level record cursor over an open stream file.
struct RecordReader {
    input: BufReader<File>,
    catalog: FeatureCatalog,
    hash: Fnv64,
    done: bool,
}

impl RecordReader {
    fn open(path: &Path) -> Result<Self> {
        let mut input = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 5];
        read_exact_or(&mut input, &mut magic, "magic")?;
        if &magic != MAGIC {
            return Err(Error::Corrupt {
                detail: format!("bad magic {magic:?}"),
            });
        }
        let version = read_u32(&mut input, "version")?;
        if version != VERSION {
            return Err(Error::Corrupt {
                detail: format!("unsupported version {version}"),
            });
        }
        let n_names = read_u32(&mut input, "catalog size")? as usize;
        let mut catalog = FeatureCatalog::new();
        for i in 0..n_names {
            let len = read_u32(&mut input, "name length")? as usize;
            if len > 1 << 20 {
                return Err(Error::Corrupt {
                    detail: format!("name {i} too long ({len})"),
                });
            }
            let mut bytes = vec![0u8; len];
            read_exact_or(&mut input, &mut bytes, "catalog name")?;
            let name = String::from_utf8(bytes).map_err(|_| Error::Corrupt {
                detail: format!("non-utf8 name {i}"),
            })?;
            catalog.intern(&name);
        }
        Ok(RecordReader {
            input,
            catalog,
            hash: Fnv64::new(),
            done: false,
        })
    }

    /// Reads the next instant into `buf`; `None` at the trailer.
    fn next_instant(&mut self, buf: &mut Vec<FeatureId>) -> Result<Option<()>> {
        if self.done {
            return Ok(None);
        }
        let mut count_bytes = [0u8; 2];
        read_exact_or(&mut self.input, &mut count_bytes, "record count")?;
        let count = u16::from_le_bytes(count_bytes);
        if count == TRAILER_SENTINEL {
            self.done = true;
            return Ok(None);
        }
        self.hash.update(&count_bytes);
        buf.clear();
        for _ in 0..count {
            let mut raw = [0u8; 4];
            read_exact_or(&mut self.input, &mut raw, "record body")?;
            self.hash.update(&raw);
            buf.push(FeatureId::from_raw(u32::from_le_bytes(raw)));
        }
        Ok(Some(()))
    }

    /// Consumes the trailer after the sentinel; returns (stated instant
    /// count, checksum ok, embedded catalog).
    fn finish(mut self) -> Result<(u64, bool, FeatureCatalog)> {
        debug_assert!(self.done, "finish before trailer");
        let mut marker = [0u8; 1];
        read_exact_or(&mut self.input, &mut marker, "trailer marker")?;
        if marker[0] != 0xFF {
            return Err(Error::Corrupt {
                detail: "bad trailer marker".into(),
            });
        }
        let mut n = [0u8; 8];
        read_exact_or(&mut self.input, &mut n, "trailer instant count")?;
        let mut sum = [0u8; 8];
        read_exact_or(&mut self.input, &mut sum, "trailer checksum")?;
        Ok((
            u64::from_le_bytes(n),
            u64::from_le_bytes(sum) == self.hash.0,
            self.catalog,
        ))
    }
}

/// `read_exact` with the end-of-file case reported as the typed
/// [`Error::Truncated`] (everything before the cut is intact) instead of a
/// generic I/O error.
fn read_exact_or(input: &mut impl Read, buf: &mut [u8], what: &str) -> Result<()> {
    input.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            Error::Truncated {
                detail: format!("file ends mid-{what}"),
            }
        } else {
            Error::Io(e)
        }
    })
}

fn read_u32(input: &mut impl Read, what: &str) -> Result<u32> {
    let mut b = [0u8; 4];
    read_exact_or(input, &mut b, what)?;
    Ok(u32::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::SeriesBuilder;

    fn fid(i: u32) -> FeatureId {
        FeatureId::from_raw(i)
    }

    fn temp(tag: &str) -> PathBuf {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "ppm-stream-{}-{tag}-{}.ppmstream",
            std::process::id(),
            N.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ))
    }

    fn sample() -> (FeatureSeries, FeatureCatalog) {
        let mut cat = FeatureCatalog::new();
        let a = cat.intern("a");
        let b = cat.intern("b");
        let mut builder = SeriesBuilder::new();
        builder.push_instant([a, b]);
        builder.push_instant([]);
        builder.push_instant([b]);
        builder.push_instant([a]);
        (builder.finish(), cat)
    }

    #[test]
    fn write_then_stream_round_trips() {
        let (series, cat) = sample();
        let path = temp("roundtrip");
        StreamWriter::create(&path, &cat)
            .unwrap()
            .write_series(&series)
            .unwrap();
        let src = FileSource::open(&path).unwrap();
        assert_eq!(src.instant_count(), 4);
        assert_eq!(src.catalog().len(), 2);
        assert_eq!(src.materialize().unwrap(), series);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn scan_visits_in_order_and_counts() {
        let (series, cat) = sample();
        let path = temp("scan");
        StreamWriter::create(&path, &cat)
            .unwrap()
            .write_series(&series)
            .unwrap();
        let mut src = FileSource::open(&path).unwrap();
        let mut seen = Vec::new();
        src.scan(&mut |t, feats| seen.push((t, feats.len())))
            .unwrap();
        assert_eq!(seen, vec![(0, 2), (1, 0), (2, 1), (3, 1)]);
        src.scan(&mut |_, _| {}).unwrap();
        assert_eq!(src.scans_performed(), 2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn writer_sorts_and_dedups() {
        let path = temp("sort");
        let cat = FeatureCatalog::new();
        let mut w = StreamWriter::create(&path, &cat).unwrap();
        w.write_instant(&[fid(5), fid(1), fid(5)]).unwrap();
        w.finish().unwrap();
        let src = FileSource::open(&path).unwrap();
        let series = src.materialize().unwrap();
        assert_eq!(series.instant(0), &[fid(1), fid(5)]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn detects_truncation_and_corruption() {
        let (series, cat) = sample();
        let path = temp("corrupt");
        StreamWriter::create(&path, &cat)
            .unwrap()
            .write_series(&series)
            .unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Truncations.
        for cut in [3usize, bytes.len() / 2, bytes.len() - 1] {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            assert!(FileSource::open(&path).is_err(), "cut {cut} accepted");
        }
        // Bit flip in a record (after the header): find a record byte.
        let mut bad = bytes.clone();
        let flip = bytes.len() - 20; // inside records/trailer region
        bad[flip] ^= 0x01;
        std::fs::write(&path, &bad).unwrap();
        assert!(FileSource::open(&path).is_err(), "bit flip accepted");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn empty_series_streams() {
        let path = temp("empty");
        let cat = FeatureCatalog::new();
        StreamWriter::create(&path, &cat)
            .unwrap()
            .write_series(&FeatureSeries::empty())
            .unwrap();
        let mut src = FileSource::open(&path).unwrap();
        assert_eq!(src.instant_count(), 0);
        let mut visited = 0;
        src.scan(&mut |_, _| visited += 1).unwrap();
        assert_eq!(visited, 0);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_errors() {
        assert!(FileSource::open("/no/such/file.ppmstream").is_err());
    }

    #[test]
    fn scan_reverifies_checksum_every_pass() {
        // Open a clean file, then corrupt it *behind* the open source: the
        // next scan must detect the flip, not deliver skewed data.
        let (series, cat) = sample();
        let path = temp("midflight");
        StreamWriter::create(&path, &cat)
            .unwrap()
            .write_series(&series)
            .unwrap();
        let mut src = FileSource::open(&path).unwrap();
        src.scan(&mut |_, _| {}).unwrap();

        let mut bytes = std::fs::read(&path).unwrap();
        let flip = bytes.len() - 20; // a record byte, before the trailer
        bytes[flip] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let err = src.scan(&mut |_, _| {}).unwrap_err();
        assert!(matches!(err, Error::Corrupt { .. }), "got {err}");
        assert!(err.to_string().contains("checksum"), "got {err}");
        assert!(!err.is_transient());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn truncation_yields_typed_error() {
        let (series, cat) = sample();
        let path = temp("typed-trunc");
        StreamWriter::create(&path, &cat)
            .unwrap()
            .write_series(&series)
            .unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let err = FileSource::open(&path).unwrap_err();
        assert!(matches!(err, Error::Truncated { .. }), "got {err}");
        assert!(!err.is_transient());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn record_claiming_many_features_with_short_body_is_truncation() {
        // A record header claiming u16::MAX - 1 features followed by almost
        // no body: the reader must report typed truncation, not hang or
        // mis-parse.
        let path = temp("shortbody");
        let cat = FeatureCatalog::new();
        let mut w = StreamWriter::create(&path, &cat).unwrap();
        w.write_instant(&[fid(1)]).unwrap();
        w.finish().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Header for an empty catalog: magic(5) + version(4) + n_names(4).
        let records_at = 13;
        let mut forged = bytes[..records_at].to_vec();
        forged.extend_from_slice(&(u16::MAX - 1).to_le_bytes());
        forged.extend_from_slice(&[0xAB; 6]); // far fewer than (MAX-1)*4 bytes
        bytes = forged;
        std::fs::write(&path, &bytes).unwrap();
        let err = FileSource::open(&path).unwrap_err();
        assert!(matches!(err, Error::Truncated { .. }), "got {err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn salvage_recovers_prefix_of_truncated_file() {
        let (series, cat) = sample();
        let path = temp("salvage");
        StreamWriter::create(&path, &cat)
            .unwrap()
            .write_series(&series)
            .unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Cut inside the last record/trailer region: drop the trailer and a
        // bit more so at least one record is lost.
        std::fs::write(&path, &bytes[..bytes.len() - 19]).unwrap();
        assert!(FileSource::open(&path).is_err(), "strict open must refuse");

        let (recovered, catalog, report) = salvage_series(&path).unwrap();
        assert!(!report.clean);
        assert!(report.recovered_instants >= 1);
        assert_eq!(recovered.len(), report.recovered_instants);
        assert_eq!(catalog.len(), cat.len());
        // The recovered records are a true prefix.
        for t in 0..recovered.len() {
            assert_eq!(recovered.instant(t), series.instant(t), "instant {t}");
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn salvage_of_intact_file_is_clean() {
        let (series, cat) = sample();
        let path = temp("salvage-clean");
        StreamWriter::create(&path, &cat)
            .unwrap()
            .write_series(&series)
            .unwrap();
        let (recovered, _, report) = salvage_series(&path).unwrap();
        assert!(report.clean, "{report:?}");
        assert_eq!(recovered, series);
        assert_eq!(report.recovered_instants, 4);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn salvage_flags_checksum_mismatch() {
        let (series, cat) = sample();
        let path = temp("salvage-flip");
        StreamWriter::create(&path, &cat)
            .unwrap()
            .write_series(&series)
            .unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let flip = bytes.len() - 20;
        bytes[flip] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let (_, _, report) = salvage_series(&path).unwrap();
        assert!(!report.clean);
        assert!(report.detail.contains("checksum"), "{report:?}");
        std::fs::remove_file(path).ok();
    }
}
