//! Streaming (record-oriented) series format and its disk scan source.
//!
//! The block format of [`super::binary`] stores all offsets, then all
//! features — ideal for loading whole, useless for streaming. This format
//! (`.ppmstream`, magic `PPMS2`) writes one self-delimiting record per
//! instant so a scan is a single buffered forward read:
//!
//! ```text
//! magic      : [u8; 5] = b"PPMS2"
//! version    : u32     = 1
//! n_names    : u32                      catalog
//! names      : n_names * (u32 len, bytes)
//! records    : per instant: u16 count, count * u32 feature ids
//! trailer    : u8 = 0xFF marker, u64 n_instants, u64 FNV-1a of records
//! ```
//!
//! A `count` of `u16::MAX` is the trailer sentinel (a real instant holds at
//! most `u16::MAX − 1` features, enforced at write time).

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use crate::catalog::{FeatureCatalog, FeatureId};
use crate::error::{Error, Result};
use crate::series::FeatureSeries;
use crate::source::SeriesSource;

const MAGIC: &[u8; 5] = b"PPMS2";
const VERSION: u32 = 1;
const TRAILER_SENTINEL: u16 = u16::MAX;

#[derive(Debug, Clone)]
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Incremental writer for the streaming format.
pub struct StreamWriter {
    out: BufWriter<File>,
    hash: Fnv64,
    instants: u64,
}

impl StreamWriter {
    /// Creates `path` and writes the header with `catalog`.
    pub fn create(path: impl AsRef<Path>, catalog: &FeatureCatalog) -> Result<Self> {
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(MAGIC)?;
        out.write_all(&VERSION.to_le_bytes())?;
        out.write_all(&(catalog.len() as u32).to_le_bytes())?;
        for (_, name) in catalog.iter() {
            out.write_all(&(name.len() as u32).to_le_bytes())?;
            out.write_all(name.as_bytes())?;
        }
        Ok(StreamWriter { out, hash: Fnv64::new(), instants: 0 })
    }

    /// Appends one instant. Features may arrive unsorted; they are written
    /// sorted and deduplicated.
    pub fn write_instant(&mut self, features: &[FeatureId]) -> Result<()> {
        let mut sorted: Vec<u32> = features.iter().map(|f| f.raw()).collect();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() >= TRAILER_SENTINEL as usize {
            return Err(Error::Corrupt {
                detail: format!("instant with {} features exceeds format limit", sorted.len()),
            });
        }
        let count = (sorted.len() as u16).to_le_bytes();
        self.out.write_all(&count)?;
        self.hash.update(&count);
        for raw in sorted {
            let bytes = raw.to_le_bytes();
            self.out.write_all(&bytes)?;
            self.hash.update(&bytes);
        }
        self.instants += 1;
        Ok(())
    }

    /// Writes a whole series and finishes the file.
    pub fn write_series(mut self, series: &FeatureSeries) -> Result<()> {
        for instant in series.iter() {
            self.write_instant(instant)?;
        }
        self.finish()
    }

    /// Writes the trailer and flushes.
    pub fn finish(mut self) -> Result<()> {
        self.out.write_all(&TRAILER_SENTINEL.to_le_bytes())?;
        self.out.write_all(&[0xFFu8][..1])?; // marker byte inside trailer
        self.out.write_all(&self.instants.to_le_bytes())?;
        self.out.write_all(&self.hash.0.to_le_bytes())?;
        self.out.flush()?;
        Ok(())
    }
}

/// A disk-backed [`SeriesSource`]: every [`SeriesSource::scan`] re-opens
/// the file and streams it front to back, so the number of physical passes
/// over the data equals `scans_performed()` — exactly the paper's cost
/// model for disk-resident series.
#[derive(Debug)]
pub struct FileSource {
    path: PathBuf,
    catalog: FeatureCatalog,
    instants: u64,
    scans: usize,
}

impl FileSource {
    /// Opens `path`, reading the header and trailer metadata (one pass to
    /// locate and verify the trailer).
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut source = FileSource {
            path,
            catalog: FeatureCatalog::new(),
            instants: 0,
            scans: 0,
        };
        // Validation pass: parse header + all records + trailer.
        let (catalog, instants) = source.verify()?;
        source.catalog = catalog;
        source.instants = instants;
        Ok(source)
    }

    /// The embedded catalog.
    pub fn catalog(&self) -> &FeatureCatalog {
        &self.catalog
    }

    /// One full integrity pass: returns (catalog, instant count) or a
    /// corruption error.
    fn verify(&self) -> Result<(FeatureCatalog, u64)> {
        let mut reader = RecordReader::open(&self.path)?;
        let mut n = 0u64;
        let mut buf = Vec::new();
        while reader.next_instant(&mut buf)?.is_some() {
            n += 1;
        }
        let (stated, ok, catalog) = reader.finish()?;
        if !ok {
            return Err(Error::Corrupt { detail: "record checksum mismatch".into() });
        }
        if stated != n {
            return Err(Error::Corrupt {
                detail: format!("trailer states {stated} instants, read {n}"),
            });
        }
        Ok((catalog, n))
    }

    /// Loads the whole file into an in-memory [`FeatureSeries`].
    pub fn materialize(&self) -> Result<FeatureSeries> {
        let mut reader = RecordReader::open(&self.path)?;
        let mut builder = crate::series::SeriesBuilder::new();
        let mut buf = Vec::new();
        while reader.next_instant(&mut buf)?.is_some() {
            builder.push_instant(buf.iter().copied());
        }
        Ok(builder.finish())
    }
}

impl SeriesSource for FileSource {
    fn instant_count(&self) -> usize {
        self.instants as usize
    }

    fn scan(&mut self, visit: &mut dyn FnMut(usize, &[FeatureId])) -> Result<()> {
        self.scans += 1;
        let mut reader = RecordReader::open(&self.path)?;
        let mut buf = Vec::new();
        let mut t = 0usize;
        while reader.next_instant(&mut buf)?.is_some() {
            visit(t, &buf);
            t += 1;
        }
        Ok(())
    }

    fn scans_performed(&self) -> usize {
        self.scans
    }
}

/// Low-level record cursor over an open stream file.
struct RecordReader {
    input: BufReader<File>,
    catalog: FeatureCatalog,
    hash: Fnv64,
    done: bool,
}

impl RecordReader {
    fn open(path: &Path) -> Result<Self> {
        let mut input = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 5];
        input.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(Error::Corrupt { detail: format!("bad magic {magic:?}") });
        }
        let version = read_u32(&mut input)?;
        if version != VERSION {
            return Err(Error::Corrupt { detail: format!("unsupported version {version}") });
        }
        let n_names = read_u32(&mut input)? as usize;
        let mut catalog = FeatureCatalog::new();
        for i in 0..n_names {
            let len = read_u32(&mut input)? as usize;
            if len > 1 << 20 {
                return Err(Error::Corrupt { detail: format!("name {i} too long ({len})") });
            }
            let mut bytes = vec![0u8; len];
            input.read_exact(&mut bytes)?;
            let name = String::from_utf8(bytes)
                .map_err(|_| Error::Corrupt { detail: format!("non-utf8 name {i}") })?;
            catalog.intern(&name);
        }
        Ok(RecordReader { input, catalog, hash: Fnv64::new(), done: false })
    }

    /// Reads the next instant into `buf`; `None` at the trailer.
    fn next_instant(&mut self, buf: &mut Vec<FeatureId>) -> Result<Option<()>> {
        if self.done {
            return Ok(None);
        }
        let mut count_bytes = [0u8; 2];
        self.input.read_exact(&mut count_bytes)?;
        let count = u16::from_le_bytes(count_bytes);
        if count == TRAILER_SENTINEL {
            self.done = true;
            return Ok(None);
        }
        self.hash.update(&count_bytes);
        buf.clear();
        for _ in 0..count {
            let mut raw = [0u8; 4];
            self.input.read_exact(&mut raw)?;
            self.hash.update(&raw);
            buf.push(FeatureId::from_raw(u32::from_le_bytes(raw)));
        }
        Ok(Some(()))
    }

    /// Consumes the trailer after the sentinel; returns (stated instant
    /// count, checksum ok, embedded catalog).
    fn finish(mut self) -> Result<(u64, bool, FeatureCatalog)> {
        debug_assert!(self.done, "finish before trailer");
        let mut marker = [0u8; 1];
        self.input.read_exact(&mut marker)?;
        if marker[0] != 0xFF {
            return Err(Error::Corrupt { detail: "bad trailer marker".into() });
        }
        let mut n = [0u8; 8];
        self.input.read_exact(&mut n)?;
        let mut sum = [0u8; 8];
        self.input.read_exact(&mut sum)?;
        Ok((
            u64::from_le_bytes(n),
            u64::from_le_bytes(sum) == self.hash.0,
            self.catalog,
        ))
    }
}

fn read_u32(input: &mut impl Read) -> Result<u32> {
    let mut b = [0u8; 4];
    input.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::SeriesBuilder;

    fn fid(i: u32) -> FeatureId {
        FeatureId::from_raw(i)
    }

    fn temp(tag: &str) -> PathBuf {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "ppm-stream-{}-{tag}-{}.ppmstream",
            std::process::id(),
            N.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ))
    }

    fn sample() -> (FeatureSeries, FeatureCatalog) {
        let mut cat = FeatureCatalog::new();
        let a = cat.intern("a");
        let b = cat.intern("b");
        let mut builder = SeriesBuilder::new();
        builder.push_instant([a, b]);
        builder.push_instant([]);
        builder.push_instant([b]);
        builder.push_instant([a]);
        (builder.finish(), cat)
    }

    #[test]
    fn write_then_stream_round_trips() {
        let (series, cat) = sample();
        let path = temp("roundtrip");
        StreamWriter::create(&path, &cat).unwrap().write_series(&series).unwrap();
        let src = FileSource::open(&path).unwrap();
        assert_eq!(src.instant_count(), 4);
        assert_eq!(src.catalog().len(), 2);
        assert_eq!(src.materialize().unwrap(), series);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn scan_visits_in_order_and_counts() {
        let (series, cat) = sample();
        let path = temp("scan");
        StreamWriter::create(&path, &cat).unwrap().write_series(&series).unwrap();
        let mut src = FileSource::open(&path).unwrap();
        let mut seen = Vec::new();
        src.scan(&mut |t, feats| seen.push((t, feats.len()))).unwrap();
        assert_eq!(seen, vec![(0, 2), (1, 0), (2, 1), (3, 1)]);
        src.scan(&mut |_, _| {}).unwrap();
        assert_eq!(src.scans_performed(), 2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn writer_sorts_and_dedups() {
        let path = temp("sort");
        let cat = FeatureCatalog::new();
        let mut w = StreamWriter::create(&path, &cat).unwrap();
        w.write_instant(&[fid(5), fid(1), fid(5)]).unwrap();
        w.finish().unwrap();
        let src = FileSource::open(&path).unwrap();
        let series = src.materialize().unwrap();
        assert_eq!(series.instant(0), &[fid(1), fid(5)]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn detects_truncation_and_corruption() {
        let (series, cat) = sample();
        let path = temp("corrupt");
        StreamWriter::create(&path, &cat).unwrap().write_series(&series).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Truncations.
        for cut in [3usize, bytes.len() / 2, bytes.len() - 1] {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            assert!(FileSource::open(&path).is_err(), "cut {cut} accepted");
        }
        // Bit flip in a record (after the header): find a record byte.
        let mut bad = bytes.clone();
        let flip = bytes.len() - 20; // inside records/trailer region
        bad[flip] ^= 0x01;
        std::fs::write(&path, &bad).unwrap();
        assert!(FileSource::open(&path).is_err(), "bit flip accepted");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn empty_series_streams() {
        let path = temp("empty");
        let cat = FeatureCatalog::new();
        StreamWriter::create(&path, &cat)
            .unwrap()
            .write_series(&FeatureSeries::empty())
            .unwrap();
        let mut src = FileSource::open(&path).unwrap();
        assert_eq!(src.instant_count(), 0);
        let mut visited = 0;
        src.scan(&mut |_, _| visited += 1).unwrap();
        assert_eq!(visited, 0);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_errors() {
        assert!(FileSource::open("/no/such/file.ppmstream").is_err());
    }
}
