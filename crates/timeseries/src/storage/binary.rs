//! Versioned, checksummed binary series format.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic      : [u8; 4] = b"PPMS"
//! version    : u32     = 1
//! n_names    : u32                     catalog size
//! names      : n_names * (u32 len, bytes)
//! n_instants : u64
//! n_features : u64                     total feature occurrences
//! offsets    : (n_instants + 1) * u64
//! features   : n_features * u32
//! checksum   : u64                     FNV-1a over everything above
//! ```
//!
//! The checksum catches truncation and bit rot; it is not cryptographic.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::catalog::{FeatureCatalog, FeatureId};
use crate::error::{Error, Result};
use crate::series::FeatureSeries;

const MAGIC: &[u8; 4] = b"PPMS";
const VERSION: u32 = 1;

/// Streaming FNV-1a, 64-bit — shared with the columnar store's trailer.
#[derive(Debug, Clone)]
pub(crate) struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub(crate) fn new() -> Self {
        Fnv64(Self::OFFSET)
    }

    pub(crate) fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// Serializes a series (and its catalog) into a byte buffer.
pub fn encode_series(series: &FeatureSeries, catalog: &FeatureCatalog) -> Vec<u8> {
    let (offsets, features) = series.raw_parts();
    let mut buf = Vec::with_capacity(
        64 + catalog.iter().map(|(_, n)| n.len() + 4).sum::<usize>()
            + offsets.len() * 8
            + features.len() * 4,
    );
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&(catalog.len() as u32).to_le_bytes());
    for (_, name) in catalog.iter() {
        buf.extend_from_slice(&(name.len() as u32).to_le_bytes());
        buf.extend_from_slice(name.as_bytes());
    }
    buf.extend_from_slice(&(series.len() as u64).to_le_bytes());
    buf.extend_from_slice(&(features.len() as u64).to_le_bytes());
    for &o in offsets {
        buf.extend_from_slice(&(o as u64).to_le_bytes());
    }
    for &f in features {
        buf.extend_from_slice(&f.raw().to_le_bytes());
    }
    let mut h = Fnv64::new();
    h.update(&buf);
    buf.extend_from_slice(&h.finish().to_le_bytes());
    buf
}

/// A bounds-checked little-endian cursor over a byte slice (the tiny
/// subset of `bytes::Buf` this format needs).
struct Cursor<'a>(&'a [u8]);

impl<'a> Cursor<'a> {
    fn remaining(&self) -> usize {
        self.0.len()
    }

    fn take(&mut self, n: usize) -> &'a [u8] {
        let (head, tail) = self.0.split_at(n);
        self.0 = tail;
        head
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }
}

/// Deserializes a series (and its catalog) from a byte buffer produced by
/// [`encode_series`].
pub fn decode_series(bytes: &[u8]) -> Result<(FeatureSeries, FeatureCatalog)> {
    if bytes.len() < 4 + 4 + 4 + 8 + 8 + 8 {
        return Err(Error::Corrupt {
            detail: "file too short for header".into(),
        });
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored_sum = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
    let mut h = Fnv64::new();
    h.update(body);
    if h.finish() != stored_sum {
        return Err(Error::Corrupt {
            detail: "checksum mismatch".into(),
        });
    }

    let mut cur = Cursor(body);
    let magic: [u8; 4] = cur.take(4).try_into().expect("4 bytes");
    if &magic != MAGIC {
        return Err(Error::Corrupt {
            detail: format!("bad magic {magic:?}"),
        });
    }
    let version = cur.get_u32_le();
    if version != VERSION {
        return Err(Error::Corrupt {
            detail: format!("unsupported version {version}"),
        });
    }
    let n_names = cur.get_u32_le() as usize;
    let mut catalog = FeatureCatalog::new();
    for i in 0..n_names {
        if cur.remaining() < 4 {
            return Err(Error::Corrupt {
                detail: format!("truncated catalog at entry {i}"),
            });
        }
        let len = cur.get_u32_le() as usize;
        if cur.remaining() < len {
            return Err(Error::Corrupt {
                detail: format!("truncated name at entry {i}"),
            });
        }
        let name = std::str::from_utf8(cur.take(len))
            .map_err(|_| Error::Corrupt {
                detail: format!("non-utf8 name at entry {i}"),
            })?
            .to_owned();
        catalog.intern(&name);
    }

    if cur.remaining() < 16 {
        return Err(Error::Corrupt {
            detail: "truncated series header".into(),
        });
    }
    let n_instants = cur.get_u64_le() as usize;
    let n_features = cur.get_u64_le() as usize;
    let need = (n_instants + 1) * 8 + n_features * 4;
    if cur.remaining() != need {
        return Err(Error::Corrupt {
            detail: format!(
                "payload size mismatch: have {}, need {need}",
                cur.remaining()
            ),
        });
    }
    let mut offsets = Vec::with_capacity(n_instants + 1);
    for _ in 0..=n_instants {
        offsets.push(cur.get_u64_le() as usize);
    }
    let mut features = Vec::with_capacity(n_features);
    for _ in 0..n_features {
        features.push(FeatureId::from_raw(cur.get_u32_le()));
    }
    let series = FeatureSeries::from_raw_parts(offsets, features)?;
    Ok((series, catalog))
}

/// Writes a series (and its catalog) to `path`.
pub fn write_series(
    path: impl AsRef<Path>,
    series: &FeatureSeries,
    catalog: &FeatureCatalog,
) -> Result<()> {
    let bytes = encode_series(series, catalog);
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&bytes)?;
    w.flush()?;
    Ok(())
}

/// Reads a series (and its catalog) from `path`.
pub fn read_series(path: impl AsRef<Path>) -> Result<(FeatureSeries, FeatureCatalog)> {
    let mut r = BufReader::new(File::open(path)?);
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    decode_series(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::SeriesBuilder;

    fn sample() -> (FeatureSeries, FeatureCatalog) {
        let mut cat = FeatureCatalog::new();
        let a = cat.intern("alpha");
        let b = cat.intern("beta");
        let c = cat.intern("gamma");
        let mut builder = SeriesBuilder::new();
        builder.push_instant([a, c]);
        builder.push_instant([]);
        builder.push_instant([b]);
        builder.push_instant([a, b, c]);
        (builder.finish(), cat)
    }

    #[test]
    fn encode_decode_round_trip() {
        let (s, cat) = sample();
        let bytes = encode_series(&s, &cat);
        let (s2, cat2) = decode_series(&bytes).unwrap();
        assert_eq!(s, s2);
        assert_eq!(cat2.name(cat.get("alpha").unwrap()), Some("alpha"));
        assert_eq!(cat2.len(), 3);
    }

    #[test]
    fn empty_series_round_trips() {
        let s = FeatureSeries::empty();
        let cat = FeatureCatalog::new();
        let bytes = encode_series(&s, &cat);
        let (s2, cat2) = decode_series(&bytes).unwrap();
        assert_eq!(s2.len(), 0);
        assert_eq!(cat2.len(), 0);
    }

    #[test]
    fn detects_truncation() {
        let (s, cat) = sample();
        let bytes = encode_series(&s, &cat);
        for cut in [0, 1, 10, bytes.len() - 1] {
            assert!(
                decode_series(&bytes[..cut]).is_err(),
                "cut at {cut} accepted"
            );
        }
    }

    #[test]
    fn detects_corruption() {
        let (s, cat) = sample();
        let bytes = encode_series(&s, &cat).to_vec();
        for idx in [0, 5, bytes.len() / 2, bytes.len() - 9] {
            let mut bad = bytes.clone();
            bad[idx] ^= 0xff;
            assert!(decode_series(&bad).is_err(), "flip at {idx} accepted");
        }
    }

    #[test]
    fn rejects_wrong_version() {
        let (s, cat) = sample();
        let mut bytes = encode_series(&s, &cat).to_vec();
        bytes[4] = 99; // version field
                       // Re-stamp the checksum so only the version check can fire.
        let body_len = bytes.len() - 8;
        let mut h = Fnv64::new();
        h.update(&bytes[..body_len]);
        let sum = h.finish().to_le_bytes();
        bytes[body_len..].copy_from_slice(&sum);
        let err = decode_series(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn file_round_trip() {
        let (s, cat) = sample();
        let dir = std::env::temp_dir().join(format!("ppm-storage-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.ppms");
        write_series(&path, &s, &cat).unwrap();
        let (s2, _cat2) = read_series(&path).unwrap();
        assert_eq!(s, s2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_series("/nonexistent/definitely/missing.ppms").unwrap_err();
        assert!(matches!(err, Error::Io(_)));
    }
}
