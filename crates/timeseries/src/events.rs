//! Event-log ETL: building feature series from timestamped observations.
//!
//! The paper's §2 starts from "a sequence of N timestamped datasets … for
//! each time instant, let D_t be a set of features derived from the dataset
//! collected at the instant". Real inputs are rarely pre-gridded: they are
//! event logs `(timestamp, feature)`. [`EventLog`] bins such a log onto a
//! fixed-width time grid, producing the [`FeatureSeries`] the miners
//! consume, and reports what was dropped.
//!
//! Timestamps are plain `u64` ticks (seconds, milliseconds — whatever the
//! source uses); the binning only needs an origin and a slot width in the
//! same unit.

use crate::catalog::FeatureId;
use crate::error::{Error, Result};
use crate::series::{FeatureSeries, SeriesBuilder};

/// An accumulating log of `(timestamp, feature)` observations.
#[derive(Debug, Default, Clone)]
pub struct EventLog {
    events: Vec<(u64, FeatureId)>,
}

/// Summary of a [`EventLog::to_series`] conversion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinReport {
    /// Events before the origin (dropped).
    pub before_origin: usize,
    /// Events at or after the end of the grid (dropped).
    pub after_end: usize,
    /// Events binned into the series.
    pub binned: usize,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&mut self, timestamp: u64, feature: FeatureId) {
        self.events.push((timestamp, feature));
    }

    /// Records many observations.
    pub fn extend(&mut self, events: impl IntoIterator<Item = (u64, FeatureId)>) {
        self.events.extend(events);
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The timestamp span `(min, max)` of the recorded events.
    pub fn span(&self) -> Option<(u64, u64)> {
        let min = self.events.iter().map(|&(t, _)| t).min()?;
        let max = self.events.iter().map(|&(t, _)| t).max()?;
        Some((min, max))
    }

    /// Bins the log onto a grid of `slots` slots of `slot_width` ticks
    /// starting at `origin`. Events before the origin or past the end are
    /// dropped and reported. Duplicate features within a slot collapse
    /// (instants are sets).
    pub fn to_series(
        &self,
        origin: u64,
        slot_width: u64,
        slots: usize,
    ) -> Result<(FeatureSeries, BinReport)> {
        if slot_width == 0 {
            return Err(Error::InvalidPeriod {
                period: 0,
                series_len: slots,
            });
        }
        let mut per_slot: Vec<Vec<FeatureId>> = vec![Vec::new(); slots];
        let mut report = BinReport {
            before_origin: 0,
            after_end: 0,
            binned: 0,
        };
        let end = origin + slot_width.saturating_mul(slots as u64);
        for &(t, f) in &self.events {
            if t < origin {
                report.before_origin += 1;
            } else if t >= end {
                report.after_end += 1;
            } else {
                per_slot[((t - origin) / slot_width) as usize].push(f);
                report.binned += 1;
            }
        }
        let mut builder = SeriesBuilder::with_capacity(slots, report.binned);
        for slot in per_slot {
            builder.push_instant(slot);
        }
        Ok((builder.finish(), report))
    }

    /// Bins the whole log: origin at the earliest event, enough slots to
    /// cover the latest. Returns an empty series for an empty log.
    pub fn to_series_auto(&self, slot_width: u64) -> Result<FeatureSeries> {
        match self.span() {
            None => Ok(FeatureSeries::empty()),
            Some((min, max)) => {
                if slot_width == 0 {
                    return Err(Error::InvalidPeriod {
                        period: 0,
                        series_len: 0,
                    });
                }
                let slots = ((max - min) / slot_width + 1) as usize;
                let (series, report) = self.to_series(min, slot_width, slots)?;
                debug_assert_eq!(report.binned, self.len());
                Ok(series)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fid(i: u32) -> FeatureId {
        FeatureId::from_raw(i)
    }

    #[test]
    fn bins_events_into_slots() {
        let mut log = EventLog::new();
        log.record(1000, fid(0));
        log.record(1059, fid(1)); // same slot as 1000 at width 60
        log.record(1060, fid(2)); // next slot
        log.record(1180, fid(3)); // slot 3
        let (series, report) = log.to_series(1000, 60, 4).unwrap();
        assert_eq!(series.len(), 4);
        assert_eq!(series.instant(0), &[fid(0), fid(1)]);
        assert_eq!(series.instant(1), &[fid(2)]);
        assert!(series.instant(2).is_empty());
        assert_eq!(series.instant(3), &[fid(3)]);
        assert_eq!(report.binned, 4);
    }

    #[test]
    fn drops_and_reports_out_of_range() {
        let mut log = EventLog::new();
        log.record(5, fid(0)); // before origin
        log.record(100, fid(1)); // in range
        log.record(400, fid(2)); // after end (origin 100, 2 slots of 100)
        let (series, report) = log.to_series(100, 100, 2).unwrap();
        assert_eq!(series.len(), 2);
        assert_eq!(report.before_origin, 1);
        assert_eq!(report.after_end, 1);
        assert_eq!(report.binned, 1);
    }

    #[test]
    fn duplicates_collapse() {
        let mut log = EventLog::new();
        log.record(10, fid(7));
        log.record(11, fid(7));
        let (series, _) = log.to_series(0, 60, 1).unwrap();
        assert_eq!(series.instant(0), &[fid(7)]);
    }

    #[test]
    fn auto_binning_covers_the_span() {
        let mut log = EventLog::new();
        log.extend([(50, fid(0)), (170, fid(1)), (290, fid(2))]);
        let series = log.to_series_auto(60).unwrap();
        assert_eq!(series.len(), 5); // 50..=290 at width 60
        assert_eq!(series.instant(0), &[fid(0)]);
        assert_eq!(series.instant(2), &[fid(1)]);
        assert_eq!(series.instant(4), &[fid(2)]);
    }

    #[test]
    fn empty_log() {
        let log = EventLog::new();
        assert!(log.is_empty());
        assert_eq!(log.span(), None);
        assert!(log.to_series_auto(60).unwrap().is_empty());
    }

    #[test]
    fn rejects_zero_width() {
        let mut log = EventLog::new();
        log.record(1, fid(0));
        assert!(log.to_series(0, 0, 5).is_err());
        assert!(log.to_series_auto(0).is_err());
    }

    #[test]
    fn span_reports_min_max() {
        let mut log = EventLog::new();
        log.extend([(42, fid(0)), (7, fid(1)), (99, fid(2))]);
        assert_eq!(log.span(), Some((7, 99)));
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn boundary_timestamps_bin_correctly() {
        let mut log = EventLog::new();
        // Exactly at origin, exactly at a slot edge, and one tick before
        // the end of the grid.
        log.extend([(100, fid(0)), (160, fid(1)), (219, fid(2)), (220, fid(3))]);
        let (series, report) = log.to_series(100, 60, 2).unwrap();
        assert_eq!(series.instant(0), &[fid(0)]);
        assert_eq!(series.instant(1), &[fid(1), fid(2)]);
        assert_eq!(report.after_end, 1); // ts 220 == end, exclusive
    }
}
