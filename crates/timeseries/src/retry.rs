//! Automatic retry for transient scan failures.
//!
//! [`RetryingSource`] wraps any [`SeriesSource`] and turns transient I/O
//! failures (see [`Error::is_transient`]) into silent re-scans, with capped
//! exponential backoff between attempts. Consumers see only complete,
//! in-order scans — or the final error once the [`RetryPolicy`] is
//! exhausted or a fatal error (corruption, truncation) appears.
//!
//! ## Replay without double delivery
//!
//! A failed scan may already have delivered a prefix of instants to the
//! visitor (a short read). Mining visitors are stateful — delivering
//! instant 17 twice would double-count it — so the wrapper keeps a
//! high-water mark of instants already forwarded and, on retry, re-scans
//! the inner source from the start while suppressing everything below the
//! mark. Memory stays O(1): nothing is buffered, the inner source's own
//! rewind (e.g. a file re-open) does the replay.
//!
//! [`SeriesSource::scans_performed`] reports *logical* (completed) scans,
//! so a miner running over a retried source produces statistics — and
//! therefore results — bit-identical to a fault-free run. Physical attempts
//! are available via [`RetryingSource::attempts`].

use std::time::Duration;

use crate::catalog::FeatureId;
use crate::error::Result;
use crate::source::SeriesSource;

/// When and how often to retry a failed scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum scan attempts per logical scan (including the first); at
    /// least 1.
    pub max_attempts: usize,
    /// Sleep before the first retry.
    pub initial_backoff: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    /// Three attempts, 10 ms initial backoff doubling up to 1 s.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_attempts` total attempts and the default backoff.
    pub fn with_max_attempts(max_attempts: usize) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            ..Self::default()
        }
    }

    /// Removes all backoff sleeps (useful in tests and for in-memory
    /// sources where waiting buys nothing).
    pub fn without_backoff(mut self) -> Self {
        self.initial_backoff = Duration::ZERO;
        self.max_backoff = Duration::ZERO;
        self
    }

    /// The sleep before retry number `retry` (0-based): capped exponential,
    /// `initial * 2^retry` clamped to `max_backoff`.
    pub fn backoff_for(&self, retry: u32) -> Duration {
        let exp = self
            .initial_backoff
            .saturating_mul(2u32.saturating_pow(retry));
        exp.min(self.max_backoff)
    }
}

/// A [`SeriesSource`] wrapper that retries transient scan failures
/// according to a [`RetryPolicy`]. See the module docs for the replay
/// semantics.
#[derive(Debug)]
pub struct RetryingSource<S> {
    inner: S,
    policy: RetryPolicy,
    logical_scans: usize,
    attempts: usize,
    retries: usize,
}

impl<S: SeriesSource> RetryingSource<S> {
    /// Wraps `inner` with `policy`.
    pub fn new(inner: S, policy: RetryPolicy) -> Self {
        RetryingSource {
            inner,
            policy,
            logical_scans: 0,
            attempts: 0,
            retries: 0,
        }
    }

    /// Total physical scan attempts, including failures.
    pub fn attempts(&self) -> usize {
        self.attempts
    }

    /// Number of retries performed (attempts beyond the first per scan).
    pub fn retries(&self) -> usize {
        self.retries
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps, returning the inner source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: SeriesSource> SeriesSource for RetryingSource<S> {
    fn instant_count(&self) -> usize {
        self.inner.instant_count()
    }

    fn scan(&mut self, visit: &mut dyn FnMut(usize, &[FeatureId])) -> Result<()> {
        // High-water mark: instants already delivered to `visit` during
        // this logical scan. Replayed attempts skip everything below it.
        let mut delivered = 0usize;
        let mut attempt = 0usize;
        loop {
            attempt += 1;
            self.attempts += 1;
            let result = self.inner.scan(&mut |t, feats| {
                if t >= delivered {
                    visit(t, feats);
                    delivered = t + 1;
                }
            });
            match result {
                Ok(()) => {
                    if attempt > 1 {
                        ppm_observe::mark("retry.recovered", || {
                            format!("logical scan completed after {attempt} attempts")
                        });
                    }
                    self.logical_scans += 1;
                    return Ok(());
                }
                Err(e) if e.is_transient() && attempt < self.policy.max_attempts => {
                    self.retries += 1;
                    let pause = self.policy.backoff_for((attempt - 1) as u32);
                    ppm_observe::counter("source.retries", 1);
                    ppm_observe::mark("retry.transient_error", || {
                        format!("attempt {attempt} failed ({e}); backing off {pause:?}")
                    });
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Completed *logical* scans — failed attempts are invisible, so scan
    /// statistics match a fault-free run exactly.
    fn scans_performed(&self) -> usize {
        self.logical_scans
    }
}

/// Convenience: wrap a source and immediately guard it against `Transient`
/// faults with the default policy minus backoff. Used by callers that want
/// resilience but have no latency to hide (tests, in-memory replays).
pub fn with_retries<S: SeriesSource>(inner: S, max_attempts: usize) -> RetryingSource<S> {
    RetryingSource::new(
        inner,
        RetryPolicy::with_max_attempts(max_attempts).without_backoff(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Error;
    use crate::fault::{Fault, FaultInjectingSource, FaultPlan};
    use crate::series::{FeatureSeries, SeriesBuilder};
    use crate::source::MemorySource;

    fn fid(i: u32) -> FeatureId {
        FeatureId::from_raw(i)
    }

    fn sample() -> FeatureSeries {
        let mut b = SeriesBuilder::new();
        for i in 0..6u32 {
            b.push_instant([fid(i), fid(100 + i)]);
        }
        b.finish()
    }

    fn collect(src: &mut impl SeriesSource) -> Result<Vec<(usize, Vec<FeatureId>)>> {
        let mut seen = Vec::new();
        src.scan(&mut |t, f| seen.push((t, f.to_vec())))?;
        Ok(seen)
    }

    #[test]
    fn clean_source_passes_through() {
        let series = sample();
        let mut src = with_retries(MemorySource::new(&series), 3);
        let seen = collect(&mut src).unwrap();
        assert_eq!(seen.len(), 6);
        assert_eq!(src.scans_performed(), 1);
        assert_eq!(src.attempts(), 1);
        assert_eq!(src.retries(), 0);
    }

    #[test]
    fn transient_failure_is_retried_invisibly() {
        let series = sample();
        let plan = FaultPlan::new()
            .fail_scan(0, Fault::TransientIo)
            .fail_scan(1, Fault::ShortRead { instants: 3 });
        let faulty = FaultInjectingSource::new(MemorySource::new(&series), plan);
        let mut src = with_retries(faulty, 5);

        let seen = collect(&mut src).unwrap();
        // Every instant delivered exactly once, in order.
        let expect: Vec<usize> = (0..6).collect();
        let got: Vec<usize> = seen.iter().map(|&(t, _)| t).collect();
        assert_eq!(got, expect);
        assert_eq!(seen[4].1, vec![fid(4), fid(104)]);

        // Logical count hides the two failed attempts.
        assert_eq!(src.scans_performed(), 1);
        assert_eq!(src.attempts(), 3);
        assert_eq!(src.retries(), 2);
    }

    #[test]
    fn short_read_prefix_is_not_redelivered() {
        let series = sample();
        let plan = FaultPlan::new().fail_scan(0, Fault::ShortRead { instants: 4 });
        let faulty = FaultInjectingSource::new(MemorySource::new(&series), plan);
        let mut src = with_retries(faulty, 3);
        let mut counts = vec![0usize; 6];
        src.scan(&mut |t, _| counts[t] += 1).unwrap();
        assert_eq!(counts, vec![1; 6], "each instant delivered exactly once");
    }

    #[test]
    fn attempts_exhausted_surfaces_the_error() {
        let series = sample();
        let plan = FaultPlan::new()
            .fail_scan(0, Fault::TransientIo)
            .fail_scan(1, Fault::TransientIo)
            .fail_scan(2, Fault::TransientIo);
        let faulty = FaultInjectingSource::new(MemorySource::new(&series), plan);
        let mut src = with_retries(faulty, 3);
        let err = collect(&mut src).unwrap_err();
        assert!(err.is_transient());
        assert_eq!(src.attempts(), 3);
        assert_eq!(src.scans_performed(), 0);
        // A later scan (attempt 3 — no fault scheduled) succeeds.
        assert_eq!(collect(&mut src).unwrap().len(), 6);
        assert_eq!(src.scans_performed(), 1);
    }

    #[test]
    fn fatal_errors_are_not_retried() {
        let series = sample();
        let plan = FaultPlan::new().fail_scan(0, Fault::Truncate { instants: 2 });
        let faulty = FaultInjectingSource::new(MemorySource::new(&series), plan);
        let mut src = with_retries(faulty, 5);
        let err = collect(&mut src).unwrap_err();
        assert!(matches!(err, Error::Truncated { .. }));
        assert_eq!(src.attempts(), 1, "fatal error must fail fast");
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let p = RetryPolicy {
            max_attempts: 10,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(50),
        };
        assert_eq!(p.backoff_for(0), Duration::from_millis(10));
        assert_eq!(p.backoff_for(1), Duration::from_millis(20));
        assert_eq!(p.backoff_for(2), Duration::from_millis(40));
        assert_eq!(p.backoff_for(3), Duration::from_millis(50));
        assert_eq!(p.backoff_for(30), Duration::from_millis(50));
    }
}
