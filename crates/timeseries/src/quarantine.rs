//! Input quarantine: isolating malformed instants instead of trusting them.
//!
//! The miners' correctness argument assumes every instant delivers a
//! sorted, deduplicated, in-range feature set — the invariant
//! [`SeriesSource::scan`] promises. Storage checksums catch *byte* damage,
//! but a buggy exporter, a schema drift, or corruption past the checksum
//! layer can deliver structurally well-formed bytes that violate the
//! *semantic* contract. [`QuarantiningSource`] validates every instant at
//! the scan boundary and, instead of letting bad data poison the counts:
//!
//! * in [`QuarantineMode::Quarantine`], replaces the offending instant with
//!   the **empty feature set** and records it (instant index, reason, raw
//!   bytes) in a [`QuarantineReport`]. An empty instant matches no letter,
//!   so every pattern count — and therefore every confidence — computed
//!   over a quarantined scan is a *sound lower bound* on the true value;
//! * in [`QuarantineMode::Reject`], completes the scan, then fails with a
//!   typed [`Error::Corrupt`] naming the first offending instant
//!   (fail-fast for pipelines that would rather abort than approximate).
//!
//! The wrapper composes with [`crate::fault::FaultInjectingSource`] (which
//! can plant [`crate::fault::Fault::Garbage`]) and
//! [`crate::retry::RetryingSource`] like any other source.
//!
//! ```
//! use ppm_timeseries::{Fault, FaultInjectingSource, FaultPlan, MemorySource};
//! use ppm_timeseries::{QuarantineMode, QuarantiningSource, SeriesSource, SeriesBuilder};
//!
//! let mut b = SeriesBuilder::new();
//! for _ in 0..4 {
//!     b.push_instant([ppm_timeseries::FeatureId::from_raw(1)]);
//! }
//! let series = b.finish();
//! let plan = FaultPlan::new().fail_scan(0, Fault::Garbage { instant: 2 });
//! let faulty = FaultInjectingSource::new(MemorySource::new(&series), plan);
//! let mut src = QuarantiningSource::new(faulty, QuarantineMode::Quarantine);
//! let mut widths = Vec::new();
//! src.scan(&mut |_, feats| widths.push(feats.len())).unwrap();
//! assert_eq!(widths[2], 0); // the garbage instant was emptied …
//! assert_eq!(src.report().len(), 1); // … and recorded.
//! ```

use std::collections::BTreeMap;
use std::fmt;

use crate::catalog::FeatureId;
use crate::error::{Error, Result};
use crate::source::SeriesSource;

/// How many leading feature ids of a malformed instant are preserved as
/// raw bytes in its [`QuarantinedInstant`] record.
const BYTES_CAP: usize = 16;

/// What a [`QuarantiningSource`] does when an instant fails validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QuarantineMode {
    /// Skip the instant (deliver the empty feature set), record it, and
    /// keep scanning. Downstream counts are sound lower bounds.
    #[default]
    Quarantine,
    /// Finish the scan, then fail with [`Error::Corrupt`] naming the first
    /// malformed instant.
    Reject,
}

/// Why an instant was quarantined.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum QuarantineReason {
    /// A feature id was smaller than its predecessor — the set is not
    /// sorted, so the miners' merge logic would miscount.
    UnsortedFeatures {
        /// 0-based position of the out-of-order id within the instant.
        position: usize,
    },
    /// The same feature id appeared twice; a duplicate would double-count
    /// one letter's contribution to every containing pattern.
    DuplicateFeature {
        /// The repeated raw id.
        id: u32,
    },
    /// A feature id exceeded the declared catalog bound.
    FeatureOutOfRange {
        /// The offending raw id.
        id: u32,
        /// The largest raw id the policy admits.
        max: u32,
    },
    /// The instant carried more features than the policy's width limit —
    /// usually a framing error upstream, not real data.
    TooManyFeatures {
        /// How many features the instant carried.
        count: usize,
        /// The configured limit.
        limit: usize,
    },
}

impl fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuarantineReason::UnsortedFeatures { position } => {
                write!(f, "features unsorted at position {position}")
            }
            QuarantineReason::DuplicateFeature { id } => {
                write!(f, "duplicate feature id {id}")
            }
            QuarantineReason::FeatureOutOfRange { id, max } => {
                write!(f, "feature id {id} out of range (max {max})")
            }
            QuarantineReason::TooManyFeatures { count, limit } => {
                write!(f, "{count} features exceeds width limit {limit}")
            }
        }
    }
}

/// One quarantined instant: everything needed to reproduce the decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedInstant {
    /// 0-based instant index within the series.
    pub instant: usize,
    /// Why it failed validation.
    pub reason: QuarantineReason,
    /// The first feature ids as delivered, little-endian `u32`s (at most
    /// [`BYTES_CAP`] ids), so the offending payload survives in the report
    /// even after the source is gone.
    pub bytes: Vec<u8>,
}

/// The cumulative record of everything a [`QuarantiningSource`] skipped.
///
/// Entries are deduplicated by instant index (a two-scan mine sees the
/// same bad instant twice but reports it once); [`total_skips`] counts
/// every suppression including repeats.
///
/// [`total_skips`]: QuarantineReport::total_skips
#[derive(Debug, Clone, Default)]
pub struct QuarantineReport {
    entries: BTreeMap<usize, QuarantinedInstant>,
    total_skips: usize,
}

impl QuarantineReport {
    /// Number of distinct quarantined instants.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was quarantined.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Every suppression across all scans, repeats included.
    pub fn total_skips(&self) -> usize {
        self.total_skips
    }

    /// The quarantined instants in index order.
    pub fn entries(&self) -> impl Iterator<Item = &QuarantinedInstant> {
        self.entries.values()
    }

    fn record(&mut self, instant: usize, reason: QuarantineReason, feats: &[FeatureId]) {
        self.total_skips += 1;
        self.entries.entry(instant).or_insert_with(|| {
            let mut bytes = Vec::with_capacity(feats.len().min(BYTES_CAP) * 4);
            for f in feats.iter().take(BYTES_CAP) {
                bytes.extend_from_slice(&f.raw().to_le_bytes());
            }
            QuarantinedInstant {
                instant,
                reason,
                bytes,
            }
        });
    }
}

/// Checks one instant against the scan contract (strictly increasing
/// feature ids) and the optional policy bounds.
fn validate(
    feats: &[FeatureId],
    max_feature: Option<u32>,
    max_width: Option<usize>,
) -> Option<QuarantineReason> {
    if let Some(limit) = max_width {
        if feats.len() > limit {
            return Some(QuarantineReason::TooManyFeatures {
                count: feats.len(),
                limit,
            });
        }
    }
    for (i, pair) in feats.windows(2).enumerate() {
        if pair[1].raw() == pair[0].raw() {
            return Some(QuarantineReason::DuplicateFeature { id: pair[1].raw() });
        }
        if pair[1].raw() < pair[0].raw() {
            return Some(QuarantineReason::UnsortedFeatures { position: i + 1 });
        }
    }
    if let Some(max) = max_feature {
        for f in feats {
            if f.raw() > max {
                return Some(QuarantineReason::FeatureOutOfRange { id: f.raw(), max });
            }
        }
    }
    None
}

/// A [`SeriesSource`] wrapper that validates every instant and quarantines
/// (or rejects on) the ones that violate the scan contract.
#[derive(Debug)]
pub struct QuarantiningSource<S> {
    inner: S,
    mode: QuarantineMode,
    max_feature: Option<u32>,
    max_width: Option<usize>,
    report: QuarantineReport,
}

impl<S: SeriesSource> QuarantiningSource<S> {
    /// Wraps `inner` with contract validation only (sortedness and
    /// deduplication); no range or width bounds.
    pub fn new(inner: S, mode: QuarantineMode) -> Self {
        QuarantiningSource {
            inner,
            mode,
            max_feature: None,
            max_width: None,
            report: QuarantineReport::default(),
        }
    }

    /// Additionally quarantines instants carrying a feature id above
    /// `max` — use the catalog's largest interned id.
    pub fn with_max_feature(mut self, max: u32) -> Self {
        self.max_feature = Some(max);
        self
    }

    /// Additionally quarantines instants wider than `limit` features.
    pub fn with_max_width(mut self, limit: usize) -> Self {
        self.max_width = Some(limit);
        self
    }

    /// What has been quarantined so far.
    pub fn report(&self) -> &QuarantineReport {
        &self.report
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps, returning the inner source and the final report.
    pub fn into_parts(self) -> (S, QuarantineReport) {
        (self.inner, self.report)
    }
}

impl<S: SeriesSource> SeriesSource for QuarantiningSource<S> {
    fn instant_count(&self) -> usize {
        self.inner.instant_count()
    }

    fn scan(&mut self, visit: &mut dyn FnMut(usize, &[FeatureId])) -> Result<()> {
        let (max_feature, max_width) = (self.max_feature, self.max_width);
        let report = &mut self.report;
        let mut first_bad: Option<(usize, QuarantineReason)> = None;
        self.inner.scan(&mut |t, feats| {
            match validate(feats, max_feature, max_width) {
                None => visit(t, feats),
                Some(reason) => {
                    ppm_observe::counter("quarantine.skipped", 1);
                    ppm_observe::mark("quarantine.instant", || format!("instant {t}: {reason}"));
                    if first_bad.is_none() {
                        first_bad = Some((t, reason.clone()));
                    }
                    report.record(t, reason, feats);
                    // The empty set matches nothing: downstream counts
                    // become sound lower bounds instead of garbage.
                    visit(t, &[]);
                }
            }
        })?;
        match (self.mode, first_bad) {
            (QuarantineMode::Reject, Some((t, reason))) => Err(Error::Corrupt {
                detail: format!(
                    "instant {t} failed validation: {reason} \
                     (quarantine mode would skip it and continue)"
                ),
            }),
            _ => Ok(()),
        }
    }

    fn scans_performed(&self) -> usize {
        self.inner.scans_performed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{Fault, FaultInjectingSource, FaultPlan};
    use crate::series::SeriesBuilder;
    use crate::source::MemorySource;

    fn fid(i: u32) -> FeatureId {
        FeatureId::from_raw(i)
    }

    fn sample() -> crate::series::FeatureSeries {
        let mut b = SeriesBuilder::new();
        b.push_instant([fid(1)]);
        b.push_instant([fid(2), fid(3)]);
        b.push_instant([fid(1), fid(4)]);
        b.push_instant([fid(2)]);
        b.finish()
    }

    #[test]
    fn validate_catches_each_contract_breach() {
        assert_eq!(validate(&[fid(1), fid(2)], None, None), None);
        assert_eq!(validate(&[], None, None), None);
        assert!(matches!(
            validate(&[fid(2), fid(1)], None, None),
            Some(QuarantineReason::UnsortedFeatures { position: 1 })
        ));
        assert!(matches!(
            validate(&[fid(2), fid(2)], None, None),
            Some(QuarantineReason::DuplicateFeature { id: 2 })
        ));
        assert!(matches!(
            validate(&[fid(1), fid(9)], Some(4), None),
            Some(QuarantineReason::FeatureOutOfRange { id: 9, max: 4 })
        ));
        assert!(matches!(
            validate(&[fid(1), fid(2), fid(3)], None, Some(2)),
            Some(QuarantineReason::TooManyFeatures { count: 3, limit: 2 })
        ));
    }

    #[test]
    fn clean_source_passes_through_unreported() {
        let series = sample();
        let mut src =
            QuarantiningSource::new(MemorySource::new(&series), QuarantineMode::Quarantine);
        let mut seen = Vec::new();
        src.scan(&mut |t, f| seen.push((t, f.to_vec()))).unwrap();
        assert_eq!(seen.len(), 4);
        assert_eq!(seen[1].1, vec![fid(2), fid(3)]);
        assert!(src.report().is_empty());
    }

    #[test]
    fn garbage_instant_is_emptied_and_recorded() {
        let series = sample();
        let plan = FaultPlan::new()
            .fail_scan(0, Fault::Garbage { instant: 1 })
            .fail_scan(1, Fault::Garbage { instant: 1 });
        let faulty = FaultInjectingSource::new(MemorySource::new(&series), plan);
        let mut src = QuarantiningSource::new(faulty, QuarantineMode::Quarantine);
        for _ in 0..2 {
            let mut seen = Vec::new();
            src.scan(&mut |t, f| seen.push((t, f.to_vec()))).unwrap();
            assert_eq!(seen[1].1, Vec::<FeatureId>::new());
            assert_eq!(seen[0].1, vec![fid(1)]);
            assert_eq!(seen[3].1, vec![fid(2)]);
        }
        // Two scans, one distinct instant, two suppressions.
        let report = src.report();
        assert_eq!(report.len(), 1);
        assert_eq!(report.total_skips(), 2);
        let entry = report.entries().next().unwrap();
        assert_eq!(entry.instant, 1);
        assert!(!entry.bytes.is_empty());
        assert_eq!(entry.bytes.len() % 4, 0);
    }

    #[test]
    fn reject_mode_fails_with_typed_error_naming_the_instant() {
        let series = sample();
        let plan = FaultPlan::new().fail_scan(0, Fault::Garbage { instant: 2 });
        let faulty = FaultInjectingSource::new(MemorySource::new(&series), plan);
        let mut src = QuarantiningSource::new(faulty, QuarantineMode::Reject);
        let err = src.scan(&mut |_, _| {}).unwrap_err();
        assert!(matches!(err, Error::Corrupt { .. }));
        assert!(err.to_string().contains("instant 2"), "{err}");
        assert!(!err.is_transient());
    }

    #[test]
    fn policy_bounds_quarantine_out_of_range_and_wide_instants() {
        let series = sample();
        let mut src =
            QuarantiningSource::new(MemorySource::new(&series), QuarantineMode::Quarantine)
                .with_max_feature(3)
                .with_max_width(1);
        let mut widths = Vec::new();
        src.scan(&mut |_, f| widths.push(f.len())).unwrap();
        // Instant 1 is too wide; instant 2 is too wide AND out of range.
        assert_eq!(widths, vec![1, 0, 0, 1]);
        let reasons: Vec<&QuarantineReason> = src.report().entries().map(|e| &e.reason).collect();
        assert_eq!(reasons.len(), 2);
        assert!(reasons
            .iter()
            .all(|r| matches!(r, QuarantineReason::TooManyFeatures { .. })));
    }

    #[test]
    fn display_strings_are_informative() {
        let reasons = [
            QuarantineReason::UnsortedFeatures { position: 3 },
            QuarantineReason::DuplicateFeature { id: 7 },
            QuarantineReason::FeatureOutOfRange { id: 9, max: 4 },
            QuarantineReason::TooManyFeatures { count: 5, limit: 2 },
        ];
        for r in &reasons {
            assert!(!r.to_string().is_empty());
        }
        assert!(reasons[0].to_string().contains("position 3"));
        assert!(reasons[2].to_string().contains("max 4"));
    }
}
