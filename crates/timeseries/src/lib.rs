//! Feature time-series substrate for partial periodic pattern mining.
//!
//! This crate provides the data layer that the mining algorithms in
//! `ppm-core` operate on. The central abstraction, taken from Han, Dong &
//! Yin (ICDE 1999), is the *feature time series*: a sequence of time
//! instants `D_1, D_2, …, D_N`, where each `D_t` is a **set of categorical
//! features** derived from whatever raw data was collected at instant `t`.
//!
//! The pieces:
//!
//! * [`FeatureCatalog`] — interns feature names into dense [`FeatureId`]s so
//!   the mining layer works on small integers instead of strings.
//! * [`FeatureSeries`] — a compact, immutable, CSR-encoded series of feature
//!   sets, built through [`SeriesBuilder`].
//! * [`EncodedSeries`] — an optional cache of per-instant feature *bitmaps*
//!   so repeated membership probes (multi-period mining, parallel workers,
//!   the vertical engine, audit re-mines) are single bit tests.
//! * [`segment`] — period-segment views (`m = ⌊N/p⌋` whole segments of a
//!   period `p`), the unit over which pattern confidence is defined.
//! * [`columnar`] — a binary columnar store whose on-disk layout *is* the
//!   [`EncodedSeries`] layout, so opening a `.ppmc` file loads straight into
//!   a borrowed [`EncodedSeriesView`] with zero per-row allocation.
//! * [`storage`] — a versioned binary on-disk format plus a line-oriented
//!   text (CSV-like) import/export, so series larger than memory pressure
//!   allows can be staged on disk as the paper assumes in §5.
//! * [`fault`] / [`retry`] — deterministic fault injection and transparent
//!   retry wrappers around any [`SeriesSource`], so out-of-core mining
//!   survives flaky I/O and tests can reproduce failure sequences exactly.
//! * [`quarantine`] — scan-boundary validation: malformed instants are
//!   skipped and recorded (counts become sound lower bounds) or rejected
//!   fail-fast, instead of silently poisoning the mine.
//! * [`discretize`] — turning numeric series (power draw, stock prices, …)
//!   into single- or multi-level categorical features (paper §6).
//! * [`taxonomy`] — feature hierarchies for multi-level mining (paper §6).
//! * [`window`] — slot enlargement for perturbation-tolerant mining
//!   (paper §6): each instant absorbs the features of its neighbours.
//!
//! # Example
//!
//! ```
//! use ppm_timeseries::{FeatureCatalog, SeriesBuilder};
//!
//! let mut catalog = FeatureCatalog::new();
//! let coffee = catalog.intern("coffee");
//! let paper = catalog.intern("newspaper");
//!
//! let mut builder = SeriesBuilder::new();
//! builder.push_instant([coffee, paper]);
//! builder.push_instant([coffee]);
//! builder.push_instant([]);
//! let series = builder.finish();
//!
//! assert_eq!(series.len(), 3);
//! assert_eq!(series.instant(0), &[coffee, paper]);
//! assert!(series.instant(2).is_empty());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod catalog;
mod encoded;
mod error;
mod series;

pub mod calendar;
pub mod columnar;
pub mod discretize;
pub mod events;
pub mod fault;
pub mod quarantine;
pub mod retry;
pub mod segment;
pub mod source;
pub mod storage;
pub mod taxonomy;
pub mod window;

pub use catalog::{FeatureCatalog, FeatureId};
pub use encoded::{EncodedSeries, EncodedSeriesView, FeatureBits};
pub use error::{Error, Result};
pub use fault::{Fault, FaultInjectingSource, FaultPlan};
pub use quarantine::{
    QuarantineMode, QuarantineReason, QuarantineReport, QuarantinedInstant, QuarantiningSource,
};
pub use retry::{RetryPolicy, RetryingSource};
pub use segment::{Segment, SegmentIter, Segments};
pub use series::{FeatureSeries, InstantIter, SeriesBuilder, SeriesStats};
pub use source::{MemorySource, SeriesSource};
pub use taxonomy::Taxonomy;
