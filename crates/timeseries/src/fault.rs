//! Deterministic fault injection for scan sources.
//!
//! Out-of-core mining (paper §5) lives or dies on multi-scan I/O, and I/O
//! fails in practice: interrupted syscalls, flaky network mounts, files
//! truncated by a crashed writer, bit rot. [`FaultInjectingSource`] wraps
//! any [`SeriesSource`] and injects those failures *deterministically* — a
//! [`FaultPlan`] maps physical scan attempts to [`Fault`]s, so a test (or a
//! chaos run) reproduces byte-for-byte every time.
//!
//! The wrapper composes with [`crate::retry::RetryingSource`]: plant
//! transient faults on chosen attempts, wrap in a retrier, and assert the
//! mining result is bit-identical to the fault-free run.
//!
//! ```
//! use ppm_timeseries::{Fault, FaultInjectingSource, FaultPlan, MemorySource, SeriesSource};
//! use ppm_timeseries::SeriesBuilder;
//!
//! let mut b = SeriesBuilder::new();
//! b.push_instant([]);
//! let series = b.finish();
//! let plan = FaultPlan::new().fail_scan(0, Fault::TransientIo);
//! let mut src = FaultInjectingSource::new(MemorySource::new(&series), plan);
//! assert!(src.scan(&mut |_, _| {}).unwrap_err().is_transient()); // attempt 0 fails
//! assert!(src.scan(&mut |_, _| {}).is_ok()); // attempt 1 clean
//! assert_eq!(src.attempts(), 2);
//! assert_eq!(src.faults_injected(), 1);
//! ```

use std::collections::BTreeMap;

use crate::catalog::FeatureId;
use crate::error::{Error, Result};
use crate::source::SeriesSource;

/// One injected failure mode, applied to a single scan attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// The scan fails immediately with a transient I/O error
    /// (`io::ErrorKind::Interrupted`), delivering nothing.
    TransientIo,
    /// A short read: the scan delivers the first `instants` instants, then
    /// fails with a transient I/O error.
    ShortRead {
        /// Number of instants delivered before the failure.
        instants: usize,
    },
    /// Silent corruption: every instant is delivered and the scan reports
    /// success, but the feature set of one instant has a bit flipped.
    /// Models data damaged *past* the storage layer's checksums.
    BitFlip {
        /// The instant whose features are corrupted.
        instant: usize,
    },
    /// Truncation: the scan delivers the first `instants` instants, then
    /// fails with the fatal [`Error::Truncated`].
    Truncate {
        /// Number of instants delivered before the cut.
        instants: usize,
    },
    /// Semantic garbage: one instant's feature set is delivered with a
    /// duplicated trailing id, violating the sorted-and-deduplicated scan
    /// contract while the scan still reports success. Models an upstream
    /// producer bug; [`crate::quarantine::QuarantiningSource`] catches it.
    Garbage {
        /// The instant whose features are malformed.
        instant: usize,
    },
}

/// A deterministic schedule of faults, keyed by physical scan attempt
/// (0-based: the first `scan()` call on the wrapper is attempt 0).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: BTreeMap<usize, Fault>,
}

impl FaultPlan {
    /// An empty plan: every scan passes through untouched.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `fault` for scan attempt `attempt` (replacing any fault
    /// already scheduled there).
    pub fn fail_scan(mut self, attempt: usize, fault: Fault) -> Self {
        self.faults.insert(attempt, fault);
        self
    }

    /// A seeded pseudo-random plan: each of the first `attempts` scan
    /// attempts independently gets a transient fault with probability
    /// `rate` (a short read at a pseudo-random cut point). Deterministic in
    /// `seed` — the same seed schedules the same faults on every run.
    pub fn seeded(seed: u64, attempts: usize, rate: f64) -> Self {
        // SplitMix64: the same dependency-free generator ppm-datagen uses.
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut plan = FaultPlan::new();
        for attempt in 0..attempts {
            let coin = (next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let cut = next() as usize % 1024;
            if coin < rate {
                plan = plan.fail_scan(attempt, Fault::ShortRead { instants: cut });
            }
        }
        plan
    }

    /// The fault scheduled for `attempt`, if any.
    pub fn fault_for(&self, attempt: usize) -> Option<&Fault> {
        self.faults.get(&attempt)
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// A [`SeriesSource`] wrapper that injects the faults of a [`FaultPlan`]
/// into chosen scan attempts, passing all other scans through untouched.
#[derive(Debug)]
pub struct FaultInjectingSource<S> {
    inner: S,
    plan: FaultPlan,
    attempts: usize,
    injected: usize,
}

impl<S: SeriesSource> FaultInjectingSource<S> {
    /// Wraps `inner` with the given fault schedule.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        FaultInjectingSource {
            inner,
            plan,
            attempts: 0,
            injected: 0,
        }
    }

    /// Total scan attempts observed (successful or failed).
    pub fn attempts(&self) -> usize {
        self.attempts
    }

    /// Number of faults actually injected so far.
    pub fn faults_injected(&self) -> usize {
        self.injected
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps, returning the inner source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: SeriesSource> SeriesSource for FaultInjectingSource<S> {
    fn instant_count(&self) -> usize {
        self.inner.instant_count()
    }

    fn scan(&mut self, visit: &mut dyn FnMut(usize, &[FeatureId])) -> Result<()> {
        let attempt = self.attempts;
        self.attempts += 1;
        let Some(fault) = self.plan.fault_for(attempt).cloned() else {
            return self.inner.scan(visit);
        };
        self.injected += 1;
        ppm_observe::counter("faults.injected", 1);
        ppm_observe::mark("fault.injected", || {
            format!("{fault:?} on scan attempt {attempt}")
        });
        match fault {
            Fault::TransientIo => Err(Error::Io(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                format!("injected transient i/o fault on scan attempt {attempt}"),
            ))),
            Fault::ShortRead { instants } => {
                // Forward a prefix, swallow the rest of the inner scan, then
                // report the interruption.
                self.inner.scan(&mut |t, feats| {
                    if t < instants {
                        visit(t, feats);
                    }
                })?;
                Err(Error::Io(std::io::Error::new(
                    std::io::ErrorKind::Interrupted,
                    format!(
                        "injected short read after {instants} instants \
                         on scan attempt {attempt}"
                    ),
                )))
            }
            Fault::BitFlip { instant } => {
                let mut scratch: Vec<FeatureId> = Vec::new();
                self.inner.scan(&mut |t, feats| {
                    if t == instant {
                        scratch.clear();
                        scratch.extend_from_slice(feats);
                        match scratch.first().copied() {
                            Some(f) => scratch[0] = FeatureId::from_raw(f.raw() ^ 1),
                            None => scratch.push(FeatureId::from_raw(0)),
                        }
                        scratch.sort_unstable();
                        scratch.dedup();
                        visit(t, &scratch);
                    } else {
                        visit(t, feats);
                    }
                })
            }
            Fault::Truncate { instants } => {
                self.inner.scan(&mut |t, feats| {
                    if t < instants {
                        visit(t, feats);
                    }
                })?;
                Err(Error::Truncated {
                    detail: format!(
                        "injected truncation after {instants} instants \
                         on scan attempt {attempt}"
                    ),
                })
            }
            Fault::Garbage { instant } => {
                let mut scratch: Vec<FeatureId> = Vec::new();
                self.inner.scan(&mut |t, feats| {
                    if t == instant {
                        scratch.clear();
                        scratch.extend_from_slice(feats);
                        // Duplicate the last id (or fabricate a pair): the
                        // set is now invalid however the original looked.
                        let dup = scratch.last().copied().unwrap_or(FeatureId::from_raw(0));
                        scratch.push(dup);
                        if scratch.len() == 1 {
                            scratch.push(dup);
                        }
                        visit(t, &scratch);
                    } else {
                        visit(t, feats);
                    }
                })
            }
        }
    }

    fn scans_performed(&self) -> usize {
        self.attempts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::SeriesBuilder;
    use crate::source::MemorySource;

    fn fid(i: u32) -> FeatureId {
        FeatureId::from_raw(i)
    }

    fn sample() -> crate::series::FeatureSeries {
        let mut b = SeriesBuilder::new();
        b.push_instant([fid(1)]);
        b.push_instant([fid(2), fid(3)]);
        b.push_instant([]);
        b.push_instant([fid(4)]);
        b.finish()
    }

    #[test]
    fn clean_plan_passes_through() {
        let series = sample();
        let mut src = FaultInjectingSource::new(MemorySource::new(&series), FaultPlan::new());
        let mut seen = Vec::new();
        src.scan(&mut |t, f| seen.push((t, f.to_vec()))).unwrap();
        assert_eq!(seen.len(), 4);
        assert_eq!(src.attempts(), 1);
        assert_eq!(src.faults_injected(), 0);
    }

    #[test]
    fn transient_fault_fires_once_then_clears() {
        let series = sample();
        let plan = FaultPlan::new().fail_scan(0, Fault::TransientIo);
        let mut src = FaultInjectingSource::new(MemorySource::new(&series), plan);
        let err = src.scan(&mut |_, _| {}).unwrap_err();
        assert!(err.is_transient(), "{err}");
        src.scan(&mut |_, _| {}).unwrap();
        assert_eq!(src.attempts(), 2);
        assert_eq!(src.faults_injected(), 1);
    }

    #[test]
    fn short_read_delivers_prefix() {
        let series = sample();
        let plan = FaultPlan::new().fail_scan(0, Fault::ShortRead { instants: 2 });
        let mut src = FaultInjectingSource::new(MemorySource::new(&series), plan);
        let mut seen = Vec::new();
        let err = src.scan(&mut |t, _| seen.push(t)).unwrap_err();
        assert!(err.is_transient());
        assert_eq!(seen, vec![0, 1]);
    }

    #[test]
    fn bit_flip_corrupts_one_instant_silently() {
        let series = sample();
        let plan = FaultPlan::new().fail_scan(0, Fault::BitFlip { instant: 1 });
        let mut src = FaultInjectingSource::new(MemorySource::new(&series), plan);
        let mut seen = Vec::new();
        src.scan(&mut |t, f| seen.push((t, f.to_vec()))).unwrap();
        assert_eq!(seen[0].1, vec![fid(1)]);
        assert_ne!(
            seen[1].1,
            vec![fid(2), fid(3)],
            "instant 1 should be corrupted"
        );
        assert_eq!(seen[3].1, vec![fid(4)]);
    }

    #[test]
    fn truncation_is_fatal() {
        let series = sample();
        let plan = FaultPlan::new().fail_scan(0, Fault::Truncate { instants: 1 });
        let mut src = FaultInjectingSource::new(MemorySource::new(&series), plan);
        let err = src.scan(&mut |_, _| {}).unwrap_err();
        assert!(!err.is_transient());
        assert!(matches!(err, Error::Truncated { .. }));
    }

    #[test]
    fn seeded_plan_is_deterministic() {
        let a = FaultPlan::seeded(99, 50, 0.3);
        let b = FaultPlan::seeded(99, 50, 0.3);
        assert!(!a.is_empty());
        for i in 0..50 {
            assert_eq!(a.fault_for(i), b.fault_for(i));
        }
        let c = FaultPlan::seeded(100, 50, 0.3);
        assert!((0..50).any(|i| a.fault_for(i) != c.fault_for(i)));
    }
}
