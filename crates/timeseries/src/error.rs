//! Error type shared by the time-series substrate.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by series construction, storage, and derivation.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// An underlying I/O operation failed.
    Io(std::io::Error),
    /// A stored series file is malformed: a structural check or checksum
    /// failed on bytes that are present.
    Corrupt {
        /// Human-readable description of what check failed.
        detail: String,
    },
    /// A stored series file ended mid-record: everything before the cut is
    /// intact, so [`crate::storage::stream::salvage_series`] can usually
    /// recover a prefix.
    Truncated {
        /// Human-readable description of where the data ran out.
        detail: String,
    },
    /// A text import line could not be parsed.
    Parse {
        /// 1-based line number within the input.
        line: usize,
        /// Human-readable description of the problem.
        detail: String,
    },
    /// A period of zero, or one longer than the series, was requested.
    InvalidPeriod {
        /// The offending period.
        period: usize,
        /// The length of the series it was applied to.
        series_len: usize,
    },
    /// A feature id not present in the catalog was referenced.
    UnknownFeature {
        /// The raw id that failed to resolve.
        id: u32,
    },
    /// Discretization was asked to produce zero bins or received no data.
    InvalidDiscretization {
        /// Human-readable description of the problem.
        detail: String,
    },
    /// A taxonomy edge would create a cycle or orphan.
    InvalidTaxonomy {
        /// Human-readable description of the problem.
        detail: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::Corrupt { detail } => write!(f, "corrupt series file: {detail}"),
            Error::Truncated { detail } => write!(f, "truncated series file: {detail}"),
            Error::Parse { line, detail } => write!(f, "parse error at line {line}: {detail}"),
            Error::InvalidPeriod { period, series_len } => write!(
                f,
                "invalid period {period} for series of length {series_len} \
                 (need 1 <= period <= length)"
            ),
            Error::UnknownFeature { id } => write!(f, "feature id {id} not in catalog"),
            Error::InvalidDiscretization { detail } => {
                write!(f, "invalid discretization: {detail}")
            }
            Error::InvalidTaxonomy { detail } => write!(f, "invalid taxonomy: {detail}"),
        }
    }
}

impl Error {
    /// Whether retrying the failed operation could plausibly succeed.
    ///
    /// Transient failures are I/O interruptions that clear on their own —
    /// an interrupted syscall, a timeout, a would-block on a busy volume.
    /// Everything else (corruption, truncation, missing files, semantic
    /// errors) is deterministic: retrying re-reads the same bad bytes, so
    /// sources like [`crate::retry::RetryingSource`] fail fast instead.
    pub fn is_transient(&self) -> bool {
        match self {
            Error::Io(e) => matches!(
                e.kind(),
                std::io::ErrorKind::Interrupted
                    | std::io::ErrorKind::TimedOut
                    | std::io::ErrorKind::WouldBlock
            ),
            _ => false,
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::InvalidPeriod {
            period: 0,
            series_len: 10,
        };
        assert!(e.to_string().contains("invalid period 0"));
        let e = Error::Parse {
            line: 3,
            detail: "bad token".into(),
        };
        assert!(e.to_string().contains("line 3"));
        let e = Error::Corrupt {
            detail: "bad magic".into(),
        };
        assert!(e.to_string().contains("bad magic"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        use std::error::Error as _;
        let io = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        let e: Error = io.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("eof"));
    }
}
