//! Calendar grids: mapping human time (day-of-week, hour) to period
//! offsets and back.
//!
//! Mining "natural periods — annually, quarterly, monthly, weekly, daily,
//! or hourly" (paper §3.2) means constantly translating between period
//! offsets and human labels. [`WeeklyGrid`] and [`DailyGrid`] centralize
//! that translation for the two grids the examples and CLI use.

use std::fmt;

/// Three-letter day names, Monday-first (offset 0 = Monday's first slot).
pub const DAY_NAMES: [&str; 7] = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"];

/// A week of `slots_per_day` slots per day; the natural mining period is
/// `7 * slots_per_day`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeeklyGrid {
    slots_per_day: usize,
}

impl WeeklyGrid {
    /// A grid with the given number of slots per day (≥ 1).
    ///
    /// # Panics
    /// Panics if `slots_per_day == 0`.
    pub fn new(slots_per_day: usize) -> Self {
        assert!(slots_per_day > 0, "slots_per_day must be >= 1");
        WeeklyGrid { slots_per_day }
    }

    /// The hourly grid (24 slots/day, period 168).
    pub fn hourly() -> Self {
        Self::new(24)
    }

    /// Slots per day.
    pub fn slots_per_day(&self) -> usize {
        self.slots_per_day
    }

    /// The mining period: slots per week.
    pub fn period(&self) -> usize {
        7 * self.slots_per_day
    }

    /// The offset of `(day, slot)`; day 0 = Monday.
    ///
    /// # Panics
    /// Panics when `day >= 7` or `slot >= slots_per_day`.
    pub fn offset(&self, day: usize, slot: usize) -> usize {
        assert!(day < 7, "day {day} out of range");
        assert!(slot < self.slots_per_day, "slot {slot} out of range");
        day * self.slots_per_day + slot
    }

    /// The `(day, slot)` of an offset.
    ///
    /// # Panics
    /// Panics when `offset >= period()`.
    pub fn day_slot(&self, offset: usize) -> (usize, usize) {
        assert!(offset < self.period(), "offset {offset} out of range");
        (offset / self.slots_per_day, offset % self.slots_per_day)
    }

    /// Human label for an offset, e.g. `Mon 07h` on the hourly grid or
    /// `Tue slot 3` on other grids.
    pub fn label(&self, offset: usize) -> OffsetLabel {
        let (day, slot) = self.day_slot(offset);
        OffsetLabel {
            day,
            slot,
            hourly: self.slots_per_day == 24,
        }
    }

    /// The offsets covering one whole day (for constraint queries).
    pub fn day_offsets(&self, day: usize) -> std::ops::Range<usize> {
        assert!(day < 7, "day {day} out of range");
        day * self.slots_per_day..(day + 1) * self.slots_per_day
    }

    /// The offsets of a given slot across all seven days.
    pub fn slot_offsets(&self, slot: usize) -> impl Iterator<Item = usize> + '_ {
        assert!(slot < self.slots_per_day, "slot {slot} out of range");
        (0..7).map(move |d| d * self.slots_per_day + slot)
    }
}

/// A day of `period` slots; offsets are the slots themselves. Exists for
/// symmetry with [`WeeklyGrid`] in generic code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DailyGrid {
    slots: usize,
}

impl DailyGrid {
    /// A daily grid of `slots` slots (≥ 1).
    ///
    /// # Panics
    /// Panics if `slots == 0`.
    pub fn new(slots: usize) -> Self {
        assert!(slots > 0, "slots must be >= 1");
        DailyGrid { slots }
    }

    /// The hourly day.
    pub fn hourly() -> Self {
        Self::new(24)
    }

    /// The mining period.
    pub fn period(&self) -> usize {
        self.slots
    }

    /// Human label, e.g. `07h` for the hourly day, `slot 3` otherwise.
    pub fn label(&self, offset: usize) -> String {
        assert!(offset < self.slots, "offset {offset} out of range");
        if self.slots == 24 {
            format!("{offset:02}h")
        } else {
            format!("slot {offset}")
        }
    }
}

/// Display adapter for a weekly offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OffsetLabel {
    day: usize,
    slot: usize,
    hourly: bool,
}

impl fmt::Display for OffsetLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.hourly {
            write!(f, "{} {:02}h", DAY_NAMES[self.day], self.slot)
        } else {
            write!(f, "{} slot {}", DAY_NAMES[self.day], self.slot)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weekly_round_trip() {
        let g = WeeklyGrid::hourly();
        assert_eq!(g.period(), 168);
        for offset in 0..g.period() {
            let (d, s) = g.day_slot(offset);
            assert_eq!(g.offset(d, s), offset);
        }
    }

    #[test]
    fn labels_read_naturally() {
        let g = WeeklyGrid::hourly();
        assert_eq!(g.label(7).to_string(), "Mon 07h");
        assert_eq!(g.label(24 + 13).to_string(), "Tue 13h");
        assert_eq!(g.label(6 * 24 + 23).to_string(), "Sun 23h");
        let coarse = WeeklyGrid::new(8);
        assert_eq!(coarse.label(9).to_string(), "Tue slot 1");
    }

    #[test]
    fn day_and_slot_offsets() {
        let g = WeeklyGrid::new(4);
        assert_eq!(g.day_offsets(0), 0..4);
        assert_eq!(g.day_offsets(6), 24..28);
        assert_eq!(
            g.slot_offsets(2).collect::<Vec<_>>(),
            vec![2, 6, 10, 14, 18, 22, 26]
        );
    }

    #[test]
    fn daily_grid_labels() {
        let d = DailyGrid::hourly();
        assert_eq!(d.period(), 24);
        assert_eq!(d.label(7), "07h");
        assert_eq!(DailyGrid::new(10).label(3), "slot 3");
    }

    #[test]
    #[should_panic(expected = "day")]
    fn weekly_rejects_bad_day() {
        WeeklyGrid::hourly().offset(7, 0);
    }

    #[test]
    #[should_panic(expected = "offset")]
    fn weekly_rejects_bad_offset() {
        WeeklyGrid::hourly().day_slot(168);
    }

    #[test]
    #[should_panic(expected = "slots")]
    fn zero_slots_rejected() {
        DailyGrid::new(0);
    }
}
