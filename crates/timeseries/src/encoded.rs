//! Packed per-instant feature bitmaps: the encoded-series cache.
//!
//! The mining layer's second scan repeatedly asks "does instant `t`
//! contain feature `f`?" — once per frequent letter per instant, and once
//! per *period* when several periods are mined over the same series
//! (Algorithm 3.4) or the audit oracle re-mines for a differential check.
//! [`EncodedSeries`] answers that question with a single bit test: each
//! instant's feature set is packed into `⌈width/64⌉` words, where bit `f`
//! of the row is set iff feature id `f` occurs at the instant. Encoding
//! costs one pass over the CSR series; every later consumer — the shared
//! multi-period scan, the parallel miner's workers, the vertical engine —
//! reuses the same cache instead of re-merge-walking raw feature slices.
//!
//! Feature ids are interned densely by the catalog, so `width` (one past
//! the max raw id) is small in practice and a row is a handful of words;
//! the whole cache is `len · ⌈width/64⌉ · 8` bytes, reported by
//! [`EncodedSeries::bytes`].

use crate::catalog::FeatureId;
use crate::series::FeatureSeries;

/// A series re-encoded as one fixed-width feature bitmap per instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedSeries {
    /// Feature-id universe: max raw id + 1 (0 for an empty-feature series).
    width: usize,
    /// Words per instant row: `⌈width/64⌉`.
    words_per_instant: usize,
    /// Number of encoded instants.
    n_instants: usize,
    /// Row-major bitmap words, `n_instants · words_per_instant` long.
    words: Vec<u64>,
}

impl EncodedSeries {
    /// The bitmap width [`Self::encode`] would pick for `series`.
    pub fn width_for(series: &FeatureSeries) -> usize {
        series.max_feature_id().map_or(0, |f| f.index() + 1)
    }

    /// Encodes every instant of `series` in one pass.
    pub fn encode(series: &FeatureSeries) -> Self {
        let width = Self::width_for(series);
        let chunk = Self::encode_range(series, 0, series.len(), width);
        Self::from_chunks(width, series.len(), vec![chunk])
    }

    /// Encodes instants `start..end` of `series` into raw row words — the
    /// building block for chunked parallel encoding. All chunks of one
    /// series must share the same `width` (use [`Self::width_for`]).
    ///
    /// # Panics
    /// Panics if `start..end` is not a valid instant range.
    pub fn encode_range(
        series: &FeatureSeries,
        start: usize,
        end: usize,
        width: usize,
    ) -> Vec<u64> {
        assert!(start <= end && end <= series.len(), "bad encode range");
        let wpi = width.div_ceil(64);
        let mut words = vec![0u64; (end - start) * wpi];
        for t in start..end {
            let base = (t - start) * wpi;
            for &f in series.instant(t) {
                let idx = f.index();
                words[base + idx / 64] |= 1u64 << (idx % 64);
            }
        }
        words
    }

    /// Assembles an encoding from consecutive [`Self::encode_range`] chunks
    /// covering instants `0..n_instants` in order.
    ///
    /// # Panics
    /// Panics if the chunks don't add up to exactly `n_instants` rows.
    pub fn from_chunks(width: usize, n_instants: usize, chunks: Vec<Vec<u64>>) -> Self {
        let words_per_instant = width.div_ceil(64);
        let mut words = Vec::with_capacity(n_instants * words_per_instant);
        for chunk in chunks {
            words.extend_from_slice(&chunk);
        }
        assert_eq!(
            words.len(),
            n_instants * words_per_instant,
            "encoded chunks don't cover the series"
        );
        EncodedSeries {
            width,
            words_per_instant,
            n_instants,
            words,
        }
    }

    /// Number of encoded instants.
    pub fn len(&self) -> usize {
        self.n_instants
    }

    /// Whether no instants were encoded.
    pub fn is_empty(&self) -> bool {
        self.n_instants == 0
    }

    /// The feature-id universe this encoding covers.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Instant `t`'s feature bitmap (bit `f` set iff feature `f` occurs).
    ///
    /// # Panics
    /// Panics if `t >= len()`.
    pub fn instant_words(&self, t: usize) -> &[u64] {
        assert!(t < self.n_instants, "instant {t} out of range");
        &self.words[t * self.words_per_instant..(t + 1) * self.words_per_instant]
    }

    /// Whether instant `t` contains `feature`.
    pub fn contains(&self, t: usize, feature: FeatureId) -> bool {
        let idx = feature.index();
        idx < self.width && self.instant_words(t)[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Cache size in bytes (the bitmap words only).
    pub fn bytes(&self) -> usize {
        std::mem::size_of_val(&self.words[..])
    }

    /// A borrowed [`EncodedSeriesView`] over this cache — the common
    /// currency between in-memory encodings and file-backed columnar
    /// loads, accepted by every bitmap-probing consumer.
    pub fn view(&self) -> EncodedSeriesView<'_> {
        EncodedSeriesView {
            width: self.width,
            words_per_instant: self.words_per_instant,
            n_instants: self.n_instants,
            words: &self.words,
        }
    }
}

/// A borrowed, zero-copy view over row-major per-instant bitmap words.
///
/// Both [`EncodedSeries::view`] and the columnar store
/// ([`crate::columnar::ColumnarReader::view`]) produce this type, so mining
/// code written against the view runs identically over an in-memory encode
/// and a one-read file load — no per-row allocation either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodedSeriesView<'a> {
    width: usize,
    words_per_instant: usize,
    n_instants: usize,
    words: &'a [u64],
}

impl<'a> EncodedSeriesView<'a> {
    /// Wraps raw row-major words as a view.
    ///
    /// # Panics
    /// Panics if `words` is not exactly `n_instants · ⌈width/64⌉` long.
    pub fn new(width: usize, n_instants: usize, words: &'a [u64]) -> Self {
        let words_per_instant = width.div_ceil(64);
        assert_eq!(
            words.len(),
            n_instants * words_per_instant,
            "words don't cover {n_instants} instants at width {width}"
        );
        EncodedSeriesView {
            width,
            words_per_instant,
            n_instants,
            words,
        }
    }

    /// Number of encoded instants.
    pub fn len(&self) -> usize {
        self.n_instants
    }

    /// Whether no instants are covered.
    pub fn is_empty(&self) -> bool {
        self.n_instants == 0
    }

    /// The feature-id universe this encoding covers.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Words per instant row: `⌈width/64⌉`.
    pub fn words_per_instant(&self) -> usize {
        self.words_per_instant
    }

    /// Instant `t`'s feature bitmap (bit `f` set iff feature `f` occurs).
    ///
    /// # Panics
    /// Panics if `t >= len()`.
    pub fn instant_words(&self, t: usize) -> &'a [u64] {
        assert!(t < self.n_instants, "instant {t} out of range");
        &self.words[t * self.words_per_instant..(t + 1) * self.words_per_instant]
    }

    /// Whether instant `t` contains `feature`.
    pub fn contains(&self, t: usize, feature: FeatureId) -> bool {
        let idx = feature.index();
        idx < self.width && self.instant_words(t)[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Iterates the features present at instant `t` in ascending id order —
    /// the bitmap equivalent of `FeatureSeries::instant`.
    pub fn features_at(&self, t: usize) -> FeatureBits<'a> {
        FeatureBits {
            words: self.instant_words(t),
            next_word: 0,
            current: 0,
            base: 0,
        }
    }

    /// View size in bytes (the bitmap words only).
    pub fn bytes(&self) -> usize {
        std::mem::size_of_val(self.words)
    }
}

/// Iterator over the set feature bits of one instant row.
#[derive(Debug, Clone)]
pub struct FeatureBits<'a> {
    words: &'a [u64],
    next_word: usize,
    current: u64,
    base: u32,
}

impl Iterator for FeatureBits<'_> {
    type Item = FeatureId;

    fn next(&mut self) -> Option<FeatureId> {
        while self.current == 0 {
            if self.next_word >= self.words.len() {
                return None;
            }
            self.current = self.words[self.next_word];
            self.base = (self.next_word * 64) as u32;
            self.next_word += 1;
        }
        let bit = self.current.trailing_zeros();
        self.current &= self.current - 1;
        Some(FeatureId::from_raw(self.base + bit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::SeriesBuilder;

    fn fid(i: u32) -> FeatureId {
        FeatureId::from_raw(i)
    }

    fn sample() -> FeatureSeries {
        let mut b = SeriesBuilder::new();
        b.push_instant([fid(0), fid(2)]);
        b.push_instant([]);
        b.push_instant([fid(65)]);
        b.push_instant([fid(0), fid(64), fid(65)]);
        b.finish()
    }

    #[test]
    fn encode_round_trips_membership() {
        let series = sample();
        let enc = EncodedSeries::encode(&series);
        assert_eq!(enc.len(), series.len());
        assert_eq!(enc.width(), 66);
        for t in 0..series.len() {
            for raw in 0..66u32 {
                assert_eq!(
                    enc.contains(t, fid(raw)),
                    series.instant(t).contains(&fid(raw)),
                    "instant {t} feature {raw}"
                );
            }
        }
        // Features past the width read as absent, not out of bounds.
        assert!(!enc.contains(0, fid(1000)));
    }

    #[test]
    fn chunked_encoding_equals_whole_series_encoding() {
        let series = sample();
        let width = EncodedSeries::width_for(&series);
        let chunks = vec![
            EncodedSeries::encode_range(&series, 0, 1, width),
            EncodedSeries::encode_range(&series, 1, 3, width),
            EncodedSeries::encode_range(&series, 3, 4, width),
        ];
        let assembled = EncodedSeries::from_chunks(width, series.len(), chunks);
        assert_eq!(assembled, EncodedSeries::encode(&series));
    }

    #[test]
    fn instant_words_expose_the_raw_bitmap() {
        let enc = EncodedSeries::encode(&sample());
        assert_eq!(enc.instant_words(0), &[0b101u64, 0]);
        assert_eq!(enc.instant_words(1), &[0u64, 0]);
        assert_eq!(enc.instant_words(3), &[1u64, 0b11]);
        assert_eq!(enc.bytes(), 4 * 2 * 8);
    }

    #[test]
    fn empty_series_encodes_to_nothing() {
        let series = SeriesBuilder::new().finish();
        let enc = EncodedSeries::encode(&series);
        assert!(enc.is_empty());
        assert_eq!(enc.width(), 0);
        assert_eq!(enc.bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "don't cover")]
    fn from_chunks_rejects_short_coverage() {
        let series = sample();
        let width = EncodedSeries::width_for(&series);
        let chunk = EncodedSeries::encode_range(&series, 0, 2, width);
        EncodedSeries::from_chunks(width, series.len(), vec![chunk]);
    }

    #[test]
    fn view_mirrors_the_owned_encoding() {
        let series = sample();
        let enc = EncodedSeries::encode(&series);
        let view = enc.view();
        assert_eq!(view.len(), enc.len());
        assert_eq!(view.width(), enc.width());
        assert_eq!(view.bytes(), enc.bytes());
        assert_eq!(view.words_per_instant(), 2);
        for t in 0..series.len() {
            assert_eq!(view.instant_words(t), enc.instant_words(t));
            for raw in 0..70u32 {
                assert_eq!(view.contains(t, fid(raw)), enc.contains(t, fid(raw)));
            }
            let bits: Vec<FeatureId> = view.features_at(t).collect();
            assert_eq!(bits, series.instant(t), "instant {t}");
        }
    }

    #[test]
    fn view_new_validates_geometry() {
        let words = vec![0u64; 6];
        let v = EncodedSeriesView::new(66, 3, &words);
        assert_eq!(v.len(), 3);
        assert_eq!(v.width(), 66);
        assert!(!v.is_empty());
    }

    #[test]
    #[should_panic(expected = "don't cover")]
    fn view_new_rejects_bad_geometry() {
        let words = vec![0u64; 5];
        EncodedSeriesView::new(66, 3, &words);
    }

    /// Widths 64 and 65 straddle the one-word/two-word row boundary (and
    /// the inline→spill boundary of the mining layer's `LetterSet`).
    #[test]
    fn view_boundary_widths_64_and_65() {
        for top in [63u32, 64u32] {
            let mut b = SeriesBuilder::new();
            b.push_instant([fid(0), fid(top)]);
            b.push_instant([fid(top)]);
            b.push_instant([]);
            let series = b.finish();
            let enc = EncodedSeries::encode(&series);
            assert_eq!(enc.width(), top as usize + 1);
            let view = enc.view();
            assert_eq!(view.words_per_instant(), (top as usize + 1).div_ceil(64));
            for t in 0..series.len() {
                let bits: Vec<FeatureId> = view.features_at(t).collect();
                assert_eq!(bits, series.instant(t), "width {} instant {t}", top + 1);
            }
        }
    }

    #[test]
    fn empty_view_has_width_zero() {
        let series = SeriesBuilder::new().finish();
        let enc = EncodedSeries::encode(&series);
        let view = enc.view();
        assert!(view.is_empty());
        assert_eq!(view.width(), 0);
        assert_eq!(view.words_per_instant(), 0);
        assert_eq!(view.bytes(), 0);
    }
}
