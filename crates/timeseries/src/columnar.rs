//! The binary columnar series store (`.ppmc`): an on-disk layout that *is*
//! the [`EncodedSeries`] layout.
//!
//! Every text or block-binary mine re-parses its input, rebuilds the CSR
//! series, and re-packs the per-instant bitmaps before any counting starts.
//! The columnar store skips all of that: the file body is the encoded
//! cache's row-major `u64` words verbatim, so opening a `.ppmc` is one read
//! plus one pass converting the byte section into a single word vector —
//! zero per-row allocation — and the result is borrowed straight out as an
//! [`EncodedSeriesView`] that the vertical engine, the shared multi-period
//! scan, and the audit oracle consume directly.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset 0   magic            [u8; 4] = b"PPMC"
//! offset 4   version          u32     = 1
//! offset 8   width            u64     feature-id universe (max id + 1)
//! offset 16  words_per_instant u64    must equal ⌈width/64⌉
//! offset 24  n_names          u32     catalog size
//! …          names            n_names × (u32 len, bytes)
//! …          words            n_instants × words_per_instant × u64, row-major
//! EOF−16     n_instants       u64     trailer, so appends are O(new rows)
//! EOF−8      checksum         u64     FNV-1a over bytes [0, EOF−8)
//! ```
//!
//! The trailer placement is what makes [`ColumnarAppender`] cheap to
//! *assemble*: the FNV state — a streaming hash — resumes from where the
//! prefix left off, so hashing `k` appended rows costs `O(k)`. Publication
//! is crash-safe rather than in-place: [`ColumnarAppender::finish`] writes
//! the complete new store to a same-directory temp file, fsyncs it, renames
//! it over the original, and fsyncs the parent directory — so a crash at
//! any byte leaves either the prior store or the fully-appended store on
//! disk, never a torn hybrid (the same publish discipline as the sweep
//! checkpoint).
//!
//! Corruption is rejected with a named byte offset (`Error::Corrupt`), the
//! same policy as the checkpoint and stream-storage formats: a damaged
//! header, a flipped bitmap word, or a truncated trailer must never
//! mis-mine.

use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use crate::catalog::{FeatureCatalog, FeatureId};
use crate::encoded::{EncodedSeries, EncodedSeriesView};
use crate::error::{Error, Result};
use crate::series::{FeatureSeries, SeriesBuilder};
use crate::storage::binary::Fnv64;

const MAGIC: &[u8; 4] = b"PPMC";
const VERSION: u32 = 1;
/// Fixed header bytes before the catalog names.
const FIXED_HEADER: usize = 4 + 4 + 8 + 8 + 4;
/// Trailer bytes: `n_instants` + checksum.
const TRAILER: usize = 8 + 8;

/// Serializes `series` (and its catalog) into `.ppmc` bytes.
pub fn encode_columnar(series: &FeatureSeries, catalog: &FeatureCatalog) -> Vec<u8> {
    let encoded = EncodedSeries::encode(series);
    columnar_bytes(encoded.view(), catalog)
}

/// Serializes an already-encoded view (and a catalog) into `.ppmc` bytes.
pub fn columnar_bytes(view: EncodedSeriesView<'_>, catalog: &FeatureCatalog) -> Vec<u8> {
    let mut buf = Vec::with_capacity(
        FIXED_HEADER
            + catalog.iter().map(|(_, n)| n.len() + 4).sum::<usize>()
            + view.bytes()
            + TRAILER,
    );
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&(view.width() as u64).to_le_bytes());
    buf.extend_from_slice(&(view.words_per_instant() as u64).to_le_bytes());
    buf.extend_from_slice(&(catalog.len() as u32).to_le_bytes());
    for (_, name) in catalog.iter() {
        buf.extend_from_slice(&(name.len() as u32).to_le_bytes());
        buf.extend_from_slice(name.as_bytes());
    }
    for t in 0..view.len() {
        for &w in view.instant_words(t) {
            buf.extend_from_slice(&w.to_le_bytes());
        }
    }
    buf.extend_from_slice(&(view.len() as u64).to_le_bytes());
    let mut h = Fnv64::new();
    h.update(&buf);
    buf.extend_from_slice(&h.finish().to_le_bytes());
    buf
}

/// Writes `series` (and its catalog) to `path` in the columnar format.
pub fn write_columnar(
    path: impl AsRef<Path>,
    series: &FeatureSeries,
    catalog: &FeatureCatalog,
) -> Result<()> {
    let bytes = encode_columnar(series, catalog);
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&bytes)?;
    w.flush()?;
    Ok(())
}

fn corrupt(detail: String) -> Error {
    Error::Corrupt { detail }
}

/// A fully validated columnar load: the bitmap words in one allocation,
/// borrowed out as [`EncodedSeriesView`]s.
#[derive(Debug, Clone)]
pub struct ColumnarReader {
    width: usize,
    words_per_instant: usize,
    n_instants: usize,
    words: Vec<u64>,
    catalog: FeatureCatalog,
    file_bytes: usize,
    checksum: u64,
}

impl ColumnarReader {
    /// Opens `path` with one read: the whole file is pulled into memory,
    /// checksum-verified, and its words section converted in a single pass
    /// into one word vector. Reports the mapped size through the
    /// `columnar.mmap_bytes` gauge.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let mut r = File::open(path)?;
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes)?;
        let reader = Self::from_bytes(&bytes)?;
        ppm_observe::gauge("columnar.mmap_bytes", reader.file_bytes as u64);
        Ok(reader)
    }

    /// Validates and loads `.ppmc` bytes. Every rejection names the byte
    /// offset of the failed check.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let len = bytes.len();
        if len < FIXED_HEADER + TRAILER {
            return Err(corrupt(format!(
                "file too short at offset {len}: need at least {} header+trailer bytes",
                FIXED_HEADER + TRAILER
            )));
        }
        let (body, tail) = bytes.split_at(len - 8);
        let stored_sum = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
        let mut h = Fnv64::new();
        h.update(body);
        if h.finish() != stored_sum {
            return Err(corrupt(format!("checksum mismatch at offset {}", len - 8)));
        }

        let magic: [u8; 4] = body[0..4].try_into().expect("4 bytes");
        if &magic != MAGIC {
            return Err(corrupt(format!("bad magic {magic:?} at offset 0")));
        }
        let version = u32::from_le_bytes(body[4..8].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(corrupt(format!(
                "unsupported version {version} at offset 4"
            )));
        }
        let width = u64::from_le_bytes(body[8..16].try_into().expect("8 bytes")) as usize;
        let words_per_instant =
            u64::from_le_bytes(body[16..24].try_into().expect("8 bytes")) as usize;
        if words_per_instant != width.div_ceil(64) {
            return Err(corrupt(format!(
                "words-per-instant {words_per_instant} does not match width {width} at offset 16"
            )));
        }
        let n_names = u32::from_le_bytes(body[24..28].try_into().expect("4 bytes")) as usize;

        let words_end = len - TRAILER;
        let mut off = FIXED_HEADER;
        let mut catalog = FeatureCatalog::new();
        for i in 0..n_names {
            if off + 4 > words_end {
                return Err(corrupt(format!(
                    "truncated catalog entry {i} at offset {off}"
                )));
            }
            let name_len =
                u32::from_le_bytes(body[off..off + 4].try_into().expect("4 bytes")) as usize;
            off += 4;
            if off + name_len > words_end {
                return Err(corrupt(format!(
                    "truncated name in entry {i} at offset {off}"
                )));
            }
            let name = std::str::from_utf8(&body[off..off + name_len])
                .map_err(|_| corrupt(format!("non-utf8 name in entry {i} at offset {off}")))?;
            catalog.intern(name);
            off += name_len;
        }

        let n_instants =
            u64::from_le_bytes(body[words_end..words_end + 8].try_into().expect("8 bytes"))
                as usize;
        let need = n_instants
            .checked_mul(words_per_instant)
            .and_then(|w| w.checked_mul(8))
            .ok_or_else(|| {
                corrupt(format!(
                    "instant count {n_instants} overflows the words section at offset {words_end}"
                ))
            })?;
        let have = words_end - off;
        if have != need {
            return Err(corrupt(format!(
                "words section is {have} bytes at offset {off}, need {need} \
                 ({n_instants} instants × {words_per_instant} words)"
            )));
        }
        // The one conversion pass: byte section → a single word vector.
        let words: Vec<u64> = body[off..words_end]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect();

        Ok(ColumnarReader {
            width,
            words_per_instant,
            n_instants,
            words,
            catalog,
            file_bytes: len,
            checksum: stored_sum,
        })
    }

    /// The borrowed bitmap view over the loaded words.
    pub fn view(&self) -> EncodedSeriesView<'_> {
        EncodedSeriesView::new(self.width, self.n_instants, &self.words)
    }

    /// The embedded feature catalog.
    pub fn catalog(&self) -> &FeatureCatalog {
        &self.catalog
    }

    /// Number of stored instants.
    pub fn len(&self) -> usize {
        self.n_instants
    }

    /// Whether the store holds no instants.
    pub fn is_empty(&self) -> bool {
        self.n_instants == 0
    }

    /// The feature-id universe of the stored bitmaps.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total size of the backing file in bytes.
    pub fn file_bytes(&self) -> usize {
        self.file_bytes
    }

    /// The store's content fingerprint: the verified trailer checksum
    /// (FNV-1a over every byte before it). Two stores with the same
    /// fingerprint hold byte-identical headers, catalogs, and bitmap rows,
    /// so the fingerprint is a sound cache key for results derived from
    /// this store; any append or rewrite changes it.
    pub fn fingerprint(&self) -> u64 {
        self.checksum
    }

    /// Materializes the bitmaps back into a CSR [`FeatureSeries`] — for
    /// consumers that still need raw feature slices (quarantine, export,
    /// the tree-walk engines on non-view paths).
    pub fn to_series(&self) -> FeatureSeries {
        let view = self.view();
        let mut b = SeriesBuilder::new();
        for t in 0..view.len() {
            b.push_instant(view.features_at(t));
        }
        b.finish()
    }
}

/// Incremental segment arrival: appends encoded rows to an existing
/// `.ppmc` file with crash-safe publication.
///
/// Opening validates the whole file (so a corrupt store is rejected before
/// any write) and keeps the prefix bytes plus the streaming FNV state over
/// them; each appended instant then costs one row of hashing, and
/// [`Self::finish`] assembles the complete new store in a same-directory
/// temp file, fsyncs, atomically renames it over the original, and fsyncs
/// the parent directory. A crash (or `kill -9`) at any point leaves either
/// the prior store or the finished store on disk — both openable — never a
/// half-written hybrid.
#[derive(Debug)]
pub struct ColumnarAppender {
    path: PathBuf,
    /// The validated existing file minus its trailer.
    prefix: Vec<u8>,
    /// FNV state over the prefix plus any pending rows.
    hash: Fnv64,
    width: usize,
    words_per_instant: usize,
    n_instants: usize,
    /// Encoded rows not yet written, as raw LE bytes.
    pending: Vec<u8>,
}

/// The staging path `finish` publishes through: `<store>.tmp`, always in
/// the store's own directory so the rename cannot cross filesystems.
fn staging_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".tmp");
    PathBuf::from(os)
}

impl ColumnarAppender {
    /// Opens `path` for appending, validating the existing contents first.
    ///
    /// A stale staging file (`<path>.tmp`) left behind by a crashed append
    /// is removed here: the rename never happened, so the original store is
    /// authoritative and the orphan holds nothing worth keeping.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut r = File::open(&path)?;
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes)?;
        let existing = ColumnarReader::from_bytes(&bytes)?;
        std::fs::remove_file(staging_path(&path)).ok();
        bytes.truncate(bytes.len() - TRAILER);
        let mut hash = Fnv64::new();
        hash.update(&bytes);
        Ok(ColumnarAppender {
            path,
            prefix: bytes,
            hash,
            width: existing.width,
            words_per_instant: existing.words_per_instant,
            n_instants: existing.n_instants,
            pending: Vec::new(),
        })
    }

    /// The instant count after all appends so far.
    pub fn len(&self) -> usize {
        self.n_instants
    }

    /// Whether the store (including pending appends) holds no instants.
    pub fn is_empty(&self) -> bool {
        self.n_instants == 0
    }

    /// Appends one instant's feature set as an encoded row.
    ///
    /// Fails with [`Error::UnknownFeature`] if a feature id does not fit
    /// the store's fixed bitmap width — the layout cannot widen in place.
    pub fn append_instant(&mut self, features: &[FeatureId]) -> Result<()> {
        let mut row = vec![0u64; self.words_per_instant];
        for &f in features {
            let idx = f.index();
            if idx >= self.width {
                return Err(Error::UnknownFeature { id: f.raw() });
            }
            row[idx / 64] |= 1u64 << (idx % 64);
        }
        for w in row {
            let bytes = w.to_le_bytes();
            self.hash.update(&bytes);
            self.pending.extend_from_slice(&bytes);
        }
        self.n_instants += 1;
        Ok(())
    }

    /// Appends every instant of `series`.
    pub fn append_series(&mut self, series: &FeatureSeries) -> Result<()> {
        for t in 0..series.len() {
            self.append_instant(series.instant(t))?;
        }
        Ok(())
    }

    /// Publishes the appended store crash-safely; returns the new total
    /// instant count.
    ///
    /// The complete new file — prefix, pending rows, refreshed trailer —
    /// is written to `<path>.tmp` and fsynced *before* the atomic rename
    /// over `path`, then the parent directory is fsynced so the rename
    /// itself survives a power cut. If the rename fails the staging file
    /// is removed and the original store is untouched.
    pub fn finish(mut self) -> Result<usize> {
        let count_bytes = (self.n_instants as u64).to_le_bytes();
        self.hash.update(&count_bytes);
        let checksum = self.hash.finish();

        let tmp = staging_path(&self.path);
        {
            let mut w = BufWriter::new(File::create(&tmp)?);
            w.write_all(&self.prefix)?;
            w.write_all(&self.pending)?;
            w.write_all(&count_bytes)?;
            w.write_all(&checksum.to_le_bytes())?;
            w.flush()?;
            w.get_ref().sync_all()?;
        }
        if let Err(e) = std::fs::rename(&tmp, &self.path) {
            std::fs::remove_file(&tmp).ok();
            return Err(e.into());
        }
        if let Some(dir) = self.path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = File::open(dir) {
                d.sync_all().ok();
            }
        }
        Ok(self.n_instants)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::SeriesBuilder;

    fn fid(i: u32) -> FeatureId {
        FeatureId::from_raw(i)
    }

    fn sample() -> (FeatureSeries, FeatureCatalog) {
        let mut cat = FeatureCatalog::new();
        let a = cat.intern("alpha");
        let b = cat.intern("beta");
        let c = cat.intern("gamma");
        let mut builder = SeriesBuilder::new();
        builder.push_instant([a, c]);
        builder.push_instant([]);
        builder.push_instant([b]);
        builder.push_instant([a, b, c]);
        (builder.finish(), cat)
    }

    fn temp(tag: &str) -> PathBuf {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = N.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!("ppmc-test-{}-{tag}-{n}.ppmc", std::process::id()))
    }

    #[test]
    fn round_trips_bit_identically_with_the_in_memory_encode() {
        let (s, cat) = sample();
        let bytes = encode_columnar(&s, &cat);
        let reader = ColumnarReader::from_bytes(&bytes).unwrap();
        let enc = EncodedSeries::encode(&s);
        assert_eq!(reader.view(), enc.view());
        assert_eq!(reader.to_series(), s);
        assert_eq!(reader.catalog().len(), 3);
        assert_eq!(
            reader.catalog().name(cat.get("alpha").unwrap()),
            Some("alpha")
        );
        assert_eq!(reader.file_bytes(), bytes.len());
    }

    #[test]
    fn file_round_trip() {
        let (s, cat) = sample();
        let path = temp("roundtrip");
        write_columnar(&path, &s, &cat).unwrap();
        let reader = ColumnarReader::open(&path).unwrap();
        assert_eq!(reader.to_series(), s);
        assert_eq!(reader.len(), 4);
        assert!(!reader.is_empty());
        std::fs::remove_file(path).ok();
    }

    /// Satellite edge cases: widths 64 and 65 (word / inline-set boundary),
    /// the empty width-0 series, and a trailing partial segment — all
    /// bit-identical between the file-backed and in-memory paths.
    #[test]
    fn boundary_widths_round_trip_bit_identically() {
        for top in [63u32, 64u32] {
            let mut b = SeriesBuilder::new();
            b.push_instant([fid(0), fid(top)]);
            b.push_instant([fid(top)]);
            b.push_instant([]);
            b.push_instant([fid(1)]);
            b.push_instant([fid(0), fid(1), fid(top)]); // trailing partial segment at period 2
            let s = b.finish();
            let cat = FeatureCatalog::with_synthetic_features(top as usize + 1);
            let bytes = encode_columnar(&s, &cat);
            let reader = ColumnarReader::from_bytes(&bytes).unwrap();
            assert_eq!(reader.width(), top as usize + 1);
            assert_eq!(
                reader.view(),
                EncodedSeries::encode(&s).view(),
                "width {}",
                top + 1
            );
            assert_eq!(reader.to_series(), s, "width {}", top + 1);
        }
    }

    #[test]
    fn empty_series_round_trips_with_width_zero() {
        let s = SeriesBuilder::new().finish();
        let cat = FeatureCatalog::new();
        let bytes = encode_columnar(&s, &cat);
        let reader = ColumnarReader::from_bytes(&bytes).unwrap();
        assert!(reader.is_empty());
        assert_eq!(reader.width(), 0);
        assert_eq!(reader.to_series().len(), 0);
    }

    #[test]
    fn appender_extends_the_store_in_place() {
        let (s, cat) = sample();
        let path = temp("append");
        write_columnar(&path, &s, &cat).unwrap();

        let mut more = SeriesBuilder::new();
        more.push_instant([fid(1)]);
        more.push_instant([fid(0), fid(2)]);
        let more = more.finish();

        let mut appender = ColumnarAppender::open(&path).unwrap();
        assert_eq!(appender.len(), 4);
        assert!(!appender.is_empty());
        appender.append_series(&more).unwrap();
        assert_eq!(appender.finish().unwrap(), 6);

        // The appended store equals a from-scratch write of the whole series.
        let mut whole = SeriesBuilder::new();
        for t in 0..s.len() {
            whole.push_instant(s.instant(t).iter().copied());
        }
        for t in 0..more.len() {
            whole.push_instant(more.instant(t).iter().copied());
        }
        let whole = whole.finish();
        let reader = ColumnarReader::open(&path).unwrap();
        assert_eq!(reader.to_series(), whole);
        assert_eq!(
            std::fs::read(&path).unwrap(),
            encode_columnar(&whole, &cat),
            "appended bytes must equal a fresh encode"
        );
        std::fs::remove_file(path).ok();
    }

    /// Kill-point fuzz for the crash-safe publish: simulate a crash at
    /// every byte of the staging write (original store + truncated
    /// `<path>.tmp` on disk) and assert the prior store still opens with
    /// its old contents; then simulate the post-rename state and assert
    /// the appended store opens. A fresh appender must also sweep the
    /// stale staging file away.
    #[test]
    fn crash_at_any_kill_point_leaves_an_openable_store() {
        let (s, cat) = sample();
        let path = temp("kill-points");
        write_columnar(&path, &s, &cat).unwrap();
        let original = std::fs::read(&path).unwrap();

        // The bytes a completed append would publish.
        let mut appender = ColumnarAppender::open(&path).unwrap();
        appender.append_instant(&[fid(1)]).unwrap();
        appender.append_instant(&[fid(0), fid(2)]).unwrap();
        appender.finish().unwrap();
        let finished = std::fs::read(&path).unwrap();
        assert_ne!(original, finished);

        let tmp = staging_path(&path);
        for cut in 0..finished.len() {
            // Crash state: rename never ran; tmp holds `cut` bytes.
            std::fs::write(&path, &original).unwrap();
            std::fs::write(&tmp, &finished[..cut]).unwrap();
            let reader = ColumnarReader::open(&path)
                .unwrap_or_else(|e| panic!("kill point {cut}: prior store must open: {e}"));
            assert_eq!(reader.len(), 4, "kill point {cut}");
            assert_eq!(reader.to_series(), s, "kill point {cut}");
            // Recovery: a fresh appender opens the prior store and sweeps
            // the orphaned staging file.
            let again = ColumnarAppender::open(&path)
                .unwrap_or_else(|e| panic!("kill point {cut}: reopen for append: {e}"));
            assert_eq!(again.len(), 4, "kill point {cut}");
            assert!(!tmp.exists(), "kill point {cut}: stale tmp must be swept");
        }

        // Crash state: rename completed, crash before anything else.
        std::fs::write(&path, &finished).unwrap();
        let reader = ColumnarReader::open(&path).unwrap();
        assert_eq!(reader.len(), 6, "post-rename store is the appended one");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fingerprint_tracks_content_changes() {
        let (s, cat) = sample();
        let path = temp("fingerprint");
        write_columnar(&path, &s, &cat).unwrap();
        let before = ColumnarReader::open(&path).unwrap().fingerprint();
        // Identical bytes → identical fingerprint.
        assert_eq!(before, ColumnarReader::open(&path).unwrap().fingerprint());

        let mut appender = ColumnarAppender::open(&path).unwrap();
        appender.append_instant(&[fid(1)]).unwrap();
        appender.finish().unwrap();
        let after = ColumnarReader::open(&path).unwrap().fingerprint();
        assert_ne!(before, after, "an append must change the fingerprint");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn appender_rejects_features_past_the_width() {
        let (s, cat) = sample();
        let path = temp("append-wide");
        write_columnar(&path, &s, &cat).unwrap();
        let mut appender = ColumnarAppender::open(&path).unwrap();
        let err = appender.append_instant(&[fid(1000)]).unwrap_err();
        assert!(matches!(err, Error::UnknownFeature { id: 1000 }));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn appender_refuses_a_corrupt_store() {
        let (s, cat) = sample();
        let path = temp("append-corrupt");
        write_columnar(&path, &s, &cat).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(ColumnarAppender::open(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    // ---- Byte-flip / truncation fuzz (satellite: never mis-mine). ----

    #[test]
    fn every_single_byte_flip_is_rejected_with_an_offset() {
        let (s, cat) = sample();
        let bytes = encode_columnar(&s, &cat);
        for idx in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[idx] ^= 0xff;
            let err = ColumnarReader::from_bytes(&bad)
                .err()
                .unwrap_or_else(|| panic!("flip at {idx} accepted"));
            assert!(
                err.to_string().contains("offset"),
                "flip at {idx}: error names no offset: {err}"
            );
        }
    }

    #[test]
    fn every_truncation_is_rejected_with_an_offset() {
        let (s, cat) = sample();
        let bytes = encode_columnar(&s, &cat);
        for cut in 0..bytes.len() {
            let err = ColumnarReader::from_bytes(&bytes[..cut])
                .err()
                .unwrap_or_else(|| panic!("cut at {cut} accepted"));
            assert!(
                err.to_string().contains("offset"),
                "cut at {cut}: error names no offset: {err}"
            );
        }
    }

    #[test]
    fn structural_rejections_name_the_failed_field() {
        let (s, cat) = sample();
        let base = encode_columnar(&s, &cat);
        // Re-stamp the checksum after each structural edit so the named
        // structural check fires instead of the checksum gate.
        let restamp = |mut bytes: Vec<u8>| {
            let body = bytes.len() - 8;
            let mut h = Fnv64::new();
            h.update(&bytes[..body]);
            let sum = h.finish().to_le_bytes();
            bytes[body..].copy_from_slice(&sum);
            bytes
        };

        let mut bad_magic = base.clone();
        bad_magic[0] = b'X';
        let err = ColumnarReader::from_bytes(&restamp(bad_magic)).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
        assert!(err.to_string().contains("offset 0"), "{err}");

        let mut bad_version = base.clone();
        bad_version[4] = 99;
        let err = ColumnarReader::from_bytes(&restamp(bad_version)).unwrap_err();
        assert!(err.to_string().contains("unsupported version 99"), "{err}");
        assert!(err.to_string().contains("offset 4"), "{err}");

        let mut bad_wpi = base.clone();
        bad_wpi[16] = bad_wpi[16].wrapping_add(1);
        let err = ColumnarReader::from_bytes(&restamp(bad_wpi)).unwrap_err();
        assert!(err.to_string().contains("words-per-instant"), "{err}");
        assert!(err.to_string().contains("offset 16"), "{err}");

        // Lying instant count: the words section no longer adds up.
        let mut bad_count = base.clone();
        let count_off = base.len() - 16;
        bad_count[count_off] = bad_count[count_off].wrapping_add(1);
        let err = ColumnarReader::from_bytes(&restamp(bad_count)).unwrap_err();
        assert!(err.to_string().contains("words section"), "{err}");

        // Truncated trailer: cut into the final 16 bytes.
        let err = ColumnarReader::from_bytes(&base[..base.len() - 9]).unwrap_err();
        assert!(err.to_string().contains("offset"), "{err}");
    }

    #[test]
    fn flipped_bitmap_word_is_caught_by_the_checksum() {
        let (s, cat) = sample();
        let bytes = encode_columnar(&s, &cat);
        // First word of the words section: right after the fixed header
        // and the three catalog names.
        let names_len: usize = ["alpha", "beta", "gamma"].iter().map(|n| 4 + n.len()).sum();
        let word0 = FIXED_HEADER + names_len;
        let mut bad = bytes.clone();
        bad[word0] ^= 0x01;
        let err = ColumnarReader::from_bytes(&bad).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = ColumnarReader::open("/nonexistent/definitely/missing.ppmc").unwrap_err();
        assert!(matches!(err, Error::Io(_)));
    }
}
