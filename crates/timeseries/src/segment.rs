//! Period-segment views over a series.
//!
//! For a period `p`, a series of length `N` contains `m = ⌊N/p⌋` whole
//! *period segments*: segment `j` covers instants `j·p .. (j+1)·p`
//! (paper §2). Confidence of a pattern is defined against `m`, so the
//! trailing partial segment (if any) is ignored, exactly as in the paper.

use crate::catalog::FeatureId;
use crate::error::{Error, Result};
use crate::series::FeatureSeries;

/// A borrowed view of a series split into whole period segments.
#[derive(Debug, Clone, Copy)]
pub struct Segments<'a> {
    series: &'a FeatureSeries,
    period: usize,
    count: usize,
}

impl<'a> Segments<'a> {
    /// Builds the view; fails when `period == 0` or no whole segment fits.
    pub fn new(series: &'a FeatureSeries, period: usize) -> Result<Self> {
        if period == 0 || period > series.len() {
            return Err(Error::InvalidPeriod {
                period,
                series_len: series.len(),
            });
        }
        Ok(Segments {
            series,
            period,
            count: series.len() / period,
        })
    }

    /// The period `p`.
    pub fn period(&self) -> usize {
        self.period
    }

    /// The number of whole segments `m`.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The underlying series.
    pub fn series(&self) -> &'a FeatureSeries {
        self.series
    }

    /// The feature set at offset `offset` within segment `j`.
    ///
    /// # Panics
    /// Panics if `j >= count()` or `offset >= period()`.
    pub fn at(&self, j: usize, offset: usize) -> &'a [FeatureId] {
        assert!(
            j < self.count,
            "segment index {j} out of range {}",
            self.count
        );
        assert!(
            offset < self.period,
            "offset {offset} out of range {}",
            self.period
        );
        self.series.instant(j * self.period + offset)
    }

    /// Iterates over segments in order; each item is a [`Segment`].
    pub fn iter(&self) -> SegmentIter<'a> {
        SegmentIter {
            view: *self,
            next: 0,
        }
    }

    /// The `j`-th segment.
    pub fn segment(&self, j: usize) -> Segment<'a> {
        assert!(
            j < self.count,
            "segment index {j} out of range {}",
            self.count
        );
        Segment {
            view: *self,
            index: j,
        }
    }
}

impl<'a> IntoIterator for Segments<'a> {
    type Item = Segment<'a>;
    type IntoIter = SegmentIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// One whole period segment: `period()` consecutive instants.
#[derive(Debug, Clone, Copy)]
pub struct Segment<'a> {
    view: Segments<'a>,
    index: usize,
}

impl<'a> Segment<'a> {
    /// The segment's index `j` (0-based).
    pub fn index(&self) -> usize {
        self.index
    }

    /// The period `p` (also the number of instants in this segment).
    pub fn period(&self) -> usize {
        self.view.period
    }

    /// The feature set at `offset` within this segment.
    pub fn at(&self, offset: usize) -> &'a [FeatureId] {
        self.view.at(self.index, offset)
    }

    /// Whether the instant at `offset` contains feature `f`.
    pub fn contains(&self, offset: usize, f: FeatureId) -> bool {
        self.at(offset).binary_search(&f).is_ok()
    }

    /// Iterates the `p` feature sets of this segment in offset order.
    pub fn instants(&self) -> impl Iterator<Item = &'a [FeatureId]> + '_ {
        (0..self.view.period).map(move |o| self.at(o))
    }

    /// The absolute instant index of `offset` within the full series.
    pub fn absolute(&self, offset: usize) -> usize {
        self.index * self.view.period + offset
    }
}

/// Iterator over the whole segments of a [`Segments`] view.
#[derive(Debug, Clone)]
pub struct SegmentIter<'a> {
    view: Segments<'a>,
    next: usize,
}

impl<'a> Iterator for SegmentIter<'a> {
    type Item = Segment<'a>;

    fn next(&mut self) -> Option<Segment<'a>> {
        if self.next < self.view.count {
            let j = self.next;
            self.next += 1;
            Some(Segment {
                view: self.view,
                index: j,
            })
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.view.count - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for SegmentIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::SeriesBuilder;

    fn f(i: u32) -> FeatureId {
        FeatureId::from_raw(i)
    }

    /// A series where instant t contains the single feature {t}.
    fn ramp(n: u32) -> FeatureSeries {
        let mut b = SeriesBuilder::new();
        for t in 0..n {
            b.push_instant([f(t)]);
        }
        b.finish()
    }

    #[test]
    fn rejects_invalid_periods() {
        let s = ramp(10);
        assert!(s.segments(0).is_err());
        assert!(s.segments(11).is_err());
        assert!(s.segments(10).is_ok());
        assert!(s.segments(1).is_ok());
    }

    #[test]
    fn whole_segments_only() {
        let s = ramp(10);
        let v = s.segments(3).unwrap();
        assert_eq!(v.count(), 3); // instant 9 is in the ignored tail
        assert_eq!(v.period(), 3);
    }

    #[test]
    fn at_addresses_correct_instants() {
        let s = ramp(12);
        let v = s.segments(4).unwrap();
        assert_eq!(v.at(0, 0), &[f(0)]);
        assert_eq!(v.at(1, 2), &[f(6)]);
        assert_eq!(v.at(2, 3), &[f(11)]);
    }

    #[test]
    #[should_panic(expected = "segment index")]
    fn at_panics_out_of_range_segment() {
        let s = ramp(8);
        let v = s.segments(4).unwrap();
        v.at(2, 0);
    }

    #[test]
    #[should_panic(expected = "offset")]
    fn at_panics_out_of_range_offset() {
        let s = ramp(8);
        let v = s.segments(4).unwrap();
        v.at(0, 4);
    }

    #[test]
    fn segment_iteration_covers_all() {
        let s = ramp(9);
        let v = s.segments(3).unwrap();
        let mut seen = Vec::new();
        for seg in v.iter() {
            for o in 0..seg.period() {
                seen.extend(seg.at(o).iter().map(|x| x.raw()));
            }
        }
        assert_eq!(seen, (0..9).collect::<Vec<_>>());
        assert_eq!(v.iter().len(), 3);
    }

    #[test]
    fn segment_contains_and_absolute() {
        let s = ramp(6);
        let v = s.segments(3).unwrap();
        let seg = v.segment(1);
        assert_eq!(seg.index(), 1);
        assert!(seg.contains(0, f(3)));
        assert!(!seg.contains(0, f(0)));
        assert_eq!(seg.absolute(2), 5);
        assert_eq!(seg.instants().count(), 3);
    }
}
