//! Slot enlargement and resampling for perturbation-tolerant mining.
//!
//! The paper (§6) proposes two remedies for period-to-period perturbation:
//! "slightly enlarge the time slot to be examined" and "include the features
//! happening in the time slots surrounding the one being analyzed." Both
//! amount to a derived series where each instant absorbs its neighbourhood:
//!
//! * [`enlarge_slots`] — `D'_t = D_{t−w} ∪ … ∪ D_{t+w}` (same length);
//! * [`downsample`] — merge every `k` consecutive instants into one
//!   (length `⌊N/k⌋`), the "generalized time slot" reading where the slot
//!   itself becomes coarser.

use crate::error::{Error, Result};
use crate::series::{FeatureSeries, SeriesBuilder};

/// Derives a series of the same length where instant `t` holds the union of
/// the original feature sets at `t − half_width ..= t + half_width`
/// (clamped at the boundaries).
///
/// With `half_width == 0` this is an exact copy. A pattern that is "true at
/// offset i, give or take one slot" in the original becomes exactly true in
/// the enlarged series with `half_width == 1`.
pub fn enlarge_slots(series: &FeatureSeries, half_width: usize) -> FeatureSeries {
    let n = series.len();
    let mut builder = SeriesBuilder::with_capacity(
        n,
        series.total_features() * (2 * half_width + 1).min(n.max(1)),
    );
    for t in 0..n {
        let lo = t.saturating_sub(half_width);
        let hi = (t + half_width).min(n - 1);
        let mut merged = Vec::new();
        for u in lo..=hi {
            merged.extend_from_slice(series.instant(u));
        }
        builder.push_instant(merged);
    }
    builder.finish()
}

/// Merges every `factor` consecutive instants into one coarse instant
/// holding their union; the trailing partial group is dropped, mirroring the
/// whole-segment convention of the mining layer.
///
/// Fails when `factor == 0`.
pub fn downsample(series: &FeatureSeries, factor: usize) -> Result<FeatureSeries> {
    if factor == 0 {
        return Err(Error::InvalidPeriod {
            period: 0,
            series_len: series.len(),
        });
    }
    let groups = series.len() / factor;
    let mut builder = SeriesBuilder::with_capacity(groups, series.total_features());
    for g in 0..groups {
        let mut merged = Vec::new();
        for t in g * factor..(g + 1) * factor {
            merged.extend_from_slice(series.instant(t));
        }
        builder.push_instant(merged);
    }
    Ok(builder.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::FeatureId;
    use crate::series::SeriesBuilder;

    fn f(i: u32) -> FeatureId {
        FeatureId::from_raw(i)
    }

    fn ramp(n: u32) -> FeatureSeries {
        let mut b = SeriesBuilder::new();
        for t in 0..n {
            b.push_instant([f(t)]);
        }
        b.finish()
    }

    #[test]
    fn zero_width_is_identity() {
        let s = ramp(5);
        assert_eq!(enlarge_slots(&s, 0), s);
    }

    #[test]
    fn enlarge_unions_neighbours() {
        let s = ramp(5);
        let e = enlarge_slots(&s, 1);
        assert_eq!(e.len(), 5);
        assert_eq!(e.instant(0), &[f(0), f(1)]); // clamped at start
        assert_eq!(e.instant(2), &[f(1), f(2), f(3)]);
        assert_eq!(e.instant(4), &[f(3), f(4)]); // clamped at end
    }

    #[test]
    fn enlarge_recovers_jittered_events() {
        // Event fires at offsets 3, 4, 3 in consecutive periods of length 5:
        // off-by-one jitter that exact matching would miss at offset 3.
        let mut b = SeriesBuilder::new();
        for j in 0..3u32 {
            for o in 0..5u32 {
                let fire = match j {
                    1 => o == 4,
                    _ => o == 3,
                };
                if fire {
                    b.push_instant([f(9)]);
                } else {
                    b.push_instant([]);
                }
            }
        }
        let s = b.finish();
        let e = enlarge_slots(&s, 1);
        // After enlargement, offset 3 of every period contains the event.
        for j in 0..3 {
            assert!(e.instant(j * 5 + 3).contains(&f(9)), "period {j}");
        }
    }

    #[test]
    fn enlarge_empty_series() {
        let s = FeatureSeries::empty();
        assert_eq!(enlarge_slots(&s, 3).len(), 0);
    }

    #[test]
    fn downsample_merges_groups() {
        let s = ramp(7);
        let d = downsample(&s, 3).unwrap();
        assert_eq!(d.len(), 2); // instant 6 dropped
        assert_eq!(d.instant(0), &[f(0), f(1), f(2)]);
        assert_eq!(d.instant(1), &[f(3), f(4), f(5)]);
    }

    #[test]
    fn downsample_factor_one_is_identity() {
        let s = ramp(4);
        assert_eq!(downsample(&s, 1).unwrap(), s);
    }

    #[test]
    fn downsample_rejects_zero() {
        assert!(downsample(&ramp(4), 0).is_err());
    }
}
