//! The scan-source abstraction: anything the miners can scan repeatedly.
//!
//! The paper's cost model is *scans over the time series database*; §5
//! argues the max-subpattern hit-set method wins precisely when the series
//! is disk-resident and every scan is real I/O. [`SeriesSource`] makes the
//! miners independent of where the data lives:
//!
//! * [`FeatureSeries`] implements it in memory;
//! * [`crate::storage::stream::FileSource`] streams a `.ppmstream` file
//!   from disk on every scan without materializing it.
//!
//! The trait also counts scans, so experiments can report physical scan
//! totals straight from the source.

use crate::catalog::FeatureId;
use crate::error::Result;
use crate::series::FeatureSeries;

/// A data source the mining algorithms can scan start-to-finish, multiple
/// times. Each scan visits every instant in time order.
pub trait SeriesSource {
    /// Number of instants per scan.
    fn instant_count(&self) -> usize;

    /// Performs one full scan, calling `visit(t, features)` for every
    /// instant in order. `features` is sorted and deduplicated.
    fn scan(&mut self, visit: &mut dyn FnMut(usize, &[FeatureId])) -> Result<()>;

    /// How many scans have been performed so far.
    fn scans_performed(&self) -> usize;
}

impl<S: SeriesSource + ?Sized> SeriesSource for &mut S {
    fn instant_count(&self) -> usize {
        (**self).instant_count()
    }

    fn scan(&mut self, visit: &mut dyn FnMut(usize, &[FeatureId])) -> Result<()> {
        (**self).scan(visit)
    }

    fn scans_performed(&self) -> usize {
        (**self).scans_performed()
    }
}

/// In-memory source: scanning iterates the series directly.
#[derive(Debug)]
pub struct MemorySource<'a> {
    series: &'a FeatureSeries,
    scans: usize,
}

impl<'a> MemorySource<'a> {
    /// Wraps a series.
    pub fn new(series: &'a FeatureSeries) -> Self {
        MemorySource { series, scans: 0 }
    }
}

impl SeriesSource for MemorySource<'_> {
    fn instant_count(&self) -> usize {
        self.series.len()
    }

    fn scan(&mut self, visit: &mut dyn FnMut(usize, &[FeatureId])) -> Result<()> {
        self.scans += 1;
        for (t, instant) in self.series.iter().enumerate() {
            visit(t, instant);
        }
        Ok(())
    }

    fn scans_performed(&self) -> usize {
        self.scans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::SeriesBuilder;

    fn fid(i: u32) -> FeatureId {
        FeatureId::from_raw(i)
    }

    #[test]
    fn memory_source_scans_in_order() {
        let mut b = SeriesBuilder::new();
        b.push_instant([fid(3)]);
        b.push_instant([]);
        b.push_instant([fid(1), fid(2)]);
        let s = b.finish();
        let mut src = MemorySource::new(&s);
        assert_eq!(src.instant_count(), 3);
        assert_eq!(src.scans_performed(), 0);

        let mut seen = Vec::new();
        src.scan(&mut |t, feats| seen.push((t, feats.to_vec())))
            .unwrap();
        assert_eq!(
            seen,
            vec![(0, vec![fid(3)]), (1, vec![]), (2, vec![fid(1), fid(2)]),]
        );
        assert_eq!(src.scans_performed(), 1);
        src.scan(&mut |_, _| {}).unwrap();
        assert_eq!(src.scans_performed(), 2);
    }
}
