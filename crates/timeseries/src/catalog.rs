//! Feature identifiers and the string-interning catalog.

use std::collections::HashMap;
use std::fmt;

/// A dense identifier for a feature (a categorical "letter" of the series
/// alphabet, in the paper's terminology).
///
/// Ids are handed out contiguously from 0 by [`FeatureCatalog::intern`], so
/// they can index arrays directly via [`FeatureId::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FeatureId(u32);

impl FeatureId {
    /// Builds a feature id from a raw `u32`.
    ///
    /// Normally ids come from a [`FeatureCatalog`]; this constructor exists
    /// for storage deserialization and synthetic generators that manage
    /// their own dense id spaces.
    pub fn from_raw(raw: u32) -> Self {
        FeatureId(raw)
    }

    /// The raw `u32` backing this id.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The id as a `usize` array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FeatureId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Interns feature names to dense [`FeatureId`]s and resolves them back.
///
/// The mining layer never touches strings: workloads intern their feature
/// vocabulary once and the algorithms operate on ids. Ids are assigned in
/// first-intern order starting at 0.
///
/// ```
/// use ppm_timeseries::FeatureCatalog;
///
/// let mut cat = FeatureCatalog::new();
/// let a = cat.intern("read-newspaper");
/// let b = cat.intern("drink-coffee");
/// assert_ne!(a, b);
/// assert_eq!(cat.intern("read-newspaper"), a); // idempotent
/// assert_eq!(cat.name(a), Some("read-newspaper"));
/// assert_eq!(cat.len(), 2);
/// ```
#[derive(Debug, Default, Clone)]
pub struct FeatureCatalog {
    names: Vec<String>,
    by_name: HashMap<String, FeatureId>,
}

impl FeatureCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a catalog with `n` synthetic features named `f0..f{n-1}`.
    ///
    /// Convenient for generators and benchmarks that only need an id space.
    pub fn with_synthetic_features(n: usize) -> Self {
        let mut cat = Self::new();
        for i in 0..n {
            cat.intern(&format!("f{i}"));
        }
        cat
    }

    /// Interns `name`, returning its id. Repeated calls with the same name
    /// return the same id.
    pub fn intern(&mut self, name: &str) -> FeatureId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = FeatureId(u32::try_from(self.names.len()).expect("catalog overflow"));
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up an already-interned name without inserting.
    pub fn get(&self, name: &str) -> Option<FeatureId> {
        self.by_name.get(name).copied()
    }

    /// Resolves an id back to its name, or `None` if the id was never
    /// interned here.
    pub fn name(&self, id: FeatureId) -> Option<&str> {
        self.names.get(id.index()).map(String::as_str)
    }

    /// Resolves an id, falling back to the `f{raw}` placeholder for ids from
    /// foreign catalogs. Useful in diagnostics that must never fail.
    pub fn name_or_placeholder(&self, id: FeatureId) -> String {
        match self.name(id) {
            Some(n) => n.to_owned(),
            None => format!("f{}", id.raw()),
        }
    }

    /// Number of distinct features interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (FeatureId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (FeatureId(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_dense_ids() {
        let mut cat = FeatureCatalog::new();
        let ids: Vec<_> = (0..100).map(|i| cat.intern(&format!("feat-{i}"))).collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.index(), i);
        }
        assert_eq!(cat.len(), 100);
    }

    #[test]
    fn intern_is_idempotent() {
        let mut cat = FeatureCatalog::new();
        let a = cat.intern("x");
        let b = cat.intern("y");
        assert_eq!(cat.intern("x"), a);
        assert_eq!(cat.intern("y"), b);
        assert_eq!(cat.len(), 2);
    }

    #[test]
    fn get_does_not_insert() {
        let mut cat = FeatureCatalog::new();
        assert_eq!(cat.get("missing"), None);
        let id = cat.intern("present");
        assert_eq!(cat.get("present"), Some(id));
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn name_round_trips() {
        let mut cat = FeatureCatalog::new();
        let id = cat.intern("power-high");
        assert_eq!(cat.name(id), Some("power-high"));
        assert_eq!(cat.name(FeatureId::from_raw(99)), None);
        assert_eq!(cat.name_or_placeholder(FeatureId::from_raw(99)), "f99");
    }

    #[test]
    fn synthetic_features_are_named_fi() {
        let cat = FeatureCatalog::with_synthetic_features(3);
        assert_eq!(cat.len(), 3);
        assert_eq!(cat.get("f0"), Some(FeatureId::from_raw(0)));
        assert_eq!(cat.get("f2"), Some(FeatureId::from_raw(2)));
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut cat = FeatureCatalog::new();
        cat.intern("a");
        cat.intern("b");
        let collected: Vec<_> = cat
            .iter()
            .map(|(id, n)| (id.index(), n.to_owned()))
            .collect();
        assert_eq!(collected, vec![(0, "a".to_owned()), (1, "b".to_owned())]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(FeatureId::from_raw(7).to_string(), "f7");
    }
}
