//! Feature taxonomies for multi-level partial periodicity mining.
//!
//! The paper's §6 sketches multi-level mining: "first mining the periodicity
//! at a high level, and then progressively drilling-down with the discovered
//! periodic patterns." A [`Taxonomy`] is a forest over features — each
//! feature has at most one parent (its generalization) — plus helpers to
//! *roll a series up* one level so the coarse level can be mined first.

use std::collections::HashMap;

use crate::catalog::{FeatureCatalog, FeatureId};
use crate::error::{Error, Result};
use crate::series::{FeatureSeries, SeriesBuilder};

/// A forest of `child → parent` generalization edges over features.
#[derive(Debug, Default, Clone)]
pub struct Taxonomy {
    parent: HashMap<FeatureId, FeatureId>,
}

impl Taxonomy {
    /// An empty taxonomy (every feature is its own root).
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares `parent` as the generalization of `child`.
    ///
    /// Fails if `child == parent`, if `child` already has a parent, or if
    /// the edge would close a cycle.
    pub fn add_edge(&mut self, child: FeatureId, parent: FeatureId) -> Result<()> {
        if child == parent {
            return Err(Error::InvalidTaxonomy {
                detail: format!("self-edge on {child}"),
            });
        }
        if self.parent.contains_key(&child) {
            return Err(Error::InvalidTaxonomy {
                detail: format!("{child} already has a parent"),
            });
        }
        // Walk up from `parent`; reaching `child` would close a cycle.
        let mut cur = parent;
        loop {
            if cur == child {
                return Err(Error::InvalidTaxonomy {
                    detail: format!("edge {child} -> {parent} closes a cycle"),
                });
            }
            match self.parent.get(&cur) {
                Some(&up) => cur = up,
                None => break,
            }
        }
        self.parent.insert(child, parent);
        Ok(())
    }

    /// The immediate parent of `f`, if any.
    pub fn parent(&self, f: FeatureId) -> Option<FeatureId> {
        self.parent.get(&f).copied()
    }

    /// The root ancestor of `f` (possibly `f` itself).
    pub fn root(&self, f: FeatureId) -> FeatureId {
        let mut cur = f;
        while let Some(&up) = self.parent.get(&cur) {
            cur = up;
        }
        cur
    }

    /// All ancestors of `f`, nearest first (excludes `f`).
    pub fn ancestors(&self, f: FeatureId) -> Vec<FeatureId> {
        let mut out = Vec::new();
        let mut cur = f;
        while let Some(&up) = self.parent.get(&cur) {
            out.push(up);
            cur = up;
        }
        out
    }

    /// Depth of `f` below its root (root features have depth 0).
    pub fn depth(&self, f: FeatureId) -> usize {
        self.ancestors(f).len()
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the taxonomy has no edges.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Rolls a series up one level: every feature with a parent is replaced
    /// by that parent; root features pass through unchanged. Duplicates
    /// introduced by merging siblings collapse (instants are sets).
    pub fn roll_up(&self, series: &FeatureSeries) -> FeatureSeries {
        let mut builder = SeriesBuilder::with_capacity(series.len(), series.total_features());
        for instant in series.iter() {
            builder.push_instant(instant.iter().map(|&f| self.parent(f).unwrap_or(f)));
        }
        builder.finish()
    }

    /// Rolls a series all the way up to root features.
    pub fn roll_up_to_roots(&self, series: &FeatureSeries) -> FeatureSeries {
        let mut builder = SeriesBuilder::with_capacity(series.len(), series.total_features());
        for instant in series.iter() {
            builder.push_instant(instant.iter().map(|&f| self.root(f)));
        }
        builder.finish()
    }

    /// Builds a taxonomy from `(child, parent)` name pairs, interning names.
    pub fn from_name_pairs(pairs: &[(&str, &str)], catalog: &mut FeatureCatalog) -> Result<Self> {
        let mut tax = Taxonomy::new();
        for (child, parent) in pairs {
            let c = catalog.intern(child);
            let p = catalog.intern(parent);
            tax.add_edge(c, p)?;
        }
        Ok(tax)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> FeatureId {
        FeatureId::from_raw(i)
    }

    #[test]
    fn add_edge_and_lookup() {
        let mut t = Taxonomy::new();
        t.add_edge(f(1), f(0)).unwrap();
        t.add_edge(f(2), f(0)).unwrap();
        assert_eq!(t.parent(f(1)), Some(f(0)));
        assert_eq!(t.parent(f(0)), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn rejects_self_edges_and_reparenting() {
        let mut t = Taxonomy::new();
        assert!(t.add_edge(f(1), f(1)).is_err());
        t.add_edge(f(1), f(0)).unwrap();
        assert!(t.add_edge(f(1), f(2)).is_err());
    }

    #[test]
    fn rejects_cycles() {
        let mut t = Taxonomy::new();
        t.add_edge(f(1), f(0)).unwrap();
        t.add_edge(f(2), f(1)).unwrap();
        // 0 -> 2 would make 0 -> 2 -> 1 -> 0.
        assert!(t.add_edge(f(0), f(2)).is_err());
    }

    #[test]
    fn root_and_ancestors() {
        let mut t = Taxonomy::new();
        t.add_edge(f(2), f(1)).unwrap();
        t.add_edge(f(1), f(0)).unwrap();
        assert_eq!(t.root(f(2)), f(0));
        assert_eq!(t.root(f(0)), f(0));
        assert_eq!(t.ancestors(f(2)), vec![f(1), f(0)]);
        assert_eq!(t.depth(f(2)), 2);
        assert_eq!(t.depth(f(0)), 0);
    }

    #[test]
    fn roll_up_replaces_and_merges() {
        use crate::series::SeriesBuilder;
        let mut t = Taxonomy::new();
        // Siblings 1 and 2 generalize to 0.
        t.add_edge(f(1), f(0)).unwrap();
        t.add_edge(f(2), f(0)).unwrap();
        let mut b = SeriesBuilder::new();
        b.push_instant([f(1), f(2), f(5)]);
        b.push_instant([f(2)]);
        let s = b.finish();
        let up = t.roll_up(&s);
        assert_eq!(up.instant(0), &[f(0), f(5)]); // siblings merged
        assert_eq!(up.instant(1), &[f(0)]);
    }

    #[test]
    fn roll_up_to_roots_flattens_chains() {
        use crate::series::SeriesBuilder;
        let mut t = Taxonomy::new();
        t.add_edge(f(3), f(2)).unwrap();
        t.add_edge(f(2), f(1)).unwrap();
        let mut b = SeriesBuilder::new();
        b.push_instant([f(3)]);
        let s = b.finish();
        assert_eq!(t.roll_up(&s).instant(0), &[f(2)]);
        assert_eq!(t.roll_up_to_roots(&s).instant(0), &[f(1)]);
    }

    #[test]
    fn from_name_pairs_interns() {
        let mut cat = FeatureCatalog::new();
        let t = Taxonomy::from_name_pairs(
            &[
                ("espresso", "coffee"),
                ("latte", "coffee"),
                ("coffee", "beverage"),
            ],
            &mut cat,
        )
        .unwrap();
        let espresso = cat.get("espresso").unwrap();
        let beverage = cat.get("beverage").unwrap();
        assert_eq!(t.root(espresso), beverage);
        assert_eq!(t.depth(espresso), 2);
    }
}
