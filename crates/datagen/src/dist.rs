//! Poisson and exponential samplers.
//!
//! The paper's synthetic generator (§5.1) sizes its potentially frequent
//! 1-patterns with a Poisson distribution and places patterns into the
//! series with exponentially distributed weights. These two samplers are
//! implemented here over the in-repo [`crate::rng`] traits — small enough
//! that pulling in a distributions crate is not justified.

use crate::rng::Rng;

/// Samples a Poisson-distributed count with the given mean (Knuth's
/// multiplication method — exact, O(λ) per draw, fine for the small means
/// used by the generator).
///
/// # Panics
/// Panics if `mean` is not finite and positive.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    assert!(
        mean.is_finite() && mean > 0.0,
        "Poisson mean must be positive, got {mean}"
    );
    let limit = (-mean).exp();
    let mut product: f64 = rng.random();
    let mut count = 0u64;
    while product > limit {
        count += 1;
        product *= rng.random::<f64>();
    }
    count
}

/// Samples an exponentially distributed value with the given rate `λ`
/// (mean `1/λ`), by inversion.
///
/// # Panics
/// Panics if `rate` is not finite and positive.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(
        rate.is_finite() && rate > 0.0,
        "exponential rate must be positive, got {rate}"
    );
    let u: f64 = rng.random();
    // 1 - u is in (0, 1]; ln of it is finite.
    -(1.0 - u).ln() / rate
}

/// Samples `n` exponential weights and normalizes them to probabilities in
/// `[lo, hi]` by affine rescaling (largest weight maps to `hi`, smallest to
/// `lo`). Used to assign per-pattern placement probabilities.
pub fn exponential_probabilities<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    lo: f64,
    hi: f64,
) -> Vec<f64> {
    assert!(
        lo <= hi && lo >= 0.0 && hi <= 1.0,
        "bad probability band [{lo}, {hi}]"
    );
    if n == 0 {
        return Vec::new();
    }
    let weights: Vec<f64> = (0..n).map(|_| exponential(rng, 1.0)).collect();
    let min = weights.iter().copied().fold(f64::INFINITY, f64::min);
    let max = weights.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if (max - min).abs() < f64::EPSILON {
        return vec![(lo + hi) / 2.0; n];
    }
    weights
        .iter()
        .map(|w| lo + (w - min) / (max - min) * (hi - lo))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64 as StdRng;

    #[test]
    fn poisson_mean_is_close() {
        let mut rng = StdRng::seed_from_u64(1);
        for mean in [0.5, 2.0, 6.0] {
            let n = 20_000;
            let sum: u64 = (0..n).map(|_| poisson(&mut rng, mean)).sum();
            let empirical = sum as f64 / n as f64;
            assert!(
                (empirical - mean).abs() < 0.1 * mean + 0.05,
                "mean {mean}: got {empirical}"
            );
        }
    }

    #[test]
    fn poisson_variance_is_close_to_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        let mean = 4.0;
        let n = 20_000;
        let samples: Vec<u64> = (0..n).map(|_| poisson(&mut rng, mean)).collect();
        let emp_mean = samples.iter().sum::<u64>() as f64 / n as f64;
        let var = samples
            .iter()
            .map(|&x| (x as f64 - emp_mean).powi(2))
            .sum::<f64>()
            / n as f64;
        assert!((var - mean).abs() < 0.3, "variance {var}");
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let mut rng = StdRng::seed_from_u64(3);
        for rate in [0.5, 1.0, 4.0] {
            let n = 20_000;
            let sum: f64 = (0..n).map(|_| exponential(&mut rng, rate)).sum();
            let empirical = sum / n as f64;
            let expect = 1.0 / rate;
            assert!(
                (empirical - expect).abs() < 0.05 * expect + 0.01,
                "rate {rate}: got {empirical}"
            );
        }
    }

    #[test]
    fn exponential_is_nonnegative_and_finite() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = exponential(&mut rng, 2.0);
            assert!(x.is_finite() && x >= 0.0);
        }
    }

    #[test]
    fn probabilities_stay_in_band() {
        let mut rng = StdRng::seed_from_u64(5);
        let ps = exponential_probabilities(&mut rng, 50, 0.2, 0.45);
        assert_eq!(ps.len(), 50);
        for &p in &ps {
            assert!((0.2..=0.45 + 1e-12).contains(&p), "{p}");
        }
        // The extremes are attained by the rescaling.
        let max = ps.iter().copied().fold(f64::MIN, f64::max);
        let min = ps.iter().copied().fold(f64::MAX, f64::min);
        assert!((max - 0.45).abs() < 1e-9);
        assert!((min - 0.2).abs() < 1e-9);
    }

    #[test]
    fn probabilities_edge_cases() {
        let mut rng = StdRng::seed_from_u64(6);
        assert!(exponential_probabilities(&mut rng, 0, 0.1, 0.2).is_empty());
        let one = exponential_probabilities(&mut rng, 1, 0.1, 0.3);
        assert_eq!(one, vec![0.2]); // single weight: midpoint
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn poisson_rejects_bad_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        poisson(&mut rng, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_bad_rate() {
        let mut rng = StdRng::seed_from_u64(8);
        exponential(&mut rng, -1.0);
    }
}
