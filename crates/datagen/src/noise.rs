//! Perturbation injection (paper §6): jitter, drops, spurious features.
//!
//! These transforms degrade a clean series the way real data does, so the
//! robustness machinery (`ppm_core::perturb`) has something honest to
//! recover from.

use crate::rng::{Rng, SplitMix64 as StdRng};

use ppm_timeseries::{FeatureId, FeatureSeries, SeriesBuilder};

/// Randomly shifts each feature occurrence by up to `max_shift` instants in
/// either direction, with probability `jitter_prob` per occurrence.
/// Occurrences shifted past the series boundary clamp to it.
pub fn jitter(
    series: &FeatureSeries,
    max_shift: usize,
    jitter_prob: f64,
    seed: u64,
) -> FeatureSeries {
    assert!(
        (0.0..=1.0).contains(&jitter_prob),
        "jitter_prob out of range"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let n = series.len();
    let mut slots: Vec<Vec<FeatureId>> = vec![Vec::new(); n];
    for (t, instant) in series.iter().enumerate() {
        for &f in instant {
            let target = if max_shift > 0 && rng.random::<f64>() < jitter_prob {
                let shift = rng.random_range(-(max_shift as i64)..=max_shift as i64);
                (t as i64 + shift).clamp(0, n as i64 - 1) as usize
            } else {
                t
            };
            slots[target].push(f);
        }
    }
    rebuild(&slots)
}

/// Drops each feature occurrence independently with probability
/// `drop_prob`.
pub fn drop_features(series: &FeatureSeries, drop_prob: f64, seed: u64) -> FeatureSeries {
    assert!((0.0..=1.0).contains(&drop_prob), "drop_prob out of range");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = SeriesBuilder::with_capacity(series.len(), series.total_features());
    for instant in series.iter() {
        builder.push_instant(
            instant
                .iter()
                .copied()
                .filter(|_| rng.random::<f64>() >= drop_prob),
        );
    }
    builder.finish()
}

/// Adds, at each instant, each feature from `pool` independently with
/// probability `add_prob` (spurious observations).
pub fn add_spurious(
    series: &FeatureSeries,
    pool: &[FeatureId],
    add_prob: f64,
    seed: u64,
) -> FeatureSeries {
    assert!((0.0..=1.0).contains(&add_prob), "add_prob out of range");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = SeriesBuilder::with_capacity(series.len(), series.total_features());
    for instant in series.iter() {
        let extra = pool
            .iter()
            .copied()
            .filter(|_| rng.random::<f64>() < add_prob);
        builder.push_instant(instant.iter().copied().chain(extra));
    }
    builder.finish()
}

fn rebuild(slots: &[Vec<FeatureId>]) -> FeatureSeries {
    let mut builder = SeriesBuilder::with_capacity(slots.len(), slots.iter().map(Vec::len).sum());
    for slot in slots {
        builder.push_instant(slot.iter().copied());
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fid(i: u32) -> FeatureId {
        FeatureId::from_raw(i)
    }

    fn pulse(n: usize, every: usize) -> FeatureSeries {
        let mut b = SeriesBuilder::new();
        for t in 0..n {
            if t % every == 0 {
                b.push_instant([fid(0)]);
            } else {
                b.push_instant([]);
            }
        }
        b.finish()
    }

    #[test]
    fn jitter_preserves_occurrence_count() {
        let s = pulse(100, 5);
        let j = jitter(&s, 2, 1.0, 9);
        // Clamping can merge occurrences into the same instant only if they
        // collide; feature sets dedup, so compare non-empty instants
        // leniently and total length strictly.
        assert_eq!(j.len(), s.len());
        let before = s.total_features();
        let after = j.total_features();
        assert!(
            after <= before && after >= before - 3,
            "{after} vs {before}"
        );
    }

    #[test]
    fn zero_probability_is_identity() {
        let s = pulse(50, 3);
        assert_eq!(jitter(&s, 3, 0.0, 1), s);
        assert_eq!(drop_features(&s, 0.0, 1), s);
        assert_eq!(add_spurious(&s, &[fid(7)], 0.0, 1), s);
    }

    #[test]
    fn drop_all_empties_the_series_features() {
        let s = pulse(30, 2);
        let d = drop_features(&s, 1.0, 2);
        assert_eq!(d.len(), 30);
        assert_eq!(d.total_features(), 0);
    }

    #[test]
    fn drop_rate_is_approximate() {
        let s = pulse(10_000, 1); // a feature at every instant
        let d = drop_features(&s, 0.3, 3);
        let kept = d.total_features() as f64 / s.total_features() as f64;
        assert!((kept - 0.7).abs() < 0.03, "kept {kept}");
    }

    #[test]
    fn spurious_features_come_from_pool() {
        let s = pulse(2_000, 4);
        let added = add_spurious(&s, &[fid(5), fid(6)], 0.5, 4);
        let mut saw5 = false;
        let mut saw6 = false;
        for inst in added.iter() {
            for &f in inst {
                assert!(f == fid(0) || f == fid(5) || f == fid(6));
                saw5 |= f == fid(5);
                saw6 |= f == fid(6);
            }
        }
        assert!(saw5 && saw6);
    }

    #[test]
    fn transforms_are_deterministic_per_seed() {
        let s = pulse(200, 3);
        assert_eq!(jitter(&s, 1, 0.5, 11), jitter(&s, 1, 0.5, 11));
        assert_ne!(jitter(&s, 1, 0.5, 11), jitter(&s, 1, 0.5, 12));
    }
}
