//! The randomized synthetic series generator of the paper's performance
//! study (§5.1, Table 1).
//!
//! The paper describes its test databases as follows: "From a set of
//! features, potentially frequent 1-patterns are composed. The size of the
//! potentially frequent 1-patterns is determined based on a Poisson
//! distribution. These patterns are generated and put into the time-series
//! according to an exponential distribution." The controlled parameters are
//! `LENGTH` (series length), `p` (the period), `MAX-PAT-LENGTH` (the
//! maximal L-length of frequent patterns), and `|F1|` (the number of
//! frequent 1-patterns).
//!
//! This module reproduces that recipe while keeping `MAX-PAT-LENGTH` and
//! `|F1|` *exact* knobs (the experiments sweep them, so they must be
//! controlled, not emergent):
//!
//! 1. A **backbone** pattern of exactly `MAX-PAT-LENGTH` distinct offsets
//!    is embedded jointly in exactly `round(pattern_confidence · m)` of the
//!    `m` segments (default 0.85, positions uniform) — it becomes the
//!    unique maximal frequent pattern at the recommended mining threshold.
//! 2. The remaining `|F1| − MAX-PAT-LENGTH` **extra letters** each appear
//!    in exactly `round(letter_confidence · m)` segments (default 0.65)
//!    but are *anti-correlated* with the backbone (they fill the segments
//!    the backbone skips first): individually frequent, while every
//!    conjunction involving them stays well below threshold
//!    (backbone∪extra ≈ 0.50, extra pairs ≈ 0.44 at the defaults). The
//!    counts are exact rather than Bernoulli draws so `MAX-PAT-LENGTH`
//!    and `|F1|` hold for every seed, even at small segment counts.
//! 3. **Poisson/exponential overlays**: `overlay_patterns` additional
//!    potentially frequent patterns are composed as random *proper* subsets
//!    of the backbone whose sizes are Poisson-distributed, and are placed
//!    into segments with exponentially distributed probabilities — extra
//!    correlated structure that thickens subpattern counts without
//!    disturbing the two controlled knobs.
//! 4. **Noise**: every instant receives a Poisson-distributed number of
//!    random features from the remaining vocabulary.
//!
//! Mining the output at [`SyntheticSpec::recommended_min_conf`] (0.6)
//! recovers exactly the planted `|F1|` and `MAX-PAT-LENGTH` — asserted by
//! this module's tests and the Table 1 experiment.

use crate::rng::{Rng, SplitMix64 as StdRng};

use ppm_timeseries::{FeatureCatalog, FeatureId, FeatureSeries, SeriesBuilder};

use crate::dist::{exponential_probabilities, poisson};

/// Parameters of the synthetic generator (the paper's Table 1 plus the
/// shape knobs the paper leaves implicit).
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticSpec {
    /// `LENGTH`: number of time instants.
    pub length: usize,
    /// The period `p` of the planted periodicity.
    pub period: usize,
    /// `MAX-PAT-LENGTH`: the maximal L-length of frequent patterns.
    pub max_pat_length: usize,
    /// `|F1|`: the number of frequent 1-patterns.
    pub f1_count: usize,
    /// Size of the feature vocabulary noise features are drawn from.
    pub feature_vocab: usize,
    /// Per-segment probability of the backbone (maximal) pattern.
    pub pattern_confidence: f64,
    /// Per-segment probability of each extra frequent letter.
    pub letter_confidence: f64,
    /// Number of Poisson/exponential overlay patterns.
    pub overlay_patterns: usize,
    /// Poisson mean for overlay pattern sizes.
    pub overlay_size_mean: f64,
    /// Poisson mean of noise features per instant.
    pub noise_mean: f64,
    /// RNG seed; equal specs generate identical series.
    pub seed: u64,
}

impl SyntheticSpec {
    /// A spec with the paper's Table 1 shape: caller sets `LENGTH`, `p`,
    /// `MAX-PAT-LENGTH` and `|F1|`; everything else takes the defaults
    /// described in the module docs.
    pub fn table1(length: usize, period: usize, max_pat_length: usize, f1_count: usize) -> Self {
        SyntheticSpec {
            length,
            period,
            max_pat_length,
            f1_count,
            feature_vocab: 100,
            pattern_confidence: 0.85,
            letter_confidence: 0.65,
            overlay_patterns: 4,
            overlay_size_mean: 2.0,
            noise_mean: 1.0,
            seed: 0x9e3779b97f4a7c15,
        }
    }

    /// The paper's Figure 2 configuration: `p = 50`, `|F1| = 12`, with the
    /// given series length and `MAX-PAT-LENGTH`.
    pub fn figure2(length: usize, max_pat_length: usize) -> Self {
        Self::table1(length, 50, max_pat_length, 12)
    }

    /// The mining threshold at which the planted structure is recovered
    /// exactly: above every unintended conjunction, below every planted
    /// letter and the backbone pattern.
    pub fn recommended_min_conf(&self) -> f64 {
        0.6
    }

    /// Validates parameter consistency; returns a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.period == 0 {
            return Err("period must be >= 1".into());
        }
        if self.length < self.period * 2 {
            return Err(format!(
                "length {} too short for period {} (need >= 2 segments)",
                self.length, self.period
            ));
        }
        if self.max_pat_length == 0 || self.max_pat_length > self.period {
            return Err(format!(
                "max_pat_length {} must be in 1..={}",
                self.max_pat_length, self.period
            ));
        }
        if self.f1_count < self.max_pat_length {
            return Err(format!(
                "f1_count {} must be >= max_pat_length {}",
                self.f1_count, self.max_pat_length
            ));
        }
        if self.f1_count > self.period {
            // Extra letters occupy distinct offsets so their marginals stay
            // independent of the backbone.
            return Err(format!(
                "f1_count {} must be <= period {}",
                self.f1_count, self.period
            ));
        }
        if !(self.pattern_confidence > 0.0
            && self.pattern_confidence <= 1.0
            && self.letter_confidence > 0.0
            && self.letter_confidence <= 1.0)
        {
            return Err("confidences must be in (0, 1]".into());
        }
        Ok(())
    }

    /// Generates the series. Deterministic in the spec (including seed).
    ///
    /// # Panics
    /// Panics if the spec does not [`validate`](Self::validate).
    pub fn generate(&self) -> GeneratedSeries {
        if let Err(e) = self.validate() {
            panic!("invalid synthetic spec: {e}");
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut catalog = FeatureCatalog::new();

        // Planted letters occupy distinct offsets: backbone first, then the
        // extras, spread over a shuffled offset ordering.
        let mut offsets: Vec<usize> = (0..self.period).collect();
        shuffle(&mut rng, &mut offsets);
        let backbone: Vec<(usize, FeatureId)> = (0..self.max_pat_length)
            .map(|i| (offsets[i], catalog.intern(&format!("pat{i}"))))
            .collect();
        let extras: Vec<(usize, FeatureId)> = (self.max_pat_length..self.f1_count)
            .map(|i| (offsets[i], catalog.intern(&format!("ex{i}"))))
            .collect();
        let noise_pool: Vec<FeatureId> = (0..self.feature_vocab)
            .map(|i| catalog.intern(&format!("n{i}")))
            .collect();

        // Overlay patterns: Poisson-sized subsets of the backbone, placed
        // with exponentially distributed probabilities (paper §5.1). They
        // may only *raise* counts of already-frequent subpatterns, so the
        // controlled knobs stay exact.
        let overlay_probs = exponential_probabilities(&mut rng, self.overlay_patterns, 0.05, 0.30);
        // Proper subsets only: a full-backbone overlay would lift the joint
        // backbone confidence above `pattern_confidence` and erode the
        // margin that keeps backbone∪extra conjunctions infrequent.
        let overlay_cap = self.max_pat_length.saturating_sub(1);
        let overlays: Vec<Vec<(usize, FeatureId)>> = if overlay_cap == 0 {
            Vec::new()
        } else {
            overlay_probs
                .iter()
                .map(|_| {
                    let size =
                        (poisson(&mut rng, self.overlay_size_mean) as usize).clamp(1, overlay_cap);
                    let mut idx: Vec<usize> = (0..self.max_pat_length).collect();
                    shuffle(&mut rng, &mut idx);
                    idx.truncate(size);
                    idx.into_iter().map(|i| backbone[i]).collect()
                })
                .collect()
        };

        let segments = self.length / self.period;

        // Backbone placement: *exactly* round(q * m) segments, positions
        // uniform. Exact counts (rather than independent Bernoulli draws)
        // make the controlled knobs hold for every seed — a per-segment
        // coin flip would let a planted letter drift below the mining
        // threshold by sampling noise when the segment count is small.
        let backbone_fires = exact_firing(&mut rng, segments, self.pattern_confidence);

        // Extra letters: exactly round(c * m) segments each, maximally
        // anti-correlated with the backbone (absent segments are filled
        // first, the remainder spills into uniformly chosen present
        // segments). Individually frequent, while every conjunction
        // involving them stays as small as the marginals allow.
        let absent_idx: Vec<usize> = (0..segments).filter(|&j| !backbone_fires[j]).collect();
        let present_idx: Vec<usize> = (0..segments).filter(|&j| backbone_fires[j]).collect();
        let extra_count =
            ((self.letter_confidence * segments as f64).round() as usize).min(segments);
        let extra_fires: Vec<Vec<bool>> = extras
            .iter()
            .map(|_| {
                let mut fires = vec![false; segments];
                if extra_count <= absent_idx.len() {
                    let mut pool = absent_idx.clone();
                    shuffle(&mut rng, &mut pool);
                    for &j in &pool[..extra_count] {
                        fires[j] = true;
                    }
                } else {
                    for &j in &absent_idx {
                        fires[j] = true;
                    }
                    let mut pool = present_idx.clone();
                    shuffle(&mut rng, &mut pool);
                    for &j in &pool[..extra_count - absent_idx.len()] {
                        fires[j] = true;
                    }
                }
                fires
            })
            .collect();
        let mut per_instant: Vec<Vec<FeatureId>> = vec![Vec::new(); self.period];
        let mut builder = SeriesBuilder::with_capacity(
            self.length,
            (self.length as f64 * (1.0 + self.noise_mean)) as usize,
        );
        for j in 0..segments {
            for slot in per_instant.iter_mut() {
                slot.clear();
            }
            if backbone_fires[j] {
                for &(o, f) in &backbone {
                    per_instant[o].push(f);
                }
            }
            for (&(o, f), fires) in extras.iter().zip(&extra_fires) {
                if fires[j] {
                    per_instant[o].push(f);
                }
            }
            for (overlay, &p) in overlays.iter().zip(&overlay_probs) {
                if rng.random::<f64>() < p {
                    for &(o, f) in overlay {
                        per_instant[o].push(f);
                    }
                }
            }
            for slot in per_instant.iter_mut() {
                let k = poisson(&mut rng, self.noise_mean.max(f64::MIN_POSITIVE)) as usize;
                for _ in 0..k {
                    slot.push(noise_pool[rng.random_range(0..noise_pool.len())]);
                }
            }
            for slot in &per_instant {
                builder.push_instant(slot.iter().copied());
            }
        }
        // Trailing partial segment: pure noise (the miners ignore it).
        for _ in segments * self.period..self.length {
            let k = poisson(&mut rng, self.noise_mean.max(f64::MIN_POSITIVE)) as usize;
            builder.push_instant((0..k).map(|_| noise_pool[rng.random_range(0..noise_pool.len())]));
        }

        GeneratedSeries {
            series: builder.finish(),
            catalog,
            backbone,
            extras,
            spec: self.clone(),
        }
    }
}

/// Fisher–Yates shuffle over the in-repo generator.
fn shuffle<R: Rng + ?Sized, T>(rng: &mut R, items: &mut [T]) {
    for i in (1..items.len()).rev() {
        let j = rng.random_range(0..=i);
        items.swap(i, j);
    }
}

/// A firing schedule over `m` segments with *exactly* `round(prob * m)`
/// hits, positions uniform without replacement.
fn exact_firing<R: Rng + ?Sized>(rng: &mut R, m: usize, prob: f64) -> Vec<bool> {
    let hits = ((prob * m as f64).round() as usize).min(m);
    let mut idx: Vec<usize> = (0..m).collect();
    shuffle(rng, &mut idx);
    let mut fires = vec![false; m];
    for &j in &idx[..hits] {
        fires[j] = true;
    }
    fires
}

/// A generated series plus the ground truth that was planted into it.
#[derive(Debug, Clone)]
pub struct GeneratedSeries {
    /// The series itself.
    pub series: FeatureSeries,
    /// Names for all features (planted and noise).
    pub catalog: FeatureCatalog,
    /// The backbone letters `(offset, feature)` — jointly the maximal
    /// frequent pattern.
    pub backbone: Vec<(usize, FeatureId)>,
    /// The extra frequent letters (individually frequent only).
    pub extras: Vec<(usize, FeatureId)>,
    /// The spec that produced this series.
    pub spec: SyntheticSpec,
}

impl GeneratedSeries {
    /// All planted letters: backbone ∪ extras (the expected `F1`).
    pub fn planted_letters(&self) -> Vec<(usize, FeatureId)> {
        let mut all = self.backbone.clone();
        all.extend_from_slice(&self.extras);
        all.sort_unstable();
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = SyntheticSpec::table1(2_000, 20, 4, 8);
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.series, b.series);
        let mut spec2 = spec.clone();
        spec2.seed += 1;
        assert_ne!(spec2.generate().series, a.series);
    }

    #[test]
    fn length_and_structure() {
        let spec = SyntheticSpec::table1(1_037, 25, 5, 10);
        let g = spec.generate();
        assert_eq!(g.series.len(), 1_037);
        assert_eq!(g.backbone.len(), 5);
        assert_eq!(g.extras.len(), 5);
        assert_eq!(g.planted_letters().len(), 10);
        // Planted letters occupy distinct offsets.
        let mut offsets: Vec<usize> = g.planted_letters().iter().map(|&(o, _)| o).collect();
        offsets.dedup();
        assert_eq!(offsets.len(), 10);
    }

    #[test]
    fn validation_catches_bad_specs() {
        assert!(SyntheticSpec::table1(10, 20, 4, 8).validate().is_err()); // too short
        assert!(SyntheticSpec::table1(1000, 20, 0, 8).validate().is_err());
        assert!(SyntheticSpec::table1(1000, 20, 21, 21).validate().is_err());
        assert!(SyntheticSpec::table1(1000, 20, 8, 4).validate().is_err()); // f1 < maxpat
        assert!(SyntheticSpec::table1(1000, 20, 4, 25).validate().is_err()); // f1 > period
        assert!(SyntheticSpec::table1(1000, 20, 4, 8).validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid synthetic spec")]
    fn generate_panics_on_invalid() {
        SyntheticSpec::table1(10, 20, 4, 8).generate();
    }

    #[test]
    fn backbone_appears_at_roughly_pattern_confidence() {
        let spec = SyntheticSpec::table1(50_000, 50, 6, 12);
        let g = spec.generate();
        let m = g.series.len() / 50;
        let mut joint = 0usize;
        for j in 0..m {
            if g.backbone
                .iter()
                .all(|&(o, f)| g.series.instant(j * 50 + o).binary_search(&f).is_ok())
            {
                joint += 1;
            }
        }
        let conf = joint as f64 / m as f64;
        assert!(
            (conf - spec.pattern_confidence).abs() < 0.04,
            "backbone confidence {conf}"
        );
    }

    #[test]
    fn extras_are_individually_frequent_but_not_jointly() {
        let spec = SyntheticSpec::table1(60_000, 30, 4, 10);
        let g = spec.generate();
        let m = g.series.len() / 30;
        for &(o, f) in &g.extras {
            let count = (0..m)
                .filter(|j| g.series.instant(j * 30 + o).binary_search(&f).is_ok())
                .count();
            let conf = count as f64 / m as f64;
            assert!(
                (conf - spec.letter_confidence).abs() < 0.05,
                "extra letter conf {conf}"
            );
        }
        // Pairs of extras: near the product, safely below 0.6.
        let (o1, f1) = g.extras[0];
        let (o2, f2) = g.extras[1];
        let both = (0..m)
            .filter(|j| {
                g.series.instant(j * 30 + o1).binary_search(&f1).is_ok()
                    && g.series.instant(j * 30 + o2).binary_search(&f2).is_ok()
            })
            .count();
        let conf = both as f64 / m as f64;
        assert!(conf < 0.55, "extra pair conf {conf}");
    }

    #[test]
    fn zero_noise_is_supported() {
        let mut spec = SyntheticSpec::table1(500, 10, 3, 5);
        spec.noise_mean = 1e-12;
        spec.overlay_patterns = 0;
        let g = spec.generate();
        // With (effectively) no noise, every feature is a planted one.
        let planted: std::collections::HashSet<FeatureId> =
            g.planted_letters().iter().map(|&(_, f)| f).collect();
        for instant in g.series.iter() {
            for f in instant {
                assert!(planted.contains(f));
            }
        }
    }
}
