//! Workload generators for partial periodic pattern mining.
//!
//! * [`synthetic`] — the randomized generator of the paper's performance
//!   study (§5.1 / Table 1): potentially frequent 1-patterns composed from
//!   a feature vocabulary, sizes driven by a Poisson distribution, placed
//!   into the series with exponentially distributed weights. Parameters are
//!   the paper's: `LENGTH`, the period `p`, `MAX-PAT-LENGTH`, and `|F1|`.
//! * [`workloads`] — small scripted domain scenarios used by the examples:
//!   Jim's daily routine (the paper's §1 motivating example), household
//!   power consumption (numeric, to be discretized), and stock movements
//!   (the inter-transaction-rule motivation the paper cites).
//! * [`noise`] — perturbation injection (jitter, drops, spurious features)
//!   for exercising the §6 robustness machinery.
//! * [`dist`] — the Poisson and exponential samplers the generator uses,
//!   implemented directly over the in-repo [`rng`] module.
//! * [`rng`] — a dependency-free seeded SplitMix64 generator, so the whole
//!   crate builds with no registry access.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod dist;
pub mod noise;
pub mod rng;
pub mod synthetic;
pub mod workloads;

pub use synthetic::{GeneratedSeries, SyntheticSpec};
