//! Scripted domain workloads for the examples and extension experiments.
//!
//! These are deliberately human-readable scenarios (unlike
//! [`crate::synthetic`], which is a parameter-sweep instrument):
//!
//! * [`activity`] — Jim's daily routine, the paper's §1 motivating example
//!   ("Jim reads the Vancouver Sun from 7:00 to 7:30 every weekday
//!   morning"), on an hourly grid with a weekly period.
//! * [`power`] — household power draw: a numeric series with daily shape
//!   and weekend effects, meant to be discretized (paper §6).
//! * [`stock`] — a random-walk price series with planted weekday drift,
//!   exposed as movement features (up/down/flat), after the
//!   inter-transaction stock-movement motivation the paper cites.

pub mod activity;
pub mod power;
pub mod retail;
pub mod stock;
