//! Stock-movement workload.
//!
//! The paper cites stock movement (Lu, Han & Feng's inter-transaction
//! rules) as a motivating numeric domain. This generator produces a daily
//! random-walk price with a planted intra-week drift pattern (e.g. a
//! "Friday fade"), plus a helper that converts prices into the categorical
//! up/down/flat movement features mining operates on.

use crate::rng::{Rng, SplitMix64 as StdRng};

use ppm_timeseries::{FeatureCatalog, FeatureSeries, SeriesBuilder};

/// Trading days per week (the natural mining period).
pub const TRADING_WEEK: usize = 5;

/// Generates `days` daily closing prices: geometric random walk with a
/// per-weekday drift (`weekday_drift[d]` for `d = day % 5`), starting at
/// `start_price`.
pub fn prices(days: usize, start_price: f64, weekday_drift: [f64; 5], seed: u64) -> Vec<f64> {
    assert!(start_price > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(days);
    let mut price = start_price;
    for day in 0..days {
        let drift = weekday_drift[day % TRADING_WEEK];
        let shock = (rng.random::<f64>() - 0.5) * 0.01;
        price *= 1.0 + drift + shock;
        out.push(price);
    }
    out
}

/// A drift profile with a reliable Monday rise and Friday fade.
pub fn weekly_profile() -> [f64; 5] {
    [0.012, 0.0, 0.0, 0.0, -0.012]
}

/// Converts daily prices into movement features: one of `up`, `down`,
/// `flat` per day, thresholded at `flat_band` relative change. The first
/// day compares against itself and is always `flat`.
pub fn movements(prices: &[f64], flat_band: f64, catalog: &mut FeatureCatalog) -> FeatureSeries {
    let up = catalog.intern("up");
    let down = catalog.intern("down");
    let flat = catalog.intern("flat");
    let mut builder = SeriesBuilder::with_capacity(prices.len(), prices.len());
    let mut prev = prices.first().copied().unwrap_or(1.0);
    for &p in prices {
        let change = (p - prev) / prev;
        let feature = if change > flat_band {
            up
        } else if change < -flat_band {
            down
        } else {
            flat
        };
        builder.push_instant([feature]);
        prev = p;
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prices_are_positive() {
        let p = prices(500, 100.0, weekly_profile(), 1);
        assert_eq!(p.len(), 500);
        assert!(p.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn planted_drift_shows_up_in_movements() {
        let p = prices(1_000, 100.0, weekly_profile(), 2);
        let mut cat = FeatureCatalog::new();
        let s = movements(&p, 0.004, &mut cat);
        let up = cat.get("up").unwrap();
        let down = cat.get("down").unwrap();
        // Mondays (day % 5 == 0) are mostly up, Fridays mostly down.
        let m = s.len() / TRADING_WEEK;
        let monday_up =
            (0..m).filter(|j| s.contains(j * TRADING_WEEK, up)).count() as f64 / m as f64;
        let friday_down = (0..m)
            .filter(|j| s.contains(j * TRADING_WEEK + 4, down))
            .count() as f64
            / m as f64;
        assert!(monday_up > 0.8, "monday up rate {monday_up}");
        assert!(friday_down > 0.8, "friday down rate {friday_down}");
    }

    #[test]
    fn movements_partition_days() {
        let p = prices(300, 50.0, [0.0; 5], 3);
        let mut cat = FeatureCatalog::new();
        let s = movements(&p, 0.002, &mut cat);
        assert_eq!(s.len(), 300);
        assert!(s.iter().all(|inst| inst.len() == 1));
    }

    #[test]
    fn first_day_is_flat() {
        let p = vec![10.0, 20.0];
        let mut cat = FeatureCatalog::new();
        let s = movements(&p, 0.01, &mut cat);
        assert_eq!(s.instant(0), &[cat.get("flat").unwrap()]);
        assert_eq!(s.instant(1), &[cat.get("up").unwrap()]);
    }

    #[test]
    fn empty_prices_yield_empty_series() {
        let mut cat = FeatureCatalog::new();
        assert!(movements(&[], 0.01, &mut cat).is_empty());
    }
}
