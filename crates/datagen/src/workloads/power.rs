//! Household power-consumption workload (numeric).
//!
//! §6 of the paper names "power consumption fluctuation" as the archetypal
//! numeric series to discretize before mining. This generator produces a
//! plausible load curve: a daily double-hump (morning and evening peaks),
//! a weekend lift during the day, multiplicative noise, and occasional
//! spikes. Values are kilowatts.

use crate::rng::{Rng, SplitMix64 as StdRng};

/// Samples per day used by [`generate`].
pub const SAMPLES_PER_DAY: usize = 24;

/// Generates `days` days of hourly household power draw (kW).
pub fn generate(days: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(days * SAMPLES_PER_DAY);
    for day in 0..days {
        let weekend = day % 7 >= 5;
        for hour in 0..SAMPLES_PER_DAY {
            let h = hour as f64;
            // Morning peak around 7h, evening peak around 19h.
            let morning = gaussian_bump(h, 7.0, 2.0) * 1.8;
            let evening = gaussian_bump(h, 19.0, 2.5) * 2.6;
            let base = 0.4;
            let weekend_lift = if weekend && (9..=17).contains(&hour) {
                0.9
            } else {
                0.0
            };
            let clean = base + morning + evening + weekend_lift;
            let noise = 1.0 + (rng.random::<f64>() - 0.5) * 0.2;
            let spike = if rng.random::<f64>() < 0.01 { 2.0 } else { 0.0 };
            out.push(clean * noise + spike);
        }
    }
    out
}

fn gaussian_bump(x: f64, center: f64, width: f64) -> f64 {
    (-((x - center) / width).powi(2)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_is_days_times_samples() {
        assert_eq!(generate(10, 1).len(), 10 * SAMPLES_PER_DAY);
    }

    #[test]
    fn values_are_positive_and_bounded() {
        let v = generate(30, 2);
        assert!(v.iter().all(|&x| x > 0.0 && x < 10.0));
    }

    #[test]
    fn evening_peak_exceeds_night_valley() {
        let v = generate(60, 3);
        let mean_at = |hour: usize| {
            let xs: Vec<f64> = v.chunks(SAMPLES_PER_DAY).map(|day| day[hour]).collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        assert!(
            mean_at(19) > 2.0 * mean_at(3),
            "evening {} night {}",
            mean_at(19),
            mean_at(3)
        );
    }

    #[test]
    fn weekends_lift_midday() {
        let v = generate(70, 4);
        let midday: Vec<f64> = v.chunks(SAMPLES_PER_DAY).map(|d| d[13]).collect();
        let weekday_mean: f64 = midday
            .iter()
            .enumerate()
            .filter(|(d, _)| d % 7 < 5)
            .map(|(_, &x)| x)
            .sum::<f64>()
            / midday.iter().enumerate().filter(|(d, _)| d % 7 < 5).count() as f64;
        let weekend_mean: f64 = midday
            .iter()
            .enumerate()
            .filter(|(d, _)| d % 7 >= 5)
            .map(|(_, &x)| x)
            .sum::<f64>()
            / midday
                .iter()
                .enumerate()
                .filter(|(d, _)| d % 7 >= 5)
                .count() as f64;
        assert!(weekend_mean > weekday_mean + 0.5);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(generate(5, 9), generate(5, 9));
        assert_ne!(generate(5, 9), generate(5, 10));
    }
}
