//! Jim's daily routine — the paper's motivating example.
//!
//! The paper opens with: "Jim reads the Vancouver Sun newspaper from 7:00
//! to 7:30 every weekday morning but his activities at other times do not
//! have much regularity." This workload scripts exactly that: a weekly
//! series on an hourly grid (`period = 168` hours) with habits that hold on
//! some days with some reliability, drowned in irregular filler activity.

use crate::rng::{Rng, SplitMix64 as StdRng};

use ppm_timeseries::{FeatureCatalog, FeatureId, FeatureSeries, SeriesBuilder};

/// Hours per day on the grid.
pub const HOURS_PER_DAY: usize = 24;
/// Hours per week — the natural mining period for weekday habits.
pub const WEEK: usize = 7 * HOURS_PER_DAY;

/// One scripted habit: an activity at a fixed hour on a set of weekdays.
#[derive(Debug, Clone)]
pub struct Habit {
    /// Activity name (interned as a feature).
    pub activity: String,
    /// Hour of day, `0..24`.
    pub hour: usize,
    /// Days of week the habit applies to (0 = Monday … 6 = Sunday).
    pub days: Vec<usize>,
    /// Probability the habit is actually observed on an applicable day.
    pub reliability: f64,
}

impl Habit {
    /// Convenience constructor.
    pub fn new(activity: &str, hour: usize, days: &[usize], reliability: f64) -> Self {
        assert!(hour < HOURS_PER_DAY, "hour {hour} out of range");
        assert!(days.iter().all(|&d| d < 7), "day out of range");
        assert!((0.0..=1.0).contains(&reliability));
        Habit {
            activity: activity.to_owned(),
            hour,
            days: days.to_vec(),
            reliability,
        }
    }

    /// Weekdays-only habit (Mon–Fri).
    pub fn weekdays(activity: &str, hour: usize, reliability: f64) -> Self {
        Self::new(activity, hour, &[0, 1, 2, 3, 4], reliability)
    }
}

/// Generates `weeks` weeks of hourly activity from `habits`, plus
/// unstructured filler activities drawn at `filler_prob` per hour from a
/// pool of `filler_pool` names.
pub fn generate(
    weeks: usize,
    habits: &[Habit],
    filler_pool: usize,
    filler_prob: f64,
    seed: u64,
    catalog: &mut FeatureCatalog,
) -> FeatureSeries {
    let mut rng = StdRng::seed_from_u64(seed);
    let habit_features: Vec<FeatureId> =
        habits.iter().map(|h| catalog.intern(&h.activity)).collect();
    let fillers: Vec<FeatureId> = (0..filler_pool)
        .map(|i| catalog.intern(&format!("errand-{i}")))
        .collect();

    let mut builder = SeriesBuilder::with_capacity(weeks * WEEK, weeks * WEEK);
    for _week in 0..weeks {
        for day in 0..7 {
            for hour in 0..HOURS_PER_DAY {
                let mut observed: Vec<FeatureId> = Vec::new();
                for (habit, &feature) in habits.iter().zip(&habit_features) {
                    if habit.hour == hour
                        && habit.days.contains(&day)
                        && rng.random::<f64>() < habit.reliability
                    {
                        observed.push(feature);
                    }
                }
                if !fillers.is_empty() && rng.random::<f64>() < filler_prob {
                    observed.push(fillers[rng.random_range(0..fillers.len())]);
                }
                builder.push_instant(observed);
            }
        }
    }
    builder.finish()
}

/// The canonical "Jim" scenario from the paper's introduction.
pub fn jim_schedule() -> Vec<Habit> {
    vec![
        Habit::weekdays("read-vancouver-sun", 7, 0.95),
        Habit::weekdays("coffee", 7, 0.9),
        Habit::weekdays("commute", 8, 0.92),
        Habit::weekdays("lunch-cafeteria", 12, 0.7),
        Habit::new("grocery-run", 10, &[5], 0.8), // Saturdays
        Habit::new("hockey-game", 19, &[2], 0.6), // Wednesday evenings
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_has_week_granularity() {
        let mut cat = FeatureCatalog::new();
        let s = generate(4, &jim_schedule(), 10, 0.3, 1, &mut cat);
        assert_eq!(s.len(), 4 * WEEK);
    }

    #[test]
    fn habits_land_on_their_hour() {
        let mut cat = FeatureCatalog::new();
        let habits = vec![Habit::weekdays("newspaper", 7, 1.0)];
        let s = generate(3, &habits, 0, 0.0, 2, &mut cat);
        let paper = cat.get("newspaper").unwrap();
        for week in 0..3 {
            for day in 0..7 {
                let t = week * WEEK + day * HOURS_PER_DAY + 7;
                let expect = day < 5;
                assert_eq!(s.contains(t, paper), expect, "week {week} day {day}");
            }
        }
    }

    #[test]
    fn reliability_thins_observations() {
        let mut cat = FeatureCatalog::new();
        let habits = vec![Habit::weekdays("flaky", 9, 0.5)];
        let s = generate(40, &habits, 0, 0.0, 3, &mut cat);
        let f = cat.get("flaky").unwrap();
        let hits = s.iter().filter(|inst| inst.contains(&f)).count();
        // 40 weeks * 5 weekdays = 200 opportunities at 50%.
        assert!((70..=130).contains(&hits), "hits {hits}");
    }

    #[test]
    fn filler_is_unstructured() {
        let mut cat = FeatureCatalog::new();
        let s = generate(2, &[], 5, 1.0, 4, &mut cat);
        // Every hour has exactly one filler errand.
        assert!(s.iter().all(|inst| inst.len() == 1));
        assert_eq!(cat.len(), 5);
    }

    #[test]
    #[should_panic(expected = "hour")]
    fn habit_rejects_bad_hour() {
        Habit::new("x", 24, &[0], 1.0);
    }

    #[test]
    #[should_panic(expected = "day")]
    fn habit_rejects_bad_day() {
        Habit::new("x", 0, &[7], 1.0);
    }
}
