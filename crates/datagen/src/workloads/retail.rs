//! Retail-transactions workload.
//!
//! The cyclic-association-rules line of work the paper builds on (Özden et
//! al., which the paper's §1 discusses at length) mines periodicity in
//! store transactions: "coffee and doughnuts sell together every morning",
//! "beer peaks on Fridays". This generator scripts daily item-set
//! transactions on an hourly grid with weekly structure, emitted as a raw
//! **event log** so the `ppm_timeseries::events` ETL path gets exercised
//! end to end.

use crate::rng::{Rng, SplitMix64 as StdRng};

use ppm_timeseries::events::EventLog;
use ppm_timeseries::{FeatureCatalog, FeatureId};

/// Hours per day of store opening used by the grid.
pub const HOURS_PER_DAY: u64 = 24;

/// One scripted selling pattern: items that sell together in a given hour
/// on given weekdays.
#[derive(Debug, Clone)]
pub struct SalesPattern {
    /// Item names sold together.
    pub items: Vec<String>,
    /// Hour of day the basket occurs, `0..24`.
    pub hour: u64,
    /// Days of week (0 = Monday … 6 = Sunday).
    pub days: Vec<usize>,
    /// Probability the basket occurs on an applicable day.
    pub reliability: f64,
}

impl SalesPattern {
    /// Convenience constructor.
    pub fn new(items: &[&str], hour: u64, days: &[usize], reliability: f64) -> Self {
        assert!(hour < HOURS_PER_DAY);
        assert!(days.iter().all(|&d| d < 7));
        assert!((0.0..=1.0).contains(&reliability));
        SalesPattern {
            items: items.iter().map(|s| (*s).to_owned()).collect(),
            hour,
            days: days.to_vec(),
            reliability,
        }
        .normalize()
    }

    fn normalize(mut self) -> Self {
        self.items.sort();
        self.items.dedup();
        self
    }
}

/// The canonical store script: morning coffee+doughnut, Friday beer,
/// weekend brunch.
pub fn store_script() -> Vec<SalesPattern> {
    vec![
        SalesPattern::new(&["coffee", "doughnut"], 8, &[0, 1, 2, 3, 4], 0.9),
        SalesPattern::new(&["beer", "chips"], 18, &[4], 0.85),
        SalesPattern::new(&["eggs", "bacon"], 10, &[5, 6], 0.8),
        SalesPattern::new(&["milk"], 17, &[0, 1, 2, 3, 4, 5, 6], 0.75),
    ]
}

/// Generates `days` days of transactions as a raw event log (timestamps in
/// hours since an epoch at Monday 00:00), with `noise_per_hour` expected
/// random single-item sales drawn from `noise_items`.
pub fn generate_events(
    days: usize,
    patterns: &[SalesPattern],
    noise_items: usize,
    noise_per_hour: f64,
    seed: u64,
    catalog: &mut FeatureCatalog,
) -> EventLog {
    assert!(
        (0.0..=1.0).contains(&noise_per_hour),
        "noise_per_hour is a probability"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let pattern_features: Vec<Vec<FeatureId>> = patterns
        .iter()
        .map(|p| p.items.iter().map(|i| catalog.intern(i)).collect())
        .collect();
    let noise: Vec<FeatureId> = (0..noise_items)
        .map(|i| catalog.intern(&format!("sku-{i:03}")))
        .collect();

    let mut log = EventLog::new();
    for day in 0..days as u64 {
        let weekday = (day % 7) as usize;
        for hour in 0..HOURS_PER_DAY {
            let ts = day * HOURS_PER_DAY + hour;
            for (pattern, features) in patterns.iter().zip(&pattern_features) {
                if pattern.hour == hour
                    && pattern.days.contains(&weekday)
                    && rng.random::<f64>() < pattern.reliability
                {
                    for &f in features {
                        log.record(ts, f);
                    }
                }
            }
            if !noise.is_empty() && rng.random::<f64>() < noise_per_hour {
                log.record(ts, noise[rng.random_range(0..noise.len())]);
            }
        }
    }
    log
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_cover_the_requested_days() {
        let mut cat = FeatureCatalog::new();
        let log = generate_events(14, &store_script(), 10, 0.3, 1, &mut cat);
        let (min, max) = log.span().unwrap();
        assert!(max < 14 * HOURS_PER_DAY);
        assert!(min < HOURS_PER_DAY * 2);
    }

    #[test]
    fn baskets_sell_together() {
        let mut cat = FeatureCatalog::new();
        let patterns = vec![SalesPattern::new(&["coffee", "doughnut"], 8, &[0], 1.0)];
        let log = generate_events(21, &patterns, 0, 0.0, 2, &mut cat);
        let series = log.to_series(0, 1, 21 * 24).unwrap().0;
        let coffee = cat.get("coffee").unwrap();
        let doughnut = cat.get("doughnut").unwrap();
        // Mondays at 8: both items; 3 Mondays in 21 days.
        let mut hits = 0;
        for day in 0..21usize {
            let t = day * 24 + 8;
            let has = series.contains(t, coffee);
            assert_eq!(
                has,
                series.contains(t, doughnut),
                "basket split at day {day}"
            );
            if has {
                assert_eq!(day % 7, 0, "basket on a non-Monday");
                hits += 1;
            }
        }
        assert_eq!(hits, 3);
    }

    #[test]
    fn reliability_and_noise_are_bounded() {
        let mut cat = FeatureCatalog::new();
        let log = generate_events(70, &store_script(), 5, 0.5, 3, &mut cat);
        // Noise rate: ~0.5/hour over 70*24 hours.
        let hours = 70 * 24;
        assert!(
            log.len() > hours / 4,
            "suspiciously few events: {}",
            log.len()
        );
        assert!(
            log.len() < hours * 4,
            "suspiciously many events: {}",
            log.len()
        );
    }

    #[test]
    fn pattern_items_are_sorted_and_deduped() {
        let p = SalesPattern::new(&["b", "a", "b"], 0, &[0], 1.0);
        assert_eq!(p.items, vec!["a".to_owned(), "b".to_owned()]);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_hour() {
        SalesPattern::new(&["x"], 24, &[0], 1.0);
    }
}
