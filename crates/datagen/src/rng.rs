//! A small, dependency-free deterministic PRNG.
//!
//! The generators in this crate only need a fast, seedable, reproducible
//! stream of uniform bits — not cryptographic strength — so instead of the
//! external `rand` crate (which would break the offline build) they use
//! SplitMix64 (Steele, Lea & Flood, "Fast Splittable Pseudorandom Number
//! Generators", OOPSLA 2014). SplitMix64 passes BigCrush, has a full 2^64
//! period, and is seedable from a single `u64`, which is exactly the
//! interface every workload generator here exposes.
//!
//! The API mirrors the subset of `rand` the crate used before:
//! [`Rng::random`] for uniform primitives and [`Rng::random_range`] for
//! integer ranges, so the call sites read identically.

use std::ops::{Bound, RangeBounds};

/// Sampling interface implemented by [`SplitMix64`] (and usable by any
/// future generator). Generic functions take `R: Rng + ?Sized` just as they
/// would with the `rand` traits.
pub trait Rng {
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample of a primitive type (see [`FromRng`]); `f64`
    /// samples lie in `[0, 1)`.
    fn random<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A uniform integer in `range` (half-open or inclusive bounds).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T: RangeSample, B: RangeBounds<T>>(&mut self, range: B) -> T {
        T::sample_range(self, &range)
    }
}

/// SplitMix64: one 64-bit state word, one add, three xor-shift-multiplies
/// per draw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Identical seeds yield identical
    /// streams on every platform.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl Rng for &mut SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from raw bits.
pub trait FromRng {
    /// Draws one uniform value.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRng for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

/// Integer types supporting uniform range sampling.
pub trait RangeSample: Sized + Copy {
    /// Draws a uniform value from `range`.
    fn sample_range<R: Rng + ?Sized, B: RangeBounds<Self>>(rng: &mut R, range: &B) -> Self;
}

/// Uniform draw from `[0, span]` by 128-bit widening multiply (Lemire's
/// method without the rejection step; the bias is < 2^-64 per draw, far
/// below anything these generators can observe).
fn below_inclusive<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == u64::MAX {
        return rng.next_u64();
    }
    let bound = span + 1;
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! impl_range_sample_unsigned {
    ($t:ty) => {
        impl RangeSample for $t {
            fn sample_range<R: Rng + ?Sized, B: RangeBounds<Self>>(rng: &mut R, range: &B) -> Self {
                let lo = match range.start_bound() {
                    Bound::Included(&x) => x,
                    Bound::Excluded(&x) => x + 1,
                    Bound::Unbounded => 0,
                };
                let hi = match range.end_bound() {
                    Bound::Included(&x) => x,
                    Bound::Excluded(&x) => {
                        assert!(x > lo, "empty range");
                        x - 1
                    }
                    Bound::Unbounded => <$t>::MAX,
                };
                assert!(lo <= hi, "empty range");
                lo + below_inclusive(rng, (hi - lo) as u64) as $t
            }
        }
    };
}

impl_range_sample_unsigned!(usize);
impl_range_sample_unsigned!(u64);
impl_range_sample_unsigned!(u32);

impl RangeSample for i64 {
    fn sample_range<R: Rng + ?Sized, B: RangeBounds<Self>>(rng: &mut R, range: &B) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&x) => x,
            Bound::Excluded(&x) => x + 1,
            Bound::Unbounded => i64::MIN,
        };
        let hi = match range.end_bound() {
            Bound::Included(&x) => x,
            Bound::Excluded(&x) => {
                assert!(x > lo, "empty range");
                x - 1
            }
            Bound::Unbounded => i64::MAX,
        };
        assert!(lo <= hi, "empty range");
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add(below_inclusive(rng, span) as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        let mut c = SplitMix64::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn known_splitmix_vector() {
        // Reference values for seed 1234567 from the published SplitMix64
        // test vectors (Vigna's splitmix64.c).
        let mut rng = SplitMix64::seed_from_u64(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SplitMix64::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_cover_and_stay_in_bounds() {
        let mut rng = SplitMix64::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let i = rng.random_range(0..10usize);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");

        for _ in 0..1000 {
            let x = rng.random_range(-3i64..=3);
            assert!((-3..=3).contains(&x));
        }
        // Degenerate single-value ranges.
        assert_eq!(rng.random_range(5usize..6), 5);
        assert_eq!(rng.random_range(5usize..=5), 5);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SplitMix64::seed_from_u64(1);
        rng.random_range(3usize..3);
    }
}
