//! Perfect periodicity with cycle elimination.
//!
//! The paper contrasts itself with Özden et al.'s cyclic association rules
//! [ÖRS98], which are "partial periodic patterns with *perfect* periodicity
//! … each pattern reoccurs in every cycle, with 100% confidence", and notes
//! the key trick that perfection enables: **cycle elimination** — "as soon
//! as it is known that [a pattern] does not hold at a particular instant
//! of time", every period containing that instant is eliminated for it.
//!
//! This module implements that special case as a baseline. Perfection makes
//! the problem compositional: a pattern has confidence 1 iff each of its
//! letters does, so per period the answer is completely described by the
//! set of *surviving letters* (their union is the unique maximal perfect
//! pattern). Mining is a single left-to-right pass per period with early
//! elimination — the optimization the paper says is unavailable once
//! confidence drops below 1.

use std::collections::HashSet;

use ppm_timeseries::{FeatureId, FeatureSeries};

use crate::error::Result;
use crate::letters::Alphabet;
use crate::multi::PeriodRange;

/// The perfect periodicity of one period: the letters that occur in
/// *every* whole segment.
#[derive(Debug, Clone)]
pub struct PerfectPeriod {
    /// The period `p`.
    pub period: usize,
    /// Number of whole segments examined.
    pub segment_count: usize,
    /// The surviving letters; their union is the maximal perfect pattern.
    pub alphabet: Alphabet,
    /// How many segments were actually read before every letter of some
    /// offset died — `segment_count` when something survived to the end.
    /// Measures the work cycle elimination saved.
    pub segments_examined: usize,
}

impl PerfectPeriod {
    /// Whether any letter is perfectly periodic at this period.
    pub fn has_pattern(&self) -> bool {
        !self.alphabet.is_empty()
    }
}

/// Mines the maximal perfect (confidence = 1) pattern for every period in
/// `range`, using cycle elimination: a letter is dropped the moment a
/// segment misses it, and a period's scan stops early once no candidate
/// letter remains.
pub fn mine_perfect(series: &FeatureSeries, range: PeriodRange) -> Result<Vec<PerfectPeriod>> {
    let mut out = Vec::new();
    for period in range.iter() {
        if period > series.len() {
            continue;
        }
        out.push(mine_perfect_single(series, period));
    }
    Ok(out)
}

fn mine_perfect_single(series: &FeatureSeries, period: usize) -> PerfectPeriod {
    let m = series.len() / period;
    // Seed candidates from segment 0, then intersect with each later
    // segment, eliminating eagerly.
    let mut candidates: HashSet<(u32, FeatureId)> = (0..period)
        .flat_map(|o| series.instant(o).iter().map(move |&f| (o as u32, f)))
        .collect();
    let mut examined = if m > 0 { 1 } else { 0 };
    for j in 1..m {
        if candidates.is_empty() {
            break; // cycle elimination: no survivor can reappear
        }
        examined += 1;
        candidates.retain(|&(o, f)| {
            series
                .instant(j * period + o as usize)
                .binary_search(&f)
                .is_ok()
        });
    }
    PerfectPeriod {
        period,
        segment_count: m,
        alphabet: Alphabet::new(period, candidates.into_iter().map(|(o, f)| (o as usize, f))),
        segments_examined: examined,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_timeseries::SeriesBuilder;

    use crate::scan::MineConfig;

    fn fid(i: u32) -> FeatureId {
        FeatureId::from_raw(i)
    }

    #[test]
    fn finds_perfect_letters_only() {
        let mut b = SeriesBuilder::new();
        for j in 0..10 {
            b.push_instant([fid(0)]); // perfect at offset 0
            b.push_instant(if j == 4 { vec![] } else { vec![fid(1)] }); // one miss
        }
        let s = b.finish();
        let out = mine_perfect(&s, PeriodRange::single(2).unwrap()).unwrap();
        let p = &out[0];
        assert!(p.has_pattern());
        assert_eq!(p.alphabet.len(), 1);
        assert_eq!(p.alphabet.letter(0), (0, fid(0)));
    }

    #[test]
    fn agrees_with_hitset_at_confidence_one() {
        // Random-ish series; the perfect miner's alphabet must equal the
        // hit-set miner's F1 at min_conf = 1.0, and the maximal perfect
        // pattern (all surviving letters) must be frequent with count m.
        let mut b = SeriesBuilder::new();
        let mut x: u64 = 3;
        for t in 0..120 {
            let mut inst = vec![fid(9)]; // a letter present everywhere
            if t % 4 == 1 {
                inst.push(fid(0));
            }
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            if (x >> 62) == 0 {
                inst.push(fid(1));
            }
            b.push_instant(inst);
        }
        let s = b.finish();
        for period in [2usize, 3, 4, 6] {
            let perfect = mine_perfect(&s, PeriodRange::single(period).unwrap()).unwrap();
            let p = &perfect[0];
            let full = crate::hitset::mine(&s, period, &MineConfig::new(1.0).unwrap()).unwrap();
            assert_eq!(p.alphabet, full.alphabet, "period {period}");
            if !p.alphabet.is_empty() {
                let c_max = full.alphabet.full_set();
                let max = full
                    .frequent
                    .iter()
                    .find(|fp| fp.letters == c_max)
                    .expect("maximal perfect pattern must be frequent");
                assert_eq!(max.count, full.segment_count as u64);
            }
        }
    }

    #[test]
    fn cycle_elimination_stops_early() {
        // Nothing repeats: candidates die after segment 2 at the latest.
        let mut b = SeriesBuilder::new();
        for t in 0..1000u32 {
            b.push_instant([fid(t)]);
        }
        let s = b.finish();
        let out = mine_perfect(&s, PeriodRange::single(10).unwrap()).unwrap();
        let p = &out[0];
        assert!(!p.has_pattern());
        assert!(p.segments_examined <= 2, "examined {}", p.segments_examined);
        assert_eq!(p.segment_count, 100);
    }

    #[test]
    fn range_covers_multiple_periods() {
        let mut b = SeriesBuilder::new();
        for t in 0..60 {
            if t % 3 == 0 {
                b.push_instant([fid(0)]);
            } else {
                b.push_instant([]);
            }
        }
        let s = b.finish();
        let out = mine_perfect(&s, PeriodRange::new(2, 6).unwrap()).unwrap();
        assert_eq!(out.len(), 5);
        // Perfect only at periods 3 and 6 (multiples of the plant).
        let with_patterns: Vec<usize> = out
            .iter()
            .filter(|p| p.has_pattern())
            .map(|p| p.period)
            .collect();
        assert_eq!(with_patterns, vec![3, 6]);
    }

    #[test]
    fn skips_too_long_periods() {
        let mut b = SeriesBuilder::new();
        for _ in 0..4 {
            b.push_instant([fid(0)]);
        }
        let s = b.finish();
        let out = mine_perfect(&s, PeriodRange::new(3, 10).unwrap()).unwrap();
        assert_eq!(out.len(), 2); // periods 3 and 4 only
    }
}
