//! Closed frequent pattern mining.
//!
//! A frequent pattern is **closed** when no proper superpattern has the
//! same count. The closed set is the standard lossless compression of the
//! frequent set — every frequent pattern's count is recoverable as the
//! count of its smallest closed superpattern — and it sits between the full
//! set and the maximal set ([`crate::maximal`]): maximal ⊆ closed ⊆
//! frequent.
//!
//! The hit-set representation makes closure *cheap*: the closure of `P` is
//! the intersection of all (distinct) hits that contain `P` — one pruned
//! walk of the max-subpattern tree
//! ([`MaxSubpatternTree::intersect_superpatterns`]) — with scan-1 counts
//! disambiguating the 1-letter hits the tree does not store.
//!
//! ```
//! use ppm_core::{closed, MineConfig};
//! use ppm_timeseries::{FeatureCatalog, SeriesBuilder};
//!
//! // Two features that always co-occur: 3 frequent patterns, 1 closed.
//! let mut catalog = FeatureCatalog::new();
//! let (a, b) = (catalog.intern("a"), catalog.intern("b"));
//! let mut builder = SeriesBuilder::new();
//! for _ in 0..8 {
//!     builder.push_instant([a]);
//!     builder.push_instant([b]);
//! }
//! let series = builder.finish();
//! let result = closed::mine_closed(&series, 2, &MineConfig::new(0.9).unwrap()).unwrap();
//! assert_eq!(result.closed.len(), 1);
//! assert_eq!(result.closed[0].letters.len(), 2);
//! ```

use ppm_timeseries::FeatureSeries;

use crate::error::Result;
use crate::hitset::{build_tree, MaxSubpatternTree};
use crate::letters::LetterSet;
use crate::result::{FrequentPattern, MiningResult};
use crate::scan::{scan_frequent_letters, MineConfig, Scan1};
use crate::stats::MiningStats;

/// The closure of `set` within the mined data: the largest pattern matched
/// by exactly the segments that match `set`.
///
/// Returns `None` when `set` matches no segment (count 0), in which case
/// closure is undefined.
///
/// The subtlety this handles: hits with fewer than 2 letters are not stored
/// in the tree (paper §4), so for 0- and 1-letter inputs the tree's
/// intersection must be corrected against the exact scan-1 counts.
pub fn closure(tree: &MaxSubpatternTree, scan1: &Scan1, set: &LetterSet) -> Option<LetterSet> {
    let m = scan1.segment_count as u64;
    match set.len() {
        0 => {
            // Closure of the empty pattern: the letters present in *every*
            // segment — exactly those with scan-1 count m.
            if m == 0 {
                return None;
            }
            let mut out = LetterSet::new(scan1.alphabet.len());
            for (idx, &count) in scan1.letter_counts.iter().enumerate() {
                if count == m {
                    out.insert(idx);
                }
            }
            Some(out)
        }
        1 => {
            let letter = set.first().expect("one letter");
            let exact = scan1.letter_counts[letter];
            if exact == 0 {
                return None;
            }
            // Segments whose projection was exactly {letter} are absent
            // from the tree; if any exist, they pin the closure to {letter}.
            if exact > tree.count_superpatterns_walk(set) {
                return Some(set.clone());
            }
            tree.intersect_superpatterns(set)
        }
        _ => {
            if tree.count_superpatterns_walk(set) == 0 {
                return None;
            }
            tree.intersect_superpatterns(set)
        }
    }
}

/// Result of closed-pattern mining.
#[derive(Debug, Clone)]
pub struct ClosedResult {
    /// The mined period.
    pub period: usize,
    /// Number of whole segments `m`.
    pub segment_count: usize,
    /// Count threshold used.
    pub min_count: u64,
    /// The frequent-letter alphabet.
    pub alphabet: crate::letters::Alphabet,
    /// The closed frequent patterns, sorted by (letter count, letters).
    pub closed: Vec<FrequentPattern>,
    /// Instrumentation (two scans).
    pub stats: MiningStats,
}

/// Mines the closed frequent patterns of `period` directly: two scans, then
/// closure computation over the tree — frequent patterns are enumerated via
/// their closures, so the (possibly exponentially larger) full frequent set
/// is never materialized.
///
/// The enumeration is the standard closure-based search: start from the
/// closures of the frequent 1-patterns, then repeatedly extend closed
/// patterns by one letter and take closures, deduplicating.
pub fn mine_closed(
    series: &FeatureSeries,
    period: usize,
    config: &MineConfig,
) -> Result<ClosedResult> {
    use std::collections::HashSet;

    let scan1 = scan_frequent_letters(series, period, config)?;
    let mut stats = MiningStats {
        series_scans: 1,
        max_level: 1,
        ..Default::default()
    };
    let tree = build_tree(series, &scan1, &mut stats);
    stats.series_scans += 1;
    stats.tree_nodes = tree.node_count();
    stats.distinct_hits = tree.distinct_hits();
    stats.hit_insertions = tree.total_hits();

    let n = scan1.alphabet.len();
    let count_of = |set: &LetterSet| -> u64 {
        match set.len() {
            0 => scan1.segment_count as u64,
            1 => scan1.letter_counts[set.first().expect("letter")],
            _ => tree.count_superpatterns_walk(set),
        }
    };

    let mut seen: HashSet<LetterSet> = HashSet::new();
    let mut closed: Vec<FrequentPattern> = Vec::new();
    // Seed: closures of the frequent single letters.
    let mut frontier: Vec<LetterSet> = Vec::new();
    for idx in 0..n {
        let single = LetterSet::from_indices(n, [idx]);
        stats.subset_tests += 1;
        if let Some(cl) = closure(&tree, &scan1, &single) {
            if count_of(&cl) >= scan1.min_count && seen.insert(cl.clone()) {
                frontier.push(cl);
            }
        }
    }
    // Expand: extend each closed pattern by one absent letter and close.
    while let Some(current) = frontier.pop() {
        stats.max_level = stats.max_level.max(current.len());
        for idx in 0..n {
            if current.contains(idx) {
                continue;
            }
            let mut extended = current.clone();
            extended.insert(idx);
            stats.subset_tests += 1;
            if count_of(&extended) < scan1.min_count {
                continue;
            }
            if let Some(cl) = closure(&tree, &scan1, &extended) {
                if seen.insert(cl.clone()) {
                    frontier.push(cl);
                }
            }
        }
        closed.push(FrequentPattern {
            count: count_of(&current),
            letters: current,
        });
    }

    closed.sort_by(|a, b| {
        a.letters.len().cmp(&b.letters.len()).then_with(|| {
            a.letters
                .iter()
                .collect::<Vec<_>>()
                .cmp(&b.letters.iter().collect())
        })
    });
    Ok(ClosedResult {
        period,
        segment_count: scan1.segment_count,
        min_count: scan1.min_count,
        alphabet: scan1.alphabet,
        closed,
        stats,
    })
}

/// Reference implementation: the closed patterns of a full mining result —
/// those with no frequent proper superpattern of equal count.
pub fn closed_of(result: &MiningResult) -> Vec<FrequentPattern> {
    let mut out: Vec<FrequentPattern> = result
        .frequent
        .iter()
        .filter(|fp| {
            !result.frequent.iter().any(|other| {
                other.count == fp.count
                    && other.letters.len() > fp.letters.len()
                    && fp.letters.is_subset(&other.letters)
            })
        })
        .cloned()
        .collect();
    out.sort_by(|a, b| {
        a.letters.len().cmp(&b.letters.len()).then_with(|| {
            a.letters
                .iter()
                .collect::<Vec<_>>()
                .cmp(&b.letters.iter().collect())
        })
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_timeseries::{FeatureId, SeriesBuilder};

    fn fid(i: u32) -> FeatureId {
        FeatureId::from_raw(i)
    }

    fn random_series(n: usize, seed: u64) -> FeatureSeries {
        let mut b = SeriesBuilder::new();
        let mut x = seed;
        for _ in 0..n {
            let mut inst = Vec::new();
            for f in 0..5u32 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if (x >> 33).is_multiple_of(3) {
                    inst.push(fid(f));
                }
            }
            b.push_instant(inst);
        }
        b.finish()
    }

    fn assert_closed_matches_reference(series: &FeatureSeries, period: usize, conf: f64) {
        let config = MineConfig::new(conf).unwrap();
        let full = crate::hitset::mine(series, period, &config).unwrap();
        let expect = closed_of(&full);
        let got = mine_closed(series, period, &config).unwrap();
        assert_eq!(got.closed, expect, "period {period} conf {conf}");
    }

    #[test]
    fn closed_equals_reference_on_random_data() {
        for seed in [1u64, 7, 42] {
            let s = random_series(180, seed);
            for conf in [0.25, 0.4, 0.6] {
                assert_closed_matches_reference(&s, 6, conf);
            }
        }
    }

    #[test]
    fn perfectly_correlated_letters_collapse_to_one_closed_pattern() {
        // f0, f1, f2 always co-occur: 7 frequent patterns, 1 closed.
        let mut b = SeriesBuilder::new();
        for j in 0..20 {
            if j % 4 == 0 {
                b.push_instant([]);
                b.push_instant([]);
                b.push_instant([]);
            } else {
                b.push_instant([fid(0)]);
                b.push_instant([fid(1)]);
                b.push_instant([fid(2)]);
            }
        }
        let s = b.finish();
        let config = MineConfig::new(0.5).unwrap();
        let full = crate::hitset::mine(&s, 3, &config).unwrap();
        assert_eq!(full.len(), 7);
        let got = mine_closed(&s, 3, &config).unwrap();
        assert_eq!(got.closed.len(), 1);
        assert_eq!(got.closed[0].letters.len(), 3);
        assert_eq!(got.closed[0].count, 15);
    }

    #[test]
    fn maximal_is_subset_of_closed() {
        let s = random_series(240, 9);
        let config = MineConfig::new(0.3).unwrap();
        let full = crate::hitset::mine(&s, 5, &config).unwrap();
        let closed = closed_of(&full);
        let maximal = full.maximal();
        for mp in maximal {
            assert!(
                closed.iter().any(|cp| cp.letters == mp.letters),
                "maximal pattern missing from closed set"
            );
        }
    }

    #[test]
    fn closure_is_extensive_idempotent_and_count_preserving() {
        let s = random_series(200, 3);
        let config = MineConfig::new(0.2).unwrap();
        let scan1 = scan_frequent_letters(&s, 5, &config).unwrap();
        let mut stats = MiningStats::default();
        let tree = build_tree(&s, &scan1, &mut stats);
        let n = scan1.alphabet.len();
        let segs = s.segments(5).unwrap();

        let brute_count = |set: &LetterSet| {
            let p = crate::pattern::Pattern::from_letter_set(&scan1.alphabet, set);
            segs.iter().filter(|seg| p.matches_segment(seg)).count() as u64
        };

        for mask in 0u32..(1 << n.min(10)) {
            let set = LetterSet::from_indices(n, (0..n.min(10)).filter(|i| mask & (1 << i) != 0));
            match closure(&tree, &scan1, &set) {
                None => assert_eq!(brute_count(&set), 0, "{set:?}"),
                Some(cl) => {
                    assert!(set.is_subset(&cl), "not extensive: {set:?} -> {cl:?}");
                    assert_eq!(
                        brute_count(&cl),
                        brute_count(&set),
                        "count changed: {set:?} -> {cl:?}"
                    );
                    let again = closure(&tree, &scan1, &cl).expect("closure exists");
                    assert_eq!(again, cl, "not idempotent");
                }
            }
        }
    }

    #[test]
    fn one_letter_hits_pin_closures() {
        // Segment projections: {f0} three times, {f0, f1} twice. The
        // closure of {f0} must be {f0} even though every *tree* hit also
        // contains f1.
        let mut b = SeriesBuilder::new();
        for j in 0..5 {
            b.push_instant([fid(0)]);
            b.push_instant(if j < 2 { vec![fid(1)] } else { vec![] });
        }
        let s = b.finish();
        let config = MineConfig::new(0.2).unwrap();
        let scan1 = scan_frequent_letters(&s, 2, &config).unwrap();
        let mut stats = MiningStats::default();
        let tree = build_tree(&s, &scan1, &mut stats);
        let f0 = scan1.alphabet.index_of(0, fid(0)).unwrap();
        let set = LetterSet::from_indices(scan1.alphabet.len(), [f0]);
        assert_eq!(closure(&tree, &scan1, &set), Some(set.clone()));
    }

    #[test]
    fn closure_of_empty_pattern_is_the_universal_letters() {
        let mut b = SeriesBuilder::new();
        for _ in 0..6 {
            b.push_instant([fid(0)]); // in every segment
            b.push_instant([]);
        }
        let s = b.finish();
        let config = MineConfig::new(0.5).unwrap();
        let scan1 = scan_frequent_letters(&s, 2, &config).unwrap();
        let mut stats = MiningStats::default();
        let tree = build_tree(&s, &scan1, &mut stats);
        let empty = LetterSet::new(scan1.alphabet.len());
        let cl = closure(&tree, &scan1, &empty).unwrap();
        assert_eq!(cl.len(), 1); // exactly the always-present letter
    }
}
