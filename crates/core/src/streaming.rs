//! Out-of-core mining over a [`SeriesSource`].
//!
//! §5 of the paper: "In general, the time series of features may need to be
//! stored on disk … there would be a large amount of extra disk-IO
//! associated with Apriori, but not with max-subpattern hit-set since it
//! only requires two scans." These miners make that claim testable: they
//! consume any [`SeriesSource`] — in particular the disk-streaming
//! [`ppm_timeseries::storage::stream::FileSource`] — and *every* pass over
//! the data is a physical re-scan of the source. The reported
//! `stats.series_scans` is taken from the source itself.
//!
//! Results are identical to the in-memory miners (tested); only the data
//! movement differs.

use std::collections::HashMap;

use ppm_timeseries::{FeatureId, SeriesSource};

use crate::apriori::{for_each_combination, join_candidates};
use crate::error::{Error, Result};
use crate::guard::{ResourceGuard, DEADLINE_CHECK_INTERVAL};
use crate::hitset::derive::{derive_frequent, CountStrategy};
use crate::hitset::MaxSubpatternTree;
use crate::letters::{Alphabet, LetterSet};
use crate::result::{FrequentPattern, MiningResult};
use crate::scan::{MineConfig, Scan1};
use crate::stats::MiningStats;

/// Scan 1 over a source: one physical pass.
pub fn scan_frequent_letters_streaming(
    source: &mut dyn SeriesSource,
    period: usize,
    config: &MineConfig,
) -> Result<Scan1> {
    let n = source.instant_count();
    if period == 0 || period > n {
        return Err(Error::InvalidPeriod {
            period,
            series_len: n,
        });
    }
    let m = n / period;
    let usable = m * period;
    let min_count = config.min_count(m);

    let mut counts: HashMap<(u32, FeatureId), u64> = HashMap::new();
    source.scan(&mut |t, features| {
        if t < usable {
            let offset = (t % period) as u32;
            for &f in features {
                *counts.entry((offset, f)).or_insert(0) += 1;
            }
        }
    })?;

    let alphabet = Alphabet::new(
        period,
        counts
            .iter()
            .filter(|&(_, &c)| c >= min_count)
            .map(|(&(o, f), _)| (o as usize, f)),
    );
    let letter_counts = (0..alphabet.len())
        .map(|i| {
            let (o, f) = alphabet.letter(i);
            counts[&(o as u32, f)]
        })
        .collect();
    Ok(Scan1 {
        alphabet,
        letter_counts,
        segment_count: m,
        min_count,
    })
}

/// Algorithm 3.2 over a source: exactly two physical passes.
pub fn mine_hitset_streaming(
    source: &mut dyn SeriesSource,
    period: usize,
    config: &MineConfig,
) -> Result<MiningResult> {
    let _mine_span = ppm_observe::span("stream.mine");
    let guard = ResourceGuard::new(config);
    let scans_before = source.scans_performed();
    let scan1 = {
        let _span = ppm_observe::span("stream.scan1");
        scan_frequent_letters_streaming(source, period, config)?
    };
    let m = scan1.segment_count;
    let usable = m * period;
    ppm_observe::gauge("hitset.segments_total", m as u64);
    guard.check_deadline(&MiningStats {
        series_scans: source.scans_performed() - scans_before,
        max_level: 1,
        ..Default::default()
    })?;

    // Pass 2: segment hits straight into the tree. Scan closures cannot
    // return errors, so guard violations raise a flag that mutes the rest
    // of the pass and is converted to the typed error afterwards.
    let mut tree = MaxSubpatternTree::new(scan1.alphabet.full_set());
    let mut over_budget = false;
    let mut past_deadline = false;
    {
        let _span = ppm_observe::span("stream.scan2");
        let mut hit = scan1.alphabet.empty_set();
        let alphabet = &scan1.alphabet;
        let tree = &mut tree;
        let over_budget = &mut over_budget;
        let past_deadline = &mut past_deadline;
        let mut segments_done = 0usize;
        source.scan(&mut |t, features| {
            if t >= usable || *over_budget || *past_deadline {
                return;
            }
            let offset = t % period;
            alphabet.project_instant(offset, features, &mut hit);
            if offset == period - 1 {
                if hit.len() >= 2 {
                    tree.insert(&hit);
                    if guard.tree_over_budget(tree.node_count()) {
                        *over_budget = true;
                    }
                }
                hit.clear();
                segments_done += 1;
                if segments_done.is_multiple_of(DEADLINE_CHECK_INTERVAL)
                    && guard.deadline_exceeded()
                {
                    *past_deadline = true;
                }
            }
        })?;
        ppm_observe::counter("hitset.segments", segments_done as u64);
    }
    if over_budget || past_deadline {
        let stats = MiningStats {
            series_scans: source.scans_performed() - scans_before,
            max_level: 1,
            tree_nodes: tree.node_count(),
            distinct_hits: tree.distinct_hits(),
            hit_insertions: tree.total_hits(),
            ..Default::default()
        };
        return Err(if over_budget {
            guard.tree_error(tree.node_count(), &stats)
        } else {
            guard.deadline_error(&stats)
        });
    }

    let mut stats = MiningStats {
        series_scans: source.scans_performed() - scans_before,
        max_level: 1,
        tree_nodes: tree.node_count(),
        distinct_hits: tree.distinct_hits(),
        hit_insertions: tree.total_hits(),
        ..Default::default()
    };
    ppm_observe::gauge("tree.nodes", stats.tree_nodes as u64);
    ppm_observe::gauge("tree.distinct_hits", stats.distinct_hits as u64);

    let _derive_span = ppm_observe::span("stream.derive");
    let n_letters = scan1.alphabet.len();
    let mut frequent: Vec<FrequentPattern> = scan1
        .letter_counts
        .iter()
        .enumerate()
        .map(|(idx, &count)| FrequentPattern {
            letters: LetterSet::from_indices(n_letters, [idx]),
            count,
        })
        .collect();
    derive_frequent(
        &tree,
        &scan1,
        CountStrategy::default(),
        &mut frequent,
        &mut stats,
    );

    let mut result = MiningResult {
        period,
        segment_count: m,
        min_confidence: config.min_confidence(),
        min_count: scan1.min_count,
        alphabet: scan1.alphabet,
        frequent,
        stats,
    };
    result.sort();
    Ok(result)
}

/// Algorithm 3.2 broken into resumable steps, with scan-2 progress tracked
/// at **segment granularity**.
///
/// [`mine_hitset_streaming`] runs both scans inside one call, so an
/// interruption during scan 2 (source failure with retries exhausted,
/// operator abort) loses the whole pass. This miner keeps the
/// max-subpattern tree and a count of completed segments across failures: a
/// [`run_scan2`](Self::run_scan2) that errors out retains every segment it
/// finished, and the next call re-scans the source while *skipping* those
/// segments — work lost to an interruption is bounded by one segment.
///
/// The reported `series_scans` counts scan 1 plus one per physical
/// [`run_scan2`](Self::run_scan2) pass, so an uninterrupted run reports
/// exactly 2, and the [`MiningResult`] is then identical to
/// [`mine_hitset_streaming`]'s.
///
/// ```
/// use ppm_core::streaming::ResumableHitsetMiner;
/// use ppm_core::MineConfig;
/// use ppm_timeseries::{MemorySource, SeriesBuilder};
///
/// let mut b = SeriesBuilder::new();
/// for t in 0..12u32 {
///     b.push_instant([ppm_timeseries::FeatureId::from_raw(t % 3)]);
/// }
/// let series = b.finish();
/// let mut source = MemorySource::new(&series);
/// let config = MineConfig::new(0.9).unwrap();
///
/// let mut miner = ResumableHitsetMiner::start(&mut source, 3, &config).unwrap();
/// miner.run_scan2(&mut source).unwrap();
/// assert!(miner.scan2_complete());
/// let result = miner.finish();
/// assert_eq!(result.stats.series_scans, 2);
/// ```
#[derive(Debug, Clone)]
pub struct ResumableHitsetMiner {
    period: usize,
    config: MineConfig,
    scan1: Scan1,
    tree: MaxSubpatternTree,
    segments_done: usize,
    scan2_passes: usize,
}

impl ResumableHitsetMiner {
    /// Runs scan 1 (one physical pass) and prepares an empty tree.
    pub fn start(
        source: &mut dyn SeriesSource,
        period: usize,
        config: &MineConfig,
    ) -> Result<Self> {
        let scan1 = scan_frequent_letters_streaming(source, period, config)?;
        let tree = MaxSubpatternTree::new(scan1.alphabet.full_set());
        Ok(ResumableHitsetMiner {
            period,
            config: *config,
            scan1,
            tree,
            segments_done: 0,
            scan2_passes: 0,
        })
    }

    /// The mining period.
    pub fn period(&self) -> usize {
        self.period
    }

    /// Total whole segments scan 2 must process.
    pub fn segment_count(&self) -> usize {
        self.scan1.segment_count
    }

    /// Segments already folded into the tree — survives a failed
    /// [`run_scan2`](Self::run_scan2).
    pub fn segments_done(&self) -> usize {
        self.segments_done
    }

    /// Whether every segment has been processed.
    pub fn scan2_complete(&self) -> bool {
        self.segments_done >= self.scan1.segment_count
    }

    /// One physical scan-2 pass: re-scans `source` from the start, skips
    /// the segments already done, and folds the rest into the tree. On
    /// error, all segments completed before the failure are retained; call
    /// again (typically after the transient condition clears) to resume.
    /// A call when scan 2 is already complete performs no scan.
    pub fn run_scan2(&mut self, source: &mut dyn SeriesSource) -> Result<()> {
        if self.scan2_complete() {
            return Ok(());
        }
        let _span = ppm_observe::span("stream.scan2");
        if self.segments_done > 0 {
            let done = self.segments_done;
            let total = self.scan1.segment_count;
            ppm_observe::mark("stream.resume", || {
                format!("resuming scan 2 at segment {done}/{total}")
            });
        }
        self.scan2_passes += 1;
        let period = self.period;
        let usable = self.scan1.segment_count * period;
        let alphabet = &self.scan1.alphabet;
        let tree = &mut self.tree;
        let done = &mut self.segments_done;
        let mut hit = alphabet.empty_set();
        source.scan(&mut |t, features| {
            if t >= usable {
                return;
            }
            let j = t / period;
            if j < *done {
                return;
            }
            let offset = t % period;
            alphabet.project_instant(offset, features, &mut hit);
            if offset == period - 1 {
                if hit.len() >= 2 {
                    tree.insert(&hit);
                }
                hit.clear();
                *done = j + 1;
            }
        })?;
        Ok(())
    }

    /// Derives the frequent patterns from scan 1 and the tree.
    ///
    /// Normally called once [`scan2_complete`](Self::scan2_complete); if
    /// called earlier the result reflects only the segments processed so
    /// far (a partial, degraded answer — pattern counts can only grow with
    /// more segments).
    pub fn finish(self) -> MiningResult {
        let scan1 = self.scan1;
        let mut stats = MiningStats {
            series_scans: 1 + self.scan2_passes,
            max_level: 1,
            tree_nodes: self.tree.node_count(),
            distinct_hits: self.tree.distinct_hits(),
            hit_insertions: self.tree.total_hits(),
            ..Default::default()
        };
        let n_letters = scan1.alphabet.len();
        let mut frequent: Vec<FrequentPattern> = scan1
            .letter_counts
            .iter()
            .enumerate()
            .map(|(idx, &count)| FrequentPattern {
                letters: LetterSet::from_indices(n_letters, [idx]),
                count,
            })
            .collect();
        derive_frequent(
            &self.tree,
            &scan1,
            CountStrategy::default(),
            &mut frequent,
            &mut stats,
        );

        let mut result = MiningResult {
            period: self.period,
            segment_count: scan1.segment_count,
            min_confidence: self.config.min_confidence(),
            min_count: scan1.min_count,
            alphabet: scan1.alphabet,
            frequent,
            stats,
        };
        result.sort();
        result
    }
}

/// Algorithm 3.1 over a source: one physical pass per level.
pub fn mine_apriori_streaming(
    source: &mut dyn SeriesSource,
    period: usize,
    config: &MineConfig,
) -> Result<MiningResult> {
    let _mine_span = ppm_observe::span("stream.apriori.mine");
    let scans_before = source.scans_performed();
    let scan1 = {
        let _span = ppm_observe::span("stream.scan1");
        scan_frequent_letters_streaming(source, period, config)?
    };
    let m = scan1.segment_count;
    let usable = m * period;
    let n_letters = scan1.alphabet.len();

    let mut stats = MiningStats {
        max_level: 1,
        ..Default::default()
    };
    let mut frequent: Vec<FrequentPattern> = scan1
        .letter_counts
        .iter()
        .enumerate()
        .map(|(idx, &count)| FrequentPattern {
            letters: LetterSet::from_indices(n_letters, [idx]),
            count,
        })
        .collect();

    let mut level: Vec<Vec<u32>> = (0..n_letters as u32).map(|i| vec![i]).collect();
    let mut k = 1;
    while !level.is_empty() {
        let candidates = join_candidates(&level);
        stats.candidates_generated += candidates.len() as u64;
        if candidates.is_empty() {
            break;
        }
        k += 1;
        stats.max_level = k;

        // One physical pass counting this level's candidates.
        let _level_span = ppm_observe::span("apriori.level");
        ppm_observe::counter("apriori.candidates", candidates.len() as u64);
        let by_pattern: HashMap<&[u32], usize> = candidates
            .iter()
            .enumerate()
            .map(|(i, c)| (c.as_slice(), i))
            .collect();
        let candidate_sets: Vec<LetterSet> = candidates
            .iter()
            .map(|c| LetterSet::from_indices(n_letters, c.iter().map(|&l| l as usize)))
            .collect();
        let mut counts = vec![0u64; candidates.len()];
        {
            let alphabet = &scan1.alphabet;
            let mut projection = alphabet.empty_set();
            let mut proj_letters: Vec<u32> = Vec::new();
            let counts = &mut counts;
            let subset_tests = &mut stats.subset_tests;
            source.scan(&mut |t, features| {
                if t >= usable {
                    return;
                }
                let offset = t % period;
                alphabet.project_instant(offset, features, &mut projection);
                if offset == period - 1 {
                    let present = projection.len();
                    if present >= k {
                        let enumerate_cost = crate::apriori::binomial(present, k);
                        if enumerate_cost <= candidates.len() as u64 {
                            proj_letters.clear();
                            proj_letters.extend(projection.iter().map(|l| l as u32));
                            for_each_combination(&proj_letters, k, |combo| {
                                *subset_tests += 1;
                                if let Some(&i) = by_pattern.get(combo) {
                                    counts[i] += 1;
                                }
                            });
                        } else {
                            for (i, cset) in candidate_sets.iter().enumerate() {
                                *subset_tests += 1;
                                if cset.is_subset(&projection) {
                                    counts[i] += 1;
                                }
                            }
                        }
                    }
                    projection.clear();
                }
            })?;
        }

        let mut next_level = Vec::new();
        for (cand, count) in candidates.into_iter().zip(counts) {
            if count >= scan1.min_count {
                frequent.push(FrequentPattern {
                    letters: LetterSet::from_indices(n_letters, cand.iter().map(|&l| l as usize)),
                    count,
                });
                next_level.push(cand);
            }
        }
        level = next_level;
    }
    stats.series_scans = source.scans_performed() - scans_before;

    let mut result = MiningResult {
        period,
        segment_count: m,
        min_confidence: config.min_confidence(),
        min_count: scan1.min_count,
        alphabet: scan1.alphabet,
        frequent,
        stats,
    };
    result.sort();
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_timeseries::{FeatureSeries, MemorySource, SeriesBuilder};

    fn fid(i: u32) -> FeatureId {
        FeatureId::from_raw(i)
    }

    fn sample(n: usize) -> FeatureSeries {
        let mut b = SeriesBuilder::new();
        let mut x: u64 = 21;
        for t in 0..n {
            let mut inst = Vec::new();
            if t % 5 == 1 {
                inst.push(fid(0));
            }
            if t % 5 == 3 {
                inst.push(fid(1));
            }
            x = x.wrapping_mul(6364136223846793005).wrapping_add(9);
            if (x >> 61) == 0 {
                inst.push(fid(2));
            }
            b.push_instant(inst);
        }
        b.finish()
    }

    #[test]
    fn streaming_hitset_equals_in_memory() {
        let s = sample(600);
        let config = MineConfig::new(0.5).unwrap();
        let expect = crate::hitset::mine(&s, 5, &config).unwrap();
        let mut src = MemorySource::new(&s);
        let got = mine_hitset_streaming(&mut src, 5, &config).unwrap();
        assert_eq!(got.frequent, expect.frequent);
        assert_eq!(got.stats.series_scans, 2);
        assert_eq!(src.scans_performed(), 2);
    }

    #[test]
    fn streaming_apriori_equals_in_memory() {
        let s = sample(600);
        let config = MineConfig::new(0.5).unwrap();
        let expect = crate::apriori::mine(&s, 5, &config).unwrap();
        let mut src = MemorySource::new(&s);
        let got = mine_apriori_streaming(&mut src, 5, &config).unwrap();
        assert_eq!(got.frequent, expect.frequent);
        assert_eq!(got.stats.series_scans, expect.stats.series_scans);
        assert_eq!(src.scans_performed(), expect.stats.series_scans);
    }

    #[test]
    fn scan1_matches_in_memory() {
        let s = sample(300);
        let config = MineConfig::new(0.4).unwrap();
        let expect = crate::scan::scan_frequent_letters(&s, 5, &config).unwrap();
        let mut src = MemorySource::new(&s);
        let got = scan_frequent_letters_streaming(&mut src, 5, &config).unwrap();
        assert_eq!(got.alphabet, expect.alphabet);
        assert_eq!(got.letter_counts, expect.letter_counts);
        assert_eq!(got.segment_count, expect.segment_count);
    }

    #[test]
    fn rejects_bad_period() {
        let s = sample(10);
        let config = MineConfig::default();
        let mut src = MemorySource::new(&s);
        assert!(mine_hitset_streaming(&mut src, 0, &config).is_err());
        assert!(mine_hitset_streaming(&mut src, 11, &config).is_err());
    }

    /// A series whose segment hits vary, so the tree actually grows.
    fn busy(n: usize) -> FeatureSeries {
        let mut b = SeriesBuilder::new();
        let mut x: u64 = 7;
        for _ in 0..n {
            let mut inst = Vec::new();
            for f in 0..4u32 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                if (x >> 33).is_multiple_of(2) {
                    inst.push(fid(f));
                }
            }
            b.push_instant(inst);
        }
        b.finish()
    }

    #[test]
    fn streaming_tree_budget_aborts_with_partial_stats() {
        let s = busy(400);
        let config = MineConfig::new(0.2).unwrap().with_max_tree_nodes(2);
        let mut src = MemorySource::new(&s);
        let err = mine_hitset_streaming(&mut src, 8, &config).unwrap_err();
        match err {
            Error::TreeBudgetExceeded {
                nodes,
                budget,
                stats,
            } => {
                assert_eq!(budget, 2);
                assert!(nodes > 2);
                assert!(stats.hit_insertions >= 1);
            }
            other => panic!("expected TreeBudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn streaming_zero_deadline_aborts() {
        let s = busy(400);
        let config = MineConfig::new(0.2)
            .unwrap()
            .with_deadline(std::time::Duration::ZERO);
        let mut src = MemorySource::new(&s);
        let err = mine_hitset_streaming(&mut src, 8, &config).unwrap_err();
        assert!(matches!(err, Error::DeadlineExceeded { .. }), "got {err:?}");
        assert_eq!(err.partial_stats().unwrap().series_scans, 1);
    }

    #[test]
    fn resumable_clean_run_matches_one_shot() {
        let s = busy(400);
        let config = MineConfig::new(0.2).unwrap();
        let mut src = MemorySource::new(&s);
        let expect = mine_hitset_streaming(&mut src, 8, &config).unwrap();

        let mut src = MemorySource::new(&s);
        let mut miner = ResumableHitsetMiner::start(&mut src, 8, &config).unwrap();
        assert_eq!(miner.segment_count(), 50);
        assert_eq!(miner.segments_done(), 0);
        miner.run_scan2(&mut src).unwrap();
        assert!(miner.scan2_complete());
        let got = miner.finish();
        assert_eq!(got.frequent, expect.frequent);
        assert_eq!(
            got.stats, expect.stats,
            "clean resumable run is bit-identical"
        );
    }

    #[test]
    fn resumable_interrupted_scan2_keeps_segment_progress() {
        use ppm_timeseries::{Fault, FaultInjectingSource, FaultPlan};

        let s = busy(400);
        let config = MineConfig::new(0.2).unwrap();
        let mut clean = MemorySource::new(&s);
        let expect = mine_hitset_streaming(&mut clean, 8, &config).unwrap();

        // Attempt 0 is scan 1 (clean); attempt 1 — the first scan-2 pass —
        // dies after 303 instants (37 whole segments of period 8).
        let plan = FaultPlan::new().fail_scan(1, Fault::ShortRead { instants: 303 });
        let mut src = FaultInjectingSource::new(MemorySource::new(&s), plan);

        let mut miner = ResumableHitsetMiner::start(&mut src, 8, &config).unwrap();
        let err = miner.run_scan2(&mut src).unwrap_err();
        assert!(err.is_transient());
        assert_eq!(miner.segments_done(), 37, "progress survives the failure");
        assert!(!miner.scan2_complete());

        // The retry pass completes the remaining segments without
        // re-inserting the first 37.
        miner.run_scan2(&mut src).unwrap();
        assert!(miner.scan2_complete());
        let got = miner.finish();
        assert_eq!(got.frequent, expect.frequent);
        assert_eq!(got.stats.hit_insertions, expect.stats.hit_insertions);
        assert_eq!(
            got.stats.series_scans, 3,
            "scan 1 + two physical scan-2 passes"
        );
    }

    #[test]
    fn resumable_run_after_completion_is_a_no_op() {
        let s = busy(80);
        let config = MineConfig::new(0.2).unwrap();
        let mut src = MemorySource::new(&s);
        let mut miner = ResumableHitsetMiner::start(&mut src, 8, &config).unwrap();
        miner.run_scan2(&mut src).unwrap();
        let scans = src.scans_performed();
        miner.run_scan2(&mut src).unwrap();
        assert_eq!(src.scans_performed(), scans, "no extra physical scan");
        assert_eq!(miner.finish().stats.series_scans, 2);
    }
}
