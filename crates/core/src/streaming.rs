//! Out-of-core mining over a [`SeriesSource`].
//!
//! §5 of the paper: "In general, the time series of features may need to be
//! stored on disk … there would be a large amount of extra disk-IO
//! associated with Apriori, but not with max-subpattern hit-set since it
//! only requires two scans." These miners make that claim testable: they
//! consume any [`SeriesSource`] — in particular the disk-streaming
//! [`ppm_timeseries::storage::stream::FileSource`] — and *every* pass over
//! the data is a physical re-scan of the source. The reported
//! `stats.series_scans` is taken from the source itself.
//!
//! Results are identical to the in-memory miners (tested); only the data
//! movement differs.

use std::collections::HashMap;

use ppm_timeseries::{FeatureId, SeriesSource};

use crate::apriori::{for_each_combination, join_candidates};
use crate::error::{Error, Result};
use crate::hitset::derive::{derive_frequent, CountStrategy};
use crate::hitset::MaxSubpatternTree;
use crate::letters::{Alphabet, LetterSet};
use crate::result::{FrequentPattern, MiningResult};
use crate::scan::{MineConfig, Scan1};
use crate::stats::MiningStats;

/// Scan 1 over a source: one physical pass.
pub fn scan_frequent_letters_streaming(
    source: &mut dyn SeriesSource,
    period: usize,
    config: &MineConfig,
) -> Result<Scan1> {
    let n = source.instant_count();
    if period == 0 || period > n {
        return Err(Error::InvalidPeriod { period, series_len: n });
    }
    let m = n / period;
    let usable = m * period;
    let min_count = config.min_count(m);

    let mut counts: HashMap<(u32, FeatureId), u64> = HashMap::new();
    source.scan(&mut |t, features| {
        if t < usable {
            let offset = (t % period) as u32;
            for &f in features {
                *counts.entry((offset, f)).or_insert(0) += 1;
            }
        }
    })?;

    let alphabet = Alphabet::new(
        period,
        counts
            .iter()
            .filter(|&(_, &c)| c >= min_count)
            .map(|(&(o, f), _)| (o as usize, f)),
    );
    let letter_counts = (0..alphabet.len())
        .map(|i| {
            let (o, f) = alphabet.letter(i);
            counts[&(o as u32, f)]
        })
        .collect();
    Ok(Scan1 { alphabet, letter_counts, segment_count: m, min_count })
}

/// Algorithm 3.2 over a source: exactly two physical passes.
pub fn mine_hitset_streaming(
    source: &mut dyn SeriesSource,
    period: usize,
    config: &MineConfig,
) -> Result<MiningResult> {
    let scans_before = source.scans_performed();
    let scan1 = scan_frequent_letters_streaming(source, period, config)?;
    let m = scan1.segment_count;
    let usable = m * period;

    // Pass 2: segment hits straight into the tree.
    let mut tree = MaxSubpatternTree::new(scan1.alphabet.full_set());
    {
        let mut hit = scan1.alphabet.empty_set();
        let alphabet = &scan1.alphabet;
        let tree = &mut tree;
        source.scan(&mut |t, features| {
            if t >= usable {
                return;
            }
            let offset = t % period;
            alphabet.project_instant(offset, features, &mut hit);
            if offset == period - 1 {
                if hit.len() >= 2 {
                    tree.insert(&hit);
                }
                hit.clear();
            }
        })?;
    }

    let mut stats = MiningStats {
        series_scans: source.scans_performed() - scans_before,
        max_level: 1,
        tree_nodes: tree.node_count(),
        distinct_hits: tree.distinct_hits(),
        hit_insertions: tree.total_hits(),
        ..Default::default()
    };

    let n_letters = scan1.alphabet.len();
    let mut frequent: Vec<FrequentPattern> = scan1
        .letter_counts
        .iter()
        .enumerate()
        .map(|(idx, &count)| FrequentPattern {
            letters: LetterSet::from_indices(n_letters, [idx]),
            count,
        })
        .collect();
    derive_frequent(&tree, &scan1, CountStrategy::default(), &mut frequent, &mut stats);

    let mut result = MiningResult {
        period,
        segment_count: m,
        min_confidence: config.min_confidence(),
        min_count: scan1.min_count,
        alphabet: scan1.alphabet,
        frequent,
        stats,
    };
    result.sort();
    Ok(result)
}

/// Algorithm 3.1 over a source: one physical pass per level.
pub fn mine_apriori_streaming(
    source: &mut dyn SeriesSource,
    period: usize,
    config: &MineConfig,
) -> Result<MiningResult> {
    let scans_before = source.scans_performed();
    let scan1 = scan_frequent_letters_streaming(source, period, config)?;
    let m = scan1.segment_count;
    let usable = m * period;
    let n_letters = scan1.alphabet.len();

    let mut stats = MiningStats { max_level: 1, ..Default::default() };
    let mut frequent: Vec<FrequentPattern> = scan1
        .letter_counts
        .iter()
        .enumerate()
        .map(|(idx, &count)| FrequentPattern {
            letters: LetterSet::from_indices(n_letters, [idx]),
            count,
        })
        .collect();

    let mut level: Vec<Vec<u32>> = (0..n_letters as u32).map(|i| vec![i]).collect();
    let mut k = 1;
    while !level.is_empty() {
        let candidates = join_candidates(&level);
        stats.candidates_generated += candidates.len() as u64;
        if candidates.is_empty() {
            break;
        }
        k += 1;
        stats.max_level = k;

        // One physical pass counting this level's candidates.
        let by_pattern: HashMap<&[u32], usize> =
            candidates.iter().enumerate().map(|(i, c)| (c.as_slice(), i)).collect();
        let candidate_sets: Vec<LetterSet> = candidates
            .iter()
            .map(|c| LetterSet::from_indices(n_letters, c.iter().map(|&l| l as usize)))
            .collect();
        let mut counts = vec![0u64; candidates.len()];
        {
            let alphabet = &scan1.alphabet;
            let mut projection = alphabet.empty_set();
            let mut proj_letters: Vec<u32> = Vec::new();
            let counts = &mut counts;
            let subset_tests = &mut stats.subset_tests;
            source.scan(&mut |t, features| {
                if t >= usable {
                    return;
                }
                let offset = t % period;
                alphabet.project_instant(offset, features, &mut projection);
                if offset == period - 1 {
                    let present = projection.len();
                    if present >= k {
                        let enumerate_cost = crate::apriori::binomial(present, k);
                        if enumerate_cost <= candidates.len() as u64 {
                            proj_letters.clear();
                            proj_letters.extend(projection.iter().map(|l| l as u32));
                            for_each_combination(&proj_letters, k, |combo| {
                                *subset_tests += 1;
                                if let Some(&i) = by_pattern.get(combo) {
                                    counts[i] += 1;
                                }
                            });
                        } else {
                            for (i, cset) in candidate_sets.iter().enumerate() {
                                *subset_tests += 1;
                                if cset.is_subset(&projection) {
                                    counts[i] += 1;
                                }
                            }
                        }
                    }
                    projection.clear();
                }
            })?;
        }

        let mut next_level = Vec::new();
        for (cand, count) in candidates.into_iter().zip(counts) {
            if count >= scan1.min_count {
                frequent.push(FrequentPattern {
                    letters: LetterSet::from_indices(
                        n_letters,
                        cand.iter().map(|&l| l as usize),
                    ),
                    count,
                });
                next_level.push(cand);
            }
        }
        level = next_level;
    }
    stats.series_scans = source.scans_performed() - scans_before;

    let mut result = MiningResult {
        period,
        segment_count: m,
        min_confidence: config.min_confidence(),
        min_count: scan1.min_count,
        alphabet: scan1.alphabet,
        frequent,
        stats,
    };
    result.sort();
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_timeseries::{FeatureSeries, MemorySource, SeriesBuilder};

    fn fid(i: u32) -> FeatureId {
        FeatureId::from_raw(i)
    }

    fn sample(n: usize) -> FeatureSeries {
        let mut b = SeriesBuilder::new();
        let mut x: u64 = 21;
        for t in 0..n {
            let mut inst = Vec::new();
            if t % 5 == 1 {
                inst.push(fid(0));
            }
            if t % 5 == 3 {
                inst.push(fid(1));
            }
            x = x.wrapping_mul(6364136223846793005).wrapping_add(9);
            if (x >> 61) == 0 {
                inst.push(fid(2));
            }
            b.push_instant(inst);
        }
        b.finish()
    }

    #[test]
    fn streaming_hitset_equals_in_memory() {
        let s = sample(600);
        let config = MineConfig::new(0.5).unwrap();
        let expect = crate::hitset::mine(&s, 5, &config).unwrap();
        let mut src = MemorySource::new(&s);
        let got = mine_hitset_streaming(&mut src, 5, &config).unwrap();
        assert_eq!(got.frequent, expect.frequent);
        assert_eq!(got.stats.series_scans, 2);
        assert_eq!(src.scans_performed(), 2);
    }

    #[test]
    fn streaming_apriori_equals_in_memory() {
        let s = sample(600);
        let config = MineConfig::new(0.5).unwrap();
        let expect = crate::apriori::mine(&s, 5, &config).unwrap();
        let mut src = MemorySource::new(&s);
        let got = mine_apriori_streaming(&mut src, 5, &config).unwrap();
        assert_eq!(got.frequent, expect.frequent);
        assert_eq!(got.stats.series_scans, expect.stats.series_scans);
        assert_eq!(src.scans_performed(), expect.stats.series_scans);
    }

    #[test]
    fn scan1_matches_in_memory() {
        let s = sample(300);
        let config = MineConfig::new(0.4).unwrap();
        let expect = crate::scan::scan_frequent_letters(&s, 5, &config).unwrap();
        let mut src = MemorySource::new(&s);
        let got = scan_frequent_letters_streaming(&mut src, 5, &config).unwrap();
        assert_eq!(got.alphabet, expect.alphabet);
        assert_eq!(got.letter_counts, expect.letter_counts);
        assert_eq!(got.segment_count, expect.segment_count);
    }

    #[test]
    fn rejects_bad_period() {
        let s = sample(10);
        let config = MineConfig::default();
        let mut src = MemorySource::new(&s);
        assert!(mine_hitset_streaming(&mut src, 0, &config).is_err());
        assert!(mine_hitset_streaming(&mut src, 11, &config).is_err());
    }
}
