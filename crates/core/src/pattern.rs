//! Symbolic partial periodic patterns.
//!
//! A pattern of period `p` is a string `s_1 … s_p` where each position is
//! either the don't-care `*` or a non-empty set of features (paper §2). A
//! non-`*` position is a **conjunction**: the segment instant must contain
//! *all* listed features. `a{b1,b2}*d*` from the paper's Figure 1 is a
//! period-5 pattern whose second position requires both `b1` and `b2`.
//!
//! [`Pattern`] is the human-facing form: it keeps feature ids and converts
//! to and from the dense [`LetterSet`](crate::LetterSet) encoding the
//! algorithms use internally, and to and from text.
//!
//! # Text syntax
//!
//! Positions are whitespace-separated; each position is `*`, a bare feature
//! name, or a brace-set `{name1,name2}`:
//!
//! ```text
//! a {b1,b2} * d *
//! ```

use std::fmt;

use ppm_timeseries::{FeatureCatalog, FeatureId, Segment};

use crate::error::{Error, Result};
use crate::letters::{Alphabet, LetterSet};

/// One position of a pattern: `*` or a non-empty conjunction of features.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Symbol {
    /// The don't-care position, matching any feature set.
    Star,
    /// A conjunction of features (sorted, deduplicated, non-empty): the
    /// instant must contain all of them.
    Letters(Vec<FeatureId>),
}

impl Symbol {
    /// Builds a letters symbol, sorting and deduplicating; empty input
    /// yields [`Symbol::Star`] (an empty conjunction matches everything).
    pub fn letters(features: impl IntoIterator<Item = FeatureId>) -> Symbol {
        let mut v: Vec<FeatureId> = features.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        if v.is_empty() {
            Symbol::Star
        } else {
            Symbol::Letters(v)
        }
    }

    /// Whether this is the don't-care symbol.
    pub fn is_star(&self) -> bool {
        matches!(self, Symbol::Star)
    }

    /// The features at this position (`empty` for `*`).
    pub fn features(&self) -> &[FeatureId] {
        match self {
            Symbol::Star => &[],
            Symbol::Letters(v) => v,
        }
    }

    /// Whether the instant feature set `instant` satisfies this symbol.
    pub fn matches(&self, instant: &[FeatureId]) -> bool {
        match self {
            Symbol::Star => true,
            Symbol::Letters(v) => v.iter().all(|f| instant.binary_search(f).is_ok()),
        }
    }
}

/// A partial periodic pattern: one [`Symbol`] per offset of the period.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Pattern {
    symbols: Vec<Symbol>,
}

impl Pattern {
    /// Builds a pattern from symbols. The period is `symbols.len()`.
    pub fn new(symbols: Vec<Symbol>) -> Pattern {
        Pattern { symbols }
    }

    /// The all-`*` pattern of period `p` (matches every segment).
    pub fn all_star(p: usize) -> Pattern {
        Pattern {
            symbols: vec![Symbol::Star; p],
        }
    }

    /// The pattern's period `p`.
    pub fn period(&self) -> usize {
        self.symbols.len()
    }

    /// The symbols, one per offset.
    pub fn symbols(&self) -> &[Symbol] {
        &self.symbols
    }

    /// The L-length: the number of non-`*` positions (paper §2).
    pub fn l_length(&self) -> usize {
        self.symbols.iter().filter(|s| !s.is_star()).count()
    }

    /// Total number of letters (feature occurrences across positions).
    /// `a{b1,b2}*d*` has L-length 3 but 4 letters.
    pub fn letter_count(&self) -> usize {
        self.symbols.iter().map(|s| s.features().len()).sum()
    }

    /// Whether `self` is a subpattern of `other` (paper §2): same period,
    /// and at every position `self`'s features ⊆ `other`'s features (with
    /// `*` as the empty set).
    pub fn is_subpattern_of(&self, other: &Pattern) -> bool {
        self.period() == other.period()
            && self
                .symbols
                .iter()
                .zip(&other.symbols)
                .all(|(a, b)| match (a, b) {
                    (Symbol::Star, _) => true,
                    (Symbol::Letters(_), Symbol::Star) => false,
                    (Symbol::Letters(x), Symbol::Letters(y)) => {
                        x.iter().all(|f| y.binary_search(f).is_ok())
                    }
                })
    }

    /// Whether this pattern is true in (matches) `segment` (paper §2).
    ///
    /// # Panics
    /// Panics if the segment's period differs from the pattern's.
    pub fn matches_segment(&self, segment: &Segment<'_>) -> bool {
        assert_eq!(
            segment.period(),
            self.period(),
            "segment period {} != pattern period {}",
            segment.period(),
            self.period()
        );
        self.symbols
            .iter()
            .enumerate()
            .all(|(o, sym)| sym.matches(segment.at(o)))
    }

    /// Encodes this pattern as a [`LetterSet`] over `alphabet`. Returns
    /// `None` if any letter is not in the alphabet (i.e. the pattern is not
    /// a subpattern of `C_max` and therefore cannot be frequent).
    pub fn to_letter_set(&self, alphabet: &Alphabet) -> Option<LetterSet> {
        if self.period() != alphabet.period() {
            return None;
        }
        let mut set = alphabet.empty_set();
        for (offset, sym) in self.symbols.iter().enumerate() {
            for &f in sym.features() {
                set.insert(alphabet.index_of(offset, f)?);
            }
        }
        Some(set)
    }

    /// Decodes a [`LetterSet`] over `alphabet` back into a symbolic pattern.
    pub fn from_letter_set(alphabet: &Alphabet, set: &LetterSet) -> Pattern {
        let mut per_offset: Vec<Vec<FeatureId>> = vec![Vec::new(); alphabet.period()];
        for idx in set.iter() {
            let (offset, f) = alphabet.letter(idx);
            per_offset[offset].push(f);
        }
        Pattern {
            symbols: per_offset.into_iter().map(Symbol::letters).collect(),
        }
    }

    /// Parses the text syntax (see module docs), interning names.
    pub fn parse(text: &str, catalog: &mut FeatureCatalog) -> Result<Pattern> {
        let mut symbols = Vec::new();
        for tok in text.split_whitespace() {
            if tok == "*" {
                symbols.push(Symbol::Star);
            } else if let Some(inner) = tok.strip_prefix('{') {
                let inner = inner.strip_suffix('}').ok_or_else(|| Error::PatternParse {
                    detail: format!("unterminated brace set {tok:?}"),
                })?;
                let feats: Vec<FeatureId> = inner
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(|name| catalog.intern(name))
                    .collect();
                if feats.is_empty() {
                    return Err(Error::PatternParse {
                        detail: format!("empty brace set {tok:?}"),
                    });
                }
                symbols.push(Symbol::letters(feats));
            } else if tok.contains('}') || tok.contains(',') {
                return Err(Error::PatternParse {
                    detail: format!("malformed position token {tok:?}"),
                });
            } else {
                symbols.push(Symbol::Letters(vec![catalog.intern(tok)]));
            }
        }
        if symbols.is_empty() {
            return Err(Error::PatternParse {
                detail: "empty pattern".into(),
            });
        }
        Ok(Pattern { symbols })
    }

    /// Renders the pattern with names from `catalog` (see module docs for
    /// the syntax). Unknown ids render as `f{raw}` placeholders.
    pub fn display<'a>(&'a self, catalog: &'a FeatureCatalog) -> PatternDisplay<'a> {
        PatternDisplay {
            pattern: self,
            catalog,
        }
    }

    /// Renders in the paper's compact juxtaposed style (`a{b1,b2}*d*`):
    /// positions are not separated. Only unambiguous for single-character
    /// feature names; intended for small didactic examples.
    pub fn display_compact(&self, catalog: &FeatureCatalog) -> String {
        let mut out = String::new();
        for sym in &self.symbols {
            match sym {
                Symbol::Star => out.push('*'),
                Symbol::Letters(v) if v.len() == 1 => {
                    out.push_str(&catalog.name_or_placeholder(v[0]));
                }
                Symbol::Letters(v) => {
                    out.push('{');
                    for (i, f) in v.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push_str(&catalog.name_or_placeholder(*f));
                    }
                    out.push('}');
                }
            }
        }
        out
    }
}

/// Display adapter returned by [`Pattern::display`].
pub struct PatternDisplay<'a> {
    pattern: &'a Pattern,
    catalog: &'a FeatureCatalog,
}

impl fmt::Display for PatternDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, sym) in self.pattern.symbols.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            match sym {
                Symbol::Star => f.write_str("*")?,
                Symbol::Letters(v) if v.len() == 1 => {
                    f.write_str(&self.catalog.name_or_placeholder(v[0]))?;
                }
                Symbol::Letters(v) => {
                    f.write_str("{")?;
                    for (j, feat) in v.iter().enumerate() {
                        if j > 0 {
                            f.write_str(",")?;
                        }
                        f.write_str(&self.catalog.name_or_placeholder(*feat))?;
                    }
                    f.write_str("}")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_timeseries::SeriesBuilder;

    fn fid(i: u32) -> FeatureId {
        FeatureId::from_raw(i)
    }

    #[test]
    fn symbol_letters_normalizes() {
        let s = Symbol::letters([fid(3), fid(1), fid(3)]);
        assert_eq!(s.features(), &[fid(1), fid(3)]);
        assert!(Symbol::letters([]).is_star());
    }

    #[test]
    fn symbol_matching_is_conjunctive() {
        let s = Symbol::letters([fid(1), fid(3)]);
        assert!(s.matches(&[fid(0), fid(1), fid(3)]));
        assert!(!s.matches(&[fid(1)]));
        assert!(Symbol::Star.matches(&[]));
    }

    #[test]
    fn l_length_and_letter_count() {
        // a {b1,b2} * d *  — the paper's Figure 1 root.
        let p = Pattern::new(vec![
            Symbol::letters([fid(0)]),
            Symbol::letters([fid(1), fid(2)]),
            Symbol::Star,
            Symbol::letters([fid(3)]),
            Symbol::Star,
        ]);
        assert_eq!(p.period(), 5);
        assert_eq!(p.l_length(), 3);
        assert_eq!(p.letter_count(), 4);
        assert_eq!(Pattern::all_star(4).l_length(), 0);
    }

    #[test]
    fn subpattern_relation_matches_paper_example() {
        // From §2: a*b* and a**{b,c} are subpatterns of a{b,c}b{d,e}... we
        // use the simpler canonical checks here.
        let mut cat = FeatureCatalog::new();
        let sup = Pattern::parse("a {b,c} b {d,e}", &mut cat).unwrap();
        let sub1 = Pattern::parse("a * b *", &mut cat).unwrap();
        let sub2 = Pattern::parse("a * * {d,e}", &mut cat).unwrap();
        let not_sub = Pattern::parse("a d b *", &mut cat).unwrap();
        assert!(sub1.is_subpattern_of(&sup));
        assert!(sub2.is_subpattern_of(&sup));
        assert!(!not_sub.is_subpattern_of(&sup));
        assert!(!sup.is_subpattern_of(&sub1));
        assert!(sup.is_subpattern_of(&sup));
        // Different periods are never subpatterns.
        let short = Pattern::parse("a *", &mut cat).unwrap();
        assert!(!short.is_subpattern_of(&sup));
    }

    #[test]
    fn matches_segment_per_paper_example_2_1() {
        // §2 Example 2.1: pattern a*b has frequency count 2 in a{b,c}baebaced.
        let mut cat = FeatureCatalog::new();
        let a = cat.intern("a");
        let b = cat.intern("b");
        let c = cat.intern("c");
        let e = cat.intern("e");
        let d = cat.intern("d");
        let mut builder = SeriesBuilder::new();
        // a {b,c} b | a e b | a c e | d
        builder.push_instant([a]);
        builder.push_instant([b, c]);
        builder.push_instant([b]);
        builder.push_instant([a]);
        builder.push_instant([e]);
        builder.push_instant([b]);
        builder.push_instant([a]);
        builder.push_instant([c]);
        builder.push_instant([e]);
        builder.push_instant([d]);
        let series = builder.finish();
        let segs = series.segments(3).unwrap();
        assert_eq!(segs.count(), 3);

        let mut cat2 = cat.clone();
        let pat = Pattern::parse("a * b", &mut cat2).unwrap();
        let matches: usize = segs.iter().filter(|s| pat.matches_segment(s)).count();
        assert_eq!(matches, 2);

        // §2: frequency of a** in the same series is 3.
        let pat2 = Pattern::parse("a * *", &mut cat2).unwrap();
        assert_eq!(segs.iter().filter(|s| pat2.matches_segment(s)).count(), 3);
    }

    #[test]
    fn letter_set_round_trip() {
        let alpha = Alphabet::new(3, [(0, fid(1)), (1, fid(2)), (1, fid(3)), (2, fid(4))]);
        let p = Pattern::new(vec![
            Symbol::letters([fid(1)]),
            Symbol::letters([fid(2), fid(3)]),
            Symbol::Star,
        ]);
        let set = p.to_letter_set(&alpha).unwrap();
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        let back = Pattern::from_letter_set(&alpha, &set);
        assert_eq!(back, p);
    }

    #[test]
    fn to_letter_set_rejects_foreign_letters() {
        let alpha = Alphabet::new(2, [(0, fid(1))]);
        let p = Pattern::new(vec![Symbol::letters([fid(9)]), Symbol::Star]);
        assert!(p.to_letter_set(&alpha).is_none());
        // Period mismatch also rejects.
        let p2 = Pattern::new(vec![Symbol::letters([fid(1)])]);
        assert!(p2.to_letter_set(&alpha).is_none());
    }

    #[test]
    fn parse_and_display_round_trip() {
        let mut cat = FeatureCatalog::new();
        let p = Pattern::parse("a {b1,b2} * d *", &mut cat).unwrap();
        assert_eq!(p.period(), 5);
        assert_eq!(p.l_length(), 3);
        let text = p.display(&cat).to_string();
        assert_eq!(text, "a {b1,b2} * d *");
        let p2 = Pattern::parse(&text, &mut cat).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn compact_display_matches_paper_style() {
        let mut cat = FeatureCatalog::new();
        let p = Pattern::parse("a {b1,b2} * d *", &mut cat).unwrap();
        assert_eq!(p.display_compact(&cat), "a{b1,b2}*d*");
    }

    #[test]
    fn parse_rejects_malformed_input() {
        let mut cat = FeatureCatalog::new();
        assert!(Pattern::parse("", &mut cat).is_err());
        assert!(Pattern::parse("{a", &mut cat).is_err());
        assert!(Pattern::parse("{}", &mut cat).is_err());
        assert!(Pattern::parse("a}b", &mut cat).is_err());
        assert!(Pattern::parse("a,b", &mut cat).is_err());
    }

    #[test]
    #[should_panic(expected = "segment period")]
    fn matches_segment_rejects_period_mismatch() {
        let mut b = SeriesBuilder::new();
        for _ in 0..4 {
            b.push_instant([fid(0)]);
        }
        let series = b.finish();
        let segs = series.segments(2).unwrap();
        Pattern::all_star(3).matches_segment(&segs.segment(0));
    }

    #[test]
    fn all_star_matches_everything() {
        let mut b = SeriesBuilder::new();
        for t in 0..6u32 {
            b.push_instant([fid(t)]);
        }
        let series = b.finish();
        let segs = series.segments(3).unwrap();
        let star = Pattern::all_star(3);
        assert!(segs.iter().all(|s| star.matches_segment(&s)));
        assert_eq!(star.letter_count(), 0);
    }

    #[test]
    fn parse_rejects_space_inside_braces() {
        // Whitespace splits tokens, so "{x, y}" becomes the unterminated
        // token "{x," — it must be rejected, not silently misparsed.
        let mut cat = FeatureCatalog::new();
        assert!(Pattern::parse("{x, y} *", &mut cat).is_err());
        // The no-space form is the supported spelling.
        assert!(Pattern::parse("{x,y} *", &mut cat).is_ok());
    }
}
