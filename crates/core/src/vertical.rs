//! The vertical (columnar) counting engine.
//!
//! The hit-set method (paper Algorithm 3.2) pays for its two-scan guarantee
//! in the derivation phase: one pruned trie traversal per Apriori
//! candidate. This module transposes that work. During scan 2 it
//! materializes, for each frequent letter, a **segment bitmap** — bit `j`
//! set iff whole segment `j` contains the letter — so the frequency of any
//! k-letter candidate is a k-way AND over `⌈m/64⌉` words followed by a
//! popcount. The frequent set is identical to the hit-set and Apriori
//! miners' (Property 3.1 is independent of how counting is done); only the
//! counting substrate changes.
//!
//! Memory: `n_L` bitmaps of `m` bits — `n_L · m / 8` bytes, reported via
//! the `vertical.bitmap_bytes` gauge. For the alphabet sizes the paper
//! works with this is a few words per segment, far below the series
//! itself.
//!
//! The same structure doubles as a *weighted* transpose of the
//! max-subpattern tree ([`VerticalIndex::from_tree`]): columns become the
//! tree's distinct hits and each column carries the hit's count, which is
//! what [`CountStrategy::Vertical`](crate::hitset::derive::CountStrategy)
//! plugs into the tree-based miner's derivation.

use ppm_timeseries::{EncodedSeries, EncodedSeriesView, FeatureSeries};

use crate::error::Result;
use crate::guard::{ResourceGuard, DEADLINE_CHECK_INTERVAL};
use crate::hitset::derive::derive_frequent_with;
use crate::hitset::tree::MaxSubpatternTree;
use crate::letters::{Alphabet, LetterSet};
use crate::result::{FrequentPattern, MiningResult};
use crate::rows::Rows;
use crate::scan::{scan_frequent_letters_rows, MineConfig, Scan1};
use crate::stats::MiningStats;

/// Per-letter column bitmaps over a set of counting columns.
///
/// Built either over *segments* (unweighted: each column is one whole
/// period segment) or over the *distinct hits of a max-subpattern tree*
/// (weighted: each column carries the hit's stored count).
#[derive(Debug, Clone)]
pub struct VerticalIndex {
    n_letters: usize,
    n_columns: usize,
    words_per_row: usize,
    /// Row-major: `words[letter * words_per_row + w]`.
    words: Vec<u64>,
    /// Column weights for tree transposes; `None` ⇒ every column counts 1.
    weights: Option<Vec<u64>>,
}

impl VerticalIndex {
    /// An all-zero index of `n_letters` rows over `n_columns` columns.
    pub(crate) fn with_columns(n_letters: usize, n_columns: usize) -> Self {
        let words_per_row = n_columns.div_ceil(64);
        VerticalIndex {
            n_letters,
            n_columns,
            words_per_row,
            words: vec![0u64; n_letters * words_per_row],
            weights: None,
        }
    }

    /// Sets bit `col` in `letter`'s bitmap.
    #[inline]
    fn set(&mut self, letter: usize, col: usize) {
        self.words[letter * self.words_per_row + col / 64] |= 1u64 << (col % 64);
    }

    /// Projects segments `segments.start..segments.end` of `rows` onto
    /// `alphabet` and sets the matching column bits — the chunked building
    /// block the parallel miner partitions across workers.
    pub(crate) fn fill_segments(
        &mut self,
        rows: Rows<'_>,
        alphabet: &Alphabet,
        segments: std::ops::Range<usize>,
    ) {
        let period = alphabet.period();
        let mut hit = alphabet.empty_set();
        for j in segments {
            hit.clear();
            for offset in 0..period {
                rows.project(alphabet, offset, j * period + offset, &mut hit);
            }
            for letter in hit.iter() {
                self.set(letter, j);
            }
        }
    }

    /// Scan 2 of the vertical engine: one pass over the whole segments,
    /// building every letter's segment bitmap. The deadline guard fires
    /// once per [`DEADLINE_CHECK_INTERVAL`] segments, like the tree build.
    pub(crate) fn from_segments(
        rows: Rows<'_>,
        scan1: &Scan1,
        stats: &MiningStats,
        guard: &ResourceGuard,
    ) -> Result<Self> {
        let m = scan1.segment_count;
        let mut index = Self::with_columns(scan1.alphabet.len(), m);
        let mut start = 0usize;
        while start < m {
            let end = (start + DEADLINE_CHECK_INTERVAL).min(m);
            index.fill_segments(rows, &scan1.alphabet, start..end);
            ppm_observe::counter("vertical.segments", (end - start) as u64);
            if guard.deadline_exceeded() {
                return Err(guard.deadline_error(stats));
            }
            start = end;
        }
        Ok(index)
    }

    /// The weighted transpose of `tree`'s distinct hits: one column per
    /// counted node, carrying the node's count. Counting a candidate
    /// against this index equals summing the counts of its superpattern
    /// hits — the same total the trie traversal computes.
    pub fn from_tree(tree: &MaxSubpatternTree) -> Self {
        let nodes: Vec<(&LetterSet, u64)> = tree.counted_nodes().collect();
        let mut index = Self::with_columns(tree.c_max().universe(), nodes.len());
        let mut weights = Vec::with_capacity(nodes.len());
        for (col, (pattern, count)) in nodes.iter().enumerate() {
            for letter in pattern.iter() {
                index.set(letter, col);
            }
            weights.push(*count);
        }
        index.weights = Some(weights);
        index
    }

    /// ORs a partial index (same geometry, disjoint column ranges) into
    /// self — how the parallel miner merges per-worker bitmaps.
    pub(crate) fn or_merge(&mut self, other: &VerticalIndex) {
        debug_assert_eq!(self.n_letters, other.n_letters);
        debug_assert_eq!(self.n_columns, other.n_columns);
        debug_assert!(self.weights.is_none() && other.weights.is_none());
        for (a, &b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    /// The number of columns whose pattern is a superpattern of `p`,
    /// weighted by column weight — i.e. `p`'s frequency count.
    pub fn count(&self, p: &LetterSet) -> u64 {
        let mut and_ops = 0u64;
        self.count_with(p, &mut and_ops)
    }

    /// [`Self::count`], accumulating the number of word-level AND/popcount
    /// operations into `and_ops` (surfaced as the `vertical.and_ops`
    /// gauge).
    pub fn count_with(&self, p: &LetterSet, and_ops: &mut u64) -> u64 {
        debug_assert_eq!(p.universe(), self.n_letters);
        let letters: Vec<usize> = p.iter().collect();
        let Some((&first, rest)) = letters.split_first() else {
            // The empty pattern is a subpattern of every column.
            return match &self.weights {
                Some(ws) => ws.iter().sum(),
                None => self.n_columns as u64,
            };
        };
        let mut total = 0u64;
        for w in 0..self.words_per_row {
            let mut acc = self.words[first * self.words_per_row + w];
            *and_ops += 1;
            for &l in rest {
                if acc == 0 {
                    break;
                }
                acc &= self.words[l * self.words_per_row + w];
                *and_ops += 1;
            }
            match &self.weights {
                None => total += u64::from(acc.count_ones()),
                Some(ws) => {
                    let mut bits = acc;
                    while bits != 0 {
                        let b = bits.trailing_zeros() as usize;
                        total += ws[w * 64 + b];
                        bits &= bits - 1;
                    }
                }
            }
        }
        total
    }

    /// Number of letter rows.
    pub fn n_letters(&self) -> usize {
        self.n_letters
    }

    /// Number of counting columns (segments, or distinct tree hits).
    pub fn n_columns(&self) -> usize {
        self.n_columns
    }

    /// Index size in bytes: bitmap words plus any column weights.
    pub fn bitmap_bytes(&self) -> usize {
        let weight_bytes = self.weights.as_ref().map_or(0, |w| w.len() * 8);
        self.words.len() * 8 + weight_bytes
    }
}

/// Mines all frequent partial periodic patterns of `period` in `series`
/// with the vertical engine: scan 1 as in Algorithm 3.2, then a second
/// scan that builds per-letter segment bitmaps instead of a max-subpattern
/// tree, and a derivation phase of word-wide AND + popcount per candidate.
///
/// Exactly two scans of the series, like the hit-set miner, and the same
/// result bit for bit — the audit cross-check enforces this.
pub fn mine_vertical(
    series: &FeatureSeries,
    period: usize,
    config: &MineConfig,
) -> Result<MiningResult> {
    mine_vertical_impl(Rows::Series(series), period, config)
}

/// [`mine_vertical`] over a borrowed bitmap view — the zero-materialization
/// path for columnar (`.ppmc`) input: both scans probe the packed rows
/// directly, so no [`FeatureSeries`] is ever built.
pub fn mine_vertical_view(
    view: EncodedSeriesView<'_>,
    period: usize,
    config: &MineConfig,
) -> Result<MiningResult> {
    mine_vertical_impl(Rows::View(view), period, config)
}

/// [`mine_vertical`] reusing a pre-built [`EncodedSeries`] cache, so
/// callers mining several periods (or re-mining for an audit) skip the
/// per-period merge walk over raw feature slices.
///
/// # Panics
/// Panics if `encoded` does not cover exactly the instants of `series`
/// (an internal contract: build it with [`EncodedSeries::encode`]).
pub fn mine_vertical_encoded(
    series: &FeatureSeries,
    encoded: &EncodedSeries,
    period: usize,
    config: &MineConfig,
) -> Result<MiningResult> {
    assert_eq!(
        encoded.len(),
        series.len(),
        "encoded cache must cover the series"
    );
    mine_vertical_impl(Rows::View(encoded.view()), period, config)
}

fn mine_vertical_impl(rows: Rows<'_>, period: usize, config: &MineConfig) -> Result<MiningResult> {
    let _mine_span = ppm_observe::span("vertical.mine");
    let guard = ResourceGuard::new(config);

    // Scan 1: frequent 1-patterns and C_max (shared with the other engines).
    let scan1 = {
        let _span = ppm_observe::span("vertical.scan1");
        scan_frequent_letters_rows(rows, period, config)?
    };
    ppm_observe::gauge("vertical.segments_total", scan1.segment_count as u64);
    ppm_observe::gauge("vertical.f1_letters", scan1.alphabet.len() as u64);
    let mut stats = MiningStats {
        series_scans: 1,
        max_level: 1,
        ..Default::default()
    };
    guard.check_deadline(&stats)?;

    // Scan 2: per-letter segment bitmaps instead of a tree.
    let index = {
        let _span = ppm_observe::span("vertical.scan2");
        VerticalIndex::from_segments(rows, &scan1, &stats, &guard)?
    };
    stats.series_scans += 1;
    ppm_observe::gauge("vertical.bitmap_bytes", index.bitmap_bytes() as u64);

    // Derivation: 1-letter counts from scan 1, the rest by AND + popcount.
    let frequent = {
        let _span = ppm_observe::span("vertical.derive");
        derive_vertical(&index, &scan1, &mut stats)
    };

    let mut result = MiningResult {
        period,
        segment_count: scan1.segment_count,
        min_confidence: config.min_confidence(),
        min_count: scan1.min_count,
        alphabet: scan1.alphabet,
        frequent,
        stats,
    };
    result.sort();
    Ok(result)
}

/// The vertical derivation phase: seeds the 1-letter patterns from scan-1
/// counts, then runs the level-wise loop against `index`. Shared by the
/// sequential and parallel vertical miners.
pub(crate) fn derive_vertical(
    index: &VerticalIndex,
    scan1: &Scan1,
    stats: &mut MiningStats,
) -> Vec<FrequentPattern> {
    let n_letters = scan1.alphabet.len();
    let mut frequent: Vec<FrequentPattern> = scan1
        .letter_counts
        .iter()
        .enumerate()
        .map(|(idx, &count)| FrequentPattern {
            letters: LetterSet::from_indices(n_letters, [idx]),
            count,
        })
        .collect();
    let mut and_ops = 0u64;
    derive_frequent_with(
        |p| index.count_with(p, &mut and_ops),
        scan1,
        &mut frequent,
        stats,
    );
    ppm_observe::gauge("vertical.and_ops", and_ops);
    frequent
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_timeseries::{FeatureCatalog, FeatureId, SeriesBuilder};

    use crate::error::Error;
    use crate::pattern::Pattern;
    use crate::scan_frequent_letters;

    fn fid(i: u32) -> FeatureId {
        FeatureId::from_raw(i)
    }

    /// The paper's §2 example series "a{b,c}b aeb ace d", period 3.
    fn example_series(cat: &mut FeatureCatalog) -> FeatureSeries {
        let a = cat.intern("a");
        let b = cat.intern("b");
        let c = cat.intern("c");
        let e = cat.intern("e");
        let d = cat.intern("d");
        let mut builder = SeriesBuilder::new();
        builder.push_instant([a]);
        builder.push_instant([b, c]);
        builder.push_instant([b]);
        builder.push_instant([a]);
        builder.push_instant([e]);
        builder.push_instant([b]);
        builder.push_instant([a]);
        builder.push_instant([c]);
        builder.push_instant([e]);
        builder.push_instant([d]);
        builder.finish()
    }

    fn busy_series(n: usize, features: u32) -> FeatureSeries {
        let mut b = SeriesBuilder::new();
        let mut x: u64 = 7;
        for _ in 0..n {
            let mut inst = Vec::new();
            for f in 0..features {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                if (x >> 33).is_multiple_of(2) {
                    inst.push(fid(f));
                }
            }
            b.push_instant(inst);
        }
        b.finish()
    }

    #[test]
    fn mines_paper_example_identically_to_hitset() {
        let mut cat = FeatureCatalog::new();
        let series = example_series(&mut cat);
        let config = MineConfig::new(0.6).unwrap();
        let vertical = mine_vertical(&series, 3, &config).unwrap();
        let hitset = crate::hitset::mine(&series, 3, &config).unwrap();
        assert_eq!(vertical.frequent, hitset.frequent);
        assert_eq!(vertical.segment_count, hitset.segment_count);
        assert_eq!(vertical.min_count, hitset.min_count);
        let a_star_b = Pattern::parse("a * b", &mut cat).unwrap();
        assert_eq!(vertical.count_of(&a_star_b), Some(2));
    }

    #[test]
    fn two_scans_and_no_tree() {
        let series = busy_series(600, 4);
        let result = mine_vertical(&series, 6, &MineConfig::new(0.3).unwrap()).unwrap();
        assert_eq!(result.stats.series_scans, 2);
        assert_eq!(result.stats.tree_nodes, 0);
        assert_eq!(result.stats.distinct_hits, 0);
        assert_eq!(result.stats.hit_insertions, 0);
        assert!(result.stats.subset_tests > 0);
    }

    #[test]
    fn matches_hitset_on_busy_series() {
        for (n, p, conf) in [(400, 8, 0.2), (600, 6, 0.4), (900, 5, 0.6)] {
            let series = busy_series(n, 4);
            let config = MineConfig::new(conf).unwrap();
            let vertical = mine_vertical(&series, p, &config).unwrap();
            let hitset = crate::hitset::mine(&series, p, &config).unwrap();
            assert_eq!(vertical.frequent, hitset.frequent, "n={n} p={p}");
        }
    }

    #[test]
    fn encoded_cache_changes_nothing() {
        let series = busy_series(500, 4);
        let encoded = EncodedSeries::encode(&series);
        let config = MineConfig::new(0.3).unwrap();
        let plain = mine_vertical(&series, 5, &config).unwrap();
        let cached = mine_vertical_encoded(&series, &encoded, 5, &config).unwrap();
        assert_eq!(plain.frequent, cached.frequent);
        assert_eq!(plain.stats, cached.stats);
    }

    #[test]
    fn view_mine_equals_series_mine() {
        let series = busy_series(500, 4);
        let encoded = EncodedSeries::encode(&series);
        let config = MineConfig::new(0.3).unwrap();
        for p in [3, 5, 8] {
            let plain = mine_vertical(&series, p, &config).unwrap();
            let viewed = mine_vertical_view(encoded.view(), p, &config).unwrap();
            assert_eq!(plain.frequent, viewed.frequent, "period {p}");
            assert_eq!(plain.stats, viewed.stats, "period {p}");
        }
    }

    #[test]
    fn tree_transpose_counts_like_the_walk() {
        let series = busy_series(640, 4);
        let config = MineConfig::new(0.2).unwrap();
        let scan1 = scan_frequent_letters(&series, 8, &config).unwrap();
        let mut stats = MiningStats::default();
        let tree = crate::hitset::build_tree(&series, &scan1, &mut stats);
        let index = VerticalIndex::from_tree(&tree);
        assert_eq!(index.n_columns(), tree.distinct_hits());
        // Every 2-letter candidate must count identically in all three
        // substrates (weighted transpose, trie walk, flat scan).
        let n = scan1.alphabet.len();
        for i in 0..n {
            for j in i + 1..n {
                let p = LetterSet::from_indices(n, [i, j]);
                let walk = tree.count_superpatterns_walk(&p);
                assert_eq!(index.count(&p), walk, "candidate {{{i},{j}}}");
                assert_eq!(tree.count_superpatterns_linear(&p), walk);
            }
        }
    }

    #[test]
    fn segment_index_singletons_match_scan1_counts() {
        let series = busy_series(480, 4);
        let config = MineConfig::new(0.25).unwrap();
        let scan1 = scan_frequent_letters(&series, 6, &config).unwrap();
        let index = VerticalIndex::from_segments(
            Rows::Series(&series),
            &scan1,
            &MiningStats::default(),
            &ResourceGuard::unlimited(),
        )
        .unwrap();
        let n = scan1.alphabet.len();
        for (i, &count) in scan1.letter_counts.iter().enumerate() {
            let p = LetterSet::from_indices(n, [i]);
            assert_eq!(index.count(&p), count, "letter {i}");
        }
        // The empty pattern matches every segment.
        assert_eq!(index.count(&LetterSet::new(n)), scan1.segment_count as u64);
    }

    #[test]
    fn or_merge_equals_single_pass_fill() {
        let series = busy_series(480, 4);
        let config = MineConfig::new(0.25).unwrap();
        let scan1 = scan_frequent_letters(&series, 6, &config).unwrap();
        let m = scan1.segment_count;
        let whole = VerticalIndex::from_segments(
            Rows::Series(&series),
            &scan1,
            &MiningStats::default(),
            &ResourceGuard::unlimited(),
        )
        .unwrap();
        let mut merged = VerticalIndex::with_columns(scan1.alphabet.len(), m);
        for range in [0..m / 3, m / 3..m / 2, m / 2..m] {
            let mut part = VerticalIndex::with_columns(scan1.alphabet.len(), m);
            part.fill_segments(Rows::Series(&series), &scan1.alphabet, range);
            merged.or_merge(&part);
        }
        assert_eq!(merged.words, whole.words);
    }

    #[test]
    fn zero_deadline_aborts_with_typed_error() {
        let series = busy_series(400, 4);
        let config = MineConfig::new(0.2)
            .unwrap()
            .with_deadline(std::time::Duration::ZERO);
        let err = mine_vertical(&series, 8, &config).unwrap_err();
        assert!(matches!(err, Error::DeadlineExceeded { .. }), "got {err:?}");
    }

    #[test]
    fn invalid_period_is_rejected() {
        let series = busy_series(10, 2);
        let config = MineConfig::new(0.5).unwrap();
        assert!(matches!(
            mine_vertical(&series, 0, &config),
            Err(Error::InvalidPeriod { .. })
        ));
        assert!(matches!(
            mine_vertical(&series, 11, &config),
            Err(Error::InvalidPeriod { .. })
        ));
    }

    #[test]
    fn empty_alphabet_short_circuits() {
        let mut b = SeriesBuilder::new();
        for t in 0..10u32 {
            b.push_instant([fid(t)]);
        }
        let series = b.finish();
        let result = mine_vertical(&series, 2, &MineConfig::new(0.9).unwrap()).unwrap();
        assert!(result.is_empty());
        assert_eq!(result.stats.series_scans, 2);
    }
}
