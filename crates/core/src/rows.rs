//! A unified row source for the miners: raw CSR instants or packed
//! bitmap rows.
//!
//! Every engine's scans reduce to two per-instant operations — "count each
//! feature at instant `t`" (scan 1) and "project instant `t` onto the
//! frequent-letter alphabet" (scan 2). [`Rows`] dispatches both over either
//! a [`FeatureSeries`] (the CSR substrate) or a borrowed
//! [`EncodedSeriesView`] (the in-memory cache, or a `.ppmc` columnar file
//! loaded without materializing a series at all), so each miner has one
//! implementation instead of a series path and an encoded path.

use ppm_timeseries::{EncodedSeriesView, FeatureSeries};

use crate::letters::{Alphabet, LetterSet};
use crate::scan::CountTable;

/// The two row substrates the miners consume.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Rows<'a> {
    /// Raw CSR feature slices.
    Series(&'a FeatureSeries),
    /// Packed per-instant bitmaps, borrowed from an [`EncodedSeries`]
    /// cache or a columnar file load.
    ///
    /// [`EncodedSeries`]: ppm_timeseries::EncodedSeries
    View(EncodedSeriesView<'a>),
}

impl Rows<'_> {
    /// Number of instants.
    pub(crate) fn len(&self) -> usize {
        match self {
            Rows::Series(s) => s.len(),
            Rows::View(v) => v.len(),
        }
    }

    /// The dense scan-1 key-space width: max feature id + 1.
    pub(crate) fn count_width(&self) -> usize {
        match self {
            Rows::Series(s) => CountTable::width_of(s),
            Rows::View(v) => v.width(),
        }
    }

    /// Counts every feature of instant `t` into `counts` at `offset`
    /// (the scan-1 inner loop).
    #[inline]
    pub(crate) fn add_counts(&self, t: usize, offset: u32, counts: &mut CountTable) {
        match self {
            Rows::Series(s) => {
                for &f in s.instant(t) {
                    counts.add(offset, f);
                }
            }
            Rows::View(v) => {
                for f in v.features_at(t) {
                    counts.add(offset, f);
                }
            }
        }
    }

    /// Projects instant `t` onto `alphabet` at segment `offset`, setting
    /// the bits of the frequent letters present (the scan-2 inner loop).
    #[inline]
    pub(crate) fn project(
        &self,
        alphabet: &Alphabet,
        offset: usize,
        t: usize,
        hit: &mut LetterSet,
    ) {
        match self {
            Rows::Series(s) => alphabet.project_instant(offset, s.instant(t), hit),
            Rows::View(v) => alphabet.project_encoded(offset, v.instant_words(t), hit),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_timeseries::{EncodedSeries, FeatureId, SeriesBuilder};

    use crate::scan::{scan_frequent_letters, MineConfig};

    fn fid(i: u32) -> FeatureId {
        FeatureId::from_raw(i)
    }

    #[test]
    fn both_substrates_project_identically() {
        let mut b = SeriesBuilder::new();
        let mut x: u64 = 3;
        for _ in 0..60 {
            let mut inst = Vec::new();
            for f in 0..5u32 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                if (x >> 62) == 0 {
                    inst.push(fid(f));
                }
            }
            b.push_instant(inst);
        }
        let series = b.finish();
        let encoded = EncodedSeries::encode(&series);
        let scan1 = scan_frequent_letters(&series, 4, &MineConfig::new(0.2).unwrap()).unwrap();
        let from_series = Rows::Series(&series);
        let from_view = Rows::View(encoded.view());
        assert_eq!(from_series.len(), from_view.len());
        assert_eq!(from_series.count_width(), from_view.count_width());
        let mut a = scan1.alphabet.empty_set();
        let mut b = scan1.alphabet.empty_set();
        for t in 0..series.len() {
            a.clear();
            b.clear();
            from_series.project(&scan1.alphabet, t % 4, t, &mut a);
            from_view.project(&scan1.alphabet, t % 4, t, &mut b);
            assert_eq!(a, b, "instant {t}");
        }
    }
}
