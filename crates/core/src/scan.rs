//! Scan 1: finding the frequent 1-patterns (`F1`).
//!
//! Both mining algorithms share the same first pass over the series
//! (Step 1 of Algorithms 3.1 and 3.2): accumulate a frequency count for
//! every `(offset, feature)` pair across whole period segments, then keep
//! the pairs whose confidence reaches the threshold. The survivors form the
//! letter [`Alphabet`] — the candidate max-pattern `C_max`.

use std::collections::HashMap;
use std::time::Duration;

use ppm_timeseries::{EncodedSeriesView, FeatureId, FeatureSeries};

use crate::error::{Error, Result};
use crate::letters::Alphabet;
use crate::rows::Rows;

/// Mining configuration: the confidence threshold (validated to lie in
/// `(0, 1]`) plus optional resource guards — a wall-clock deadline and a
/// max-subpattern-tree node budget — that abort a runaway mine with a typed
/// error carrying partial statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MineConfig {
    min_confidence: f64,
    max_duration: Option<Duration>,
    max_tree_nodes: Option<usize>,
}

impl MineConfig {
    /// Creates a config; `min_confidence` must be in `(0, 1]`. No resource
    /// guards are set.
    pub fn new(min_confidence: f64) -> Result<Self> {
        if !(min_confidence > 0.0 && min_confidence <= 1.0) {
            return Err(Error::InvalidConfidence {
                value: min_confidence,
            });
        }
        Ok(MineConfig {
            min_confidence,
            max_duration: None,
            max_tree_nodes: None,
        })
    }

    /// Sets a wall-clock deadline: guarded miners abort with
    /// [`Error::DeadlineExceeded`](crate::Error::DeadlineExceeded) once
    /// mining has run for `max_duration`. The check fires at segment
    /// granularity, so the overrun beyond the deadline is bounded by the
    /// time to process one segment batch.
    pub fn with_deadline(mut self, max_duration: Duration) -> Self {
        self.max_duration = Some(max_duration);
        self
    }

    /// Sets a node budget for the max-subpattern tree: guarded miners abort
    /// with [`Error::TreeBudgetExceeded`](crate::Error::TreeBudgetExceeded)
    /// as soon as an insert grows the tree past `max_tree_nodes`.
    pub fn with_max_tree_nodes(mut self, max_tree_nodes: usize) -> Self {
        self.max_tree_nodes = Some(max_tree_nodes);
        self
    }

    /// The confidence threshold.
    pub fn min_confidence(&self) -> f64 {
        self.min_confidence
    }

    /// The wall-clock deadline, if one is set.
    pub fn max_duration(&self) -> Option<Duration> {
        self.max_duration
    }

    /// The tree-node budget, if one is set.
    pub fn max_tree_nodes(&self) -> Option<usize> {
        self.max_tree_nodes
    }

    /// The smallest frequency count that meets the threshold for `m` whole
    /// segments: the least integer `c` with `c ≥ min_conf · m`, computed
    /// robustly against floating-point boundary error.
    pub fn min_count(&self, m: usize) -> u64 {
        let raw = self.min_confidence * m as f64;
        let mut c = raw.ceil() as u64;
        // `ceil` may overshoot when `raw` is an integer perturbed upward by
        // rounding (e.g. 0.8 * 5 → 4.000000000000001): step back if c−1
        // already meets the threshold up to 1 ulp-ish tolerance.
        if c > 0 && (c - 1) as f64 + 1e-9 >= raw {
            c -= 1;
        }
        c.max(1)
    }
}

impl Default for MineConfig {
    /// A permissive default threshold of 0.5 and no resource guards.
    fn default() -> Self {
        MineConfig {
            min_confidence: 0.5,
            max_duration: None,
            max_tree_nodes: None,
        }
    }
}

/// Cap on dense scan-1 table slots (`period × feature-width`): 4M `u64`
/// slots ≈ 32 MiB. Series whose `period × width` product exceeds this fall
/// back to the hash map, which only pays for pairs that actually occur.
const DENSE_TABLE_LIMIT: usize = 1 << 22;

/// The scan-1 counting table.
///
/// Catalog feature ids are interned densely, so for realistic alphabets the
/// `(offset, feature)` key space is small and `offset · width + feature`
/// indexes a flat `Vec<u64>` — no hashing on the hot path of the first
/// scan. Degenerate inputs (huge periods or raw feature ids) spill to a
/// `HashMap`. The representation is a pure function of `(period, width)`,
/// so tables built by parallel workers over the same series always agree
/// and can be merged with [`CountTable::absorb`].
pub(crate) enum CountTable {
    /// Flat table: `counts[offset * width + feature.index()]`.
    Dense { counts: Vec<u64>, width: usize },
    /// Fallback for key spaces past [`DENSE_TABLE_LIMIT`].
    Sparse(HashMap<(u32, FeatureId), u64>),
}

impl CountTable {
    /// The dense key-space width for `series`: max feature id + 1.
    pub(crate) fn width_of(series: &FeatureSeries) -> usize {
        series.max_feature_id().map_or(0, |f| f.index() + 1)
    }

    /// A table for an explicit `(period, width)` key space — used by
    /// parallel workers so every partial table picks the same layout.
    pub(crate) fn with_width(period: usize, width: usize) -> Self {
        if width > 0
            && period
                .checked_mul(width)
                .is_some_and(|slots| slots <= DENSE_TABLE_LIMIT)
        {
            CountTable::Dense {
                counts: vec![0; period * width],
                width,
            }
        } else {
            CountTable::Sparse(HashMap::new())
        }
    }

    /// Counts one `(offset, feature)` occurrence.
    #[inline]
    pub(crate) fn add(&mut self, offset: u32, feature: FeatureId) {
        match self {
            CountTable::Dense { counts, width } => {
                counts[offset as usize * *width + feature.index()] += 1;
            }
            CountTable::Sparse(map) => *map.entry((offset, feature)).or_insert(0) += 1,
        }
    }

    /// The count for `(offset, feature)` (zero if never seen).
    pub(crate) fn get(&self, offset: u32, feature: FeatureId) -> u64 {
        match self {
            CountTable::Dense { counts, width } => {
                counts[offset as usize * *width + feature.index()]
            }
            CountTable::Sparse(map) => map.get(&(offset, feature)).copied().unwrap_or(0),
        }
    }

    /// Merges `other` (a partial table over the same key space) into self.
    pub(crate) fn absorb(&mut self, other: CountTable) {
        match (self, other) {
            (
                CountTable::Dense { counts, width },
                CountTable::Dense {
                    counts: o,
                    width: ow,
                },
            ) => {
                debug_assert_eq!(*width, ow, "partial tables disagree on width");
                for (a, b) in counts.iter_mut().zip(o) {
                    *a += b;
                }
            }
            (CountTable::Sparse(map), CountTable::Sparse(o)) => {
                for (k, v) in o {
                    *map.entry(k).or_insert(0) += v;
                }
            }
            _ => unreachable!("partial tables over one series share a representation"),
        }
    }

    /// The `(offset, feature)` pairs whose count reaches `min_count`.
    pub(crate) fn frequent_pairs(&self, min_count: u64) -> Vec<(usize, FeatureId)> {
        match self {
            CountTable::Dense { counts, width } => counts
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c >= min_count)
                .map(|(slot, _)| (slot / width, FeatureId::from_raw((slot % width) as u32)))
                .collect(),
            CountTable::Sparse(map) => map
                .iter()
                .filter(|&(_, &c)| c >= min_count)
                .map(|(&(o, f), _)| (o as usize, f))
                .collect(),
        }
    }
}

/// Output of the first scan: the frequent-letter alphabet and exact counts.
#[derive(Debug, Clone)]
pub struct Scan1 {
    /// The frequent letters (`C_max`), canonically ordered.
    pub alphabet: Alphabet,
    /// Exact frequency count per letter, indexed by letter index.
    pub letter_counts: Vec<u64>,
    /// Number of whole period segments `m`.
    pub segment_count: usize,
    /// The count threshold derived from the confidence threshold.
    pub min_count: u64,
}

/// Performs scan 1 for a single period: one pass over the first `m·p`
/// instants, counting each `(offset, feature)` occurrence, then filtering
/// by the threshold.
pub fn scan_frequent_letters(
    series: &FeatureSeries,
    period: usize,
    config: &MineConfig,
) -> Result<Scan1> {
    scan_frequent_letters_rows(Rows::Series(series), period, config)
}

/// [`scan_frequent_letters`] over a borrowed bitmap view (an
/// [`EncodedSeries`](ppm_timeseries::EncodedSeries) cache or a columnar
/// file load): the same one pass, probing packed instant rows.
pub fn scan_frequent_letters_view(
    view: EncodedSeriesView<'_>,
    period: usize,
    config: &MineConfig,
) -> Result<Scan1> {
    scan_frequent_letters_rows(Rows::View(view), period, config)
}

/// Scan 1 over either row substrate.
pub(crate) fn scan_frequent_letters_rows(
    rows: Rows<'_>,
    period: usize,
    config: &MineConfig,
) -> Result<Scan1> {
    if period == 0 || period > rows.len() {
        return Err(Error::InvalidPeriod {
            period,
            series_len: rows.len(),
        });
    }
    let m = rows.len() / period;
    let min_count = config.min_count(m);

    let mut counts = CountTable::with_width(period, rows.count_width());
    for t in 0..m * period {
        let offset = (t % period) as u32;
        rows.add_counts(t, offset, &mut counts);
    }

    Ok(scan1_from_counts(&counts, period, m, min_count))
}

/// Builds a [`Scan1`] from a finished counting table (shared by the
/// single-period, parallel, and multi-period scan-1 implementations).
pub(crate) fn scan1_from_counts(
    counts: &CountTable,
    period: usize,
    m: usize,
    min_count: u64,
) -> Scan1 {
    let alphabet = Alphabet::new(period, counts.frequent_pairs(min_count));
    let letter_counts = (0..alphabet.len())
        .map(|i| {
            let (o, f) = alphabet.letter(i);
            counts.get(o as u32, f)
        })
        .collect();
    Scan1 {
        alphabet,
        letter_counts,
        segment_count: m,
        min_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_timeseries::SeriesBuilder;

    fn fid(i: u32) -> FeatureId {
        FeatureId::from_raw(i)
    }

    #[test]
    fn config_validates_range() {
        assert!(MineConfig::new(0.0).is_err());
        assert!(MineConfig::new(-0.1).is_err());
        assert!(MineConfig::new(1.0001).is_err());
        assert!(MineConfig::new(f64::NAN).is_err());
        assert!(MineConfig::new(1.0).is_ok());
        assert!(MineConfig::new(0.001).is_ok());
    }

    #[test]
    fn guard_builders_round_trip() {
        let c = MineConfig::new(0.5).unwrap();
        assert_eq!(c.max_duration(), None);
        assert_eq!(c.max_tree_nodes(), None);
        let c = c
            .with_deadline(Duration::from_secs(3))
            .with_max_tree_nodes(100);
        assert_eq!(c.max_duration(), Some(Duration::from_secs(3)));
        assert_eq!(c.max_tree_nodes(), Some(100));
        // Guards don't affect threshold equality semantics of the base.
        assert_eq!(c.min_confidence(), 0.5);
    }

    #[test]
    fn min_count_boundaries() {
        let c = MineConfig::new(0.8).unwrap();
        assert_eq!(c.min_count(5), 4); // 0.8 * 5 = 4 exactly
        assert_eq!(c.min_count(10), 8);
        assert_eq!(c.min_count(11), 9); // 8.8 -> 9
        let c = MineConfig::new(1.0).unwrap();
        assert_eq!(c.min_count(7), 7);
        let c = MineConfig::new(0.001).unwrap();
        assert_eq!(c.min_count(5), 1); // tiny thresholds still need 1 hit
        let third = MineConfig::new(1.0 / 3.0).unwrap();
        assert_eq!(third.min_count(3), 1);
        assert_eq!(third.min_count(4), 2); // 1.33 -> 2
    }

    #[test]
    fn scan_counts_letters_per_offset() {
        // Period 2, 3 whole segments: feature 7 at offset 0 in all three,
        // feature 8 at offset 1 in one.
        let mut b = SeriesBuilder::new();
        b.push_instant([fid(7)]);
        b.push_instant([fid(8)]);
        b.push_instant([fid(7)]);
        b.push_instant([]);
        b.push_instant([fid(7)]);
        b.push_instant([]);
        let s = b.finish();
        let cfg = MineConfig::new(0.9).unwrap();
        let scan = scan_frequent_letters(&s, 2, &cfg).unwrap();
        assert_eq!(scan.segment_count, 3);
        assert_eq!(scan.min_count, 3);
        assert_eq!(scan.alphabet.len(), 1);
        assert_eq!(scan.alphabet.letter(0), (0, fid(7)));
        assert_eq!(scan.letter_counts, vec![3]);
    }

    #[test]
    fn scan_ignores_partial_tail_segment() {
        // 5 instants, period 2 -> m = 2; instant 4 is in the tail.
        let mut b = SeriesBuilder::new();
        for _ in 0..4 {
            b.push_instant([fid(1)]);
        }
        b.push_instant([fid(99)]);
        let s = b.finish();
        let cfg = MineConfig::new(0.5).unwrap();
        let scan = scan_frequent_letters(&s, 2, &cfg).unwrap();
        assert_eq!(scan.segment_count, 2);
        // fid(99) must not appear even as a counted letter.
        assert!(scan.alphabet.iter().all(|(_, _, f)| f == fid(1)));
    }

    #[test]
    fn scan_same_feature_distinct_offsets_are_distinct_letters() {
        let mut b = SeriesBuilder::new();
        for _ in 0..3 {
            b.push_instant([fid(4)]);
            b.push_instant([fid(4)]);
        }
        let s = b.finish();
        let cfg = MineConfig::new(1.0).unwrap();
        let scan = scan_frequent_letters(&s, 2, &cfg).unwrap();
        assert_eq!(scan.alphabet.len(), 2);
        assert_eq!(scan.alphabet.letter(0), (0, fid(4)));
        assert_eq!(scan.alphabet.letter(1), (1, fid(4)));
        assert_eq!(scan.letter_counts, vec![3, 3]);
    }

    #[test]
    fn scan_rejects_bad_period() {
        let mut b = SeriesBuilder::new();
        b.push_instant([fid(0)]);
        let s = b.finish();
        let cfg = MineConfig::default();
        assert!(scan_frequent_letters(&s, 0, &cfg).is_err());
        assert!(scan_frequent_letters(&s, 2, &cfg).is_err());
    }

    #[test]
    fn count_table_picks_dense_for_small_key_spaces() {
        assert!(matches!(
            CountTable::with_width(25, 100),
            CountTable::Dense { .. }
        ));
        // Zero width (no features at all) and oversized key spaces go sparse.
        assert!(matches!(
            CountTable::with_width(25, 0),
            CountTable::Sparse(_)
        ));
        assert!(matches!(
            CountTable::with_width(1 << 12, 1 << 12),
            CountTable::Sparse(_)
        ));
    }

    #[test]
    fn count_table_dense_and_sparse_agree() {
        for mut table in [
            CountTable::with_width(3, 5),
            CountTable::Sparse(HashMap::new()),
        ] {
            table.add(0, fid(4));
            table.add(0, fid(4));
            table.add(2, fid(1));
            assert_eq!(table.get(0, fid(4)), 2);
            assert_eq!(table.get(2, fid(1)), 1);
            assert_eq!(table.get(1, fid(0)), 0);
            let mut frequent = table.frequent_pairs(2);
            frequent.sort();
            assert_eq!(frequent, vec![(0, fid(4))]);
        }
    }

    #[test]
    fn count_table_absorb_merges_partials() {
        for make in [
            (|| CountTable::with_width(2, 3)) as fn() -> CountTable,
            || CountTable::Sparse(HashMap::new()),
        ] {
            let mut a = make();
            a.add(0, fid(1));
            let mut b = make();
            b.add(0, fid(1));
            b.add(1, fid(2));
            a.absorb(b);
            assert_eq!(a.get(0, fid(1)), 2);
            assert_eq!(a.get(1, fid(2)), 1);
        }
    }

    #[test]
    fn empty_alphabet_when_nothing_frequent() {
        let mut b = SeriesBuilder::new();
        // Every instant has a unique feature: nothing repeats.
        for t in 0..8u32 {
            b.push_instant([fid(t)]);
        }
        let s = b.finish();
        let cfg = MineConfig::new(0.9).unwrap();
        let scan = scan_frequent_letters(&s, 2, &cfg).unwrap();
        assert!(scan.alphabet.is_empty());
    }
}
