//! Scan 1: finding the frequent 1-patterns (`F1`).
//!
//! Both mining algorithms share the same first pass over the series
//! (Step 1 of Algorithms 3.1 and 3.2): accumulate a frequency count for
//! every `(offset, feature)` pair across whole period segments, then keep
//! the pairs whose confidence reaches the threshold. The survivors form the
//! letter [`Alphabet`] — the candidate max-pattern `C_max`.

use std::collections::HashMap;
use std::time::Duration;

use ppm_timeseries::{FeatureId, FeatureSeries};

use crate::error::{Error, Result};
use crate::letters::Alphabet;

/// Mining configuration: the confidence threshold (validated to lie in
/// `(0, 1]`) plus optional resource guards — a wall-clock deadline and a
/// max-subpattern-tree node budget — that abort a runaway mine with a typed
/// error carrying partial statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MineConfig {
    min_confidence: f64,
    max_duration: Option<Duration>,
    max_tree_nodes: Option<usize>,
}

impl MineConfig {
    /// Creates a config; `min_confidence` must be in `(0, 1]`. No resource
    /// guards are set.
    pub fn new(min_confidence: f64) -> Result<Self> {
        if !(min_confidence > 0.0 && min_confidence <= 1.0) {
            return Err(Error::InvalidConfidence {
                value: min_confidence,
            });
        }
        Ok(MineConfig {
            min_confidence,
            max_duration: None,
            max_tree_nodes: None,
        })
    }

    /// Sets a wall-clock deadline: guarded miners abort with
    /// [`Error::DeadlineExceeded`](crate::Error::DeadlineExceeded) once
    /// mining has run for `max_duration`. The check fires at segment
    /// granularity, so the overrun beyond the deadline is bounded by the
    /// time to process one segment batch.
    pub fn with_deadline(mut self, max_duration: Duration) -> Self {
        self.max_duration = Some(max_duration);
        self
    }

    /// Sets a node budget for the max-subpattern tree: guarded miners abort
    /// with [`Error::TreeBudgetExceeded`](crate::Error::TreeBudgetExceeded)
    /// as soon as an insert grows the tree past `max_tree_nodes`.
    pub fn with_max_tree_nodes(mut self, max_tree_nodes: usize) -> Self {
        self.max_tree_nodes = Some(max_tree_nodes);
        self
    }

    /// The confidence threshold.
    pub fn min_confidence(&self) -> f64 {
        self.min_confidence
    }

    /// The wall-clock deadline, if one is set.
    pub fn max_duration(&self) -> Option<Duration> {
        self.max_duration
    }

    /// The tree-node budget, if one is set.
    pub fn max_tree_nodes(&self) -> Option<usize> {
        self.max_tree_nodes
    }

    /// The smallest frequency count that meets the threshold for `m` whole
    /// segments: the least integer `c` with `c ≥ min_conf · m`, computed
    /// robustly against floating-point boundary error.
    pub fn min_count(&self, m: usize) -> u64 {
        let raw = self.min_confidence * m as f64;
        let mut c = raw.ceil() as u64;
        // `ceil` may overshoot when `raw` is an integer perturbed upward by
        // rounding (e.g. 0.8 * 5 → 4.000000000000001): step back if c−1
        // already meets the threshold up to 1 ulp-ish tolerance.
        if c > 0 && (c - 1) as f64 + 1e-9 >= raw {
            c -= 1;
        }
        c.max(1)
    }
}

impl Default for MineConfig {
    /// A permissive default threshold of 0.5 and no resource guards.
    fn default() -> Self {
        MineConfig {
            min_confidence: 0.5,
            max_duration: None,
            max_tree_nodes: None,
        }
    }
}

/// Output of the first scan: the frequent-letter alphabet and exact counts.
#[derive(Debug, Clone)]
pub struct Scan1 {
    /// The frequent letters (`C_max`), canonically ordered.
    pub alphabet: Alphabet,
    /// Exact frequency count per letter, indexed by letter index.
    pub letter_counts: Vec<u64>,
    /// Number of whole period segments `m`.
    pub segment_count: usize,
    /// The count threshold derived from the confidence threshold.
    pub min_count: u64,
}

/// Performs scan 1 for a single period: one pass over the first `m·p`
/// instants, counting each `(offset, feature)` occurrence, then filtering
/// by the threshold.
pub fn scan_frequent_letters(
    series: &FeatureSeries,
    period: usize,
    config: &MineConfig,
) -> Result<Scan1> {
    if period == 0 || period > series.len() {
        return Err(Error::InvalidPeriod {
            period,
            series_len: series.len(),
        });
    }
    let m = series.len() / period;
    let min_count = config.min_count(m);

    let mut counts: HashMap<(u32, FeatureId), u64> = HashMap::new();
    for t in 0..m * period {
        let offset = (t % period) as u32;
        for &f in series.instant(t) {
            *counts.entry((offset, f)).or_insert(0) += 1;
        }
    }

    let frequent = counts
        .iter()
        .filter(|&(_, &c)| c >= min_count)
        .map(|(&(o, f), _)| (o as usize, f));
    let alphabet = Alphabet::new(period, frequent);
    let letter_counts = (0..alphabet.len())
        .map(|i| {
            let (o, f) = alphabet.letter(i);
            counts[&(o as u32, f)]
        })
        .collect();

    Ok(Scan1 {
        alphabet,
        letter_counts,
        segment_count: m,
        min_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_timeseries::SeriesBuilder;

    fn fid(i: u32) -> FeatureId {
        FeatureId::from_raw(i)
    }

    #[test]
    fn config_validates_range() {
        assert!(MineConfig::new(0.0).is_err());
        assert!(MineConfig::new(-0.1).is_err());
        assert!(MineConfig::new(1.0001).is_err());
        assert!(MineConfig::new(f64::NAN).is_err());
        assert!(MineConfig::new(1.0).is_ok());
        assert!(MineConfig::new(0.001).is_ok());
    }

    #[test]
    fn guard_builders_round_trip() {
        let c = MineConfig::new(0.5).unwrap();
        assert_eq!(c.max_duration(), None);
        assert_eq!(c.max_tree_nodes(), None);
        let c = c
            .with_deadline(Duration::from_secs(3))
            .with_max_tree_nodes(100);
        assert_eq!(c.max_duration(), Some(Duration::from_secs(3)));
        assert_eq!(c.max_tree_nodes(), Some(100));
        // Guards don't affect threshold equality semantics of the base.
        assert_eq!(c.min_confidence(), 0.5);
    }

    #[test]
    fn min_count_boundaries() {
        let c = MineConfig::new(0.8).unwrap();
        assert_eq!(c.min_count(5), 4); // 0.8 * 5 = 4 exactly
        assert_eq!(c.min_count(10), 8);
        assert_eq!(c.min_count(11), 9); // 8.8 -> 9
        let c = MineConfig::new(1.0).unwrap();
        assert_eq!(c.min_count(7), 7);
        let c = MineConfig::new(0.001).unwrap();
        assert_eq!(c.min_count(5), 1); // tiny thresholds still need 1 hit
        let third = MineConfig::new(1.0 / 3.0).unwrap();
        assert_eq!(third.min_count(3), 1);
        assert_eq!(third.min_count(4), 2); // 1.33 -> 2
    }

    #[test]
    fn scan_counts_letters_per_offset() {
        // Period 2, 3 whole segments: feature 7 at offset 0 in all three,
        // feature 8 at offset 1 in one.
        let mut b = SeriesBuilder::new();
        b.push_instant([fid(7)]);
        b.push_instant([fid(8)]);
        b.push_instant([fid(7)]);
        b.push_instant([]);
        b.push_instant([fid(7)]);
        b.push_instant([]);
        let s = b.finish();
        let cfg = MineConfig::new(0.9).unwrap();
        let scan = scan_frequent_letters(&s, 2, &cfg).unwrap();
        assert_eq!(scan.segment_count, 3);
        assert_eq!(scan.min_count, 3);
        assert_eq!(scan.alphabet.len(), 1);
        assert_eq!(scan.alphabet.letter(0), (0, fid(7)));
        assert_eq!(scan.letter_counts, vec![3]);
    }

    #[test]
    fn scan_ignores_partial_tail_segment() {
        // 5 instants, period 2 -> m = 2; instant 4 is in the tail.
        let mut b = SeriesBuilder::new();
        for _ in 0..4 {
            b.push_instant([fid(1)]);
        }
        b.push_instant([fid(99)]);
        let s = b.finish();
        let cfg = MineConfig::new(0.5).unwrap();
        let scan = scan_frequent_letters(&s, 2, &cfg).unwrap();
        assert_eq!(scan.segment_count, 2);
        // fid(99) must not appear even as a counted letter.
        assert!(scan.alphabet.iter().all(|(_, _, f)| f == fid(1)));
    }

    #[test]
    fn scan_same_feature_distinct_offsets_are_distinct_letters() {
        let mut b = SeriesBuilder::new();
        for _ in 0..3 {
            b.push_instant([fid(4)]);
            b.push_instant([fid(4)]);
        }
        let s = b.finish();
        let cfg = MineConfig::new(1.0).unwrap();
        let scan = scan_frequent_letters(&s, 2, &cfg).unwrap();
        assert_eq!(scan.alphabet.len(), 2);
        assert_eq!(scan.alphabet.letter(0), (0, fid(4)));
        assert_eq!(scan.alphabet.letter(1), (1, fid(4)));
        assert_eq!(scan.letter_counts, vec![3, 3]);
    }

    #[test]
    fn scan_rejects_bad_period() {
        let mut b = SeriesBuilder::new();
        b.push_instant([fid(0)]);
        let s = b.finish();
        let cfg = MineConfig::default();
        assert!(scan_frequent_letters(&s, 0, &cfg).is_err());
        assert!(scan_frequent_letters(&s, 2, &cfg).is_err());
    }

    #[test]
    fn empty_alphabet_when_nothing_frequent() {
        let mut b = SeriesBuilder::new();
        // Every instant has a unique feature: nothing repeats.
        for t in 0..8u32 {
            b.push_instant([fid(t)]);
        }
        let s = b.finish();
        let cfg = MineConfig::new(0.9).unwrap();
        let scan = scan_frequent_letters(&s, 2, &cfg).unwrap();
        assert!(scan.alphabet.is_empty());
    }
}
