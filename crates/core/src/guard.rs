//! Resource guards shared by the guarded miners.
//!
//! A [`ResourceGuard`] snapshots the optional limits of a
//! [`MineConfig`](crate::MineConfig) — wall-clock deadline and
//! max-subpattern-tree node budget — at the start of a mining run and
//! answers two questions cheaply in hot loops: *has the deadline passed?*
//! and *is the tree over budget?* On violation the miner materialises a
//! typed error carrying the partially accumulated
//! [`MiningStats`](crate::MiningStats), so operators see how far the run
//! got before it was cut off.
//!
//! Deadline checks call [`Instant::elapsed`]; miners amortise them to once
//! per [`DEADLINE_CHECK_INTERVAL`] segments so the guard costs nothing on
//! the fast path. Tree checks are a length comparison and run after every
//! insert.

use std::time::{Duration, Instant};

use crate::error::Error;
use crate::scan::MineConfig;
use crate::stats::MiningStats;

/// Check the deadline once every this many period segments. Bounds the
/// guard's syscall overhead while keeping the overrun past the deadline to
/// at most one batch of segments.
pub(crate) const DEADLINE_CHECK_INTERVAL: usize = 1024;

/// Snapshot of a run's resource limits plus its start time.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ResourceGuard {
    started: Instant,
    max_duration: Option<Duration>,
    max_tree_nodes: Option<usize>,
}

impl ResourceGuard {
    /// Starts the clock for a run limited by `config`'s guards.
    pub(crate) fn new(config: &MineConfig) -> Self {
        ResourceGuard {
            started: Instant::now(),
            max_duration: config.max_duration(),
            max_tree_nodes: config.max_tree_nodes(),
        }
    }

    /// A guard with no limits: never trips. Used by the unguarded internal
    /// tree builders shared with miners that predate the guards.
    pub(crate) fn unlimited() -> Self {
        ResourceGuard {
            started: Instant::now(),
            max_duration: None,
            max_tree_nodes: None,
        }
    }

    /// Whether the wall-clock deadline has passed. Always `false` when no
    /// deadline is configured.
    pub(crate) fn deadline_exceeded(&self) -> bool {
        self.max_duration
            .is_some_and(|d| self.started.elapsed() >= d)
    }

    /// Whether a tree of `nodes` nodes exceeds the budget. Always `false`
    /// when no budget is configured.
    pub(crate) fn tree_over_budget(&self, nodes: usize) -> bool {
        self.max_tree_nodes.is_some_and(|budget| nodes > budget)
    }

    /// Errors out if the deadline has passed, snapshotting `stats`.
    pub(crate) fn check_deadline(&self, stats: &MiningStats) -> Result<(), Error> {
        if self.deadline_exceeded() {
            Err(self.deadline_error(stats))
        } else {
            Ok(())
        }
    }

    /// The typed deadline error with the elapsed time and partial stats.
    /// Reported as a `guard.deadline_exceeded` observability mark, since
    /// this constructor only runs on an actual trip.
    pub(crate) fn deadline_error(&self, stats: &MiningStats) -> Error {
        let elapsed = self.started.elapsed();
        ppm_observe::mark("guard.deadline_exceeded", || {
            format!(
                "elapsed {:?} over limit {:?}",
                elapsed,
                self.max_duration.unwrap_or(Duration::ZERO)
            )
        });
        Error::DeadlineExceeded {
            elapsed,
            stats: Box::new(stats.clone()),
        }
    }

    /// The typed budget error for a tree of `nodes` nodes. Reported as a
    /// `guard.tree_budget_exceeded` observability mark.
    pub(crate) fn tree_error(&self, nodes: usize, stats: &MiningStats) -> Error {
        let budget = self.max_tree_nodes.unwrap_or(0);
        ppm_observe::mark("guard.tree_budget_exceeded", || {
            format!("{nodes} tree nodes over budget {budget}")
        });
        Error::TreeBudgetExceeded {
            nodes,
            budget,
            stats: Box::new(stats.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let g = ResourceGuard::unlimited();
        assert!(!g.deadline_exceeded());
        assert!(!g.tree_over_budget(usize::MAX));
        assert!(g.check_deadline(&MiningStats::default()).is_ok());
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let config = MineConfig::default().with_deadline(Duration::ZERO);
        let g = ResourceGuard::new(&config);
        assert!(g.deadline_exceeded());
        let err = g.check_deadline(&MiningStats::default()).unwrap_err();
        assert!(matches!(err, Error::DeadlineExceeded { .. }));
    }

    #[test]
    fn budget_boundary_is_inclusive() {
        let config = MineConfig::default().with_max_tree_nodes(5);
        let g = ResourceGuard::new(&config);
        assert!(!g.tree_over_budget(5), "exactly at budget is allowed");
        assert!(g.tree_over_budget(6));
        let err = g.tree_error(6, &MiningStats::default());
        assert!(matches!(
            err,
            Error::TreeBudgetExceeded {
                nodes: 6,
                budget: 5,
                ..
            }
        ));
    }
}
