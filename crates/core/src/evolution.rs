//! Mining partial periodicity under **evolution** (paper §6).
//!
//! "Perturbation may happen from period to period" — and beyond jitter
//! (handled by [`crate::perturb`]), behaviours *drift*: Jim switches from
//! the morning paper to a podcast, the evening power peak moves with the
//! season. The paper flags "mining partial periodicity with perturbation
//! and evolution" as the robustness extension.
//!
//! [`mine_windows`] slides a window of whole period segments across the
//! series, mines each window with the hit-set method, and stitches the
//! per-window confidences into [`PatternTrack`]s so callers can classify
//! patterns as stable, emerging, or declining — the vocabulary of concept
//! drift applied to partial periodicity.
//!
//! ```
//! use ppm_core::evolution::{mine_windows, Drift, WindowSpec};
//! use ppm_core::MineConfig;
//! use ppm_timeseries::{FeatureCatalog, SeriesBuilder};
//!
//! // A habit that appears halfway through the series.
//! let mut catalog = FeatureCatalog::new();
//! let gym = catalog.intern("gym");
//! let mut builder = SeriesBuilder::new();
//! for day in 0..40 {
//!     builder.push_instant(if day >= 20 { vec![gym] } else { vec![] });
//!     builder.push_instant([]);
//! }
//! let series = builder.finish();
//!
//! let out = mine_windows(
//!     &series, 2, &MineConfig::new(0.8).unwrap(), WindowSpec::new(10, 10).unwrap(),
//! ).unwrap();
//! let track = out.track_of(&[(0, gym)]).unwrap();
//! assert_eq!(track.classify(out.window_count()), Drift::Emerging);
//! ```

use std::collections::HashMap;

use ppm_timeseries::{FeatureId, FeatureSeries};

use crate::error::{Error, Result};
use crate::hitset;
use crate::scan::MineConfig;

/// Sliding-window parameters, in whole period segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    /// Window width in segments (≥ 1).
    pub segments: usize,
    /// Stride between window starts in segments (≥ 1).
    pub stride: usize,
}

impl WindowSpec {
    /// Creates a spec; both fields must be ≥ 1.
    pub fn new(segments: usize, stride: usize) -> Result<Self> {
        if segments == 0 || stride == 0 {
            return Err(Error::PatternParse {
                detail: format!("window segments {segments} and stride {stride} must be >= 1"),
            });
        }
        Ok(WindowSpec { segments, stride })
    }
}

/// The life of one pattern across the windows.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternTrack {
    /// The pattern's letters as `(offset, feature)` pairs, sorted — window
    /// alphabets differ, so tracks use the symbolic identity.
    pub letters: Vec<(usize, FeatureId)>,
    /// Confidence per window; `None` where the pattern was not frequent.
    pub confidences: Vec<Option<f64>>,
}

impl PatternTrack {
    /// Number of windows in which the pattern was frequent.
    pub fn presence(&self) -> usize {
        self.confidences.iter().filter(|c| c.is_some()).count()
    }

    /// First window index where the pattern was frequent.
    pub fn first_seen(&self) -> Option<usize> {
        self.confidences.iter().position(Option::is_some)
    }

    /// Last window index where the pattern was frequent.
    pub fn last_seen(&self) -> Option<usize> {
        self.confidences.iter().rposition(Option::is_some)
    }

    /// Drift classification against the window count.
    pub fn classify(&self, windows: usize) -> Drift {
        let first = self.first_seen();
        let last = self.last_seen();
        match (first, last) {
            (Some(0), Some(l)) if l == windows - 1 && self.presence() == windows => Drift::Stable,
            (Some(f), Some(l)) if l == windows - 1 && f > 0 => Drift::Emerging,
            (Some(0), Some(l)) if l < windows - 1 => Drift::Vanished,
            _ => Drift::Intermittent,
        }
    }
}

/// How a pattern's presence evolved across the windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Drift {
    /// Frequent in every window.
    Stable,
    /// Absent at the start, frequent at the end.
    Emerging,
    /// Frequent at the start, absent at the end.
    Vanished,
    /// Present with gaps, or confined to the middle.
    Intermittent,
}

/// The result of windowed mining.
#[derive(Debug, Clone)]
pub struct EvolutionResult {
    /// The period mined.
    pub period: usize,
    /// `(first segment, segment count)` per window, in order.
    pub windows: Vec<(usize, usize)>,
    /// One track per pattern that was frequent in at least one window.
    pub tracks: Vec<PatternTrack>,
}

impl EvolutionResult {
    /// Number of windows.
    pub fn window_count(&self) -> usize {
        self.windows.len()
    }

    /// Tracks with the given drift class.
    pub fn with_drift(&self, drift: Drift) -> impl Iterator<Item = &PatternTrack> {
        let n = self.window_count();
        self.tracks.iter().filter(move |t| t.classify(n) == drift)
    }

    /// Looks up the track of a specific letter set.
    pub fn track_of(&self, letters: &[(usize, FeatureId)]) -> Option<&PatternTrack> {
        let mut key = letters.to_vec();
        key.sort_unstable();
        self.tracks.iter().find(|t| t.letters == key)
    }
}

/// Mines each sliding window with the hit-set method and stitches pattern
/// confidences across windows.
pub fn mine_windows(
    series: &FeatureSeries,
    period: usize,
    config: &MineConfig,
    window: WindowSpec,
) -> Result<EvolutionResult> {
    if period == 0 || period > series.len() {
        return Err(Error::InvalidPeriod {
            period,
            series_len: series.len(),
        });
    }
    let total_segments = series.len() / period;
    if window.segments > total_segments {
        return Err(Error::InvalidPeriod {
            period: window.segments * period,
            series_len: series.len(),
        });
    }

    let mut windows = Vec::new();
    let mut start = 0;
    while start + window.segments <= total_segments {
        windows.push((start, window.segments));
        start += window.stride;
    }

    // Mine every window, recording per-pattern confidence.
    let mut table: HashMap<Vec<(usize, FeatureId)>, Vec<Option<f64>>> = HashMap::new();
    for (w, &(first, count)) in windows.iter().enumerate() {
        let sub = series.slice(first * period, (first + count) * period);
        let result = hitset::mine(&sub, period, config)?;
        for fp in &result.frequent {
            let mut key: Vec<(usize, FeatureId)> = fp
                .letters
                .iter()
                .map(|i| result.alphabet.letter(i))
                .collect();
            key.sort_unstable();
            let track = table
                .entry(key)
                .or_insert_with(|| vec![None; windows.len()]);
            track[w] = Some(fp.confidence(result.segment_count));
        }
    }

    let mut tracks: Vec<PatternTrack> = table
        .into_iter()
        .map(|(letters, confidences)| PatternTrack {
            letters,
            confidences,
        })
        .collect();
    tracks.sort_by(|a, b| a.letters.cmp(&b.letters));
    Ok(EvolutionResult {
        period,
        windows,
        tracks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_timeseries::SeriesBuilder;

    fn fid(i: u32) -> FeatureId {
        FeatureId::from_raw(i)
    }

    /// 60 segments of period 3: f0 periodic throughout; f1 only in the
    /// first half; f2 only in the second half.
    fn drifting_series() -> FeatureSeries {
        let mut b = SeriesBuilder::new();
        for j in 0..60 {
            b.push_instant([fid(0)]);
            b.push_instant(if j < 30 { vec![fid(1)] } else { vec![] });
            b.push_instant(if j >= 30 { vec![fid(2)] } else { vec![] });
        }
        b.finish()
    }

    #[test]
    fn tracks_classify_drift() {
        let s = drifting_series();
        let config = MineConfig::new(0.8).unwrap();
        let out = mine_windows(&s, 3, &config, WindowSpec::new(10, 10).unwrap()).unwrap();
        assert_eq!(out.window_count(), 6);

        let stable = out.track_of(&[(0, fid(0))]).unwrap();
        assert_eq!(stable.classify(6), Drift::Stable);
        assert_eq!(stable.presence(), 6);

        let vanished = out.track_of(&[(1, fid(1))]).unwrap();
        assert_eq!(vanished.classify(6), Drift::Vanished);
        assert_eq!(vanished.last_seen(), Some(2));

        let emerging = out.track_of(&[(2, fid(2))]).unwrap();
        assert_eq!(emerging.classify(6), Drift::Emerging);
        assert_eq!(emerging.first_seen(), Some(3));
    }

    #[test]
    fn confidences_are_per_window() {
        let s = drifting_series();
        let config = MineConfig::new(0.8).unwrap();
        let out = mine_windows(&s, 3, &config, WindowSpec::new(10, 10).unwrap()).unwrap();
        let stable = out.track_of(&[(0, fid(0))]).unwrap();
        for c in &stable.confidences {
            assert_eq!(*c, Some(1.0));
        }
    }

    #[test]
    fn overlapping_windows() {
        let s = drifting_series();
        let config = MineConfig::new(0.8).unwrap();
        let out = mine_windows(&s, 3, &config, WindowSpec::new(20, 10).unwrap()).unwrap();
        // Starts at 0, 10, 20, 30, 40 — window 40 covers segments 40..60.
        assert_eq!(out.window_count(), 5);
        assert_eq!(out.windows[1], (10, 20));
        // The half-and-half letters are frequent only where their half
        // dominates the window.
        let vanished = out.track_of(&[(1, fid(1))]).unwrap();
        assert_eq!(vanished.presence(), 2); // windows [0..20) and [10..30)
    }

    #[test]
    fn with_drift_filters() {
        let s = drifting_series();
        let config = MineConfig::new(0.8).unwrap();
        let out = mine_windows(&s, 3, &config, WindowSpec::new(10, 10).unwrap()).unwrap();
        let n = out.window_count();
        assert!(out.with_drift(Drift::Stable).count() >= 1);
        for t in out.with_drift(Drift::Emerging) {
            assert!(t.first_seen().unwrap() > 0);
            assert_eq!(t.last_seen().unwrap(), n - 1);
        }
    }

    #[test]
    fn multi_letter_patterns_are_tracked() {
        // f0 and f1 co-occur for the first 30 segments only.
        let s = drifting_series();
        let config = MineConfig::new(0.8).unwrap();
        let out = mine_windows(&s, 3, &config, WindowSpec::new(10, 10).unwrap()).unwrap();
        let pair = out.track_of(&[(0, fid(0)), (1, fid(1))]).unwrap();
        assert_eq!(pair.classify(6), Drift::Vanished);
    }

    #[test]
    fn rejects_bad_specs() {
        let s = drifting_series();
        let config = MineConfig::new(0.8).unwrap();
        assert!(WindowSpec::new(0, 1).is_err());
        assert!(WindowSpec::new(1, 0).is_err());
        // Window longer than the series.
        assert!(mine_windows(&s, 3, &config, WindowSpec::new(100, 1).unwrap()).is_err());
        // Bad period.
        assert!(mine_windows(&s, 0, &config, WindowSpec::new(5, 5).unwrap()).is_err());
    }
}
