//! Mining results: frequent patterns with exact counts.

use ppm_timeseries::FeatureCatalog;

use crate::letters::{Alphabet, LetterSet};
use crate::pattern::Pattern;
use crate::stats::MiningStats;

/// One frequent pattern, in the dense letter encoding, with its exact
/// frequency count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrequentPattern {
    /// The pattern as a set of letters over the result's [`Alphabet`].
    pub letters: LetterSet,
    /// Exact frequency count (number of matching period segments).
    pub count: u64,
}

impl FrequentPattern {
    /// Confidence given `m` whole segments.
    pub fn confidence(&self, segment_count: usize) -> f64 {
        if segment_count == 0 {
            0.0
        } else {
            self.count as f64 / segment_count as f64
        }
    }
}

/// The complete output of mining one period: every frequent pattern
/// (all L-lengths ≥ 1) with exact counts, plus instrumentation.
#[derive(Debug, Clone)]
pub struct MiningResult {
    /// The mined period `p`.
    pub period: usize,
    /// Number of whole period segments `m`.
    pub segment_count: usize,
    /// The confidence threshold used.
    pub min_confidence: f64,
    /// The count threshold `min_count = ⌈min_conf · m⌉` used.
    pub min_count: u64,
    /// The frequent-letter alphabet (`C_max`).
    pub alphabet: Alphabet,
    /// All frequent patterns, sorted by (letter count, letters).
    pub frequent: Vec<FrequentPattern>,
    /// Instrumentation gathered during mining.
    pub stats: MiningStats,
}

impl MiningResult {
    /// Number of frequent patterns found.
    pub fn len(&self) -> usize {
        self.frequent.len()
    }

    /// Whether no patterns were frequent.
    pub fn is_empty(&self) -> bool {
        self.frequent.is_empty()
    }

    /// Canonicalizes ordering: by ascending letter count, then by letter
    /// indices. Miners call this before returning so results from different
    /// algorithms compare equal structurally.
    pub fn sort(&mut self) {
        self.frequent.sort_by(|a, b| {
            let la = a.letters.len();
            let lb = b.letters.len();
            la.cmp(&lb).then_with(|| {
                a.letters
                    .iter()
                    .collect::<Vec<_>>()
                    .cmp(&b.letters.iter().collect())
            })
        });
    }

    /// Iterates frequent patterns decoded to symbolic [`Pattern`]s with
    /// `(pattern, count, confidence)`.
    pub fn patterns(&self) -> impl Iterator<Item = (Pattern, u64, f64)> + '_ {
        self.frequent.iter().map(move |fp| {
            (
                Pattern::from_letter_set(&self.alphabet, &fp.letters),
                fp.count,
                fp.confidence(self.segment_count),
            )
        })
    }

    /// Frequent patterns with exactly `k` letters.
    pub fn with_letter_count(&self, k: usize) -> impl Iterator<Item = &FrequentPattern> {
        self.frequent.iter().filter(move |fp| fp.letters.len() == k)
    }

    /// Frequent patterns with L-length exactly `k` (distinct offsets).
    pub fn with_l_length(&self, k: usize) -> impl Iterator<Item = &FrequentPattern> {
        self.frequent
            .iter()
            .filter(move |fp| self.alphabet.l_length_of(&fp.letters) == k)
    }

    /// The maximum L-length over all frequent patterns (the paper's
    /// MAX-PAT-LENGTH for this mining run), or 0 when nothing is frequent.
    pub fn max_l_length(&self) -> usize {
        self.frequent
            .iter()
            .map(|fp| self.alphabet.l_length_of(&fp.letters))
            .max()
            .unwrap_or(0)
    }

    /// The largest letter count among frequent patterns.
    pub fn max_letter_count(&self) -> usize {
        self.frequent
            .iter()
            .map(|fp| fp.letters.len())
            .max()
            .unwrap_or(0)
    }

    /// Looks up the exact count of a symbolic pattern, if it is frequent.
    ///
    /// Patterns with letters outside the alphabet (hence infrequent) return
    /// `None`.
    pub fn count_of(&self, pattern: &Pattern) -> Option<u64> {
        let set = pattern.to_letter_set(&self.alphabet)?;
        self.frequent
            .iter()
            .find(|fp| fp.letters == set)
            .map(|fp| fp.count)
    }

    /// The *maximal* frequent patterns: those with no frequent proper
    /// superpattern (paper §4 end). Quadratic in the number of frequent
    /// patterns, which is fine at realistic pattern counts.
    pub fn maximal(&self) -> Vec<&FrequentPattern> {
        self.frequent
            .iter()
            .filter(|fp| {
                !self.frequent.iter().any(|other| {
                    other.letters.len() > fp.letters.len() && fp.letters.is_subset(&other.letters)
                })
            })
            .collect()
    }

    /// Renders a human-readable report of the top patterns (longest first),
    /// for examples and diagnostics.
    pub fn report(&self, catalog: &FeatureCatalog, limit: usize) -> String {
        use std::fmt::Write as _;
        let mut rows: Vec<_> = self.frequent.iter().collect();
        rows.sort_by(|a, b| {
            b.letters
                .len()
                .cmp(&a.letters.len())
                .then(b.count.cmp(&a.count))
        });
        let mut out = String::new();
        let _ = writeln!(
            out,
            "period={} segments={} min_conf={:.2} frequent={} (showing {})",
            self.period,
            self.segment_count,
            self.min_confidence,
            self.frequent.len(),
            rows.len().min(limit),
        );
        for fp in rows.into_iter().take(limit) {
            let pat = Pattern::from_letter_set(&self.alphabet, &fp.letters);
            let _ = writeln!(
                out,
                "  {}  count={} conf={:.3}",
                pat.display(catalog),
                fp.count,
                fp.confidence(self.segment_count)
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_timeseries::FeatureId;

    fn fid(i: u32) -> FeatureId {
        FeatureId::from_raw(i)
    }

    /// Alphabet with letters (0,f0) (0,f1) (1,f2) (2,f3).
    fn alpha() -> Alphabet {
        Alphabet::new(3, [(0, fid(0)), (0, fid(1)), (1, fid(2)), (2, fid(3))])
    }

    fn result_with(patterns: Vec<(Vec<usize>, u64)>) -> MiningResult {
        let alphabet = alpha();
        let n = alphabet.len();
        MiningResult {
            period: 3,
            segment_count: 10,
            min_confidence: 0.4,
            min_count: 4,
            alphabet,
            frequent: patterns
                .into_iter()
                .map(|(idx, count)| FrequentPattern {
                    letters: LetterSet::from_indices(n, idx),
                    count,
                })
                .collect(),
            stats: MiningStats::default(),
        }
    }

    #[test]
    fn confidence_divides_by_segments() {
        let fp = FrequentPattern {
            letters: LetterSet::new(4),
            count: 5,
        };
        assert!((fp.confidence(10) - 0.5).abs() < 1e-12);
        assert_eq!(fp.confidence(0), 0.0);
    }

    #[test]
    fn sort_orders_by_size_then_letters() {
        let mut r = result_with(vec![
            (vec![0, 1], 5),
            (vec![2], 9),
            (vec![0], 8),
            (vec![0, 3], 6),
        ]);
        r.sort();
        let sizes: Vec<usize> = r.frequent.iter().map(|f| f.letters.len()).collect();
        assert_eq!(sizes, vec![1, 1, 2, 2]);
        assert_eq!(r.frequent[0].letters.iter().collect::<Vec<_>>(), vec![0]);
        assert_eq!(r.frequent[2].letters.iter().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn l_length_filters_distinguish_brace_sets() {
        // Letters 0 and 1 share offset 0: {f0,f1} is letter-count 2 but
        // L-length 1.
        let r = result_with(vec![(vec![0, 1], 5), (vec![0, 2], 5)]);
        assert_eq!(r.with_l_length(1).count(), 1);
        assert_eq!(r.with_l_length(2).count(), 1);
        assert_eq!(r.with_letter_count(2).count(), 2);
        assert_eq!(r.max_l_length(), 2);
        assert_eq!(r.max_letter_count(), 2);
    }

    #[test]
    fn maximal_filters_subsumed_patterns() {
        let r = result_with(vec![
            (vec![0], 9),
            (vec![2], 8),
            (vec![0, 2], 5),
            (vec![3], 7),
        ]);
        let max: Vec<Vec<usize>> = r
            .maximal()
            .iter()
            .map(|f| f.letters.iter().collect())
            .collect();
        assert!(max.contains(&vec![0, 2]));
        assert!(max.contains(&vec![3]));
        assert!(!max.contains(&vec![0]));
        assert!(!max.contains(&vec![2]));
    }

    #[test]
    fn count_of_round_trips_through_symbolic_form() {
        let r = result_with(vec![(vec![0, 2], 5)]);
        let pat = Pattern::from_letter_set(&r.alphabet, &r.frequent[0].letters);
        assert_eq!(r.count_of(&pat), Some(5));
        // A pattern with a foreign feature cannot be looked up.
        let mut cat = FeatureCatalog::with_synthetic_features(10);
        let foreign = Pattern::parse("f9 * *", &mut cat).unwrap();
        assert_eq!(r.count_of(&foreign), None);
    }

    #[test]
    fn patterns_decodes_all() {
        let r = result_with(vec![(vec![0], 8), (vec![0, 1], 5)]);
        let decoded: Vec<_> = r.patterns().collect();
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0].1, 8);
        assert!((decoded[1].2 - 0.5).abs() < 1e-12);
        assert_eq!(decoded[1].0.l_length(), 1); // {f0,f1} at offset 0
    }

    #[test]
    fn report_mentions_patterns() {
        let r = result_with(vec![(vec![0], 8)]);
        let cat = FeatureCatalog::with_synthetic_features(4);
        let rep = r.report(&cat, 10);
        assert!(rep.contains("period=3"));
        assert!(rep.contains("count=8"));
    }
}
