//! Mining statistics and the paper's analytical bounds.
//!
//! Every miner fills a [`MiningStats`] so experiments can report the
//! quantities the paper analyses in §3: number of full scans over the time
//! series, candidates generated, tree sizes, and the Property 3.2 buffer
//! bound for the max-subpattern hit set.

/// Instrumentation collected while mining.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MiningStats {
    /// Complete scans over the time series performed by the algorithm.
    /// Apriori (Alg 3.1) needs one per level; the hit-set method (Alg 3.2)
    /// and shared multi-period mining (Alg 3.4) need exactly 2.
    pub series_scans: usize,
    /// Candidate patterns generated across all levels (L-length ≥ 2).
    pub candidates_generated: u64,
    /// Candidate-versus-data subset tests performed while counting.
    pub subset_tests: u64,
    /// Total nodes in the max-subpattern tree, counting 0-count interior
    /// nodes (0 for Apriori).
    pub tree_nodes: usize,
    /// Distinct max-subpatterns hit (nodes with count > 0; 0 for Apriori).
    pub distinct_hits: usize,
    /// Total hit insertions into the tree — one per period segment whose
    /// hit pattern has ≥ 2 letters (0 for Apriori).
    pub hit_insertions: u64,
    /// Deepest level (pattern letter count) at which mining generated
    /// candidates.
    pub max_level: usize,
}

impl MiningStats {
    /// Merges another stats record into this one (used when aggregating
    /// multi-period runs). `series_scans` adds; `max_level` takes the max.
    ///
    /// Note the semantics of the size fields after absorbing: `tree_nodes`
    /// and `distinct_hits` become the **sum of each run's peak**, not the
    /// size of any single tree — the runs' trees never coexist, so the sum
    /// overstates peak memory. When peak footprint matters, aggregate with
    /// [`StatsRollup`], which tracks the per-run maxima alongside these
    /// totals.
    pub fn absorb(&mut self, other: &MiningStats) {
        self.series_scans += other.series_scans;
        self.candidates_generated += other.candidates_generated;
        self.subset_tests += other.subset_tests;
        self.tree_nodes += other.tree_nodes;
        self.distinct_hits += other.distinct_hits;
        self.hit_insertions += other.hit_insertions;
        self.max_level = self.max_level.max(other.max_level);
    }
}

/// Cross-run stats aggregation that keeps both views of the tree-size
/// fields: the summed totals (as [`MiningStats::absorb`] produces) *and*
/// the largest single run — the latter is what bounds memory, since the
/// per-run trees never coexist.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsRollup {
    /// Field-wise accumulation over every added run (see
    /// [`MiningStats::absorb`] for the summing semantics).
    pub total: MiningStats,
    /// How many runs were added.
    pub runs: usize,
    /// The largest `tree_nodes` any single run reported.
    pub max_tree_nodes: usize,
    /// The largest `distinct_hits` any single run reported.
    pub max_distinct_hits: usize,
}

impl StatsRollup {
    /// An empty rollup.
    pub fn new() -> Self {
        StatsRollup::default()
    }

    /// Folds one run's stats into the rollup.
    pub fn add(&mut self, run: &MiningStats) {
        self.total.absorb(run);
        self.runs += 1;
        self.max_tree_nodes = self.max_tree_nodes.max(run.tree_nodes);
        self.max_distinct_hits = self.max_distinct_hits.max(run.distinct_hits);
    }
}

/// Property 3.2: the size of the max-subpattern hit set is bounded by
/// `min(m, 2^|F1| − 1)`, where `m` is the number of whole periods and
/// `|F1|` the number of frequent 1-patterns. Saturates instead of
/// overflowing for large `f1_len`.
pub fn hit_set_bound(m: u64, f1_len: u32) -> u64 {
    let combinatorial = if f1_len >= 64 {
        u64::MAX
    } else {
        (1u64 << f1_len) - 1
    };
    m.min(combinatorial)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_matches_paper_worked_examples() {
        // §3.1.2: "if we found 500 frequent 1-patterns when calculating
        // yearly periodic patterns for 100 years, the buffer size needed is
        // at most 100" …
        assert_eq!(hit_set_bound(100, 500), 100);
        // "… if we found 8 frequent 1-patterns for … 100 years, the buffer
        // size needed is at most 2^8 − 1 = 255" (m = 100 < 255 would bind
        // first; the paper's point is the combinatorial term, so test it
        // directly with a large m).
        assert_eq!(hit_set_bound(1_000_000, 8), 255);
    }

    #[test]
    fn bound_edges() {
        assert_eq!(hit_set_bound(0, 10), 0);
        assert_eq!(hit_set_bound(10, 0), 0); // 2^0 - 1 = 0 hits possible
        assert_eq!(hit_set_bound(u64::MAX, 64), u64::MAX);
        assert_eq!(hit_set_bound(5, 63), 5);
    }

    #[test]
    fn absorb_accumulates() {
        let mut a = MiningStats {
            series_scans: 2,
            max_level: 3,
            ..Default::default()
        };
        let b = MiningStats {
            series_scans: 2,
            candidates_generated: 10,
            max_level: 5,
            tree_nodes: 7,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.series_scans, 4);
        assert_eq!(a.candidates_generated, 10);
        assert_eq!(a.max_level, 5);
        assert_eq!(a.tree_nodes, 7);
    }

    #[test]
    fn rollup_tracks_totals_and_maxima() {
        let mut rollup = StatsRollup::new();
        rollup.add(&MiningStats {
            series_scans: 2,
            tree_nodes: 10,
            distinct_hits: 4,
            ..Default::default()
        });
        rollup.add(&MiningStats {
            series_scans: 2,
            tree_nodes: 3,
            distinct_hits: 2,
            ..Default::default()
        });
        assert_eq!(rollup.runs, 2);
        assert_eq!(rollup.total.series_scans, 4);
        assert_eq!(rollup.total.tree_nodes, 13, "totals sum per-run peaks");
        assert_eq!(rollup.max_tree_nodes, 10, "max is the largest single run");
        assert_eq!(rollup.max_distinct_hits, 4);
    }
}
