//! Multi-level partial periodicity mining over a feature taxonomy
//! (paper §6).
//!
//! "One can explore level-shared mining by first mining the periodicity at
//! a high level, and then progressively drilling-down with the discovered
//! periodic patterns to see whether they are still periodic at a lower
//! level."
//!
//! Concretely, [`mine_multilevel`] mines depth 0 (root features), then for
//! each deeper level `d` generalizes every feature to its depth-`d`
//! ancestor and — the drill-down filter — **drops any occurrence whose
//! depth-`(d−1)` generalization was not a frequent letter at the previous
//! level** at the same period offset. Infrequent high-level behaviour can
//! never become frequent at a finer level (generalization only merges
//! counts), so the filter is lossless for frequent patterns and shrinks the
//! work per level.

use ppm_timeseries::{FeatureId, FeatureSeries, SeriesBuilder, Taxonomy};

use crate::error::Result;
use crate::result::MiningResult;
use crate::scan::MineConfig;
use crate::{mine, Algorithm};

/// The mining result at one taxonomy depth.
#[derive(Debug, Clone)]
pub struct LevelResult {
    /// The taxonomy depth mined (0 = root features).
    pub depth: usize,
    /// Patterns over the depth-`depth` generalized features.
    pub result: MiningResult,
}

/// Generalizes `f` to its ancestor at taxonomy depth `d`; features at depth
/// ≤ `d` pass through unchanged.
fn generalize_to_depth(taxonomy: &Taxonomy, f: FeatureId, d: usize) -> FeatureId {
    let ancestors = taxonomy.ancestors(f); // nearest first; last is the root
    let own_depth = ancestors.len();
    if own_depth <= d {
        f
    } else {
        // Ancestor at depth d is the (own_depth - d)-th one, 1-based from
        // nearest — index own_depth - d - 1.
        ancestors[own_depth - d - 1]
    }
}

/// Mines levels `0 ..= max_depth` of the taxonomy at a fixed period,
/// drilling down with the previous level's frequent letters as a filter.
/// Levels whose alphabet comes up empty end the drill-down early.
pub fn mine_multilevel(
    series: &FeatureSeries,
    taxonomy: &Taxonomy,
    period: usize,
    max_depth: usize,
    config: &MineConfig,
    algorithm: Algorithm,
) -> Result<Vec<LevelResult>> {
    let mut out: Vec<LevelResult> = Vec::new();
    let mut prev_alphabet: Option<crate::letters::Alphabet> = None;

    for depth in 0..=max_depth {
        let mut builder = SeriesBuilder::with_capacity(series.len(), series.total_features());
        for (t, instant) in series.iter().enumerate() {
            let offset = t % period;
            builder.push_instant(instant.iter().filter_map(|&f| {
                let g = generalize_to_depth(taxonomy, f, depth);
                if let Some(prev) = &prev_alphabet {
                    // Drill-down filter: the coarser form of this occurrence
                    // must have been a frequent letter one level up.
                    let coarser = generalize_to_depth(taxonomy, f, depth - 1);
                    prev.index_of(offset, coarser)?;
                }
                Some(g)
            }));
        }
        let generalized = builder.finish();
        let result = mine(&generalized, period, config, algorithm)?;
        let empty = result.is_empty();
        prev_alphabet = Some(result.alphabet.clone());
        out.push(LevelResult { depth, result });
        if empty {
            break; // nothing frequent survives at finer levels either
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_timeseries::FeatureCatalog;

    use crate::pattern::Pattern;

    /// Taxonomy: espresso, latte -> coffee -> beverage; tea -> beverage.
    /// Series (period 2): offset 0 always has some coffee drink — espresso
    /// and latte alternating — offset 1 has tea in half the segments.
    fn setup() -> (FeatureCatalog, Taxonomy, FeatureSeries) {
        let mut cat = FeatureCatalog::new();
        let tax = Taxonomy::from_name_pairs(
            &[
                ("espresso", "coffee"),
                ("latte", "coffee"),
                ("coffee", "beverage"),
                ("tea", "beverage"),
            ],
            &mut cat,
        )
        .unwrap();
        let espresso = cat.get("espresso").unwrap();
        let latte = cat.get("latte").unwrap();
        let tea = cat.get("tea").unwrap();
        let mut b = SeriesBuilder::new();
        for j in 0..12 {
            b.push_instant([if j % 2 == 0 { espresso } else { latte }]);
            b.push_instant(if j % 2 == 0 { vec![tea] } else { vec![] });
        }
        (cat, tax, b.finish())
    }

    #[test]
    fn depth_zero_mines_roots() {
        let (mut cat, tax, series) = setup();
        let config = MineConfig::new(0.9).unwrap();
        let levels = mine_multilevel(&series, &tax, 2, 0, &config, Algorithm::HitSet).unwrap();
        assert_eq!(levels.len(), 1);
        // At the root level, offset 0 is "beverage" in every segment.
        let pat = Pattern::parse("beverage *", &mut cat).unwrap();
        assert_eq!(levels[0].result.count_of(&pat), Some(12));
    }

    #[test]
    fn drill_down_refines_until_confidence_breaks() {
        let (mut cat, tax, series) = setup();
        let config = MineConfig::new(0.9).unwrap();
        let levels = mine_multilevel(&series, &tax, 2, 2, &config, Algorithm::HitSet).unwrap();
        // Depth 1: "coffee *" still periodic (every segment); tea at
        // offset 1 only reaches 0.5 and drops out.
        let coffee = Pattern::parse("coffee *", &mut cat).unwrap();
        assert_eq!(levels[1].result.count_of(&coffee), Some(12));
        let tea = Pattern::parse("* tea", &mut cat).unwrap();
        assert_eq!(levels[1].result.count_of(&tea), None);
        // Depth 2: neither espresso nor latte alone is ≥ 0.9 — the level
        // exists but is empty, and the drill-down stops there.
        assert_eq!(levels.len(), 3);
        assert!(levels[2].result.is_empty());
    }

    #[test]
    fn filter_drops_occurrences_infrequent_at_coarser_level() {
        let (mut cat, tax, series) = setup();
        // With min_conf 0.9, tea@1 (conf 0.5) is infrequent at depth 1, so
        // at depth 2 the tea occurrences must have been filtered away
        // entirely: its letter cannot reappear.
        let config = MineConfig::new(0.9).unwrap();
        let levels = mine_multilevel(&series, &tax, 2, 2, &config, Algorithm::HitSet).unwrap();
        let tea = cat.intern("tea");
        assert!(levels[2].result.alphabet.index_of(1, tea).is_none());
    }

    #[test]
    fn lower_threshold_lets_fine_levels_survive() {
        let (mut cat, tax, series) = setup();
        let config = MineConfig::new(0.4).unwrap();
        let levels = mine_multilevel(&series, &tax, 2, 2, &config, Algorithm::HitSet).unwrap();
        assert_eq!(levels.len(), 3);
        // espresso appears in half the segments at offset 0: conf 0.5 ≥ 0.4.
        let espresso = Pattern::parse("espresso *", &mut cat).unwrap();
        assert_eq!(levels[2].result.count_of(&espresso), Some(6));
    }

    #[test]
    fn generalize_to_depth_walks_correctly() {
        let (mut cat, tax, _) = setup();
        let espresso = cat.intern("espresso");
        let coffee = cat.intern("coffee");
        let beverage = cat.intern("beverage");
        assert_eq!(generalize_to_depth(&tax, espresso, 0), beverage);
        assert_eq!(generalize_to_depth(&tax, espresso, 1), coffee);
        assert_eq!(generalize_to_depth(&tax, espresso, 2), espresso);
        assert_eq!(generalize_to_depth(&tax, espresso, 9), espresso);
        assert_eq!(generalize_to_depth(&tax, beverage, 0), beverage);
    }
}
