//! The letter alphabet and bitset pattern encoding.
//!
//! After the first scan finds `F1` (the frequent 1-patterns), every pattern
//! of interest is a subpattern of the *candidate max-pattern* `C_max` — the
//! union of `F1` (paper §3.1.2). A **letter** is one `(offset, feature)`
//! pair of `C_max`; letters are numbered densely in `(offset, feature)`
//! order, which is exactly the canonical "missing-letter order" the
//! max-subpattern tree of §4 traverses.
//!
//! A pattern over `C_max` is then just a set of letter indices — a
//! [`LetterSet`] bitset — and the heavy operations of the mining algorithms
//! (subset tests for matching, intersections for hit computation) become a
//! few word-wide instructions.

use std::fmt;

use ppm_timeseries::FeatureId;

/// The alphabet of frequent letters for one period: the positions and
/// features of `C_max`, densely numbered in `(offset, feature)` order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alphabet {
    period: usize,
    /// Sorted by `(offset, feature)`; index in this vec == letter index.
    letters: Vec<(u32, FeatureId)>,
    /// `offset_starts[o]..offset_starts[o+1]` indexes `letters` for offset o.
    offset_starts: Vec<u32>,
}

impl Alphabet {
    /// Builds an alphabet from `(offset, feature)` pairs for a period.
    ///
    /// Pairs may arrive unsorted or duplicated; offsets must be `< period`.
    ///
    /// # Panics
    /// Panics if any offset is out of range (an internal-contract violation:
    /// scan code only produces in-range offsets).
    pub fn new(period: usize, pairs: impl IntoIterator<Item = (usize, FeatureId)>) -> Self {
        let mut letters: Vec<(u32, FeatureId)> = pairs
            .into_iter()
            .map(|(o, f)| {
                assert!(o < period, "offset {o} out of range for period {period}");
                (o as u32, f)
            })
            .collect();
        letters.sort_unstable();
        letters.dedup();
        let mut offset_starts = Vec::with_capacity(period + 1);
        let mut cursor = 0u32;
        for o in 0..period as u32 {
            offset_starts.push(cursor);
            while (cursor as usize) < letters.len() && letters[cursor as usize].0 == o {
                cursor += 1;
            }
        }
        offset_starts.push(cursor);
        Alphabet {
            period,
            letters,
            offset_starts,
        }
    }

    /// The mining period this alphabet belongs to.
    pub fn period(&self) -> usize {
        self.period
    }

    /// Number of letters `n_L = |F1|`.
    pub fn len(&self) -> usize {
        self.letters.len()
    }

    /// Whether the alphabet is empty (no frequent 1-patterns).
    pub fn is_empty(&self) -> bool {
        self.letters.is_empty()
    }

    /// The `(offset, feature)` of letter `idx`.
    ///
    /// # Panics
    /// Panics if `idx >= len()`.
    pub fn letter(&self, idx: usize) -> (usize, FeatureId) {
        let (o, f) = self.letters[idx];
        (o as usize, f)
    }

    /// The letter index of `(offset, feature)`, if it is frequent.
    pub fn index_of(&self, offset: usize, feature: FeatureId) -> Option<usize> {
        if offset >= self.period {
            return None;
        }
        let lo = self.offset_starts[offset] as usize;
        let hi = self.offset_starts[offset + 1] as usize;
        self.letters[lo..hi]
            .binary_search_by_key(&feature, |&(_, f)| f)
            .ok()
            .map(|i| lo + i)
    }

    /// The contiguous range of letter indices at `offset`.
    pub fn letters_at(&self, offset: usize) -> std::ops::Range<usize> {
        self.offset_starts[offset] as usize..self.offset_starts[offset + 1] as usize
    }

    /// Iterates `(letter_index, offset, feature)` in letter order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, FeatureId)> + '_ {
        self.letters
            .iter()
            .enumerate()
            .map(|(i, &(o, f))| (i, o as usize, f))
    }

    /// A fresh, empty [`LetterSet`] sized for this alphabet.
    pub fn empty_set(&self) -> LetterSet {
        LetterSet::new(self.len())
    }

    /// The full letter set — the candidate max-pattern `C_max`.
    pub fn full_set(&self) -> LetterSet {
        LetterSet::full(self.len())
    }

    /// The L-length of `set` under this alphabet: the number of *distinct
    /// offsets* carrying at least one letter. Two letters at the same
    /// offset (a brace-set position) count once.
    pub fn l_length_of(&self, set: &LetterSet) -> usize {
        let mut distinct = 0;
        let mut last_offset = usize::MAX;
        for idx in set.iter() {
            let (o, _) = self.letter(idx);
            if o != last_offset {
                distinct += 1;
                last_offset = o;
            }
        }
        distinct
    }

    /// Projects one period segment's instant (`offset`, feature slice) into
    /// `set`: sets the bit of every frequent letter present.
    pub fn project_instant(&self, offset: usize, features: &[FeatureId], set: &mut LetterSet) {
        let range = self.letters_at(offset);
        if range.is_empty() || features.is_empty() {
            return;
        }
        // Merge-walk the two sorted lists (both are sorted by feature id).
        let letters = &self.letters[range.clone()];
        let mut li = 0;
        let mut fi = 0;
        while li < letters.len() && fi < features.len() {
            match letters[li].1.cmp(&features[fi]) {
                std::cmp::Ordering::Less => li += 1,
                std::cmp::Ordering::Greater => fi += 1,
                std::cmp::Ordering::Equal => {
                    set.insert(range.start + li);
                    li += 1;
                    fi += 1;
                }
            }
        }
    }

    /// [`Self::project_instant`] against a pre-encoded instant: membership
    /// is one bit test per letter at the offset (bit `f` of `instant_words`
    /// set iff feature id `f` occurs at the instant), skipping the merge
    /// walk over the raw feature slice. `instant_words` shorter than the
    /// feature universe reads as absent features.
    pub fn project_encoded(&self, offset: usize, instant_words: &[u64], set: &mut LetterSet) {
        for li in self.letters_at(offset) {
            let f = self.letters[li].1.index();
            if instant_words
                .get(f / 64)
                .is_some_and(|w| w & (1u64 << (f % 64)) != 0)
            {
                set.insert(li);
            }
        }
    }
}

/// A set of letter indices over an [`Alphabet`], stored as a fixed-width
/// bitset. All sets drawn from the same alphabet have the same width, so
/// subset/intersection tests are straight word loops.
///
/// Universes of at most 64 letters — the common case in the paper's
/// experiments — are stored inline in one machine word; only larger
/// alphabets heap-allocate. The representation is chosen by universe size
/// alone, so sets over the same alphabet always share a layout and
/// equality/hashing stay content-based (see the manual impls below).
#[derive(Clone)]
pub struct LetterSet {
    /// Number of valid bits (the alphabet size this set was created for).
    universe: u32,
    words: Words,
}

/// Bit storage for a [`LetterSet`].
#[derive(Clone)]
enum Words {
    /// Universe ≤ 64: the whole set in one inline word, no allocation.
    Inline(u64),
    /// Universe > 64: `div_ceil(universe, 64)` words on the heap.
    Heap(Box<[u64]>),
}

impl LetterSet {
    /// An empty set over a universe of `n` letters.
    pub fn new(n: usize) -> Self {
        let words = if n <= 64 {
            Words::Inline(0)
        } else {
            Words::Heap(vec![0u64; n.div_ceil(64)].into_boxed_slice())
        };
        LetterSet {
            universe: n as u32,
            words,
        }
    }

    /// The full set `{0, …, n−1}`, filled a word at a time.
    pub fn full(n: usize) -> Self {
        let mut s = Self::new(n);
        let full_words = n / 64;
        let tail_bits = n % 64;
        let words = s.words_mut();
        for w in words.iter_mut().take(full_words) {
            *w = !0u64;
        }
        if tail_bits > 0 {
            words[full_words] = (1u64 << tail_bits) - 1;
        }
        s
    }

    /// The set's backing words (an inline set reads as a 1-word slice).
    #[inline]
    fn words(&self) -> &[u64] {
        match &self.words {
            Words::Inline(w) => std::slice::from_ref(w),
            Words::Heap(b) => b,
        }
    }

    #[inline]
    fn words_mut(&mut self) -> &mut [u64] {
        match &mut self.words {
            Words::Inline(w) => std::slice::from_mut(w),
            Words::Heap(b) => b,
        }
    }

    /// Builds a set from indices (any order, duplicates fine).
    pub fn from_indices(n: usize, indices: impl IntoIterator<Item = usize>) -> Self {
        let mut s = Self::new(n);
        for i in indices {
            s.insert(i);
        }
        s
    }

    /// The universe size this set was created for.
    pub fn universe(&self) -> usize {
        self.universe as usize
    }

    /// Inserts letter `i`.
    ///
    /// # Panics
    /// Panics if `i` is outside the universe.
    pub fn insert(&mut self, i: usize) {
        assert!(
            i < self.universe as usize,
            "letter {i} outside universe {}",
            self.universe
        );
        self.words_mut()[i / 64] |= 1u64 << (i % 64);
    }

    /// Removes letter `i` (no-op if absent).
    pub fn remove(&mut self, i: usize) {
        if i < self.universe as usize {
            self.words_mut()[i / 64] &= !(1u64 << (i % 64));
        }
    }

    /// Whether letter `i` is present.
    pub fn contains(&self, i: usize) -> bool {
        i < self.universe as usize && self.words()[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of letters present (the pattern's L-length).
    pub fn len(&self) -> usize {
        self.words().iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no letters are present.
    pub fn is_empty(&self) -> bool {
        self.words().iter().all(|&w| w == 0)
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &LetterSet) -> bool {
        debug_assert_eq!(self.universe, other.universe);
        self.words()
            .iter()
            .zip(other.words().iter())
            .all(|(&a, &b)| a & !b == 0)
    }

    /// Whether `self ⊇ other`.
    pub fn is_superset(&self, other: &LetterSet) -> bool {
        other.is_subset(self)
    }

    /// Whether the sets share no letters.
    pub fn is_disjoint(&self, other: &LetterSet) -> bool {
        debug_assert_eq!(self.universe, other.universe);
        self.words()
            .iter()
            .zip(other.words().iter())
            .all(|(&a, &b)| a & b == 0)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &LetterSet) {
        debug_assert_eq!(self.universe, other.universe);
        for (a, &b) in self.words_mut().iter_mut().zip(other.words().iter()) {
            *a |= b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &LetterSet) {
        debug_assert_eq!(self.universe, other.universe);
        for (a, &b) in self.words_mut().iter_mut().zip(other.words().iter()) {
            *a &= b;
        }
    }

    /// In-place difference (`self \ other`).
    pub fn difference_with(&mut self, other: &LetterSet) {
        debug_assert_eq!(self.universe, other.universe);
        for (a, &b) in self.words_mut().iter_mut().zip(other.words().iter()) {
            *a &= !b;
        }
    }

    /// `self \ other` as a new set.
    pub fn difference(&self, other: &LetterSet) -> LetterSet {
        let mut out = self.clone();
        out.difference_with(other);
        out
    }

    /// Clears all bits, keeping the allocation.
    pub fn clear(&mut self) {
        for w in self.words_mut().iter_mut() {
            *w = 0;
        }
    }

    /// Iterates present letter indices in ascending order.
    pub fn iter(&self) -> LetterIter<'_> {
        let words = self.words();
        LetterIter {
            words,
            word_idx: 0,
            current: words.first().copied().unwrap_or(0),
        }
    }

    /// The smallest present letter, if any.
    pub fn first(&self) -> Option<usize> {
        self.iter().next()
    }
}

// Equality and hashing go through the word *slice*, never the storage
// variant, so they are stable across representations by construction.
impl PartialEq for LetterSet {
    fn eq(&self, other: &Self) -> bool {
        self.universe == other.universe && self.words() == other.words()
    }
}

impl Eq for LetterSet {}

impl std::hash::Hash for LetterSet {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.universe.hash(state);
        self.words().hash(state);
    }
}

impl fmt::Debug for LetterSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Ascending iterator over the letters of a [`LetterSet`].
#[derive(Debug, Clone)]
pub struct LetterIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for LetterIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1; // clear lowest set bit
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fid(i: u32) -> FeatureId {
        FeatureId::from_raw(i)
    }

    #[test]
    fn alphabet_orders_letters_canonically() {
        let a = Alphabet::new(3, [(2, fid(5)), (0, fid(9)), (0, fid(1)), (2, fid(5))]);
        assert_eq!(a.len(), 3);
        assert_eq!(a.letter(0), (0, fid(1)));
        assert_eq!(a.letter(1), (0, fid(9)));
        assert_eq!(a.letter(2), (2, fid(5)));
        assert_eq!(a.period(), 3);
    }

    #[test]
    fn alphabet_index_lookup() {
        let a = Alphabet::new(4, [(1, fid(3)), (1, fid(7)), (3, fid(0))]);
        assert_eq!(a.index_of(1, fid(3)), Some(0));
        assert_eq!(a.index_of(1, fid(7)), Some(1));
        assert_eq!(a.index_of(3, fid(0)), Some(2));
        assert_eq!(a.index_of(1, fid(5)), None);
        assert_eq!(a.index_of(0, fid(3)), None);
        assert_eq!(a.index_of(9, fid(3)), None); // out-of-range offset
    }

    #[test]
    fn letters_at_ranges() {
        let a = Alphabet::new(3, [(0, fid(0)), (0, fid(1)), (2, fid(2))]);
        assert_eq!(a.letters_at(0), 0..2);
        assert_eq!(a.letters_at(1), 2..2);
        assert_eq!(a.letters_at(2), 2..3);
    }

    #[test]
    fn project_instant_sets_present_letters() {
        let a = Alphabet::new(2, [(0, fid(1)), (0, fid(3)), (1, fid(1))]);
        let mut s = a.empty_set();
        a.project_instant(0, &[fid(0), fid(1), fid(2)], &mut s);
        assert!(s.contains(0)); // (0, f1)
        assert!(!s.contains(1)); // f3 absent
        assert!(!s.contains(2)); // wrong offset
        a.project_instant(1, &[fid(1)], &mut s);
        assert!(s.contains(2));
    }

    #[test]
    #[should_panic(expected = "offset")]
    fn alphabet_rejects_out_of_range_offsets() {
        Alphabet::new(2, [(2, fid(0))]);
    }

    #[test]
    fn letterset_basic_ops() {
        let mut s = LetterSet::new(130); // force 3 words
        assert!(s.is_empty());
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert_eq!(s.len(), 3);
        assert!(s.contains(64));
        assert!(!s.contains(63));
        s.remove(64);
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 129]);
    }

    #[test]
    fn letterset_subset_relations() {
        let a = LetterSet::from_indices(10, [1, 3, 5]);
        let b = LetterSet::from_indices(10, [1, 3]);
        let c = LetterSet::from_indices(10, [2]);
        assert!(b.is_subset(&a));
        assert!(a.is_superset(&b));
        assert!(!a.is_subset(&b));
        assert!(a.is_subset(&a));
        assert!(c.is_disjoint(&a));
        assert!(!b.is_disjoint(&a));
    }

    #[test]
    fn letterset_algebra() {
        let mut a = LetterSet::from_indices(8, [0, 1, 2]);
        let b = LetterSet::from_indices(8, [2, 3]);
        a.union_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        a.intersect_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![2, 3]);
        let d = a.difference(&LetterSet::from_indices(8, [3]));
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![2]);
        a.clear();
        assert!(a.is_empty());
    }

    #[test]
    fn letterset_full_and_first() {
        let f = LetterSet::full(70);
        assert_eq!(f.len(), 70);
        assert_eq!(f.first(), Some(0));
        assert_eq!(LetterSet::new(70).first(), None);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn insert_out_of_universe_panics() {
        LetterSet::new(5).insert(5);
    }

    #[test]
    fn iter_crosses_word_boundaries() {
        let s = LetterSet::from_indices(200, [63, 64, 127, 128, 199]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![63, 64, 127, 128, 199]);
    }

    #[test]
    fn eq_and_hash_by_content() {
        use std::collections::HashSet;
        let a = LetterSet::from_indices(9, [1, 2]);
        let b = LetterSet::from_indices(9, [2, 1, 1]);
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn debug_renders_indices() {
        let s = LetterSet::from_indices(9, [4, 7]);
        assert_eq!(format!("{s:?}"), "{4, 7}");
    }

    #[test]
    fn l_length_counts_distinct_offsets() {
        // Letters 0 and 1 share offset 0; letter 2 sits at offset 2.
        let a = Alphabet::new(3, [(0, fid(1)), (0, fid(2)), (2, fid(3))]);
        assert_eq!(a.l_length_of(&LetterSet::from_indices(3, [0, 1])), 1);
        assert_eq!(a.l_length_of(&LetterSet::from_indices(3, [0, 2])), 2);
        assert_eq!(a.l_length_of(&LetterSet::from_indices(3, [0, 1, 2])), 2);
        assert_eq!(a.l_length_of(&LetterSet::new(3)), 0);
    }

    #[test]
    fn project_instant_empty_inputs_are_noops() {
        let a = Alphabet::new(2, [(0, fid(1))]);
        let mut s = a.empty_set();
        a.project_instant(0, &[], &mut s);
        assert!(s.is_empty());
        a.project_instant(1, &[fid(1)], &mut s); // no letters at offset 1
        assert!(s.is_empty());
    }

    #[test]
    fn inline_and_heap_boundary() {
        // Universe 64 is the last inline size; 65 spills to the heap. Both
        // must behave identically through the whole API.
        for n in [1usize, 63, 64, 65, 128, 129] {
            let full = LetterSet::full(n);
            assert_eq!(full.len(), n, "full({n})");
            assert_eq!(full.iter().collect::<Vec<_>>(), (0..n).collect::<Vec<_>>());
            let mut s = LetterSet::new(n);
            s.insert(n - 1);
            assert!(s.contains(n - 1));
            assert!(s.is_subset(&full));
            assert!(full.is_superset(&s));
            let mut d = full.clone();
            d.difference_with(&s);
            assert_eq!(d.len(), n - 1);
            assert!(!d.contains(n - 1));
        }
        assert_eq!(LetterSet::full(0).len(), 0);
        assert!(LetterSet::full(0).is_empty());
    }

    #[test]
    fn eq_and_hash_across_sizes() {
        use std::collections::HashSet;
        // Hashing must agree for equal sets regardless of storage variant;
        // the variant is universe-determined, so spot-check both regimes.
        for n in [9usize, 64, 65, 200] {
            let a = LetterSet::from_indices(n, [1, n - 1]);
            let b = LetterSet::from_indices(n, [n - 1, 1, 1]);
            assert_eq!(a, b);
            let mut set = HashSet::new();
            set.insert(a);
            assert!(set.contains(&b));
        }
    }

    #[test]
    fn project_encoded_matches_project_instant() {
        let a = Alphabet::new(2, [(0, fid(1)), (0, fid(3)), (1, fid(1))]);
        // Instant features {0, 1, 2} as a bitmap.
        let instant = [0b0111u64];
        let mut enc = a.empty_set();
        a.project_encoded(0, &instant, &mut enc);
        let mut raw = a.empty_set();
        a.project_instant(0, &[fid(0), fid(1), fid(2)], &mut raw);
        assert_eq!(enc, raw);
        assert!(enc.contains(0) && !enc.contains(1) && !enc.contains(2));
        // A short (or empty) word slice reads as no features present.
        a.project_encoded(1, &[], &mut enc);
        assert!(!enc.contains(2));
    }

    #[test]
    fn empty_alphabet_behaves() {
        let a = Alphabet::new(4, std::iter::empty());
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
        assert_eq!(a.full_set().len(), 0);
        assert_eq!(a.index_of(0, fid(0)), None);
        assert_eq!(a.iter().count(), 0);
    }
}
