//! Partial periodic pattern mining in time-series databases.
//!
//! This crate implements the algorithms of **Han, Dong & Yin, "Efficient
//! Mining of Partial Periodic Patterns in Time Series Database" (ICDE
//! 1999)**, on top of the [`ppm_timeseries`] substrate:
//!
//! * [`apriori::mine`] — **Algorithm 3.1**: single-period level-wise
//!   Apriori (up to `period` scans of the series);
//! * [`hitset::mine`] — **Algorithm 3.2**: the max-subpattern hit-set
//!   method (exactly 2 scans), built on the max-subpattern tree of §4
//!   ([`hitset::MaxSubpatternTree`], Algorithms 4.1/4.2);
//! * [`multi::mine_periods_looping`] — **Algorithm 3.3**: a period range by
//!   looping the single-period miner;
//! * [`multi::mine_periods_shared`] — **Algorithm 3.4**: shared mining of a
//!   period range in 2 scans total.
//!
//! Plus the extensions the paper sketches in §4 and §6: maximal-pattern
//! mining with MaxMiner-style lookahead ([`maximal`]), periodic association
//! rules ([`rules`]), perturbation-tolerant mining ([`perturb`]),
//! multi-level mining over feature taxonomies ([`multilevel`]), and a
//! perfect-periodicity miner with cycle elimination in the style of the
//! cyclic-association-rule work the paper contrasts itself with
//! ([`perfect`]).
//!
//! # Quickstart
//!
//! ```
//! use ppm_core::{hitset, MineConfig};
//! use ppm_timeseries::{FeatureCatalog, SeriesBuilder};
//!
//! // Jim reads the newspaper at offset 1 of every 3-slot "day".
//! let mut catalog = FeatureCatalog::new();
//! let paper = catalog.intern("newspaper");
//! let coffee = catalog.intern("coffee");
//! let mut builder = SeriesBuilder::new();
//! for day in 0..10 {
//!     builder.push_instant([coffee]);
//!     builder.push_instant(if day % 5 == 0 { vec![] } else { vec![paper] });
//!     builder.push_instant([]);
//! }
//! let series = builder.finish();
//!
//! let config = MineConfig::new(0.75).unwrap();
//! let result = hitset::mine(&series, 3, &config).unwrap();
//! for (pattern, count, conf) in result.patterns() {
//!     println!("{}  count={count} conf={conf:.2}", pattern.display(&catalog));
//! }
//! assert_eq!(result.stats.series_scans, 2);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod guard;
mod letters;
mod pattern;
mod result;
mod rows;
mod scan;

pub mod apriori;
pub mod audit;
pub mod closed;
pub mod constraints;
pub mod evolution;
pub mod export;
pub mod hitset;
pub mod maximal;
pub mod multi;
pub mod multilevel;
pub mod parallel;
pub mod perfect;
pub mod perturb;
pub mod rules;
pub mod stats;
pub mod streaming;
pub mod vertical;

pub use error::{Error, Result};
pub use letters::{Alphabet, LetterIter, LetterSet};
pub use pattern::{Pattern, PatternDisplay, Symbol};
pub use result::{FrequentPattern, MiningResult};
pub use scan::{scan_frequent_letters, scan_frequent_letters_view, MineConfig, Scan1};
pub use stats::{hit_set_bound, MiningStats, StatsRollup};

/// Which single-period mining algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Algorithm {
    /// Algorithm 3.1: level-wise Apriori, one scan per level.
    Apriori,
    /// Algorithm 3.2: max-subpattern hit set, two scans total.
    #[default]
    HitSet,
}

/// Mines a single period with the chosen algorithm. Both algorithms return
/// identical pattern sets and counts; they differ in scan count and memory
/// profile (see `MiningResult::stats`).
pub fn mine(
    series: &ppm_timeseries::FeatureSeries,
    period: usize,
    config: &MineConfig,
    algorithm: Algorithm,
) -> Result<MiningResult> {
    match algorithm {
        Algorithm::Apriori => apriori::mine(series, period, config),
        Algorithm::HitSet => hitset::mine(series, period, config),
    }
}
