//! Mining partial periodicity for a range of periods (paper §3.2).
//!
//! Patterns of interest often live at unexpected periods ("every 11 years,
//! or every 14 hours"), so the paper extends single-period mining to a
//! range `p_lo ..= p_hi`. Crucially, Apriori-style filtering **does not
//! transfer across periods**: the paper's `abab…` example shows a pattern
//! frequent at period 2 (`ab`) whose stretched form (`abab`) need not align
//! with frequent patterns of period 4, so each period must be mined in its
//! own right. Two strategies:
//!
//! * [`mine_periods_looping`] — **Algorithm 3.3**: run the hit-set miner
//!   per period (2 scans each, `2·k` total);
//! * [`mine_periods_shared`] — **Algorithm 3.4**: interleave all periods in
//!   the *same* two physical scans, trading memory (per-period count
//!   tables and trees held simultaneously) for I/O.

mod looping;
mod scheduler;
mod shared;

pub use looping::{mine_periods_looping, mine_periods_looping_view};
pub use scheduler::{mine_periods_scheduled, SweepEngine};
pub use shared::{mine_periods_shared, mine_periods_shared_view};

use crate::error::{Error, Result};
use crate::result::MiningResult;

/// An inclusive range of periods to mine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeriodRange {
    lo: usize,
    hi: usize,
}

impl PeriodRange {
    /// Creates a range; requires `1 <= lo <= hi`.
    pub fn new(lo: usize, hi: usize) -> Result<Self> {
        if lo == 0 || lo > hi {
            return Err(Error::InvalidPeriodRange { lo, hi });
        }
        Ok(PeriodRange { lo, hi })
    }

    /// A single-period "range".
    pub fn single(p: usize) -> Result<Self> {
        Self::new(p, p)
    }

    /// Lower bound (inclusive).
    pub fn lo(&self) -> usize {
        self.lo
    }

    /// Upper bound (inclusive).
    pub fn hi(&self) -> usize {
        self.hi
    }

    /// Number of periods in the range.
    pub fn len(&self) -> usize {
        self.hi - self.lo + 1
    }

    /// Whether the range is empty (never true for a constructed range).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates the periods.
    pub fn iter(&self) -> impl Iterator<Item = usize> {
        self.lo..=self.hi
    }
}

/// A period whose task tripped a resource guard mid-sweep.
///
/// Produced by [`mine_periods_scheduled`]: instead of one runaway period
/// aborting the whole sweep, a guard trip ([`Error::DeadlineExceeded`] /
/// [`Error::TreeBudgetExceeded`]) is recorded here — the carried error
/// still holds the partial [`crate::MiningStats`] accumulated before the
/// abort — and the remaining periods keep mining.
#[derive(Debug)]
pub struct PeriodFailure {
    /// The period whose mining task was aborted.
    pub period: usize,
    /// The typed guard error, carrying partial stats
    /// (`error.partial_stats()` is always `Some` for recorded failures).
    pub error: Error,
}

/// Result of mining a period range: one [`MiningResult`] per period plus
/// the *physical* scan count over the series (the headline difference
/// between Algorithms 3.3 and 3.4).
#[derive(Debug)]
pub struct MultiPeriodResult {
    /// Per-period results, in ascending period order.
    pub results: Vec<MiningResult>,
    /// Physical scans over the time series performed in total.
    pub total_scans: usize,
    /// Periods whose tasks tripped a resource guard, in ascending period
    /// order. Empty for the sequential strategies, which abort on the first
    /// guard trip instead (their single-threaded deadline makes every
    /// later period a foregone conclusion).
    pub failures: Vec<PeriodFailure>,
}

impl MultiPeriodResult {
    /// A result where every period completed (no per-period failures).
    pub fn complete(results: Vec<MiningResult>, total_scans: usize) -> Self {
        MultiPeriodResult {
            results,
            total_scans,
            failures: Vec::new(),
        }
    }

    /// The result for a specific period, if it was in the range.
    pub fn for_period(&self, period: usize) -> Option<&MiningResult> {
        self.results.iter().find(|r| r.period == period)
    }

    /// Total frequent patterns across all periods.
    pub fn total_patterns(&self) -> usize {
        self.results.iter().map(|r| r.len()).sum()
    }

    /// The period whose mining found the most frequent patterns — a crude
    /// but useful "most periodic" indicator for period discovery.
    pub fn densest_period(&self) -> Option<usize> {
        self.results
            .iter()
            .max_by_key(|r| r.len())
            .map(|r| r.period)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_validation() {
        assert!(PeriodRange::new(0, 5).is_err());
        assert!(PeriodRange::new(6, 5).is_err());
        let r = PeriodRange::new(2, 4).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(PeriodRange::single(7).unwrap().len(), 1);
        assert!(!r.is_empty());
    }
}
