//! Algorithm 3.4: shared mining of multiple periods in two scans.

use ppm_timeseries::{EncodedSeries, EncodedSeriesView, FeatureSeries};

use crate::error::Result;
use crate::hitset::derive::{derive_frequent, CountStrategy};
use crate::hitset::MaxSubpatternTree;
use crate::letters::LetterSet;
use crate::multi::{MultiPeriodResult, PeriodRange};
use crate::result::{FrequentPattern, MiningResult};
use crate::scan::{scan1_from_counts, CountTable, MineConfig, Scan1};
use crate::stats::MiningStats;

/// Mines every period in `range` with **two physical scans total** (paper
/// Algorithm 3.4): the first pass accumulates per-period letter counts for
/// all periods simultaneously; the second pass feeds every period's
/// max-subpattern tree as segments complete. Memory grows with the number
/// of periods (one count table and one tree each), which is the trade the
/// paper describes.
pub fn mine_periods_shared(
    series: &FeatureSeries,
    range: PeriodRange,
    config: &MineConfig,
) -> Result<MultiPeriodResult> {
    let periods: Vec<usize> = range.iter().filter(|&p| p <= series.len()).collect();
    if periods.is_empty() {
        return Ok(MultiPeriodResult::complete(Vec::new(), 0));
    }
    let _mine_span = ppm_observe::span("shared.mine");
    ppm_observe::gauge("shared.periods", periods.len() as u64);
    let n = series.len();

    // ---- Scan 1: per-period (offset, feature) counts, one physical pass.
    // The same pass packs each instant into the encoded-series cache, so
    // scan 2 probes bitmaps for every period instead of merge-walking the
    // raw feature slices once per period.
    let scan1_span = ppm_observe::span("shared.scan1");
    let mut counts: Vec<CountTable> = periods
        .iter()
        .map(|&p| CountTable::with_width(p, CountTable::width_of(series)))
        .collect();
    let usable: Vec<usize> = periods.iter().map(|&p| (n / p) * p).collect();
    let enc_width = EncodedSeries::width_for(series);
    let words_per_instant = enc_width.div_ceil(64);
    let mut enc_words = vec![0u64; n * words_per_instant];
    for t in 0..n {
        let instant = series.instant(t);
        if instant.is_empty() {
            continue;
        }
        let base = t * words_per_instant;
        for &f in instant {
            let idx = f.index();
            enc_words[base + idx / 64] |= 1u64 << (idx % 64);
        }
        for (pi, &p) in periods.iter().enumerate() {
            if t >= usable[pi] {
                continue;
            }
            let offset = (t % p) as u32;
            for &f in instant {
                counts[pi].add(offset, f);
            }
        }
    }
    let encoded = EncodedSeries::from_chunks(enc_width, n, vec![enc_words]);
    ppm_observe::gauge("shared.encoded_bytes", encoded.bytes() as u64);

    // Materialize a Scan1 per period.
    let scans: Vec<Scan1> = periods
        .iter()
        .zip(&counts)
        .map(|(&p, table)| {
            let m = n / p;
            scan1_from_counts(table, p, m, config.min_count(m))
        })
        .collect();
    drop(counts);
    drop(scan1_span);

    let results = scan2_and_derive(encoded.view(), &periods, &usable, scans, config);
    Ok(MultiPeriodResult::complete(results, 2))
}

/// [`mine_periods_shared`] over a borrowed bitmap view (an
/// [`EncodedSeries`] cache or a columnar file load): the encode step of
/// scan 1 disappears entirely — the rows *are* the encoding — so the two
/// "scans" are two passes over packed words with no series materialized.
pub fn mine_periods_shared_view(
    view: EncodedSeriesView<'_>,
    range: PeriodRange,
    config: &MineConfig,
) -> Result<MultiPeriodResult> {
    let periods: Vec<usize> = range.iter().filter(|&p| p <= view.len()).collect();
    if periods.is_empty() {
        return Ok(MultiPeriodResult::complete(Vec::new(), 0));
    }
    let _mine_span = ppm_observe::span("shared.mine");
    ppm_observe::gauge("shared.periods", periods.len() as u64);
    let n = view.len();

    // ---- Scan 1: per-period (offset, feature) counts, one physical pass
    // over the packed rows.
    let scan1_span = ppm_observe::span("shared.scan1");
    let mut counts: Vec<CountTable> = periods
        .iter()
        .map(|&p| CountTable::with_width(p, view.width()))
        .collect();
    let usable: Vec<usize> = periods.iter().map(|&p| (n / p) * p).collect();
    let mut features = Vec::new();
    for t in 0..n {
        features.clear();
        features.extend(view.features_at(t));
        if features.is_empty() {
            continue;
        }
        for (pi, &p) in periods.iter().enumerate() {
            if t >= usable[pi] {
                continue;
            }
            let offset = (t % p) as u32;
            for &f in &features {
                counts[pi].add(offset, f);
            }
        }
    }
    ppm_observe::gauge("shared.encoded_bytes", view.bytes() as u64);
    let scans: Vec<Scan1> = periods
        .iter()
        .zip(&counts)
        .map(|(&p, table)| {
            let m = n / p;
            scan1_from_counts(table, p, m, config.min_count(m))
        })
        .collect();
    drop(counts);
    drop(scan1_span);

    let results = scan2_and_derive(view, &periods, &usable, scans, config);
    Ok(MultiPeriodResult::complete(results, 2))
}

/// Scan 2 plus derivation, shared by the series-backed and view-backed
/// entry points: one physical pass over the packed rows feeding every
/// period's max-subpattern tree, then the in-memory derivation per period.
fn scan2_and_derive(
    view: EncodedSeriesView<'_>,
    periods: &[usize],
    usable: &[usize],
    scans: Vec<Scan1>,
    config: &MineConfig,
) -> Vec<MiningResult> {
    let n = view.len();
    let scan2_span = ppm_observe::span("shared.scan2");
    let mut trees: Vec<MaxSubpatternTree> = scans
        .iter()
        .map(|s| MaxSubpatternTree::new(s.alphabet.full_set()))
        .collect();
    let mut hits: Vec<LetterSet> = scans.iter().map(|s| s.alphabet.empty_set()).collect();
    for t in 0..n {
        let inst_words = view.instant_words(t);
        let has_features = inst_words.iter().any(|&w| w != 0);
        for (pi, &p) in periods.iter().enumerate() {
            if t >= usable[pi] {
                continue;
            }
            let offset = t % p;
            if has_features {
                scans[pi]
                    .alphabet
                    .project_encoded(offset, inst_words, &mut hits[pi]);
            }
            if offset == p - 1 {
                if hits[pi].len() >= 2 {
                    trees[pi].insert(&hits[pi]);
                }
                hits[pi].clear();
            }
        }
    }
    drop(scan2_span);

    // ---- Derivation per period (in-memory; no further scans).
    let _derive_span = ppm_observe::span("shared.derive");
    let mut results = Vec::with_capacity(periods.len());
    for ((period, scan1), tree) in periods.iter().copied().zip(scans).zip(trees) {
        let mut stats = MiningStats {
            series_scans: 2,
            max_level: 1,
            tree_nodes: tree.node_count(),
            distinct_hits: tree.distinct_hits(),
            hit_insertions: tree.total_hits(),
            ..Default::default()
        };
        let n_letters = scan1.alphabet.len();
        let mut frequent: Vec<FrequentPattern> = scan1
            .letter_counts
            .iter()
            .enumerate()
            .map(|(idx, &count)| FrequentPattern {
                letters: LetterSet::from_indices(n_letters, [idx]),
                count,
            })
            .collect();
        derive_frequent(
            &tree,
            &scan1,
            CountStrategy::default(),
            &mut frequent,
            &mut stats,
        );
        let mut result = MiningResult {
            period,
            segment_count: scan1.segment_count,
            min_confidence: config.min_confidence(),
            min_count: scan1.min_count,
            alphabet: scan1.alphabet,
            frequent,
            stats,
        };
        result.sort();
        results.push(result);
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_timeseries::{FeatureId, SeriesBuilder};

    use crate::multi::mine_periods_looping;
    use crate::Algorithm;

    fn fid(i: u32) -> FeatureId {
        FeatureId::from_raw(i)
    }

    fn mixed_series(n: usize) -> FeatureSeries {
        let mut b = SeriesBuilder::new();
        let mut x: u64 = 99;
        for t in 0..n {
            let mut inst = Vec::new();
            if t % 3 == 1 {
                inst.push(fid(0));
            }
            if t % 5 == 0 {
                inst.push(fid(1));
            }
            // Sprinkle noise.
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            if (x >> 60) == 0 {
                inst.push(fid(2));
            }
            b.push_instant(inst);
        }
        b.finish()
    }

    #[test]
    fn shared_equals_looping_for_every_period() {
        let s = mixed_series(150);
        let range = PeriodRange::new(2, 8).unwrap();
        let config = MineConfig::new(0.7).unwrap();
        let shared = mine_periods_shared(&s, range, &config).unwrap();
        let looping = mine_periods_looping(&s, range, &config, Algorithm::HitSet).unwrap();
        assert_eq!(shared.results.len(), looping.results.len());
        for (a, b) in shared.results.iter().zip(&looping.results) {
            assert_eq!(a.period, b.period);
            assert_eq!(a.frequent, b.frequent, "period {}", a.period);
            assert_eq!(a.segment_count, b.segment_count);
        }
    }

    #[test]
    fn shared_uses_exactly_two_scans() {
        let s = mixed_series(60);
        let range = PeriodRange::new(2, 10).unwrap();
        let config = MineConfig::new(0.5).unwrap();
        let shared = mine_periods_shared(&s, range, &config).unwrap();
        assert_eq!(shared.total_scans, 2);
        for r in &shared.results {
            assert_eq!(r.stats.series_scans, 2);
        }
        let looping = mine_periods_looping(&s, range, &config, Algorithm::HitSet).unwrap();
        assert_eq!(looping.total_scans, 2 * shared.results.len());
    }

    #[test]
    fn empty_range_after_filtering() {
        let s = mixed_series(5);
        let range = PeriodRange::new(10, 12).unwrap();
        let config = MineConfig::default();
        let out = mine_periods_shared(&s, range, &config).unwrap();
        assert!(out.results.is_empty());
        assert_eq!(out.total_scans, 0);
    }

    #[test]
    fn single_period_range_matches_single_period_miner() {
        let s = mixed_series(90);
        let config = MineConfig::new(0.8).unwrap();
        let shared = mine_periods_shared(&s, PeriodRange::single(3).unwrap(), &config).unwrap();
        let single = crate::hitset::mine(&s, 3, &config).unwrap();
        assert_eq!(shared.results.len(), 1);
        assert_eq!(shared.results[0].frequent, single.frequent);
    }

    #[test]
    fn view_shared_equals_series_shared() {
        let s = mixed_series(150);
        let encoded = EncodedSeries::encode(&s);
        let range = PeriodRange::new(2, 8).unwrap();
        let config = MineConfig::new(0.7).unwrap();
        let from_series = mine_periods_shared(&s, range, &config).unwrap();
        let from_view = mine_periods_shared_view(encoded.view(), range, &config).unwrap();
        assert_eq!(from_view.total_scans, 2);
        assert_eq!(from_series.results.len(), from_view.results.len());
        for (a, b) in from_series.results.iter().zip(&from_view.results) {
            assert_eq!(a.period, b.period);
            assert_eq!(a.frequent, b.frequent, "period {}", a.period);
            assert_eq!(a.stats, b.stats, "period {}", a.period);
        }
    }

    #[test]
    fn view_shared_empty_range_after_filtering() {
        let s = mixed_series(5);
        let encoded = EncodedSeries::encode(&s);
        let range = PeriodRange::new(10, 12).unwrap();
        let out = mine_periods_shared_view(encoded.view(), range, &MineConfig::default()).unwrap();
        assert!(out.results.is_empty());
        assert_eq!(out.total_scans, 0);
    }
}
