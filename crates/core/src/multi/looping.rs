//! Algorithm 3.3: multi-period mining by looping the single-period miner.

use ppm_timeseries::{EncodedSeriesView, FeatureSeries};

use crate::error::Result;
use crate::multi::{MultiPeriodResult, PeriodRange};
use crate::scan::MineConfig;
use crate::{mine, Algorithm};

/// Mines every period in `range` by running the chosen single-period
/// algorithm once per period (paper Algorithm 3.3).
///
/// With the hit-set algorithm this costs `2·k` scans for `k` periods;
/// [`super::mine_periods_shared`] brings that down to 2. Periods longer
/// than the series (no whole segment) are skipped rather than failing, so
/// a wide exploratory range over a short series still succeeds.
pub fn mine_periods_looping(
    series: &FeatureSeries,
    range: PeriodRange,
    config: &MineConfig,
    algorithm: Algorithm,
) -> Result<MultiPeriodResult> {
    let mut results = Vec::with_capacity(range.len());
    let mut total_scans = 0;
    for period in range.iter() {
        if period > series.len() {
            continue;
        }
        let r = mine(series, period, config, algorithm)?;
        total_scans += r.stats.series_scans;
        results.push(r);
    }
    Ok(MultiPeriodResult::complete(results, total_scans))
}

/// [`mine_periods_looping`] over a borrowed bitmap view: each period is
/// mined from the packed rows (no series materialized), with the same
/// per-period scan accounting.
pub fn mine_periods_looping_view(
    view: EncodedSeriesView<'_>,
    range: PeriodRange,
    config: &MineConfig,
    algorithm: Algorithm,
) -> Result<MultiPeriodResult> {
    let mut results = Vec::with_capacity(range.len());
    let mut total_scans = 0;
    for period in range.iter() {
        if period > view.len() {
            continue;
        }
        let r = match algorithm {
            Algorithm::Apriori => crate::apriori::mine_view(view, period, config)?,
            Algorithm::HitSet => crate::hitset::mine_view(view, period, config)?,
        };
        total_scans += r.stats.series_scans;
        results.push(r);
    }
    Ok(MultiPeriodResult::complete(results, total_scans))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_timeseries::{FeatureId, SeriesBuilder};

    fn fid(i: u32) -> FeatureId {
        FeatureId::from_raw(i)
    }

    /// Feature 0 fires every 3 instants; feature 1 every 4 instants.
    fn two_period_series(n: usize) -> FeatureSeries {
        let mut b = SeriesBuilder::new();
        for t in 0..n {
            let mut inst = Vec::new();
            if t % 3 == 0 {
                inst.push(fid(0));
            }
            if t % 4 == 0 {
                inst.push(fid(1));
            }
            b.push_instant(inst);
        }
        b.finish()
    }

    #[test]
    fn finds_both_planted_periods() {
        let s = two_period_series(120);
        let range = PeriodRange::new(2, 6).unwrap();
        let config = MineConfig::new(0.9).unwrap();
        let out = mine_periods_looping(&s, range, &config, Algorithm::HitSet).unwrap();
        assert_eq!(out.results.len(), 5);
        // Period 3 must contain the (0, f0) letter, period 4 the (0, f1).
        let p3 = out.for_period(3).unwrap();
        assert!(p3.alphabet.index_of(0, fid(0)).is_some());
        let p4 = out.for_period(4).unwrap();
        assert!(p4.alphabet.index_of(0, fid(1)).is_some());
        // Period 6 is a multiple of 3: f0 appears at offsets 0 and 3.
        let p6 = out.for_period(6).unwrap();
        assert!(p6.alphabet.index_of(0, fid(0)).is_some());
        assert!(p6.alphabet.index_of(3, fid(0)).is_some());
        // Period 5 has nothing with conf >= 0.9.
        let p5 = out.for_period(5).unwrap();
        assert!(p5.is_empty());
    }

    #[test]
    fn scan_count_is_two_per_period() {
        let s = two_period_series(60);
        let range = PeriodRange::new(2, 5).unwrap();
        let config = MineConfig::new(0.5).unwrap();
        let out = mine_periods_looping(&s, range, &config, Algorithm::HitSet).unwrap();
        assert_eq!(out.total_scans, 2 * 4);
    }

    #[test]
    fn view_looping_equals_series_looping() {
        use ppm_timeseries::EncodedSeries;
        let s = two_period_series(120);
        let encoded = EncodedSeries::encode(&s);
        let range = PeriodRange::new(2, 6).unwrap();
        let config = MineConfig::new(0.9).unwrap();
        for alg in [Algorithm::HitSet, Algorithm::Apriori] {
            let plain = mine_periods_looping(&s, range, &config, alg).unwrap();
            let viewed = mine_periods_looping_view(encoded.view(), range, &config, alg).unwrap();
            assert_eq!(plain.total_scans, viewed.total_scans, "{alg:?}");
            assert_eq!(plain.results.len(), viewed.results.len());
            for (a, b) in plain.results.iter().zip(&viewed.results) {
                assert_eq!(a.frequent, b.frequent, "{alg:?} period {}", a.period);
            }
        }
    }

    #[test]
    fn skips_periods_longer_than_series() {
        let s = two_period_series(10);
        let range = PeriodRange::new(8, 15).unwrap();
        let config = MineConfig::new(0.5).unwrap();
        let out = mine_periods_looping(&s, range, &config, Algorithm::HitSet).unwrap();
        assert_eq!(out.results.len(), 3); // periods 8, 9, 10
    }

    #[test]
    fn densest_period_prefers_the_planted_one() {
        let mut b = SeriesBuilder::new();
        for t in 0..210 {
            if t % 7 == 2 {
                b.push_instant([fid(0), fid(1)]);
            } else if t % 7 == 5 {
                b.push_instant([fid(2)]);
            } else {
                b.push_instant([]);
            }
        }
        let s = b.finish();
        let out = mine_periods_looping(
            &s,
            PeriodRange::new(2, 10).unwrap(),
            &MineConfig::new(0.95).unwrap(),
            Algorithm::HitSet,
        )
        .unwrap();
        assert_eq!(out.densest_period(), Some(7));
        assert!(out.total_patterns() > 0);
    }
}
