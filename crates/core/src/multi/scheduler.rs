//! The work-stealing sweep scheduler.
//!
//! A period sweep is a bag of independent tasks — "mine period `p`" — whose
//! costs vary wildly (short periods mean many segments, long periods mean
//! wide alphabets), so a static partition leaves workers idle behind one
//! slow period. This scheduler runs a persistent worker pool over a shared
//! task bag instead: every worker owns a deque seeded round-robin, a shared
//! injector deque holds overflow work, and an idle worker first drains its
//! own deque (front), then the injector, then *steals* from the back of a
//! peer's deque. All workers mine from the **same** borrowed
//! [`EncodedSeriesView`] — one encode or one columnar file load for the
//! whole sweep, never one per period.
//!
//! Results merge in period order, so the output is indistinguishable from
//! the sequential loop (the integration tests assert bit-identical results
//! and stats). Instrumented through `ppm-observe`: `sweep.tasks_stolen`
//! (counter), `sweep.worker_busy_us` (gauge, total busy time summed over
//! workers), `sweep.tasks` (counter, periods mined), and the per-period
//! task-latency distribution as `sweep.task_us_{p50,p90,p99,max}` gauges
//! (each worker records task durations into a local log-linear
//! [`Histogram`], merged after the join — recording never synchronizes
//! the pool).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use ppm_observe::Histogram;
use ppm_timeseries::EncodedSeriesView;

use crate::error::{Error, Result};
use crate::multi::{MultiPeriodResult, PeriodFailure, PeriodRange};
use crate::parallel::worker_panic;
use crate::result::MiningResult;
use crate::scan::MineConfig;

/// Which engine each sweep task runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepEngine {
    /// Algorithm 3.2 per period (two scans each).
    HitSet,
    /// Algorithm 3.1 per period (one scan per level).
    Apriori,
    /// The vertical bitmap engine per period (two scans each).
    Vertical,
}

/// Mines one period from the shared view with the chosen engine.
fn mine_one(
    view: EncodedSeriesView<'_>,
    period: usize,
    config: &MineConfig,
    engine: SweepEngine,
) -> Result<MiningResult> {
    match engine {
        SweepEngine::HitSet => crate::hitset::mine_view(view, period, config),
        SweepEngine::Apriori => crate::apriori::mine_view(view, period, config),
        SweepEngine::Vertical => crate::vertical::mine_vertical_view(view, period, config),
    }
}

/// Emits the merged per-period task-latency distribution: a `sweep.tasks`
/// counter plus quantile gauges. No-op for an empty sweep.
fn report_task_latency(task_us: &Histogram) {
    if task_us.count() == 0 {
        return;
    }
    ppm_observe::counter("sweep.tasks", task_us.count());
    ppm_observe::gauge("sweep.task_us_p50", task_us.value_at_quantile(0.50));
    ppm_observe::gauge("sweep.task_us_p90", task_us.value_at_quantile(0.90));
    ppm_observe::gauge("sweep.task_us_p99", task_us.value_at_quantile(0.99));
    ppm_observe::gauge("sweep.task_us_max", task_us.max());
}

/// The scheduler's task bag: per-worker deques plus a shared injector.
///
/// Tasks are indexes into the sweep's period list. The discipline is the
/// classic work-stealing one: owners pop their own deque from the front,
/// the injector feeds whoever gets to it first, and thieves take from the
/// *back* of a victim's deque so owner and thief touch opposite ends.
struct Deques {
    injector: Mutex<VecDeque<usize>>,
    workers: Vec<Mutex<VecDeque<usize>>>,
}

impl Deques {
    /// Seeds `n_tasks` round-robin across `n_workers` worker deques, with
    /// an empty injector.
    fn seed(n_tasks: usize, n_workers: usize) -> Self {
        let mut queues: Vec<VecDeque<usize>> = (0..n_workers).map(|_| VecDeque::new()).collect();
        for task in 0..n_tasks {
            queues[task % n_workers].push_back(task);
        }
        Deques {
            injector: Mutex::new(VecDeque::new()),
            workers: queues.into_iter().map(Mutex::new).collect(),
        }
    }

    /// Pushes late-arriving work onto the shared injector.
    #[cfg(test)]
    fn inject(&self, task: usize) {
        self.injector
            .lock()
            .expect("injector poisoned")
            .push_back(task);
    }

    /// The next task for worker `me`, and whether it was stolen: own deque
    /// front first, then the injector, then a scan of the other workers'
    /// deque backs. `None` means the whole bag is empty.
    fn pop(&self, me: usize) -> Option<(usize, bool)> {
        if let Some(t) = self.workers[me].lock().expect("deque poisoned").pop_front() {
            return Some((t, false));
        }
        if let Some(t) = self.injector.lock().expect("injector poisoned").pop_front() {
            return Some((t, false));
        }
        for step in 1..self.workers.len() {
            let victim = (me + step) % self.workers.len();
            if let Some(t) = self.workers[victim]
                .lock()
                .expect("deque poisoned")
                .pop_back()
            {
                return Some((t, true));
            }
        }
        None
    }
}

/// Mines every period in `range` from one shared bitmap view with a
/// work-stealing pool of `workers` threads (clamped to ≥ 1; one worker, or
/// a single-period range, runs inline with no pool).
///
/// The load/encode cost is paid **once** for the whole sweep — the view is
/// borrowed by every worker — and results are merged in ascending period
/// order, bit-identical to the sequential per-period loop.
///
/// Resource guards (`--deadline-ms` / `--max-tree-nodes` via
/// [`MineConfig::with_deadline`] / [`MineConfig::with_max_tree_nodes`])
/// propagate into every worker task. A guard trip aborts only *that
/// period*: the typed error — still carrying its partial
/// [`crate::MiningStats`] — is recorded as a [`PeriodFailure`] in
/// [`MultiPeriodResult::failures`] and the remaining periods keep mining,
/// so one pathological period degrades into a partial sweep instead of
/// killing it. Non-guard task errors (corruption, invalid config) still
/// abort the whole sweep and are returned; a panicking worker surfaces as
/// [`Error::WorkerPanic`].
///
/// `total_scans` counts *logical* per-period scans, like
/// [`mine_periods_looping`](crate::multi::mine_periods_looping), so sweep
/// reports stay comparable across schedulers.
pub fn mine_periods_scheduled(
    view: EncodedSeriesView<'_>,
    range: PeriodRange,
    config: &MineConfig,
    engine: SweepEngine,
    workers: usize,
) -> Result<MultiPeriodResult> {
    let periods: Vec<usize> = range.iter().filter(|&p| p <= view.len()).collect();
    if periods.is_empty() {
        return Ok(MultiPeriodResult::complete(Vec::new(), 0));
    }
    let workers = workers.max(1).min(periods.len());
    let _span = ppm_observe::span("sweep.schedule");
    ppm_observe::gauge("sweep.workers", workers as u64);

    if workers == 1 {
        // Inline path: same shared view, no pool to pay for — including the
        // same guard discipline (a tripped period is recorded, not fatal).
        let start = Instant::now();
        let mut results = Vec::with_capacity(periods.len());
        let mut failures = Vec::new();
        let mut task_us = Histogram::with_default_precision();
        for &p in &periods {
            let task_start = Instant::now();
            let outcome = mine_one(view, p, config, engine);
            task_us.record(task_start.elapsed().as_micros() as u64);
            match outcome {
                Ok(r) => results.push(r),
                Err(e) if e.partial_stats().is_some() => failures.push(PeriodFailure {
                    period: p,
                    error: e,
                }),
                Err(e) => return Err(e),
            }
        }
        ppm_observe::counter("sweep.tasks_stolen", 0);
        ppm_observe::gauge("sweep.worker_busy_us", start.elapsed().as_micros() as u64);
        report_task_latency(&task_us);
        let total_scans = results.iter().map(|r| r.stats.series_scans).sum();
        return Ok(MultiPeriodResult {
            results,
            total_scans,
            failures,
        });
    }

    let deques = Deques::seed(periods.len(), workers);
    let stolen = AtomicU64::new(0);
    let abort = AtomicBool::new(false);
    let collected: Mutex<Vec<(usize, MiningResult)>> =
        Mutex::new(Vec::with_capacity(periods.len()));
    let failed: Mutex<Vec<PeriodFailure>> = Mutex::new(Vec::new());
    let first_error: Mutex<Option<Error>> = Mutex::new(None);

    let deques_ref = &deques;
    let stolen_ref = &stolen;
    let abort_ref = &abort;
    let collected_ref = &collected;
    let failed_ref = &failed;
    let error_ref = &first_error;
    let periods_ref = &periods;

    // Workers run detached from the observe context on purpose: per-task
    // engine spans from concurrent periods would interleave into one
    // aggregate and poison per-phase timings. The scheduler reports its own
    // metrics from the main thread after the join instead.
    let (busy_total, task_us): (u64, Histogram) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let mut busy_us = 0u64;
                    let mut task_us = Histogram::with_default_precision();
                    while !abort_ref.load(Ordering::Relaxed) {
                        let Some((task, was_stolen)) = deques_ref.pop(w) else {
                            break;
                        };
                        if was_stolen {
                            stolen_ref.fetch_add(1, Ordering::Relaxed);
                        }
                        let start = Instant::now();
                        let outcome = mine_one(view, periods_ref[task], config, engine);
                        let elapsed_us = start.elapsed().as_micros() as u64;
                        busy_us += elapsed_us;
                        task_us.record(elapsed_us);
                        match outcome {
                            Ok(result) => collected_ref
                                .lock()
                                .expect("results poisoned")
                                .push((task, result)),
                            // A guard trip fails only this period; the rest
                            // of the bag keeps draining.
                            Err(e) if e.partial_stats().is_some() => {
                                failed_ref
                                    .lock()
                                    .expect("failures poisoned")
                                    .push(PeriodFailure {
                                        period: periods_ref[task],
                                        error: e,
                                    });
                            }
                            Err(e) => {
                                let mut slot = error_ref.lock().expect("error slot poisoned");
                                if slot.is_none() {
                                    *slot = Some(e);
                                }
                                abort_ref.store(true, Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                    (busy_us, task_us)
                })
            })
            .collect();
        let mut busy_total = 0u64;
        let mut merged = Histogram::with_default_precision();
        for h in handles {
            let (busy_us, task_us) = h.join().map_err(worker_panic)?;
            busy_total += busy_us;
            merged.merge(&task_us);
        }
        Ok::<_, Error>((busy_total, merged))
    })?;

    ppm_observe::counter("sweep.tasks_stolen", stolen.load(Ordering::Relaxed));
    ppm_observe::gauge("sweep.worker_busy_us", busy_total);
    report_task_latency(&task_us);

    if let Some(e) = first_error.into_inner().expect("error slot poisoned") {
        return Err(e);
    }
    let mut collected = collected.into_inner().expect("results poisoned");
    collected.sort_by_key(|&(task, _)| task);
    let mut failures = failed.into_inner().expect("failures poisoned");
    failures.sort_by_key(|f| f.period);
    debug_assert_eq!(collected.len() + failures.len(), periods.len());
    let results: Vec<MiningResult> = collected.into_iter().map(|(_, r)| r).collect();
    let total_scans = results.iter().map(|r| r.stats.series_scans).sum();
    Ok(MultiPeriodResult {
        results,
        total_scans,
        failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_timeseries::{EncodedSeries, FeatureId, SeriesBuilder};

    use crate::multi::mine_periods_looping_view;
    use crate::Algorithm;

    fn fid(i: u32) -> FeatureId {
        FeatureId::from_raw(i)
    }

    fn mixed_series(n: usize) -> ppm_timeseries::FeatureSeries {
        let mut b = SeriesBuilder::new();
        let mut x: u64 = 99;
        for t in 0..n {
            let mut inst = Vec::new();
            if t % 3 == 1 {
                inst.push(fid(0));
            }
            if t % 5 == 0 {
                inst.push(fid(1));
            }
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            if (x >> 60) == 0 {
                inst.push(fid(2));
            }
            b.push_instant(inst);
        }
        b.finish()
    }

    // ---- Deterministic deque mechanics (no thread timing involved). ----

    #[test]
    fn seeding_is_round_robin() {
        let d = Deques::seed(5, 2);
        let w0: Vec<usize> = d.workers[0].lock().unwrap().iter().copied().collect();
        let w1: Vec<usize> = d.workers[1].lock().unwrap().iter().copied().collect();
        assert_eq!(w0, vec![0, 2, 4]);
        assert_eq!(w1, vec![1, 3]);
        assert!(d.injector.lock().unwrap().is_empty());
    }

    #[test]
    fn owner_pops_its_own_deque_from_the_front() {
        let d = Deques::seed(5, 2);
        assert_eq!(d.pop(0), Some((0, false)));
        assert_eq!(d.pop(0), Some((2, false)));
        assert_eq!(d.pop(1), Some((1, false)));
    }

    #[test]
    fn injector_feeds_before_stealing() {
        let d = Deques::seed(2, 2); // one task per worker
        assert_eq!(d.pop(0), Some((0, false)));
        d.inject(7);
        // Worker 0's own deque is empty: the injector wins over stealing
        // worker 1's task.
        assert_eq!(d.pop(0), Some((7, false)));
        assert_eq!(d.pop(1), Some((1, false)));
        assert_eq!(d.pop(0), None);
    }

    #[test]
    fn thieves_take_from_the_back_of_a_victim() {
        let d = Deques::seed(6, 2); // w0: [0,2,4], w1: [1,3,5]
                                    // Exhaust worker 1's own deque.
        assert_eq!(d.pop(1), Some((1, false)));
        assert_eq!(d.pop(1), Some((3, false)));
        assert_eq!(d.pop(1), Some((5, false)));
        // Now worker 1 steals worker 0's *newest* task (back = 4), while
        // worker 0 still pops its oldest (front = 0).
        assert_eq!(d.pop(1), Some((4, true)));
        assert_eq!(d.pop(0), Some((0, false)));
        assert_eq!(d.pop(1), Some((2, true)));
        assert_eq!(d.pop(0), None);
        assert_eq!(d.pop(1), None);
    }

    // ---- Scheduler output equals the sequential per-period loop. ----

    #[test]
    fn scheduled_equals_looping_for_every_engine() {
        let s = mixed_series(150);
        let encoded = EncodedSeries::encode(&s);
        let range = PeriodRange::new(2, 9).unwrap();
        let config = MineConfig::new(0.6).unwrap();
        for (engine, alg) in [
            (SweepEngine::HitSet, Some(Algorithm::HitSet)),
            (SweepEngine::Apriori, Some(Algorithm::Apriori)),
            (SweepEngine::Vertical, None),
        ] {
            let scheduled =
                mine_periods_scheduled(encoded.view(), range, &config, engine, 4).unwrap();
            let sequential = match alg {
                Some(a) => mine_periods_looping_view(encoded.view(), range, &config, a).unwrap(),
                None => {
                    let mut results = Vec::new();
                    let mut total_scans = 0;
                    for p in range.iter() {
                        let r = crate::vertical::mine_vertical_view(encoded.view(), p, &config)
                            .unwrap();
                        total_scans += r.stats.series_scans;
                        results.push(r);
                    }
                    MultiPeriodResult::complete(results, total_scans)
                }
            };
            assert_eq!(scheduled.total_scans, sequential.total_scans, "{engine:?}");
            assert_eq!(scheduled.results.len(), sequential.results.len());
            for (a, b) in scheduled.results.iter().zip(&sequential.results) {
                assert_eq!(a.period, b.period, "{engine:?}");
                assert_eq!(a.frequent, b.frequent, "{engine:?} period {}", a.period);
                assert_eq!(a.stats, b.stats, "{engine:?} period {}", a.period);
            }
        }
    }

    #[test]
    fn one_worker_runs_inline_with_identical_results() {
        let s = mixed_series(90);
        let encoded = EncodedSeries::encode(&s);
        let range = PeriodRange::new(2, 6).unwrap();
        let config = MineConfig::new(0.7).unwrap();
        let pooled =
            mine_periods_scheduled(encoded.view(), range, &config, SweepEngine::Vertical, 4)
                .unwrap();
        let inline =
            mine_periods_scheduled(encoded.view(), range, &config, SweepEngine::Vertical, 1)
                .unwrap();
        assert_eq!(pooled.results.len(), inline.results.len());
        for (a, b) in pooled.results.iter().zip(&inline.results) {
            assert_eq!(a.frequent, b.frequent, "period {}", a.period);
        }
    }

    #[test]
    fn empty_range_after_filtering() {
        let s = mixed_series(5);
        let encoded = EncodedSeries::encode(&s);
        let range = PeriodRange::new(10, 12).unwrap();
        let out = mine_periods_scheduled(
            encoded.view(),
            range,
            &MineConfig::default(),
            SweepEngine::HitSet,
            4,
        )
        .unwrap();
        assert!(out.results.is_empty());
        assert_eq!(out.total_scans, 0);
    }

    #[test]
    fn guard_trips_surface_as_per_period_failures() {
        let s = mixed_series(600);
        let encoded = EncodedSeries::encode(&s);
        let range = PeriodRange::new(2, 9).unwrap();
        let config = MineConfig::new(0.5)
            .unwrap()
            .with_deadline(std::time::Duration::ZERO);
        for workers in [1, 4] {
            let out = mine_periods_scheduled(
                encoded.view(),
                range,
                &config,
                SweepEngine::Vertical,
                workers,
            )
            .unwrap();
            // An already-expired deadline trips every period, but the sweep
            // itself completes with a full per-period accounting.
            assert!(out.results.is_empty(), "workers={workers}");
            assert_eq!(out.failures.len(), range.len(), "workers={workers}");
            let periods: Vec<usize> = out.failures.iter().map(|f| f.period).collect();
            assert_eq!(periods, range.iter().collect::<Vec<_>>(), "sorted");
            for f in &out.failures {
                assert!(
                    matches!(f.error, Error::DeadlineExceeded { .. }),
                    "period {}: {:?}",
                    f.period,
                    f.error
                );
                assert!(f.error.partial_stats().is_some(), "period {}", f.period);
            }
        }
    }

    #[test]
    fn tree_budget_fails_only_the_periods_over_it() {
        let s = mixed_series(400);
        let encoded = EncodedSeries::encode(&s);
        let range = PeriodRange::new(2, 9).unwrap();
        let config = MineConfig::new(0.3).unwrap();
        // Per-period tree sizes vary; pick a budget strictly between the
        // smallest and largest so the split is deterministic but non-trivial.
        let sizes: Vec<(usize, usize)> = range
            .iter()
            .map(|p| {
                let r = crate::hitset::mine_view(encoded.view(), p, &config).unwrap();
                (p, r.stats.tree_nodes)
            })
            .collect();
        let min = sizes.iter().map(|&(_, n)| n).min().unwrap();
        let max = sizes.iter().map(|&(_, n)| n).max().unwrap();
        assert!(
            min < max,
            "series must produce varied tree sizes: {sizes:?}"
        );
        let budget = (min + max) / 2;
        let expect_fail: Vec<usize> = sizes
            .iter()
            .filter(|&&(_, n)| n > budget)
            .map(|&(p, _)| p)
            .collect();
        let guarded = MineConfig::new(0.3).unwrap().with_max_tree_nodes(budget);
        let out = mine_periods_scheduled(encoded.view(), range, &guarded, SweepEngine::HitSet, 4)
            .unwrap();
        let failed: Vec<usize> = out.failures.iter().map(|f| f.period).collect();
        assert_eq!(failed, expect_fail);
        assert_eq!(out.results.len() + out.failures.len(), range.len());
        for f in &out.failures {
            assert!(
                matches!(f.error, Error::TreeBudgetExceeded { .. }),
                "period {}: {:?}",
                f.period,
                f.error
            );
        }
        // Completed periods are bit-identical to an unguarded mine.
        for r in &out.results {
            let plain = crate::hitset::mine_view(encoded.view(), r.period, &config).unwrap();
            assert_eq!(r.frequent, plain.frequent, "period {}", r.period);
        }
    }
}
