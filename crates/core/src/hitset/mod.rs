//! The max-subpattern hit-set method (paper §3.1.2 and §4).
//!
//! The key observation: once `F1` (hence `C_max`) is known, the *maximal*
//! subpattern of `C_max` hit by each period segment — the segment's
//! intersection with `C_max` — determines the count of **every** candidate
//! pattern: `count(P) = Σ count(H)` over distinct hits `H ⊇ P`. So a single
//! second scan that tallies hit multiplicities in a [`MaxSubpatternTree`]
//! replaces the per-level scans of Apriori, for a total of exactly two
//! scans regardless of pattern length (Algorithm 3.2).
//!
//! * [`tree`] — the max-subpattern tree (Algorithm 4.1): a set-trie over
//!   missing-letter lists, with 0-count interior nodes.
//! * [`derive`] — Algorithm 4.2: level-wise derivation of all frequent
//!   patterns, counting candidates against the tree.
//! * [`mine`] — Algorithm 3.2 end to end.

pub mod derive;
pub mod tree;

mod single_period;

pub use single_period::{mine, mine_view, mine_with_strategy};
pub use tree::MaxSubpatternTree;

pub(crate) use single_period::build_tree;
